//! Train an autoencoder on one machine, save it, and score with the reloaded
//! model — demonstrating the JSON persistence layer.
//!
//! Run with: `cargo run --release --example model_persistence`

use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig};
use acobe_nn::optim::Adadelta;
use acobe_nn::serialize::{load_json, save_json};
use acobe_nn::tensor::Matrix;
use acobe_nn::train::{fit_autoencoder, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Structured training data: two latent factors in 12 dimensions.
    let n = 256;
    let data = Matrix::from_vec(
        n,
        12,
        (0..n * 12)
            .map(|i| {
                let (row, col) = (i / 12, i % 12);
                let a = (row % 7) as f32 / 7.0;
                let b = (row % 11) as f32 / 11.0;
                if col % 2 == 0 {
                    a * 0.8
                } else {
                    b * 0.6
                }
            })
            .collect(),
    );

    let mut ae = Autoencoder::new(AutoencoderConfig::small(12));
    let cfg = TrainConfig { epochs: 40, batch_size: 32, seed: 5, early_stop_rel: None };
    let report = fit_autoencoder(&mut ae, &data, &cfg, &mut Adadelta::new());
    println!(
        "trained {} epochs: loss {:.5} -> {:.5}",
        report.epochs_run,
        report.epoch_losses[0],
        report.final_loss().unwrap_or(f32::NAN)
    );

    let path = std::env::temp_dir().join("acobe_quickstart_model.json");
    save_json(&mut ae, &path)?;
    println!("saved model to {}", path.display());

    let mut reloaded = load_json(&path)?;
    let original = ae.reconstruction_errors(&data);
    let restored = reloaded.reconstruction_errors(&data);
    assert_eq!(original, restored, "reloaded model must score identically");
    println!(
        "reloaded model reproduces all {} scores exactly (mean error {:.6})",
        original.len(),
        original.iter().sum::<f32>() / original.len() as f32
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
