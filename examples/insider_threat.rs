//! Insider-threat walk-through: reproduces the paper's evaluation flow on
//! one scenario — synthesize, extract, train ACOBE *and* the ablations, and
//! compare how early each model surfaces the insider.
//!
//! Run with: `cargo run --release --example insider_threat [users_per_dept]`

use acobe_bench::dataset::{build_cert_dataset, DatasetOptions};
use acobe_bench::runner::run_scenario;
use acobe_bench::variants::{ModelVariant, SpeedPreset};
use acobe_eval::pr::PrCurve;
use acobe_eval::roc::RocCurve;

fn main() {
    let users_per_dept: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("building dataset ({users_per_dept} users per department, 4 departments)...");
    let ds = build_cert_dataset(&DatasetOptions {
        users_per_dept,
        departments: 4,
        seed: 7,
        with_baseline: true,
    });
    println!(
        "{} users, {} insiders, span {}..{}",
        ds.users,
        ds.victims.len(),
        ds.start,
        ds.end
    );

    // Evaluate the flagship models on the scenario-1 insider (the abrupt
    // off-hours exfiltration).
    let victim = ds
        .victims
        .iter()
        .find(|v| v.scenario == "scenario1")
        .expect("scenario 1 victim");
    println!(
        "\nscenario 1 victim: {} (anomalies {}..{})",
        victim.user, victim.anomaly_start, victim.anomaly_end
    );

    for variant in [
        ModelVariant::Acobe,
        ModelVariant::NoGroup,
        ModelVariant::OneDay,
        ModelVariant::Baseline,
    ] {
        let run = run_scenario(&ds, victim, variant, SpeedPreset::Tiny);
        let roc = RocCurve::from_ranking(&run.ranking);
        let pr = PrCurve::from_ranking(&run.ranking);
        println!(
            "  {:<10} victim at position {:>3} of {:<4} fp-before-tp {:?}  auc {:.4}  ap {:.4}",
            variant.name(),
            run.victim_position + 1,
            ds.users,
            run.ranking.fp_before_tp,
            roc.auc(),
            pr.average_precision(),
        );
    }

    println!(
        "\nexpected shape (paper Figure 6): ACOBE surfaces the insider with the \
         fewest false positives; the ablations and the Baseline trail it."
    );
}
