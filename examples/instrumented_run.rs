//! Instrumented run: the quickstart pipeline with the observability layer
//! turned all the way up — per-epoch training traces on stderr, a stage
//! timing summary, and a JSON-lines metrics export.
//!
//! Run with: `cargo run --release --example instrumented_run`

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_features::spec::cert_feature_set;
use acobe_obs::MetricRecord;
use acobe_synth::cert::{CertConfig, CertGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Detail verbosity: `detail!` lines (the per-epoch training trace the
    // CLI shows under `-v`) reach stderr alongside the `progress!` lines.
    acobe_obs::set_verbosity(acobe_obs::progress::LEVEL_DETAIL);

    // The pipeline below is the quickstart; every stage it runs records
    // spans and counters into the global registry as a side effect.
    let mut generator = CertGenerator::new(CertConfig::small(42));
    let store = generator.build_store();
    let config = generator.config().clone();
    let cube = extract_cert_features(
        &store,
        config.org.total_users(),
        config.start,
        config.end,
        CountSemantics::Plain,
    );
    let directory = generator.directory();
    let groups: Vec<Vec<usize>> = directory
        .departments()
        .map(|d| directory.members(d).iter().map(|u| u.index()).collect())
        .collect();

    let mut pipeline =
        AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny())?;
    let split = config.start.add_days(60);
    pipeline.fit(config.start, split)?;
    let table = pipeline.score_range(split, config.end)?;
    let list = table.investigation_list_smoothed(2, 3);
    println!("most suspicious: user {}", list[0].user);

    // The human-readable rendering — what `acobe detect` prints on
    // completion: per-stage wall time (count / total / mean / min / max),
    // then counters, gauges, and histogram summaries.
    println!("\n{}", acobe_obs::summary_table());

    // The machine-readable rendering — what `--metrics-out FILE` writes:
    // one JSON object per line, tagged by kind.
    let jsonl = acobe_obs::to_jsonl();
    std::fs::write("instrumented_run.metrics.jsonl", &jsonl)?;
    println!(
        "wrote {} metric lines to instrumented_run.metrics.jsonl",
        jsonl.lines().count()
    );

    // The export round-trips through serde, so downstream tooling can
    // consume it without string parsing.
    let training_spans: Vec<MetricRecord> = jsonl
        .lines()
        .map(|line| serde_json::from_str(line).expect("valid metric line"))
        .filter(|r: &MetricRecord| matches!(r, MetricRecord::Span { .. }))
        .filter(|r| r.name().starts_with("train("))
        .collect();
    println!("\nper-aspect training time:");
    for record in &training_spans {
        if let MetricRecord::Span { name, total_ms, .. } = record {
            println!("  {name}: {total_ms:.1} ms");
        }
    }
    Ok(())
}
