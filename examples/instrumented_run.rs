//! Instrumented run: the quickstart pipeline with the full telemetry plane
//! turned on — per-epoch training traces on stderr, a stage timing summary,
//! a JSON-lines metrics export with labeled series, the structured trace
//! event ring, and a live Prometheus scrape of the run's own metrics.
//!
//! Run with: `cargo run --release --example instrumented_run`

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_features::spec::cert_feature_set;
use acobe_obs::serve::{http_get, serve};
use acobe_obs::MetricRecord;
use acobe_synth::cert::{CertConfig, CertGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Detail verbosity: `detail!` lines (the per-epoch training trace the
    // CLI shows under `-v`) reach stderr alongside the `progress!` lines.
    acobe_obs::set_verbosity(acobe_obs::progress::LEVEL_DETAIL);

    // The telemetry server is what `--serve-metrics ADDR` starts: /metrics,
    // /healthz, and /events over plain HTTP. Port 0 picks an ephemeral port.
    let server = serve("127.0.0.1:0")?;
    let addr = server.addr().to_string();
    println!("telemetry server listening on http://{addr}");

    // The pipeline below is the quickstart; every stage it runs records
    // spans, counters, and labeled histograms into the global registry as a
    // side effect — e.g. `train/epoch_ms{aspect=...}`, one series per
    // autoencoder.
    let mut generator = CertGenerator::new(CertConfig::small(42));
    let store = generator.build_store();
    let config = generator.config().clone();
    let cube = extract_cert_features(
        &store,
        config.org.total_users(),
        config.start,
        config.end,
        CountSemantics::Plain,
    );
    let directory = generator.directory();
    let groups: Vec<Vec<usize>> = directory
        .departments()
        .map(|d| directory.members(d).iter().map(|u| u.index()).collect())
        .collect();

    let mut pipeline =
        AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny())?;
    let split = config.start.add_days(60);
    pipeline.fit(config.start, split)?;
    let table = pipeline.score_range(split, config.end)?;
    let list = table.investigation_list_smoothed(2, 3);
    println!("most suspicious: user {}", list[0].user);

    // Labeled metrics from application code: the label set distinguishes
    // series within one family, so dashboards can aggregate or facet.
    acobe_obs::counter_with("example/runs", &[("kind", "quickstart")]).inc();
    acobe_obs::gauge_with("example/top_user", &[("kind", "quickstart")])
        .set(list[0].user as f64);

    // The human-readable rendering — what `acobe detect` prints on
    // completion: per-stage wall time (count / total / mean / min / max),
    // then counters, gauges, and histogram summaries (labeled series render
    // as `family{k=v}`).
    println!("\n{}", acobe_obs::summary_table());

    // The machine-readable rendering — what `--metrics-out FILE` writes:
    // one JSON object per line, tagged by kind, labels as `[k, v]` pairs.
    let jsonl = acobe_obs::to_jsonl();
    std::fs::write("instrumented_run.metrics.jsonl", &jsonl)?;
    println!(
        "wrote {} metric lines to instrumented_run.metrics.jsonl",
        jsonl.lines().count()
    );

    // The export round-trips through serde, so downstream tooling can
    // consume it without string parsing.
    let training_spans: Vec<MetricRecord> = jsonl
        .lines()
        .map(|line| serde_json::from_str(line).expect("valid metric line"))
        .filter(|r: &MetricRecord| matches!(r, MetricRecord::Span { .. }))
        .filter(|r| r.name().starts_with("train("))
        .collect();
    println!("\nper-aspect training time:");
    for record in &training_spans {
        if let MetricRecord::Span { name, total_ms, .. } = record {
            println!("  {name}: {total_ms:.1} ms");
        }
    }

    // Structured trace events: every span enter/exit and progress line also
    // lands in a bounded in-memory ring (and `--trace-out FILE` streams the
    // same events as JSON lines). Here: the last few events of the run.
    println!("\nlast trace events:");
    for event in acobe_obs::event::recent(5) {
        println!("  #{:>4} {:?} {}", event.id, event.kind, event.name);
    }

    // Scrape ourselves: the same bytes Prometheus would ingest, validated
    // against the text exposition format.
    let (status, body) = http_get(&addr, "/metrics")?;
    let samples = acobe_obs::prometheus::validate(&body).expect("valid exposition");
    println!("\nGET /metrics -> {status}, {samples} samples; first lines:");
    for line in body.lines().take(6) {
        println!("  {line}");
    }
    let (status, health) = http_get(&addr, "/healthz")?;
    println!("GET /healthz -> {status}: {health}");

    server.shutdown();
    Ok(())
}
