//! Quickstart: synthesize a small organization, train ACOBE, and print the
//! investigation list.
//!
//! Run with: `cargo run --release --example quickstart`

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_features::spec::cert_feature_set;
use acobe_synth::cert::{CertConfig, CertGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a small CERT-like organization (two departments, four
    //    months of logs, one insider of each scenario).
    let mut generator = CertGenerator::new(CertConfig::small(42));
    let store = generator.build_store();
    let config = generator.config().clone();
    println!(
        "synthesized {} events for {} users over {}..{}",
        store.len(),
        config.org.total_users(),
        config.start,
        config.end
    );

    // 2. Extract the paper's 16 behavioral features per (user, day,
    //    time-frame).
    let cube = extract_cert_features(
        &store,
        config.org.total_users(),
        config.start,
        config.end,
        CountSemantics::Plain,
    );

    // 3. Departments are the peer groups.
    let directory = generator.directory();
    let groups: Vec<Vec<usize>> = directory
        .departments()
        .map(|d| directory.members(d).iter().map(|u| u.index()).collect())
        .collect();

    // 4. Train the ensemble on the first two months and score the rest.
    let mut pipeline =
        AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny())?;
    let split = config.start.add_days(60);
    let reports = pipeline.fit(config.start, split)?;
    for (aspect, report) in pipeline.feature_set().aspects.iter().zip(&reports) {
        let final_loss = report
            .final_loss()
            .map(|l| format!("{l:.5}"))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "trained {}: {} epochs in {:.0} ms, final loss {final_loss}{}",
            aspect.name,
            report.epochs_run,
            report.total_ms(),
            if report.stopped_early { " (stopped early)" } else { "" }
        );
    }
    let table = pipeline.score_range(split, config.end)?;

    // 5. The ordered investigation list (Algorithm 1, N = 2 of 3 aspects).
    let list = table.investigation_list_smoothed(2, 3);
    println!("\ntop of the investigation list:");
    for inv in list.iter().take(5) {
        let name = directory
            .entry(acobe_logs::ids::UserId(inv.user as u32))
            .map(|e| e.name.clone())
            .unwrap_or_default();
        println!("  user {:>3} ({name})  priority {}", inv.user, inv.priority);
    }

    let victims = generator.ground_truth();
    println!("\nground truth insiders:");
    for v in &victims {
        let pos = list.iter().position(|i| i.user == v.user.index()).unwrap();
        println!(
            "  {} ({}) — listed at position {} of {}",
            v.user,
            v.scenario,
            pos + 1,
            list.len()
        );
    }
    Ok(())
}
