//! Enterprise case study (paper Section VI): detect a Zeus-bot infection and
//! a ransomware detonation among enterprise employees from Windows-event and
//! proxy logs.
//!
//! Run with: `cargo run --release --example enterprise_case_study [zeus|ransomware]`

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_bench::dataset::build_enterprise_dataset;
use acobe_features::spec::enterprise_feature_set;
use acobe_synth::enterprise::Attack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attack = match std::env::args().nth(1).as_deref() {
        Some("zeus") => Attack::Zeus,
        _ => Attack::Ransomware,
    };
    // A scaled-down enterprise keeps the example fast; the fig7 harness runs
    // the paper's 246 employees.
    let users = 40;
    println!("building enterprise dataset ({users} employees, attack: {})...", attack.name());
    let ds = build_enterprise_dataset(attack, users, 11);

    let mut config = AcobeConfig::tiny();
    config.deviation.window = 14; // the case study's two-week window
    config.matrix.matrix_days = 14;
    config.matrix.use_weights = false; // see fig7: weights flatten count features
    config.critic_n = 2; // two of six aspects must vote

    let mut pipeline = AcobePipeline::new(
        ds.cube.clone(),
        enterprise_feature_set(),
        &ds.groups,
        config.clone(),
    )?;
    let train_end = ds.attack_day.add_days(-14);
    pipeline.fit(ds.start, train_end)?;
    let table = pipeline.score_range(ds.attack_day.add_days(-10), ds.end)?;

    println!("\nvictim is employee {}; attack day {}", ds.victim, ds.attack_day);
    println!("daily investigation rank of the victim:");
    let mut detected = false;
    for d in 0..table.days() {
        let date = table.start.add_days(d as i32);
        let list = table.daily_investigation_smoothed(d, config.critic_n, 3);
        let pos = list
            .iter()
            .position(|inv| inv.user == ds.victim)
            .expect("victim scored")
            + 1;
        let marker = if date == ds.attack_day { "  <= attack" } else { "" };
        println!("  {date}: #{pos}{marker}");
        if date > ds.attack_day && pos == 1 {
            detected = true;
        }
    }
    println!(
        "\n{}",
        if detected {
            "the victim reached rank #1 after the attack — periodic investigation finds it \
             (paper: ranked 1st from Feb 3rd to Feb 15th)"
        } else {
            "the victim did not reach rank #1 — try more epochs or the fig7 harness scale"
        }
    );
    Ok(())
}
