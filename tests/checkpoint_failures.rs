//! Checkpoint failure paths (DESIGN.md §8, §12): damaged checkpoints must
//! fail with *typed* errors — and damage confined to one shard file must
//! quarantine that shard while the remaining shards keep scoring. Covers
//! both the legacy v2 JSON layout and the v3 binary container (truncation,
//! bit flips caught by per-section checksums, wrong magic, future versions,
//! broken delta chains).

use acobe::checkpoint::{CheckpointFormat, CheckpointOptions, SaveKind};
use acobe::config::AcobeConfig;
use acobe::error::AcobeError;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

const DAYS: usize = 30;
const SPLIT: usize = 24;
const FRAMES: usize = 2;
const FEATURES: usize = 4;
const USERS: usize = 9;
const SHARDS: usize = 3;

fn random_cube(seed: u64) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(USERS, Date::from_ymd(2012, 5, 1), DAYS, FRAMES, FEATURES);
    for u in 0..USERS {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acobe_ckfail_{}_{tag}", std::process::id()))
}

/// Trains a 3-shard engine on the first SPLIT days, streams one scored day,
/// saves it into `dir` in the requested format, and returns it together
/// with the cube (for feeding further days) and the next day index to
/// ingest.
fn saved_engine(
    dir: &PathBuf,
    seed: u64,
    format: CheckpointFormat,
) -> (FeatureCube, ShardedEngine, usize) {
    let cube = random_cube(seed);
    let start = cube.start();
    let split = start.add_days(SPLIT as i32);
    let groups: Vec<Vec<usize>> = (0..SHARDS).map(|g| (g * 3..g * 3 + 3).collect()).collect();
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;

    let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups, cfg).unwrap();
    pipe.fit(start, split).unwrap();
    let mut engine = pipe.into_engine();
    engine.reset_stream();
    let mut engine = ShardedEngine::from_engine(engine, SHARDS).unwrap();

    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in 0..=SPLIT {
        cube.day_slice_into(d, &mut day_buf);
        let date = start.add_days(d as i32);
        if d < SPLIT {
            engine.warm_day(date, &day_buf).unwrap();
        } else {
            assert!(engine.ingest_day(date, &day_buf).unwrap().is_some());
        }
    }
    fs::remove_dir_all(dir).ok();
    match format {
        CheckpointFormat::V2Json => engine.save_v2(dir).unwrap(),
        CheckpointFormat::V3Binary => engine.save(dir).unwrap(),
    }
    (cube, engine, SPLIT + 1)
}

#[test]
fn corrupt_manifest_json_is_a_typed_checkpoint_error() {
    let dir = temp_dir("manifest");
    let (_, _, _) = saved_engine(&dir, 31, CheckpointFormat::V2Json);
    let manifest = dir.join("manifest.json");
    let json = fs::read_to_string(&manifest).unwrap();
    fs::write(&manifest, &json[..json.len() / 2]).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    assert!(matches!(err, AcobeError::Checkpoint(_)), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_manifest_version_is_corrupt_checkpoint() {
    let dir = temp_dir("version");
    let (_, _, _) = saved_engine(&dir, 32, CheckpointFormat::V2Json);
    let manifest = dir.join("manifest.json");
    let json = fs::read_to_string(&manifest).unwrap();
    fs::write(&manifest, json.replacen("\"version\":2", "\"version\":99", 1)).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    match &err {
        AcobeError::CorruptCheckpoint(msg) => assert!(msg.contains("99"), "{msg}"),
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unparsable_v1_file_is_a_typed_checkpoint_error() {
    let dir = temp_dir("v1garbage");
    fs::create_dir_all(&dir).unwrap();
    let file = dir.join("old_checkpoint.json");
    fs::write(&file, "{\"version\": 1, \"truncated").unwrap();
    let err = ShardedEngine::load(&file, 2).unwrap_err();
    assert!(matches!(err, AcobeError::Checkpoint(_)), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_file_quarantines_while_the_rest_keep_scoring() {
    let dir = temp_dir("truncated");
    let (cube, mut pristine, next) = saved_engine(&dir, 33, CheckpointFormat::V2Json);
    let shard_file = dir.join("shard_001.json");
    let json = fs::read_to_string(&shard_file).unwrap();
    fs::write(&shard_file, &json[..json.len() / 2]).unwrap();

    let mut damaged = ShardedEngine::load(&dir, 1).unwrap();
    let quarantined = damaged.quarantined();
    assert_eq!(quarantined.len(), 1);
    let (idx, err) = &quarantined[0];
    assert_eq!(*idx, 1);
    match err {
        AcobeError::Shard { shard: 1, source } => {
            assert!(matches!(**source, AcobeError::Checkpoint(_)), "got {source:?}")
        }
        other => panic!("expected Shard wrapper, got {other:?}"),
    }
    assert_eq!(damaged.live_users(), USERS - 3);

    // Shard 1's users score NaN; every other user still gets a finite
    // score. (Scores legitimately differ from the pristine engine: the
    // degraded group average spans live members only.)
    let lost: Vec<usize> = damaged
        .assignment()
        .iter()
        .enumerate()
        .filter(|(_, &s)| s == 1)
        .map(|(u, _)| u)
        .collect();
    assert!(!lost.is_empty());
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in next..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        let date = cube.start().add_days(d as i32);
        let day = damaged.ingest_day(date, &day_buf).unwrap().unwrap();
        assert!(pristine.ingest_day(date, &day_buf).unwrap().is_some());
        for scores in &day.scores {
            for (u, s) in scores.iter().enumerate() {
                if lost.contains(&u) {
                    assert!(s.is_nan(), "user {u} on the dead shard scored {s}");
                } else {
                    assert!(s.is_finite(), "live user {u} scored {s} on day {d}");
                }
            }
        }
    }
    // The daily critic still ranks the live users.
    let list = damaged.daily_investigation(2, 3);
    assert!(!list.is_empty());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_file_version_mismatch_quarantines_with_corrupt_checkpoint() {
    let dir = temp_dir("shardversion");
    let (_, _, _) = saved_engine(&dir, 34, CheckpointFormat::V2Json);
    let shard_file = dir.join("shard_002.json");
    let json = fs::read_to_string(&shard_file).unwrap();
    fs::write(&shard_file, json.replacen("\"version\":2", "\"version\":7", 1)).unwrap();

    let engine = ShardedEngine::load(&dir, 1).unwrap();
    let quarantined = engine.quarantined();
    assert_eq!(quarantined.len(), 1);
    match quarantined[0] {
        (2, AcobeError::Shard { shard: 2, source }) => {
            assert!(matches!(**source, AcobeError::CorruptCheckpoint(_)), "got {source:?}")
        }
        (i, other) => panic!("expected shard 2 CorruptCheckpoint, got shard {i}: {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn losing_every_shard_file_is_no_live_shards() {
    let dir = temp_dir("allgone");
    let (_, _, _) = saved_engine(&dir, 35, CheckpointFormat::V2Json);
    for i in 0..SHARDS {
        fs::remove_file(dir.join(format!("shard_{i:03}.json"))).unwrap();
    }
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    assert!(matches!(err, AcobeError::NoLiveShards), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// v3 binary container failure paths (DESIGN.md §12)
// ---------------------------------------------------------------------------

#[test]
fn truncated_binary_manifest_is_a_typed_checkpoint_error() {
    let dir = temp_dir("bin_manifest");
    let (_, _, _) = saved_engine(&dir, 41, CheckpointFormat::V3Binary);
    let manifest = dir.join("manifest.acb");
    let bytes = fs::read(&manifest).unwrap();
    for cut in [3, bytes.len() / 3, bytes.len() - 1] {
        fs::write(&manifest, &bytes[..cut]).unwrap();
        let err = ShardedEngine::load(&dir, 1).unwrap_err();
        assert!(
            matches!(err, AcobeError::CorruptCheckpoint(_)),
            "cut at {cut}: got {err:?}"
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_in_binary_shard_file_quarantines_with_section_checksum() {
    let dir = temp_dir("bin_bitflip");
    let (cube, mut pristine, next) = saved_engine(&dir, 42, CheckpointFormat::V3Binary);
    let shard_file = dir.join("shard_001.acb");
    let mut bytes = fs::read(&shard_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&shard_file, &bytes).unwrap();

    let mut damaged = ShardedEngine::load(&dir, 1).unwrap();
    let quarantined = damaged.quarantined();
    assert_eq!(quarantined.len(), 1);
    match quarantined[0] {
        (1, AcobeError::Shard { shard: 1, source }) => {
            assert!(matches!(**source, AcobeError::CorruptCheckpoint(_)), "got {source:?}");
            // The container layer pinpoints the damage: the error names the
            // section whose checksum (or framing) the flip broke.
            let msg = source.to_string();
            assert!(msg.contains("section") || msg.contains("checksum"), "{msg}");
        }
        (i, other) => panic!("expected shard 1 CorruptCheckpoint, got shard {i}: {other:?}"),
    }
    // The degraded engine keeps scoring, like the v2 quarantine path.
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    cube.day_slice_into(next, &mut day_buf);
    let date = cube.start().add_days(next as i32);
    assert!(damaged.ingest_day(date, &day_buf).unwrap().is_some());
    assert!(pristine.ingest_day(date, &day_buf).unwrap().is_some());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_is_rejected_as_corrupt() {
    let dir = temp_dir("bin_magic");
    let (_, _, _) = saved_engine(&dir, 43, CheckpointFormat::V3Binary);
    let manifest = dir.join("manifest.acb");
    let mut bytes = fs::read(&manifest).unwrap();
    bytes[..4].copy_from_slice(b"NOPE");
    fs::write(&manifest, &bytes).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    match &err {
        AcobeError::CorruptCheckpoint(msg) => {
            assert!(msg.contains("not a v3 checkpoint"), "{msg}")
        }
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_container_version_is_rejected_with_the_version_named() {
    let dir = temp_dir("bin_future");
    let (_, _, _) = saved_engine(&dir, 44, CheckpointFormat::V3Binary);
    let manifest = dir.join("manifest.acb");
    let mut bytes = fs::read(&manifest).unwrap();
    // The container version is the little-endian u32 right after the magic.
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    fs::write(&manifest, &bytes).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    match &err {
        AcobeError::CorruptCheckpoint(msg) => {
            assert!(
                msg.contains("unsupported checkpoint container version") && msg.contains("99"),
                "{msg}"
            )
        }
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_delta_chain_quarantines_or_fails_typed_never_panics() {
    let dir = temp_dir("bin_chain");
    let (cube, mut engine, next) = saved_engine(&dir, 45, CheckpointFormat::V3Binary);
    // Arm delta checkpointing: one full save, then two delta saves.
    let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 8 };
    assert_eq!(engine.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Full);
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in next..next + 2 {
        cube.day_slice_into(d, &mut day_buf);
        engine.ingest_day(cube.start().add_days(d as i32), &day_buf).unwrap();
        assert_eq!(engine.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Delta);
    }
    // Sanity: the intact chain resumes to the same frontier.
    let intact = ShardedEngine::load(&dir, 1).unwrap();
    assert_eq!(intact.next_date(), engine.next_date());
    assert!(intact.quarantined().is_empty());

    // Damage one shard's delta file: that shard is quarantined while the
    // chain still replays for the others.
    let delta = dir.join("delta_000_shard_001.acb");
    let mut bytes = fs::read(&delta).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&delta, &bytes).unwrap();
    let degraded = ShardedEngine::load(&dir, 1).unwrap();
    let quarantined = degraded.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, 1);
    assert!(matches!(quarantined[0].1, AcobeError::Shard { shard: 1, .. }));
    assert_eq!(degraded.next_date(), engine.next_date());

    // Damage the chain index itself: fatal, but typed — never a panic.
    let chain = dir.join("chain.acb");
    let mut bytes = fs::read(&chain).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&chain, &bytes).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}
