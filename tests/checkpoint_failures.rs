//! Checkpoint failure paths (DESIGN.md §8): damaged checkpoints must fail
//! with *typed* errors — and damage confined to one shard file must
//! quarantine that shard while the remaining shards keep scoring.

use acobe::config::AcobeConfig;
use acobe::error::AcobeError;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

const DAYS: usize = 30;
const SPLIT: usize = 24;
const FRAMES: usize = 2;
const FEATURES: usize = 4;
const USERS: usize = 9;
const SHARDS: usize = 3;

fn random_cube(seed: u64) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(USERS, Date::from_ymd(2012, 5, 1), DAYS, FRAMES, FEATURES);
    for u in 0..USERS {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acobe_ckfail_{}_{tag}", std::process::id()))
}

/// Trains a 3-shard engine on the first SPLIT days, streams one scored day,
/// saves it into `dir`, and returns it together with the cube (for feeding
/// further days) and the next day index to ingest.
fn saved_engine(dir: &PathBuf, seed: u64) -> (FeatureCube, ShardedEngine, usize) {
    let cube = random_cube(seed);
    let start = cube.start();
    let split = start.add_days(SPLIT as i32);
    let groups: Vec<Vec<usize>> = (0..SHARDS).map(|g| (g * 3..g * 3 + 3).collect()).collect();
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;

    let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups, cfg).unwrap();
    pipe.fit(start, split).unwrap();
    let mut engine = pipe.into_engine();
    engine.reset_stream();
    let mut engine = ShardedEngine::from_engine(engine, SHARDS).unwrap();

    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in 0..=SPLIT {
        cube.day_slice_into(d, &mut day_buf);
        let date = start.add_days(d as i32);
        if d < SPLIT {
            engine.warm_day(date, &day_buf).unwrap();
        } else {
            assert!(engine.ingest_day(date, &day_buf).unwrap().is_some());
        }
    }
    fs::remove_dir_all(dir).ok();
    engine.save(dir).unwrap();
    (cube, engine, SPLIT + 1)
}

#[test]
fn corrupt_manifest_json_is_a_typed_checkpoint_error() {
    let dir = temp_dir("manifest");
    let (_, _, _) = saved_engine(&dir, 31);
    let manifest = dir.join("manifest.json");
    let json = fs::read_to_string(&manifest).unwrap();
    fs::write(&manifest, &json[..json.len() / 2]).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    assert!(matches!(err, AcobeError::Checkpoint(_)), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_manifest_version_is_corrupt_checkpoint() {
    let dir = temp_dir("version");
    let (_, _, _) = saved_engine(&dir, 32);
    let manifest = dir.join("manifest.json");
    let json = fs::read_to_string(&manifest).unwrap();
    fs::write(&manifest, json.replacen("\"version\":2", "\"version\":99", 1)).unwrap();
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    match &err {
        AcobeError::CorruptCheckpoint(msg) => assert!(msg.contains("99"), "{msg}"),
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unparsable_v1_file_is_a_typed_checkpoint_error() {
    let dir = temp_dir("v1garbage");
    fs::create_dir_all(&dir).unwrap();
    let file = dir.join("old_checkpoint.json");
    fs::write(&file, "{\"version\": 1, \"truncated").unwrap();
    let err = ShardedEngine::load(&file, 2).unwrap_err();
    assert!(matches!(err, AcobeError::Checkpoint(_)), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_shard_file_quarantines_while_the_rest_keep_scoring() {
    let dir = temp_dir("truncated");
    let (cube, mut pristine, next) = saved_engine(&dir, 33);
    let shard_file = dir.join("shard_001.json");
    let json = fs::read_to_string(&shard_file).unwrap();
    fs::write(&shard_file, &json[..json.len() / 2]).unwrap();

    let mut damaged = ShardedEngine::load(&dir, 1).unwrap();
    let quarantined = damaged.quarantined();
    assert_eq!(quarantined.len(), 1);
    let (idx, err) = &quarantined[0];
    assert_eq!(*idx, 1);
    match err {
        AcobeError::Shard { shard: 1, source } => {
            assert!(matches!(**source, AcobeError::Checkpoint(_)), "got {source:?}")
        }
        other => panic!("expected Shard wrapper, got {other:?}"),
    }
    assert_eq!(damaged.live_users(), USERS - 3);

    // Shard 1's users score NaN; every other user still gets a finite
    // score. (Scores legitimately differ from the pristine engine: the
    // degraded group average spans live members only.)
    let lost: Vec<usize> = damaged
        .assignment()
        .iter()
        .enumerate()
        .filter(|(_, &s)| s == 1)
        .map(|(u, _)| u)
        .collect();
    assert!(!lost.is_empty());
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in next..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        let date = cube.start().add_days(d as i32);
        let day = damaged.ingest_day(date, &day_buf).unwrap().unwrap();
        assert!(pristine.ingest_day(date, &day_buf).unwrap().is_some());
        for scores in &day.scores {
            for (u, s) in scores.iter().enumerate() {
                if lost.contains(&u) {
                    assert!(s.is_nan(), "user {u} on the dead shard scored {s}");
                } else {
                    assert!(s.is_finite(), "live user {u} scored {s} on day {d}");
                }
            }
        }
    }
    // The daily critic still ranks the live users.
    let list = damaged.daily_investigation(2, 3);
    assert!(!list.is_empty());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_file_version_mismatch_quarantines_with_corrupt_checkpoint() {
    let dir = temp_dir("shardversion");
    let (_, _, _) = saved_engine(&dir, 34);
    let shard_file = dir.join("shard_002.json");
    let json = fs::read_to_string(&shard_file).unwrap();
    fs::write(&shard_file, json.replacen("\"version\":2", "\"version\":7", 1)).unwrap();

    let engine = ShardedEngine::load(&dir, 1).unwrap();
    let quarantined = engine.quarantined();
    assert_eq!(quarantined.len(), 1);
    match quarantined[0] {
        (2, AcobeError::Shard { shard: 2, source }) => {
            assert!(matches!(**source, AcobeError::CorruptCheckpoint(_)), "got {source:?}")
        }
        (i, other) => panic!("expected shard 2 CorruptCheckpoint, got shard {i}: {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn losing_every_shard_file_is_no_live_shards() {
    let dir = temp_dir("allgone");
    let (_, _, _) = saved_engine(&dir, 35);
    for i in 0..SHARDS {
        fs::remove_file(dir.join(format!("shard_{i:03}.json"))).unwrap();
    }
    let err = ShardedEngine::load(&dir, 1).unwrap_err();
    assert!(matches!(err, AcobeError::NoLiveShards), "got {err:?}");
    fs::remove_dir_all(&dir).ok();
}
