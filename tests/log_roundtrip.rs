//! Cross-crate integration: synthesized logs survive CSV export/import with
//! identical downstream features.

use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_logs::store::LogStore;
use acobe_synth::cert::{CertConfig, CertGenerator};

#[test]
fn csv_roundtrip_preserves_features() {
    let mut config = CertConfig::small(9);
    // Shrink the span so the test stays quick.
    config.end = config.start.add_days(30);
    config.scenarios.truncate(1);
    let users = config.org.total_users();
    let mut generator = CertGenerator::new(config.clone());
    let store = generator.build_store();

    let text = store.to_csv();
    let reparsed = LogStore::from_csv(&text).expect("reparse synthesized logs");
    assert_eq!(reparsed.len(), store.len());

    let a = extract_cert_features(&store, users, config.start, config.end, CountSemantics::Plain);
    let b =
        extract_cert_features(&reparsed, users, config.start, config.end, CountSemantics::Plain);
    assert_eq!(a, b, "features must be identical after a CSV roundtrip");
}

#[test]
fn enterprise_logs_roundtrip() {
    use acobe_synth::enterprise::{Attack, EnterpriseConfig, EnterpriseGenerator};
    let mut config = EnterpriseConfig::small(Attack::Zeus, 5);
    config.end = config.start.add_days(14);
    config.users = 6;
    config.victim = acobe_logs::ids::UserId(2);
    let mut generator = EnterpriseGenerator::new(config);
    let store = generator.build_store();
    let reparsed = LogStore::from_csv(&store.to_csv()).unwrap();
    assert_eq!(reparsed.len(), store.len());
    assert_eq!(reparsed.events()[0], store.events()[0]);
    assert_eq!(
        reparsed.events().last().unwrap(),
        store.events().last().unwrap()
    );
}
