//! Property tests for the incremental engine (DESIGN.md §7): replaying a
//! cube day-by-day through [`DetectionEngine`] must reproduce the batch
//! `score_range` bit for bit, across random org sizes and (ω, D,
//! min_history) combinations — and a JSON checkpoint/restore at any
//! mid-stream day must not change a single score.

use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::pipeline::AcobePipeline;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAYS: usize = 40;
const SPLIT: usize = 28;
const FRAMES: usize = 2;
const FEATURES: usize = 4;

fn random_cube(users: usize, seed: u64) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(users, Date::from_ymd(2010, 6, 1), DAYS, FRAMES, FEATURES);
    for u in 0..users {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn config(omega: usize, matrix_days: usize, min_history: usize, seed: u64) -> AcobeConfig {
    let mut cfg = AcobeConfig::tiny();
    cfg.deviation.window = omega;
    cfg.deviation.min_history = min_history;
    cfg.matrix.matrix_days = matrix_days;
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;
    cfg
}

proptest! {
    // Each case trains a (tiny) ensemble, so keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch scoring, a day-at-a-time stream, and a stream interrupted by a
    /// JSON checkpoint round-trip all produce identical scores.
    #[test]
    fn stream_checkpoint_and_batch_agree(
        users in 4usize..=8,
        omega in 4usize..=8,
        matrix_days in 1usize..=4,
        min_history_raw in 1usize..=4,
        checkpoint_offset in 0usize..(DAYS - SPLIT),
        seed in 0u64..1_000,
    ) {
        let min_history = min_history_raw.min(omega - 1);
        let cube = random_cube(users, seed);
        let start = cube.start();
        let split = start.add_days(SPLIT as i32);
        let end = start.add_days(DAYS as i32);
        let groups: Vec<Vec<usize>> =
            vec![(0..users / 2).collect(), (users / 2..users).collect()];

        let mut pipe = AcobePipeline::new(
            cube.clone(),
            feature_set(),
            &groups,
            config(omega, matrix_days, min_history, seed),
        )
        .unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        prop_assert_eq!(table.days(), DAYS - SPLIT);

        // Stream the same days through the engine, checkpointing mid-window.
        let mut engine = pipe.into_engine();
        engine.reset_stream();
        let checkpoint_day = SPLIT + checkpoint_offset;
        let mut restored: Option<DetectionEngine> = None;
        let mut day_buf = vec![0.0f32; cube.day_slice_len()];
        for d in 0..DAYS {
            cube.day_slice_into(d, &mut day_buf);
            let date = start.add_days(d as i32);
            if d < SPLIT {
                engine.warm_day(date, &day_buf).unwrap();
                continue;
            }
            let day = engine.ingest_day(date, &day_buf).unwrap().unwrap();
            prop_assert_eq!(day.date, date);
            for (aspect, errs) in day.scores.iter().enumerate() {
                prop_assert_eq!(
                    &table.scores[aspect][d - SPLIT],
                    errs,
                    "stream diverged from batch at aspect {} day {}",
                    aspect,
                    d
                );
            }
            if d == checkpoint_day {
                let json = serde_json::to_string(&engine.snapshot()).unwrap();
                let ck = serde_json::from_str(&json).unwrap();
                restored = Some(DetectionEngine::restore(ck).unwrap());
            }
            if d > checkpoint_day {
                let other = restored.as_mut().unwrap();
                let resumed = other.ingest_day(date, &day_buf).unwrap().unwrap();
                prop_assert_eq!(
                    &day,
                    &resumed,
                    "checkpoint restore diverged at day {}",
                    d
                );
            }
        }
        let restored = restored.unwrap();
        prop_assert_eq!(engine.next_date(), restored.next_date());
        prop_assert_eq!(engine.days_ingested(), restored.days_ingested());
        // The daily critic sees the same trailing score history on both.
        let a = engine.daily_investigation(2, 3);
        let b = restored.daily_investigation(2, 3);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.user, y.user);
            prop_assert_eq!(x.priority, y.priority);
        }
    }
}
