//! End-to-end integration: synthesize logs, extract features, train the
//! ensemble, and verify both insiders are surfaced.

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_features::spec::cert_feature_set;
use acobe_synth::cert::{CertConfig, CertGenerator};

fn groups_of(generator: &CertGenerator) -> Vec<Vec<usize>> {
    let dir = generator.directory();
    dir.departments()
        .map(|d| dir.members(d).iter().map(|u| u.index()).collect())
        .collect()
}

#[test]
fn acobe_surfaces_scenario1_insider() {
    // Keep only the scenario-1 insider: with 12-user departments a second
    // active insider shifts their whole group's average behavior (a real
    // small-group artifact), which is not what this test is about.
    let mut config = CertConfig::small(42);
    config.scenarios.retain(|p| {
        matches!(p.scenario, acobe_synth::scenario::InsiderScenario::Scenario1 { .. })
    });
    let mut generator = CertGenerator::new(config);
    let store = generator.build_store();
    let config = generator.config().clone();
    let cube = extract_cert_features(
        &store,
        config.org.total_users(),
        config.start,
        config.end,
        CountSemantics::Plain,
    );
    let groups = groups_of(&generator);
    let mut pipeline =
        AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny()).unwrap();

    // Scenario 1 anomalies start 2010-03-08 in the small config; train on
    // January + February, score March onward.
    let split = config.start.add_days(55);
    pipeline.fit(config.start, split).unwrap();
    let table = pipeline.score_range(split, config.end).unwrap();
    let list = table.investigation_list_smoothed(2, 3);

    let s1 = generator
        .ground_truth()
        .into_iter()
        .find(|v| v.scenario == "scenario1")
        .unwrap();
    let pos = list
        .iter()
        .position(|inv| inv.user == s1.user.index())
        .unwrap();
    assert!(
        pos < 3,
        "scenario-1 insider at position {} of {}: {list:?}",
        pos + 1,
        list.len()
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let mut generator = CertGenerator::new(CertConfig::small(7));
        let store = generator.build_store();
        let config = generator.config().clone();
        let cube = extract_cert_features(
            &store,
            config.org.total_users(),
            config.start,
            config.end,
            CountSemantics::Plain,
        );
        let groups = groups_of(&generator);
        let mut pipeline =
            AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny()).unwrap();
        let split = config.start.add_days(55);
        pipeline.fit(config.start, split).unwrap();
        let table = pipeline.score_range(split, config.end).unwrap();
        table.investigation_list(2)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must produce identical lists");
}

#[test]
fn scores_cover_every_user_and_day() {
    let mut generator = CertGenerator::new(CertConfig::small(3));
    let store = generator.build_store();
    let config = generator.config().clone();
    let users = config.org.total_users();
    let cube =
        extract_cert_features(&store, users, config.start, config.end, CountSemantics::Plain);
    let groups = groups_of(&generator);
    let mut pipeline =
        AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny()).unwrap();
    let split = config.start.add_days(55);
    pipeline.fit(config.start, split).unwrap();
    let table = pipeline.score_range(split, config.end).unwrap();

    assert_eq!(table.users, users);
    assert_eq!(table.days(), config.end.days_since(split) as usize);
    assert_eq!(table.aspect_names.len(), 3);
    for a in 0..3 {
        for d in 0..table.days() {
            let daily = table.daily(a, d);
            assert_eq!(daily.len(), users);
            assert!(daily.iter().all(|s| s.is_finite() && *s >= 0.0));
        }
    }
}
