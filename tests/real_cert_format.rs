//! Integration: real-CERT-format files flow through the same feature
//! extraction path as synthesized logs.

use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_logs::cert_io::CertDatasetFiles;
use acobe_logs::time::Date;

#[test]
fn real_format_files_feed_the_extractor() {
    let device = "\
id,date,user,pc,activity
{1},01/04/2010 08:00:00,DTAA/JPH1910,PC-1234,Connect
{2},01/04/2010 22:30:00,DTAA/JPH1910,PC-1234,Connect
{3},01/05/2010 09:00:00,DTAA/ACM2278,PC-9999,Connect";
    let http = "\
id,date,user,pc,url,activity
{4},01/04/2010 10:00:00,DTAA/JPH1910,PC-1234,http://jobs.example.com/resume.doc,WWW Upload
{5},01/05/2010 10:00:00,DTAA/JPH1910,PC-1234,http://jobs.example.com/resume.doc,WWW Upload
{6},01/05/2010 11:00:00,DTAA/ACM2278,PC-9999,http://news.example.com/index.html";
    let file = "\
id,date,user,pc,filename,activity,to_removable_media,from_removable_media
{7},01/04/2010 14:00:00,DTAA/JPH1910,PC-1234,C:\\docs\\secret.doc,File Copy,True,False";

    let mut ds = CertDatasetFiles::new();
    assert_eq!(ds.read_device(device).unwrap(), 3);
    assert_eq!(ds.read_http(http).unwrap(), 3);
    assert_eq!(ds.read_file(file).unwrap(), 1);
    let (store, interners, skipped) = ds.finish();
    assert_eq!(skipped, 0);
    assert_eq!(store.len(), 7);
    assert_eq!(interners.users.len(), 2);

    let start = Date::from_ymd(2010, 1, 4);
    let end = Date::from_ymd(2010, 1, 6);
    let cube = extract_cert_features(
        &store,
        interners.users.len(),
        start,
        end,
        CountSemantics::Plain,
    );

    let jph = interners.users.get("DTAA/JPH1910").unwrap() as usize;
    // Day 1: one working-hours connect (new host), one off-hours connect.
    assert_eq!(cube.get(jph, start, 0, 0), 1.0);
    assert_eq!(cube.get(jph, start, 1, 0), 1.0);
    assert_eq!(cube.get(jph, start, 0, 1), 1.0); // new host (working frame)
    // Upload-doc on both days; new-op only on the first.
    assert_eq!(cube.get(jph, start, 0, 9), 1.0);
    assert_eq!(cube.get(jph, start, 0, 15), 1.0);
    assert_eq!(cube.get(jph, start.add_days(1), 0, 15), 0.0);
    // The copy-to-removable lands in copy-local-to-remote.
    assert_eq!(cube.get(jph, start, 0, 6), 1.0);
}
