//! Property tests for the sharded engine (DESIGN.md §8): a
//! [`ShardedEngine`] with any shard count must reproduce the unsharded
//! [`DetectionEngine`] bit for bit — including after a mid-stream
//! save/load of the whole sharded checkpoint — across random org sizes
//! and interrupt days.

use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const DAYS: usize = 36;
const SPLIT: usize = 26;
const FRAMES: usize = 2;
const FEATURES: usize = 4;
/// Includes 1 (degenerate), powers of two, and a prime that leaves some
/// shards empty at small org sizes.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn random_cube(users: usize, seed: u64) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(users, Date::from_ymd(2011, 2, 1), DAYS, FRAMES, FEATURES);
    for u in 0..users {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn config(seed: u64) -> AcobeConfig {
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acobe_shard_it_{}_{tag}", std::process::id()))
}

proptest! {
    // Each case trains an ensemble and replays it through five engines, so
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every shard count scores bit-identically to the unsharded engine,
    /// and a sharded checkpoint saved and reloaded mid-stream continues
    /// bit-identically too.
    #[test]
    fn sharded_engines_match_the_monolith(
        users in 4usize..=8,
        checkpoint_offset in 0usize..(DAYS - SPLIT),
        seed in 0u64..1_000,
    ) {
        let cube = random_cube(users, seed);
        let start = cube.start();
        let split = start.add_days(SPLIT as i32);
        let groups: Vec<Vec<usize>> =
            vec![(0..users / 2).collect(), (users / 2..users).collect()];

        let mut pipe =
            AcobePipeline::new(cube.clone(), feature_set(), &groups, config(seed)).unwrap();
        pipe.fit(start, split).unwrap();
        let mut engine = pipe.into_engine();
        engine.reset_stream();

        // Duplicate the trained engine into one sharded replica per count
        // via its own checkpoint (snapshot → restore is bit-exact).
        let ck = engine.snapshot();
        let mut sharded: Vec<ShardedEngine> = SHARD_COUNTS
            .iter()
            .map(|&n| {
                let replica = DetectionEngine::restore(ck.clone()).unwrap();
                ShardedEngine::from_engine(replica, n).unwrap()
            })
            .collect();
        for (s, &n) in sharded.iter().zip(&SHARD_COUNTS) {
            prop_assert_eq!(s.shard_count(), n);
            prop_assert_eq!(s.live_users(), users);
            prop_assert!(s.is_trained());
        }

        let checkpoint_day = SPLIT + checkpoint_offset;
        let dir = temp_dir(&format!("{seed}_{users}_{checkpoint_offset}"));
        let mut reloaded: Option<ShardedEngine> = None;
        let mut day_buf = vec![0.0f32; cube.day_slice_len()];
        for d in 0..DAYS {
            cube.day_slice_into(d, &mut day_buf);
            let date = start.add_days(d as i32);
            if d < SPLIT {
                engine.warm_day(date, &day_buf).unwrap();
                for s in sharded.iter_mut() {
                    s.warm_day(date, &day_buf).unwrap();
                }
                continue;
            }
            let reference = engine.ingest_day(date, &day_buf).unwrap().unwrap();
            for (s, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                let day = s.ingest_day(date, &day_buf).unwrap().unwrap();
                prop_assert_eq!(
                    &reference,
                    &day,
                    "{} shards diverged from the monolith at day {}",
                    n,
                    d
                );
            }
            if let Some(r) = reloaded.as_mut() {
                let day = r.ingest_day(date, &day_buf).unwrap().unwrap();
                prop_assert_eq!(
                    &reference,
                    &day,
                    "reloaded sharded checkpoint diverged at day {}",
                    d
                );
            }
            if d == checkpoint_day {
                // Interrupt the 4-shard engine: save everything, reload
                // from disk, and resume alongside the originals.
                sharded[2].save(&dir).unwrap();
                let r = ShardedEngine::load(&dir, 1).unwrap();
                prop_assert!(r.quarantined().is_empty());
                prop_assert_eq!(r.shard_count(), SHARD_COUNTS[2]);
                prop_assert_eq!(r.next_date(), date.add_days(1));
                reloaded = Some(r);
            }
        }
        std::fs::remove_dir_all(&dir).ok();

        // The daily critic sees the same trailing score history everywhere.
        let reference = engine.daily_investigation(2, 3);
        for s in sharded.iter().chain(reloaded.iter()) {
            let list = s.daily_investigation(2, 3);
            prop_assert_eq!(reference.len(), list.len());
            for (x, y) in reference.iter().zip(&list) {
                prop_assert_eq!(x.user, y.user);
                prop_assert_eq!(x.priority, y.priority);
            }
        }
    }
}
