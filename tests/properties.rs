//! Cross-crate property-based tests on the pipeline's core invariants.

use acobe::critic::{investigation_list, scores_to_ranks};
use acobe::deviation::{compute_deviations, DeviationConfig};
use acobe::matrix::{build_row, MatrixConfig};
use acobe_eval::pr::PrCurve;
use acobe_eval::ranking::ScenarioRanking;
use acobe_eval::roc::RocCurve;
use acobe_features::counts::FeatureCube;
use acobe_logs::time::Date;
use proptest::prelude::*;

fn cube_from(values: &[f32], users: usize, days: usize) -> FeatureCube {
    let mut cube = FeatureCube::new(users, Date::from_ymd(2010, 1, 1), days, 2, 1);
    let mut it = values.iter().cycle();
    for u in 0..users {
        for d in 0..days {
            for t in 0..2 {
                cube.set_by_index(u, d, t, 0, *it.next().unwrap());
            }
        }
    }
    cube
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deviations are always within [-Δ, Δ] and weights within (0, 1].
    #[test]
    fn deviations_bounded(
        values in prop::collection::vec(0.0f32..200.0, 30..90),
        window in 3usize..20,
        delta in 1.0f32..6.0,
    ) {
        let cube = cube_from(&values, 2, 40);
        let cfg = DeviationConfig { window, delta, epsilon: 1e-3, min_history: 2.min(window - 1) };
        let dev = compute_deviations(&cube, &cfg);
        for u in 0..2 {
            for d in 0..40 {
                for t in 0..2 {
                    let s = dev.sigma.get_by_index(u, d, t, 0);
                    prop_assert!(s >= -delta && s <= delta, "sigma {s} outside ±{delta}");
                    let w = dev.weights.get_by_index(u, d, t, 0);
                    prop_assert!(w > 0.0 && w <= 1.0, "weight {w} outside (0,1]");
                }
            }
        }
    }

    /// Flattened matrix rows always live in [0, 1], with and without groups.
    #[test]
    fn matrix_rows_bounded(
        values in prop::collection::vec(0.0f32..100.0, 30..80),
        matrix_days in 1usize..12,
        include_group in any::<bool>(),
        use_weights in any::<bool>(),
    ) {
        let cube = cube_from(&values, 3, 30);
        let dev = compute_deviations(
            &cube,
            &DeviationConfig { window: 8, delta: 3.0, epsilon: 1e-3, min_history: 3 },
        );
        let cfg = MatrixConfig { matrix_days, include_group, use_weights, delta: 3.0 };
        let group = include_group.then(|| dev.clone());
        for day in [0usize, 10, 29] {
            let row = build_row(&dev, group.as_ref(), 1, 2, day, &[0], &cfg);
            prop_assert_eq!(row.len(), cfg.input_dim(1, 2));
            for &x in &row {
                prop_assert!((0.0..=1.0).contains(&x), "cell {x} outside [0,1]");
            }
        }
    }

    /// Ranks are a permutation-consistent mapping of scores: higher score
    /// never gets a numerically larger (worse-or-equal is allowed only for
    /// ties) rank.
    #[test]
    fn ranks_are_monotone(scores in prop::collection::vec(0.0f32..10.0, 2..60)) {
        let ranks = scores_to_ranks(&scores);
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] > scores[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
                if (scores[i] - scores[j]).abs() < f32::EPSILON {
                    prop_assert_eq!(ranks[i], ranks[j]);
                }
            }
        }
        // Best rank is always 1.
        prop_assert!(ranks.iter().any(|&r| r == 1));
    }

    /// The critic's priority is exactly the N-th smallest per-aspect rank.
    #[test]
    fn critic_priority_definition(
        ranks_a in prop::collection::vec(1usize..50, 8),
        ranks_b in prop::collection::vec(1usize..50, 8),
        ranks_c in prop::collection::vec(1usize..50, 8),
        n in 1usize..=3,
    ) {
        let aspects = vec![ranks_a.clone(), ranks_b.clone(), ranks_c.clone()];
        let list = investigation_list(&aspects, n);
        prop_assert_eq!(list.len(), 8);
        for inv in &list {
            let mut user_ranks =
                vec![ranks_a[inv.user], ranks_b[inv.user], ranks_c[inv.user]];
            user_ranks.sort_unstable();
            prop_assert_eq!(inv.priority, user_ranks[n - 1]);
        }
        // The list is sorted by priority.
        for pair in list.windows(2) {
            prop_assert!(pair[0].priority <= pair[1].priority);
        }
    }

    /// AUC and average precision are in [0, 1], and strictly better rankings
    /// never score worse.
    #[test]
    fn metric_sanity(
        fps in prop::collection::vec(0usize..50, 1..6),
        negatives in 50usize..500,
    ) {
        let ranking = ScenarioRanking::from_counts(fps.clone(), negatives);
        let auc = RocCurve::from_ranking(&ranking).auc();
        let ap = PrCurve::from_ranking(&ranking).average_precision();
        prop_assert!((0.0..=1.0).contains(&auc));
        prop_assert!((0.0..=1.0).contains(&ap));

        // Strictly dominating ranking (every TP earlier) is at least as good.
        let better: Vec<usize> = fps.iter().map(|&f| f.saturating_sub(1)).collect();
        let better_ranking = ScenarioRanking::from_counts(better, negatives);
        prop_assert!(RocCurve::from_ranking(&better_ranking).auc() >= auc);
        prop_assert!(
            PrCurve::from_ranking(&better_ranking).average_precision() >= ap - 1e-12
        );
    }

    /// CSV event records survive arbitrary timestamps and ids.
    #[test]
    fn csv_event_roundtrip(
        secs in 0i64..2_000_000_000,
        user in 0u32..10_000,
        domain in 0u32..1_000_000,
        success in any::<bool>(),
    ) {
        use acobe_logs::csv::{FromCsv, ToCsv};
        use acobe_logs::event::{HttpActivity, HttpEvent, FileType, LogEvent};
        let e = LogEvent::Http(HttpEvent {
            ts: acobe_logs::time::Timestamp::from_secs(secs),
            user: acobe_logs::ids::UserId(user),
            domain: acobe_logs::ids::DomainId(domain),
            activity: HttpActivity::Upload,
            filetype: FileType::Pdf,
            success,
        });
        let back = LogEvent::from_csv(&e.to_csv()).unwrap();
        prop_assert_eq!(back, e);
    }
}
