//! Integration tests for the live telemetry plane: the `/metrics` and
//! `/healthz` endpoints reflect real engine state mid-stream, and the
//! rolling drift monitor raises a typed `ScoreDrift` health event when the
//! score distribution shifts.
//!
//! Both tests share one process (and therefore the global registry, health
//! board, and event ring), so assertions are written to be insensitive to
//! the other test's traffic: the shard table is only ever written by the
//! sharded test, and drift events are drained from the engine under test,
//! not from the shared board.

use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use acobe_obs::serve::{http_get, serve};
use acobe_obs::{DriftConfig, HealthEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const DAYS: usize = 40;
const SPLIT: usize = 28;
const FRAMES: usize = 2;
const FEATURES: usize = 4;

fn random_cube(users: usize, seed: u64) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(users, Date::from_ymd(2012, 3, 1), DAYS, FRAMES, FEATURES);
    for u in 0..users {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn config(seed: u64) -> AcobeConfig {
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;
    cfg
}

/// Trains a tiny ensemble and hands back the streaming engine rewound to
/// the start of the cube, plus the cube itself.
fn trained_engine(users: usize, seed: u64) -> (DetectionEngine, FeatureCube) {
    let cube = random_cube(users, seed);
    let start = cube.start();
    let split = start.add_days(SPLIT as i32);
    let groups: Vec<Vec<usize>> =
        vec![(0..users / 2).collect(), (users / 2..users).collect()];
    let mut pipe =
        AcobePipeline::new(cube.clone(), feature_set(), &groups, config(seed)).unwrap();
    pipe.fit(start, split).unwrap();
    let mut engine = pipe.into_engine();
    engine.reset_stream();
    (engine, cube)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acobe_telemetry_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn telemetry_server_reflects_engine_state() {
    let users = 8;
    let (engine, cube) = trained_engine(users, 41);
    let start = cube.start();
    let mut sharded = ShardedEngine::from_engine(engine, 3).unwrap();

    let server = serve("127.0.0.1:0").expect("bind ephemeral telemetry port");
    let addr = server.addr().to_string();

    // Stream the warm-up window and a few scored days with the server up.
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in 0..SPLIT + 4 {
        cube.day_slice_into(d, &mut day_buf);
        let date = start.add_days(d as i32);
        if d < SPLIT {
            sharded.warm_day(date, &day_buf).unwrap();
        } else {
            let scores = sharded.ingest_day(date, &day_buf).unwrap().unwrap();
            assert_eq!(scores.date, date);
        }
    }

    // Mid-stream scrape: valid Prometheus exposition with per-shard labeled
    // gauges matching the engine's actual user assignment.
    let (status, body) = http_get(&addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    let samples = acobe_obs::prometheus::validate(&body).expect("exposition validates");
    assert!(samples > 0);
    let mut per_shard = vec![0usize; 3];
    for &s in sharded.assignment() {
        per_shard[s as usize] += 1;
    }
    for (i, &n) in per_shard.iter().enumerate() {
        let users_series = format!("engine_shard_users{{shard=\"{i}\"}} {n}");
        assert!(body.contains(&users_series), "missing {users_series} in:\n{body}");
        let live_series = format!("engine_shard_live{{shard=\"{i}\"}} 1");
        assert!(body.contains(&live_series), "missing {live_series} in:\n{body}");
    }
    assert!(body.contains("engine_ingest_ms_bucket"), "{body}");
    assert!(body.contains("engine_score_quantile{"), "{body}");

    // Healthy /healthz: three live shards.
    let (status, body) = http_get(&addr, "/healthz").expect("scrape /healthz");
    assert_eq!(status, 200);
    let doc: serde_json::Value = serde_json::from_str(&body).expect("healthz is JSON");
    assert_eq!(doc["status"], "ok", "{body}");
    let shards = doc["shards"].as_array().expect("shard table");
    assert_eq!(shards.len(), 3);
    assert!(shards.iter().all(|s| s["live"] == true), "{body}");

    // The event stream carries the per-day trace notes.
    let (status, events) = http_get(&addr, "/events?n=4096").expect("scrape /events");
    assert_eq!(status, 200);
    assert!(events.contains("engine/day"), "{events}");

    // Corrupt one shard's checkpoint file; the reloaded engine must
    // quarantine it and /healthz must go degraded with the reason.
    let dir = temp_dir("quarantine");
    sharded.save(&dir).unwrap();
    let victim = dir.join("shard_001.acb");
    let full = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &full[..full.len() / 2]).unwrap();
    let degraded = ShardedEngine::load(&dir, 0).unwrap();
    assert_eq!(degraded.quarantined().len(), 1);

    let (status, body) = http_get(&addr, "/healthz").expect("scrape degraded /healthz");
    assert_eq!(status, 200);
    let doc: serde_json::Value = serde_json::from_str(&body).expect("healthz is JSON");
    assert_eq!(doc["status"], "degraded", "{body}");
    let shards = doc["shards"].as_array().expect("shard table");
    assert_eq!(shards[1]["live"], false, "{body}");
    assert!(shards[1]["error"].is_string(), "{body}");
    assert!(body.contains("shard_quarantined"), "{body}");

    // And the labeled liveness gauge follows.
    let (_, body) = http_get(&addr, "/metrics").expect("rescrape /metrics");
    assert!(body.contains("engine_shard_live{shard=\"1\"} 0"), "{body}");
    acobe_obs::prometheus::validate(&body).expect("degraded exposition still validates");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn score_drift_raises_health_event() {
    let users = 6;
    let (mut engine, cube) = trained_engine(users, 17);
    let start = cube.start();
    engine.set_drift_config(DriftConfig { window: 5, min_days: 3, ratio: 1.5, ..DriftConfig::default() });

    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    let chunk = FRAMES * FEATURES;
    let mut drift_events = Vec::new();
    for d in 0..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        let date = start.add_days(d as i32);
        if d < SPLIT {
            engine.warm_day(date, &day_buf).unwrap();
            continue;
        }
        // From day SPLIT+6 on, user 0's measurements explode 100x — the
        // reconstruction-error distribution's upper quantiles must follow.
        if d >= SPLIT + 6 {
            for v in &mut day_buf[0..chunk] {
                *v *= 100.0;
            }
        }
        engine.ingest_day(date, &day_buf).unwrap().unwrap();
        // Only drift raised during the shifted period counts: two-epoch
        // models can be noisy enough to trip the (deliberately tight) 1.5x
        // threshold on a quiet day, and that must not mask the real signal.
        if d >= SPLIT + 6 {
            drift_events.extend(
                engine.take_health_events().into_iter().filter(|e| e.kind() == "score_drift"),
            );
        } else {
            engine.take_health_events();
        }
    }
    let worst = drift_events
        .iter()
        .map(|e| match e {
            HealthEvent::ScoreDrift { ratio, .. } => *ratio,
            _ => 0.0,
        })
        .fold(0.0f64, f64::max);
    assert!(
        worst > 10.0,
        "a 100x measurement shift should move a quantile far beyond the 1.5x \
         threshold, got worst ratio {worst} from {drift_events:?}"
    );
}
