//! End-to-end equivalence of the raw-log ingest frontend (DESIGN.md §11):
//! feeding raw CSV bytes through `acobe_ingest` into the engine must
//! reproduce the `DayMeasurements` path bit for bit — same per-day feature
//! vectors, same day scores, same investigation lists, same alert-log
//! bytes — at every thread count, chunk size and shard count, including
//! across a mid-stream checkpoint + resume.

use acobe::alert::{AlertLog, AlertPolicy};
use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::cert::{extract_cert_features, CountSemantics, DayExtractor};
use acobe_features::spec::cert_feature_set;
use acobe_ingest::IngestConfig;
use acobe_logs::event::LogEvent;
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;
use acobe_synth::cert::{CertConfig, CertGenerator};
use std::collections::HashMap;
use std::io::Cursor;
use std::path::PathBuf;

const SPAN_DAYS: i32 = 40;
const SPLIT_DAYS: i32 = 28;

fn dataset() -> (LogStore, usize, Vec<Vec<usize>>, Date, Date) {
    let mut config = CertConfig::small(11);
    config.end = config.start.add_days(SPAN_DAYS);
    let users = config.org.total_users();
    let per = config.org.users_per_dept;
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks(per)
        .map(|c| c.to_vec())
        .collect();
    let (start, end) = (config.start, config.end);
    let store = CertGenerator::new(config).build_store();
    (store, users, groups, start, end)
}

/// Collects the per-day batches `ingest_events` produces from raw bytes.
fn batches(raw: &str, threads: usize, chunk_bytes: usize) -> HashMap<Date, Vec<LogEvent>> {
    let config = IngestConfig {
        threads,
        chunk_bytes,
        queue_depth: 4,
        ..Default::default()
    };
    let mut out = HashMap::new();
    let stats = acobe_ingest::ingest_events(Cursor::new(raw.as_bytes()), &config, |batch| {
        assert!(
            out.insert(batch.date, batch.events).is_none(),
            "duplicate day batch"
        );
        Ok::<(), std::convert::Infallible>(())
    })
    .expect("ingest raw fixture");
    assert_eq!(stats.parse_errors, 0);
    assert_eq!(stats.records, stats.events);
    out
}

fn model_config() -> AcobeConfig {
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = 11;
    cfg
}

fn policy() -> AlertPolicy {
    // Aggressive thresholds so the comparison has real alert traffic.
    AlertPolicy {
        watch_top_n: 5,
        rank_jump_min: 1,
        cooldown_days: 2,
        rule_z: 3.0,
        top_k_features: 3,
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acobe_ingest_eq_{}_{tag}", std::process::id()))
}

/// The raw-CSV front end reproduces the batch extractor's feature cube
/// exactly, for every parallelism and chunking choice.
#[test]
fn raw_batches_rebuild_the_feature_cube() {
    let (store, users, _, start, end) = dataset();
    let raw = store.to_csv();
    let cube = extract_cert_features(&store, users, start, end, CountSemantics::Plain);
    let mut expected = vec![0.0f32; cube.day_slice_len()];
    for (threads, chunk_bytes) in [(1, 1 << 20), (2, 4096), (4, 1 << 16)] {
        let days = batches(&raw, threads, chunk_bytes);
        let mut extractor = DayExtractor::new(users, start, CountSemantics::Plain);
        for (d, date) in start.range_to(end).enumerate() {
            let empty = Vec::new();
            let events = days.get(&date).unwrap_or(&empty);
            let flat = extractor.ingest_day(date, events).expect("in-order day");
            cube.day_slice_into(d, &mut expected);
            assert_eq!(
                flat, expected,
                "day {date} measurements diverged at {threads} threads / {chunk_bytes}-byte chunks"
            );
        }
    }
}

struct RunOutput {
    /// JSON of each scored day's investigation list, in day order.
    daily: Vec<String>,
    log: PathBuf,
}

/// Replays one engine replica over the span, warming before `split` and
/// scoring after, appending raised alerts to `log_path`.
fn run_events(
    engine: &mut ShardedEngine,
    extractor: &mut DayExtractor,
    days: &HashMap<Date, Vec<LogEvent>>,
    from: Date,
    end: Date,
    split: Date,
    log: &AlertLog,
) -> Vec<String> {
    let mut daily = Vec::new();
    let empty = Vec::new();
    for date in from.range_to(end) {
        let events = days.get(&date).unwrap_or(&empty);
        if date < split {
            engine
                .warm_day_events(extractor, date, events)
                .expect("warm");
        } else {
            let scores = engine
                .ingest_day_events(extractor, date, events)
                .expect("score");
            assert!(scores.is_some(), "scored day produced no scores");
            daily
                .push(serde_json::to_string(&engine.daily_investigation(2, 3)).expect("serialize"));
            log.append_raised(&engine.take_alerts())
                .expect("append alerts");
        }
    }
    daily
}

/// Raw ingest matches the measurements path at shards 1 and 4, and a
/// mid-stream checkpoint + resume of the ingest-fed engine continues
/// bit-identically (same lists, same alert-log bytes).
#[test]
fn raw_ingest_matches_measurements_path_and_resumes() {
    let (store, users, groups, start, end) = dataset();
    let raw = store.to_csv();
    let split = start.add_days(SPLIT_DAYS);

    let cube = extract_cert_features(&store, users, start, end, CountSemantics::Plain);
    let mut pipe =
        AcobePipeline::new(cube.clone(), cert_feature_set(), &groups, model_config()).unwrap();
    pipe.fit(start, split).unwrap();
    let mut engine = pipe.into_engine();
    engine.reset_stream();
    let ck = engine.snapshot();
    let replica = |shards: usize| {
        let mut e =
            ShardedEngine::from_engine(DetectionEngine::restore(ck.clone()).unwrap(), shards)
                .unwrap();
        e.set_alert_policy(Some(policy()));
        e
    };

    // Reference: the measurements path — cube day slices into one shard.
    let reference = {
        let mut engine = replica(1);
        let log_path = temp_path("ref.jsonl");
        let log = AlertLog::open(&log_path, None).unwrap();
        let mut day = vec![0.0f32; cube.day_slice_len()];
        let mut daily = Vec::new();
        for (d, date) in start.range_to(end).enumerate() {
            cube.day_slice_into(d, &mut day);
            if date < split {
                engine.warm_day(date, &day).unwrap();
            } else {
                assert!(engine.ingest_day(date, &day).unwrap().is_some());
                daily.push(serde_json::to_string(&engine.daily_investigation(2, 3)).unwrap());
                log.append_raised(&engine.take_alerts()).unwrap();
            }
        }
        RunOutput {
            daily,
            log: log_path,
        }
    };
    assert!(!reference.daily.is_empty());
    let reference_log = std::fs::read(&reference.log).unwrap();

    // Raw-fed replicas: shard count x (threads, chunk size) variations.
    for (shards, threads, chunk_bytes) in [(1, 1, 1 << 20), (1, 4, 4096), (4, 4, 1 << 20)] {
        let days = batches(&raw, threads, chunk_bytes);
        let mut engine = replica(shards);
        let mut extractor = DayExtractor::new(users, start, CountSemantics::Plain);
        let log_path = temp_path(&format!("s{shards}_t{threads}_c{chunk_bytes}.jsonl"));
        let log = AlertLog::open(&log_path, None).unwrap();
        let daily = run_events(&mut engine, &mut extractor, &days, start, end, split, &log);
        assert_eq!(
            reference.daily, daily,
            "ingest path diverged at {shards} shards / {threads} threads"
        );
        assert_eq!(
            reference_log,
            std::fs::read(&log_path).unwrap(),
            "alert log bytes diverged at {shards} shards / {threads} threads"
        );
        std::fs::remove_file(&log_path).ok();
    }

    // Interrupt/resume: run the 4-shard raw-fed engine to a mid-scoring
    // checkpoint, reload from disk, and finish from the saved extractor —
    // exactly what `acobe ingest --checkpoint` + `--resume` do.
    let days = batches(&raw, 4, 1 << 20);
    let checkpoint_date = split.add_days(4);
    let dir = temp_path("ck");
    let log_path = temp_path("resume.jsonl");
    let mut daily = {
        let mut engine = replica(4);
        let mut extractor = DayExtractor::new(users, start, CountSemantics::Plain);
        let log = AlertLog::open(&log_path, None).unwrap();
        let daily = run_events(
            &mut engine,
            &mut extractor,
            &days,
            start,
            checkpoint_date,
            split,
            &log,
        );
        engine.save(&dir).unwrap();
        daily
    };
    let mut engine = ShardedEngine::load(&dir, 1).unwrap();
    assert!(engine.quarantined().is_empty());
    assert_eq!(engine.next_date(), checkpoint_date);
    engine.set_alert_policy(Some(policy()));
    // The sidecar state a resume restores: an extractor advanced to the
    // same day (rebuilt here by replaying, as the CLI restores from JSON).
    let mut extractor = DayExtractor::new(users, start, CountSemantics::Plain);
    let empty = Vec::new();
    for date in start.range_to(checkpoint_date) {
        extractor
            .ingest_day(date, days.get(&date).unwrap_or(&empty))
            .unwrap();
    }
    let log = AlertLog::open(&log_path, Some(engine.alert_next_seq())).unwrap();
    daily.extend(run_events(
        &mut engine,
        &mut extractor,
        &days,
        checkpoint_date,
        end,
        split,
        &log,
    ));
    assert_eq!(
        reference.daily, daily,
        "resumed ingest run diverged from the reference"
    );
    assert_eq!(
        reference_log,
        std::fs::read(&log_path).unwrap(),
        "resumed alert log bytes diverged"
    );

    std::fs::remove_file(&reference.log).ok();
    std::fs::remove_file(&log_path).ok();
    std::fs::remove_dir_all(&dir).ok();
}
