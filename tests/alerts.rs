//! Integration tests for the alerting plane: a planted anomalous user
//! raises an alert whose evidence bundle names the planted aspect, the
//! append-only alert log is bit-identical across shard counts and across an
//! interrupt/resume, and the live `/alerts` endpoint serves and filters the
//! alerts an engine raised.
//!
//! All tests share one process (and therefore the global alert board), so
//! endpoint assertions are written to be insensitive to the other tests'
//! alerts: this file gives the endpoint test a unique date range (2013-*)
//! and filters on it, rather than assuming the board is otherwise empty.

use acobe::alert::{AlertLog, AlertLogEntry, AlertPolicy};
use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use acobe_obs::serve::{http_get, serve};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const DAYS: usize = 40;
const SPLIT: usize = 28;
const FRAMES: usize = 2;
const FEATURES: usize = 4;

fn random_cube(users: usize, seed: u64, start: Date) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(users, start, DAYS, FRAMES, FEATURES);
    for u in 0..users {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn config(seed: u64) -> AcobeConfig {
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;
    cfg
}

/// Trains a tiny ensemble and hands back the streaming engine rewound to
/// the start of the cube, plus the cube itself. Training is seeded and
/// deterministic, so two calls with the same arguments yield identical
/// engines — the bit-identity test leans on that.
fn trained_engine(users: usize, seed: u64, start: Date) -> (DetectionEngine, FeatureCube) {
    let cube = random_cube(users, seed, start);
    let split = start.add_days(SPLIT as i32);
    let groups: Vec<Vec<usize>> =
        vec![(0..users / 2).collect(), (users / 2..users).collect()];
    let mut pipe =
        AcobePipeline::new(cube.clone(), feature_set(), &groups, config(seed)).unwrap();
    pipe.fit(start, split).unwrap();
    let mut engine = pipe.into_engine();
    engine.reset_stream();
    (engine, cube)
}

/// Multiplies the aspect-"first" features (0 and 1) of `user` by `factor`
/// in a day buffer laid out `[(user * FRAMES + t) * FEATURES + f]`.
fn boost_first_aspect(buf: &mut [f32], user: usize, factor: f32) {
    for t in 0..FRAMES {
        for f in 0..2 {
            buf[(user * FRAMES + t) * FEATURES + f] *= factor;
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acobe_alerts_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn planted_anomaly_raises_alert_with_aspect_evidence() {
    let users = 8;
    let start = Date::from_ymd(2012, 3, 1);
    let (mut engine, cube) = trained_engine(users, 73, start);
    // Watch everyone so the planted user cannot hide below the watchlist;
    // the trigger is then either a rank jump or a rule hit on a deviation
    // cell — a 30x blowup clears both thresholds by a wide margin.
    engine.set_alert_policy(Some(AlertPolicy {
        watch_top_n: users,
        rank_jump_min: 3,
        cooldown_days: 1,
        rule_z: 4.0,
        top_k_features: 4,
    }));

    let plant_from = SPLIT + 3;
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    let mut planted_alerts = Vec::new();
    let mut all = Vec::new();
    for d in 0..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        if d >= plant_from {
            boost_first_aspect(&mut day_buf, 5, 30.0);
        }
        let date = start.add_days(d as i32);
        if d < SPLIT {
            engine.warm_day(date, &day_buf).unwrap();
            continue;
        }
        engine.ingest_day(date, &day_buf).unwrap().unwrap();
        let alerts = engine.take_alerts();
        if d >= plant_from {
            planted_alerts.extend(alerts.iter().filter(|a| a.user == Some(5)).cloned());
        }
        all.extend(alerts);
    }
    assert!(
        !planted_alerts.is_empty(),
        "a 30x feature blowup should raise at least one alert for user 5, \
         got alerts {all:?}"
    );

    // The evidence bundle attributes the alert to the planted aspect: the
    // boosted features live in aspect "first", so it must appear among the
    // top contributing deviation cells.
    let names_first = planted_alerts.iter().any(|a| {
        a.evidence
            .as_ref()
            .is_some_and(|e| e.top_features.iter().any(|c| c.aspect == "first"))
    });
    assert!(
        names_first,
        "no planted-period alert names aspect 'first' in its evidence: \
         {planted_alerts:?}"
    );
    let ev = planted_alerts.iter().find_map(|a| a.evidence.as_ref()).unwrap();
    assert_eq!(ev.aspects.len(), 2, "per-aspect context covers every aspect");
    assert!(ev.window_days > 0);
    assert!(!ev.top_features.is_empty() && ev.top_features.len() <= 4);

    // Sequences are gap-free from 0 and ids derive from them.
    for (i, a) in all.iter().enumerate() {
        assert_eq!(a.seq, i as u64);
        assert_eq!(a.id, format!("al-{:06}", a.seq));
    }
}

#[test]
fn alert_log_is_bit_identical_across_shards_and_resume() {
    fn planted(cube: &FeatureCube, d: usize, buf: &mut [f32]) {
        cube.day_slice_into(d, buf);
        if d >= SPLIT + 2 {
            boost_first_aspect(buf, 4, 20.0);
        }
    }

    /// Streams cube days `from..to`, appending every raised alert.
    fn stream_span(
        eng: &mut ShardedEngine,
        log: &AlertLog,
        cube: &FeatureCube,
        from: usize,
        to: usize,
    ) {
        let start = cube.start();
        let mut buf = vec![0.0f32; cube.day_slice_len()];
        for d in from..to {
            planted(cube, d, &mut buf);
            let date = start.add_days(d as i32);
            if d < SPLIT {
                eng.warm_day(date, &buf).unwrap();
            } else {
                eng.ingest_day(date, &buf).unwrap().unwrap();
                log.append_raised(&eng.take_alerts()).unwrap();
            }
        }
    }

    let users = 9;
    let start = Date::from_ymd(2012, 3, 1);
    let (engine_a, cube) = trained_engine(users, 91, start);
    let (engine_b, _) = trained_engine(users, 91, start);
    let policy = AlertPolicy {
        watch_top_n: 6,
        rank_jump_min: 2,
        cooldown_days: 1,
        rule_z: 3.0,
        top_k_features: 3,
    };

    let base = temp_dir("logs");
    std::fs::create_dir_all(&base).unwrap();
    let path_a = base.join("a.jsonl");
    let path_b = base.join("b.jsonl");
    let path_c = base.join("c.jsonl");
    let ck = base.join("ck");

    // Stream A: one shard, straight through.
    let mut a = ShardedEngine::from_engine(engine_a, 1).unwrap();
    a.set_alert_policy(Some(policy.clone()));
    let log_a = AlertLog::open(&path_a, None).unwrap();
    stream_span(&mut a, &log_a, &cube, 0, DAYS);

    // Stream B: four shards; checkpoint mid-stream, then keep going.
    let mut b = ShardedEngine::from_engine(engine_b, 4).unwrap();
    b.set_alert_policy(Some(policy.clone()));
    let log_b = AlertLog::open(&path_b, None).unwrap();
    stream_span(&mut b, &log_b, &cube, 0, SPLIT + 5);
    b.save(&ck).unwrap();
    stream_span(&mut b, &log_b, &cube, SPLIT + 5, SPLIT + 7);
    // What a crash would leave behind: a log holding alerts raised *after*
    // the checkpoint was written.
    std::fs::copy(&path_b, &path_c).unwrap();
    stream_span(&mut b, &log_b, &cube, SPLIT + 7, DAYS);

    // Stream C: resume the checkpoint against the stale log copy. Opening
    // with the checkpoint's high-water mark prunes the post-checkpoint tail;
    // replay re-raises those alerts byte-for-byte.
    let mut c = ShardedEngine::load(&ck, 0).unwrap();
    c.set_alert_policy(Some(policy));
    let log_c = AlertLog::open(&path_c, Some(c.alert_next_seq())).unwrap();
    let resume_day = c.next_date().days_since(start) as usize;
    assert_eq!(resume_day, SPLIT + 5);
    stream_span(&mut c, &log_c, &cube, resume_day, DAYS);

    let bytes_a = std::fs::read(&path_a).unwrap();
    let bytes_b = std::fs::read(&path_b).unwrap();
    let bytes_c = std::fs::read(&path_c).unwrap();
    assert!(!bytes_a.is_empty(), "the touchy policy should raise alerts");
    assert_eq!(bytes_a, bytes_b, "shard count changed the alert log");
    assert_eq!(bytes_b, bytes_c, "interrupt/resume changed the alert log");

    // Raised sequences are contiguous from 0: no gaps, no duplicates.
    let entries = AlertLog::read_entries(&path_a).unwrap();
    let seqs: Vec<u64> = entries
        .iter()
        .filter_map(|e| match e {
            AlertLogEntry::Raised { alert } => Some(alert.seq),
            _ => None,
        })
        .collect();
    assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn alerts_endpoint_serves_engine_raised_alerts() {
    let users = 6;
    // A date range unique to this test; the global alert board is shared
    // with the other tests in this binary.
    let start = Date::from_ymd(2013, 7, 1);
    let (mut engine, cube) = trained_engine(users, 57, start);
    engine.set_alert_policy(Some(AlertPolicy {
        watch_top_n: users,
        rank_jump_min: 2,
        cooldown_days: 1,
        rule_z: 3.0,
        top_k_features: 3,
    }));

    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in 0..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        if d >= SPLIT + 1 {
            boost_first_aspect(&mut day_buf, 3, 25.0);
        }
        let date = start.add_days(d as i32);
        if d < SPLIT {
            engine.warm_day(date, &day_buf).unwrap();
        } else {
            engine.ingest_day(date, &day_buf).unwrap().unwrap();
            // Raising publishes to the global board even when the stream
            // drains its queue — the endpoint reads the board, not the log.
            engine.take_alerts();
        }
    }

    let server = serve("127.0.0.1:0").expect("bind ephemeral telemetry port");
    let addr = server.addr().to_string();

    let (status, body) = http_get(&addr, "/alerts").expect("GET /alerts");
    assert_eq!(status, 200);
    let all: Vec<serde_json::Value> = serde_json::from_str(&body).expect("alerts JSON");
    assert!(
        all.iter().any(|a| a["day"].as_str().unwrap_or("").starts_with("2013-")),
        "no alert from this engine on the board: {body}"
    );

    // User filter: every returned alert is about user 3, and the planted
    // anomaly put at least one of this engine's there.
    let (status, body) = http_get(&addr, "/alerts?user=3").expect("GET /alerts?user=3");
    assert_eq!(status, 200);
    let filtered: Vec<serde_json::Value> = serde_json::from_str(&body).unwrap();
    assert!(filtered.iter().all(|a| a["user"] == 3), "{body}");
    assert!(
        filtered.iter().any(|a| a["day"].as_str().unwrap_or("").starts_with("2013-")),
        "{body}"
    );

    // Status filter: nothing in this process ever leaves 'new'.
    let (status, body) = http_get(&addr, "/alerts?status=resolved").unwrap();
    assert_eq!(status, 200);
    let resolved: Vec<serde_json::Value> = serde_json::from_str(&body).unwrap();
    assert!(resolved.iter().all(|a| a["status"] == "resolved"), "{body}");

    // Malformed parameters are a 400 with a JSON error, not a fallback.
    for path in ["/alerts?since=abc", "/alerts?user=-1", "/alerts?status=bogus"] {
        let (status, body) = http_get(&addr, path).unwrap();
        assert_eq!(status, 400, "{path} -> {body}");
        let err: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(err["error"].is_string(), "{body}");
    }

    server.shutdown();
}
