//! v3 binary checkpoint equivalence (DESIGN.md §12): migration from the v2
//! JSON layout, quantized-history round-trips, and interrupted delta-chain
//! resume must all be *bit-identical* to an engine that never stopped.

use acobe::checkpoint::{CheckpointFormat, CheckpointOptions, SaveKind};
use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::{AspectSpec, FeatureSet};
use acobe_logs::time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

const DAYS: usize = 32;
const SPLIT: usize = 24;
const FRAMES: usize = 2;
const FEATURES: usize = 4;
const USERS: usize = 9;
const SHARDS: usize = 3;

fn random_cube(seed: u64) -> FeatureCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cube = FeatureCube::new(USERS, Date::from_ymd(2013, 2, 1), DAYS, FRAMES, FEATURES);
    for u in 0..USERS {
        let base: f32 = rng.gen_range(2.0..8.0);
        for d in 0..DAYS {
            for t in 0..FRAMES {
                for f in 0..FEATURES {
                    let noise: f32 = rng.gen_range(-1.5..1.5);
                    cube.set_by_index(u, d, t, f, (base + f as f32 + noise).max(0.0));
                }
            }
        }
    }
    cube
}

fn feature_set() -> FeatureSet {
    FeatureSet {
        names: (0..FEATURES).map(|f| format!("f{f}")).collect(),
        aspects: vec![
            AspectSpec { name: "first".into(), features: vec![0, 1] },
            AspectSpec { name: "second".into(), features: vec![2, 3] },
        ],
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acobe_ckv3_{}_{tag}", std::process::id()))
}

/// Trains a 3-shard engine on the first SPLIT days and streams one scored
/// day; the caller decides what to save where.
fn streamed_engine(seed: u64) -> (FeatureCube, ShardedEngine, usize) {
    let cube = random_cube(seed);
    let start = cube.start();
    let split = start.add_days(SPLIT as i32);
    let groups: Vec<Vec<usize>> = (0..SHARDS).map(|g| (g * 3..g * 3 + 3).collect()).collect();
    let mut cfg = AcobeConfig::tiny();
    cfg.encoder_dims = vec![8];
    cfg.train.epochs = 2;
    cfg.max_train_samples = 200;
    cfg.seed = seed;

    let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups, cfg).unwrap();
    pipe.fit(start, split).unwrap();
    let mut engine = pipe.into_engine();
    engine.reset_stream();
    let mut engine = ShardedEngine::from_engine(engine, SHARDS).unwrap();

    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    for d in 0..=SPLIT {
        cube.day_slice_into(d, &mut day_buf);
        let date = start.add_days(d as i32);
        if d < SPLIT {
            engine.warm_day(date, &day_buf).unwrap();
        } else {
            assert!(engine.ingest_day(date, &day_buf).unwrap().is_some());
        }
    }
    (cube, engine, SPLIT + 1)
}

/// Feeds days `[from, DAYS)` into `engine`, returning every score bit
/// pattern in ingestion order.
fn drain_scores(engine: &mut ShardedEngine, cube: &FeatureCube, from: usize) -> Vec<u32> {
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    let mut bits = Vec::new();
    for d in from..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        let date = cube.start().add_days(d as i32);
        let day = engine.ingest_day(date, &day_buf).unwrap().unwrap();
        for scores in &day.scores {
            bits.extend(scores.iter().map(|s| s.to_bits()));
        }
    }
    bits
}

/// Total bytes across every regular file directly inside `dir`.
fn dir_bytes(dir: &Path) -> u64 {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// Asserts that two v3 checkpoint directories hold byte-identical engine
/// state (manifest + every shard file).
fn assert_same_snapshot(a: &Path, b: &Path) {
    let mut files = vec!["manifest.acb".to_string()];
    files.extend((0..SHARDS).map(|i| format!("shard_{i:03}.acb")));
    for file in files {
        assert_eq!(
            fs::read(a.join(&file)).unwrap(),
            fs::read(b.join(&file)).unwrap(),
            "{file} diverged"
        );
    }
}

#[test]
fn quantized_round_trip_scores_are_bit_identical() {
    let dir = temp_dir("roundtrip");
    fs::remove_dir_all(&dir).ok();
    let (cube, mut stayed, next) = streamed_engine(51);
    stayed.save(&dir).unwrap();
    let mut resumed = ShardedEngine::load(&dir, 1).unwrap();
    assert!(resumed.quarantined().is_empty());
    // Certified-lossless quantization: the restored engine must score every
    // remaining day with exactly the same bits as the one that never left
    // memory — NaN payloads and signed zeros included.
    assert_eq!(
        drain_scores(&mut resumed, &cube, next),
        drain_scores(&mut stayed, &cube, next)
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_to_v3_migration_is_bit_identical() {
    let dir_v2 = temp_dir("mig_v2");
    let dir_v3 = temp_dir("mig_v3");
    let dir_a = temp_dir("mig_final_a");
    let dir_b = temp_dir("mig_final_b");
    for d in [&dir_v2, &dir_v3, &dir_a, &dir_b] {
        fs::remove_dir_all(d).ok();
    }
    let (cube, mut stayed, next) = streamed_engine(52);
    stayed.save_v2(&dir_v2).unwrap();
    // Upgrade on load: read the v2 JSON once, rewrite as v3 binary.
    let mut migrated = ShardedEngine::load(&dir_v2, 1).unwrap();
    assert!(migrated.quarantined().is_empty());
    migrated.save(&dir_v3).unwrap();
    // A fresh engine resumed from the migrated v3 dir scores identically to
    // the engine that never checkpointed at all.
    let mut resumed = ShardedEngine::load(&dir_v3, 1).unwrap();
    assert_eq!(
        drain_scores(&mut resumed, &cube, next),
        drain_scores(&mut stayed, &cube, next)
    );
    // And the final serialized states agree byte for byte.
    resumed.save(&dir_a).unwrap();
    stayed.save(&dir_b).unwrap();
    assert_same_snapshot(&dir_a, &dir_b);
    for d in [&dir_v2, &dir_v3, &dir_a, &dir_b] {
        fs::remove_dir_all(d).ok();
    }
}

#[test]
fn interrupted_delta_chain_resume_matches_uninterrupted() {
    let dir = temp_dir("chain");
    let dir_a = temp_dir("chain_final_a");
    let dir_b = temp_dir("chain_final_b");
    for d in [&dir, &dir_a, &dir_b] {
        fs::remove_dir_all(d).ok();
    }
    let (cube, mut stayed, next) = streamed_engine(53);
    let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 8 };

    // The checkpointing run: full snapshot, then a delta after every day.
    assert_eq!(stayed.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Full);
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    let mid = next + 2;
    for d in next..mid {
        cube.day_slice_into(d, &mut day_buf);
        stayed.ingest_day(cube.start().add_days(d as i32), &day_buf).unwrap();
        assert_eq!(stayed.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Delta);
    }
    // Interrupt: a new process resumes mid-chain and keeps appending deltas
    // to the same directory.
    let mut resumed = ShardedEngine::load(&dir, 1).unwrap();
    assert!(resumed.quarantined().is_empty());
    assert_eq!(resumed.next_date(), stayed.next_date());
    for d in mid..DAYS {
        cube.day_slice_into(d, &mut day_buf);
        let date = cube.start().add_days(d as i32);
        let a = resumed.ingest_day(date, &day_buf).unwrap().unwrap();
        let b = stayed.ingest_day(date, &day_buf).unwrap().unwrap();
        for (ra, rb) in a.scores.iter().zip(&b.scores) {
            let bits_a: Vec<u32> = ra.iter().map(|s| s.to_bits()).collect();
            let bits_b: Vec<u32> = rb.iter().map(|s| s.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "scores diverged on {date}");
        }
        resumed.save_checkpoint(&dir, &opts).unwrap();
    }
    // A final resume over the interrupted chain equals the engine that ran
    // straight through, byte for byte.
    let final_resume = ShardedEngine::load(&dir, 1).unwrap();
    assert_eq!(final_resume.next_date(), stayed.next_date());
    final_resume.save(&dir_a).unwrap();
    stayed.save(&dir_b).unwrap();
    assert_same_snapshot(&dir_a, &dir_b);
    for d in [&dir, &dir_a, &dir_b] {
        fs::remove_dir_all(d).ok();
    }
}

#[test]
fn delta_saves_are_smaller_than_full_saves() {
    let dir = temp_dir("delta_size");
    fs::remove_dir_all(&dir).ok();
    let (cube, mut engine, next) = streamed_engine(54);
    let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 8 };
    let full = engine.save_checkpoint(&dir, &opts).unwrap();
    let mut day_buf = vec![0.0f32; cube.day_slice_len()];
    cube.day_slice_into(next, &mut day_buf);
    engine.ingest_day(cube.start().add_days(next as i32), &day_buf).unwrap();
    let delta = engine.save_checkpoint(&dir, &opts).unwrap();
    assert_eq!(delta.kind, SaveKind::Delta);
    // One day of slabs (+ the chain index) must be much smaller than the
    // whole engine state: deltas scale with touched users, not history.
    assert!(
        delta.bytes * 2 < full.bytes,
        "delta {} bytes vs full {} bytes",
        delta.bytes,
        full.bytes
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn v3_is_substantially_smaller_than_v2_json() {
    let dir_v2 = temp_dir("size_v2");
    let dir_v3 = temp_dir("size_v3");
    for d in [&dir_v2, &dir_v3] {
        fs::remove_dir_all(d).ok();
    }
    let (_, engine, _) = streamed_engine(55);
    engine.save_v2(&dir_v2).unwrap();
    engine.save(&dir_v3).unwrap();
    let v2 = dir_bytes(&dir_v2);
    let v3 = dir_bytes(&dir_v3);
    // Even on dense random histories (where the quantizer must certify-fail
    // back to raw f32) the binary container wins well over 2x; the >=5x
    // bytes-per-user acceptance at scale is measured by engine_bench on
    // sparse production-shaped rosters.
    assert!(v3 * 2 < v2, "v3 {v3} bytes vs v2 {v2} bytes");
    for d in [&dir_v2, &dir_v3] {
        fs::remove_dir_all(d).ok();
    }
}
