//! Umbrella crate for the ACOBE reproduction workspace.
