//! Feature extraction for the enterprise case study (paper Section VI-B).
//!
//! Predictable aspects (File / Command / Config / Resource) get the three
//! presented features each — events, unique events, new events — and the
//! statistical aspects get the presented HTTP features (success / failure
//! counts, with new-domain variants) plus logon statistics.

use crate::counts::FeatureCube;
use crate::spec::{enterprise_feature_set, FeatureSet};
use acobe_logs::event::{LogEvent, LogonActivity};
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;
use std::collections::HashSet;

const N_PREDICTABLE: usize = 4;

fn predictable_aspect(event_id: u16) -> Option<usize> {
    use acobe_synth_event_ids as ids;
    if ids::FILE.contains(&event_id) {
        Some(0)
    } else if ids::COMMAND.contains(&event_id) {
        Some(1)
    } else if ids::CONFIG.contains(&event_id) {
        Some(2)
    } else if ids::RESOURCE.contains(&event_id) {
        Some(3)
    } else {
        None
    }
}

// The aspect → event-id mapping is defined by the data source (the enterprise
// environment); duplicating it here keeps this crate independent of the
// synthesizer. The sets mirror `acobe_synth::enterprise::event_ids`.
mod acobe_synth_event_ids {
    pub const FILE: &[u16] = &[
        2, 11, 4656, 4658, 4659, 4660, 4661, 4662, 4663, 4670, 5140, 5141, 5142, 5143, 5144, 5145,
    ];
    pub const COMMAND: &[u16] = &[1, 4100, 4101, 4102, 4103, 4104, 4688];
    pub const CONFIG: &[u16] = &[12, 13, 14, 4657, 4724, 4728];
    pub const RESOURCE: &[u16] = &[4673, 4674, 4698, 5379];
}

/// Streaming extractor producing the 20-feature enterprise cube
/// (two time frames, like ACOBE).
///
/// # Examples
///
/// ```
/// use acobe_features::enterprise::EnterpriseExtractor;
/// use acobe_logs::time::Date;
/// let start = Date::from_ymd(2011, 1, 1);
/// let mut ex = EnterpriseExtractor::new(3, start, start.add_days(1));
/// ex.ingest_day(start, &[]);
/// assert_eq!(ex.finish().features(), 20);
/// ```
#[derive(Debug)]
pub struct EnterpriseExtractor {
    cube: FeatureCube,
    // First-seen across all time, per user per predictable aspect.
    seen_objects: Vec<[HashSet<u64>; N_PREDICTABLE]>,
    seen_domains: Vec<HashSet<u32>>,
    seen_hosts: Vec<HashSet<u32>>,
    // Per-day scratch.
    today_objects: Vec<[HashSet<u64>; N_PREDICTABLE]>,
    today_domains: Vec<HashSet<u32>>,
    today_hosts: Vec<HashSet<u32>>,
    // Per-day per-frame uniqueness scratch: (user, frame) -> objects.
    frame_objects: Vec<[[HashSet<u64>; 2]; N_PREDICTABLE]>,
    frame_hosts: Vec<[HashSet<u32>; 2]>,
    next_date: Date,
}

impl EnterpriseExtractor {
    /// Creates an extractor for `users` users over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the date range is empty or `users == 0`.
    pub fn new(users: usize, start: Date, end: Date) -> Self {
        let days = end.days_since(start);
        assert!(days > 0, "empty date range");
        let fs = enterprise_feature_set();
        EnterpriseExtractor {
            cube: FeatureCube::new(users, start, days as usize, 2, fs.len()),
            seen_objects: (0..users).map(|_| Default::default()).collect(),
            seen_domains: vec![HashSet::new(); users],
            seen_hosts: vec![HashSet::new(); users],
            today_objects: (0..users).map(|_| Default::default()).collect(),
            today_domains: vec![HashSet::new(); users],
            today_hosts: vec![HashSet::new(); users],
            frame_objects: (0..users).map(|_| Default::default()).collect(),
            frame_hosts: (0..users).map(|_| Default::default()).collect(),
            next_date: start,
        }
    }

    /// The feature catalog this extractor fills.
    pub fn feature_set() -> FeatureSet {
        enterprise_feature_set()
    }

    /// Processes one day of events (must be called in date order).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order days or user indices out of range.
    pub fn ingest_day(&mut self, date: Date, events: &[LogEvent]) {
        assert_eq!(date, self.next_date, "days must be ingested in order");
        self.next_date = date.add_days(1);

        for event in events {
            let user = event.user().index();
            assert!(user < self.cube.users(), "user index out of range");
            let frame = event.ts().time_frame().index();
            match event {
                LogEvent::Windows(e) => {
                    let Some(aspect) = predictable_aspect(e.event_id) else { continue };
                    let base = aspect * 3;
                    // f1: events.
                    self.cube.add(user, date, frame, base, 1.0);
                    // f2: unique events in this frame.
                    if self.frame_objects[user][aspect][frame].insert(e.object) {
                        self.cube.add(user, date, frame, base + 1, 1.0);
                    }
                    // f3: events on objects never seen before day d.
                    if !self.seen_objects[user][aspect].contains(&e.object) {
                        self.cube.add(user, date, frame, base + 2, 1.0);
                        self.today_objects[user][aspect].insert(e.object);
                    }
                }
                LogEvent::Proxy(e) => {
                    let new_domain = !self.seen_domains[user].contains(&e.domain.0);
                    if new_domain {
                        self.today_domains[user].insert(e.domain.0);
                    }
                    if e.success {
                        self.cube.add(user, date, frame, 12, 1.0);
                        if new_domain {
                            self.cube.add(user, date, frame, 13, 1.0);
                        }
                    } else {
                        self.cube.add(user, date, frame, 14, 1.0);
                        if new_domain {
                            self.cube.add(user, date, frame, 15, 1.0);
                        }
                    }
                }
                LogEvent::Logon(e) => {
                    if e.activity != LogonActivity::Logon {
                        continue;
                    }
                    if e.success {
                        self.cube.add(user, date, frame, 16, 1.0);
                    } else {
                        self.cube.add(user, date, frame, 17, 1.0);
                    }
                    if !self.seen_hosts[user].contains(&e.host.0) {
                        self.cube.add(user, date, frame, 18, 1.0);
                        self.today_hosts[user].insert(e.host.0);
                    }
                    // f: distinct hosts this frame.
                    if self.frame_hosts[user][frame].insert(e.host.0) {
                        self.cube.add(user, date, frame, 19, 1.0);
                    }
                }
                _ => {}
            }
        }

        for u in 0..self.cube.users() {
            for a in 0..N_PREDICTABLE {
                let objs = std::mem::take(&mut self.today_objects[u][a]);
                self.seen_objects[u][a].extend(objs);
                self.frame_objects[u][a][0].clear();
                self.frame_objects[u][a][1].clear();
            }
            let domains = std::mem::take(&mut self.today_domains[u]);
            self.seen_domains[u].extend(domains);
            let hosts = std::mem::take(&mut self.today_hosts[u]);
            self.seen_hosts[u].extend(hosts);
            self.frame_hosts[u][0].clear();
            self.frame_hosts[u][1].clear();
        }
    }

    /// Completes extraction.
    ///
    /// # Panics
    ///
    /// Panics if not every day in the range was ingested.
    pub fn finish(self) -> FeatureCube {
        assert_eq!(self.next_date, self.cube.end(), "not all days ingested");
        self.cube
    }
}

/// Extracts the enterprise feature cube from a finalized [`LogStore`].
pub fn extract_enterprise_features(
    store: &LogStore,
    users: usize,
    start: Date,
    end: Date,
) -> FeatureCube {
    let _span = acobe_obs::span!("extraction");
    acobe_obs::counter("features/events_ingested").add(store.len() as u64);
    acobe_obs::counter("features/days_ingested").add(end.days_since(start).max(0) as u64);
    let mut ex = EnterpriseExtractor::new(users, start, end);
    for date in start.range_to(end) {
        ex.ingest_day(date, store.day(date));
    }
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::event::*;
    use acobe_logs::ids::{DomainId, HostId, UserId};

    fn day(n: u32) -> Date {
        Date::from_ymd(2011, 1, n)
    }

    fn win(d: Date, hour: u32, user: u32, event_id: u16, object: u64) -> LogEvent {
        LogEvent::Windows(WindowsEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            channel: WinChannel::Sysmon,
            event_id,
            object,
        })
    }

    fn proxy(d: Date, hour: u32, user: u32, domain: u32, success: bool) -> LogEvent {
        LogEvent::Proxy(ProxyEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            domain: DomainId(domain),
            success,
        })
    }

    #[test]
    fn predictable_aspect_counting() {
        let mut ex = EnterpriseExtractor::new(1, day(1), day(3));
        // Three file events (id 11), same object twice + one new.
        ex.ingest_day(
            day(1),
            &[win(day(1), 9, 0, 11, 100), win(day(1), 10, 0, 11, 100), win(day(1), 11, 0, 11, 200)],
        );
        ex.ingest_day(day(2), &[win(day(2), 9, 0, 11, 100)]);
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 0, 0), 3.0); // events
        assert_eq!(cube.get(0, day(1), 0, 1), 2.0); // unique
        assert_eq!(cube.get(0, day(1), 0, 2), 3.0); // all on never-seen objects
        assert_eq!(cube.get(0, day(2), 0, 2), 0.0); // object 100 now known
    }

    #[test]
    fn aspects_route_by_event_id() {
        let mut ex = EnterpriseExtractor::new(1, day(1), day(2));
        ex.ingest_day(
            day(1),
            &[
                win(day(1), 9, 0, 11, 1),   // file
                win(day(1), 9, 0, 4688, 2), // command
                win(day(1), 9, 0, 13, 3),   // config
                win(day(1), 9, 0, 4673, 4), // resource
            ],
        );
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 0, 0), 1.0);
        assert_eq!(cube.get(0, day(1), 0, 3), 1.0);
        assert_eq!(cube.get(0, day(1), 0, 6), 1.0);
        assert_eq!(cube.get(0, day(1), 0, 9), 1.0);
    }

    #[test]
    fn http_success_failure_and_new_domains() {
        let mut ex = EnterpriseExtractor::new(1, day(1), day(3));
        ex.ingest_day(
            day(1),
            &[proxy(day(1), 9, 0, 5, true), proxy(day(1), 10, 0, 6, false)],
        );
        ex.ingest_day(
            day(2),
            &[proxy(day(2), 9, 0, 5, true), proxy(day(2), 10, 0, 7, false)],
        );
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 0, 12), 1.0); // success
        assert_eq!(cube.get(0, day(1), 0, 13), 1.0); // success new domain
        assert_eq!(cube.get(0, day(1), 0, 14), 1.0); // failure
        assert_eq!(cube.get(0, day(1), 0, 15), 1.0); // failure new domain
        assert_eq!(cube.get(0, day(2), 0, 13), 0.0); // 5 known now
        assert_eq!(cube.get(0, day(2), 0, 15), 1.0); // 7 is new
    }

    #[test]
    fn logon_features() {
        let mut ex = EnterpriseExtractor::new(1, day(1), day(2));
        let logon = |hour: u32, host: u32, success: bool| {
            LogEvent::Logon(LogonEvent {
                ts: day(1).at(hour, 0, 0),
                user: UserId(0),
                host: HostId(host),
                activity: LogonActivity::Logon,
                success,
            })
        };
        ex.ingest_day(day(1), &[logon(9, 1, true), logon(10, 1, true), logon(11, 2, false)]);
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 0, 16), 2.0); // successes
        assert_eq!(cube.get(0, day(1), 0, 17), 1.0); // failures
        assert_eq!(cube.get(0, day(1), 0, 18), 3.0); // every op on unseen hosts
        assert_eq!(cube.get(0, day(1), 0, 19), 2.0); // distinct hosts
    }

    #[test]
    fn unknown_event_ids_ignored() {
        let mut ex = EnterpriseExtractor::new(1, day(1), day(2));
        ex.ingest_day(day(1), &[win(day(1), 9, 0, 10, 1)]); // Process Access: discarded type
        assert_eq!(ex.finish().total(), 0.0);
    }
}
