//! Dense per-(user, day, time-frame, feature) measurement storage.
//!
//! This is the `m_{f,t,d}` tensor of the paper (Section IV-A), per user:
//! the raw numeric measurements that deviations are derived from.

use crate::exact::ExactF32Sum;
use acobe_logs::time::Date;
use serde::{Deserialize, Serialize};

/// A dense 4-D array of measurements: `[user][day][frame][feature]`.
///
/// # Examples
///
/// ```
/// use acobe_features::counts::FeatureCube;
/// use acobe_logs::time::Date;
/// let mut cube = FeatureCube::new(2, Date::from_ymd(2010, 1, 1), 3, 2, 4);
/// cube.add(1, Date::from_ymd(2010, 1, 2), 0, 3, 2.0);
/// assert_eq!(cube.get(1, Date::from_ymd(2010, 1, 2), 0, 3), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureCube {
    users: usize,
    start: Date,
    days: usize,
    frames: usize,
    features: usize,
    data: Vec<f32>,
}

impl FeatureCube {
    /// Creates a zeroed cube.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(users: usize, start: Date, days: usize, frames: usize, features: usize) -> Self {
        assert!(users > 0 && days > 0 && frames > 0 && features > 0, "empty cube dimension");
        FeatureCube {
            users,
            start,
            days,
            frames,
            features,
            data: vec![0.0; users * days * frames * features],
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// First covered day.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Number of covered days.
    pub fn days(&self) -> usize {
        self.days
    }

    /// First day after coverage.
    pub fn end(&self) -> Date {
        self.start.add_days(self.days as i32)
    }

    /// Number of time frames per day.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Index of a date within the cube, if covered.
    pub fn day_index(&self, date: Date) -> Option<usize> {
        let idx = date.days_since(self.start);
        if idx >= 0 && (idx as usize) < self.days {
            Some(idx as usize)
        } else {
            None
        }
    }

    #[inline]
    fn offset(&self, user: usize, day: usize, frame: usize, feature: usize) -> usize {
        debug_assert!(user < self.users && day < self.days && frame < self.frames && feature < self.features);
        ((user * self.days + day) * self.frames + frame) * self.features + feature
    }

    /// Reads one measurement.
    ///
    /// # Panics
    ///
    /// Panics if `date` is outside coverage or indices are out of bounds.
    pub fn get(&self, user: usize, date: Date, frame: usize, feature: usize) -> f32 {
        let day = self.day_index(date).expect("date outside cube");
        self.data[self.offset(user, day, frame, feature)]
    }

    /// Reads one measurement by day index.
    pub fn get_by_index(&self, user: usize, day: usize, frame: usize, feature: usize) -> f32 {
        self.data[self.offset(user, day, frame, feature)]
    }

    /// Adds `value` to one measurement.
    ///
    /// # Panics
    ///
    /// Panics if `date` is outside coverage or indices are out of bounds.
    pub fn add(&mut self, user: usize, date: Date, frame: usize, feature: usize, value: f32) {
        let day = self.day_index(date).expect("date outside cube");
        let off = self.offset(user, day, frame, feature);
        self.data[off] += value;
    }

    /// Sets one measurement by day index.
    pub fn set_by_index(&mut self, user: usize, day: usize, frame: usize, feature: usize, value: f32) {
        let off = self.offset(user, day, frame, feature);
        self.data[off] = value;
    }

    /// The time series of one `(user, frame, feature)` across all days.
    pub fn series(&self, user: usize, frame: usize, feature: usize) -> Vec<f32> {
        (0..self.days)
            .map(|d| self.data[self.offset(user, d, frame, feature)])
            .collect()
    }

    /// Mean of a feature over all users for one `(day, frame)` — the group
    /// behavior (Section IV-A) over a set of member indices. Accumulated with
    /// [`ExactF32Sum`], so the result does not depend on member order or on
    /// how a sharded engine partitions the roster.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn group_mean(&self, members: &[usize], day: usize, frame: usize, feature: usize) -> f32 {
        assert!(!members.is_empty(), "empty group");
        let mut sum = ExactF32Sum::new();
        for &u in members {
            sum.add(self.data[self.offset(u, day, frame, feature)]);
        }
        sum.round() / members.len() as f32
    }

    /// Total of all measurements (for sanity checks).
    pub fn total(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Number of scalars in one user's slab: `days × frames × features`.
    pub fn user_block_len(&self) -> usize {
        self.days * self.frames * self.features
    }

    /// One user's contiguous `[day][frame][feature]` slab. Element
    /// `(day, frame, feature)` lives at `(day * frames + frame) * features +
    /// feature` within the slab.
    pub fn user_block(&self, user: usize) -> &[f32] {
        assert!(user < self.users, "user out of bounds");
        let len = self.user_block_len();
        &self.data[user * len..(user + 1) * len]
    }

    /// Per-user mutable slabs in user order — disjoint contiguous chunks,
    /// suitable for handing to parallel per-user writers.
    pub fn user_blocks_mut(&mut self) -> std::slice::ChunksMut<'_, f32> {
        let len = self.user_block_len();
        self.data.chunks_mut(len)
    }

    /// Number of scalars in one day across all users: `users × frames ×
    /// features` — the measurement width a streaming consumer ingests per day.
    pub fn day_slice_len(&self) -> usize {
        self.users * self.frames * self.features
    }

    /// Gathers one day of measurements for every user into `out`, flattened
    /// `[user][frame][feature]` — the layout the streaming engine ingests.
    /// (Storage is user-major, so a day is not contiguous; this copies one
    /// `[frame][feature]` chunk per user.)
    ///
    /// # Panics
    ///
    /// Panics if `day` is out of range or `out.len() != day_slice_len()`.
    pub fn day_slice_into(&self, day: usize, out: &mut [f32]) {
        assert!(day < self.days, "day outside cube");
        assert_eq!(out.len(), self.day_slice_len(), "day slice length mismatch");
        let chunk = self.frames * self.features;
        for (u, dst) in out.chunks_mut(chunk).enumerate() {
            let from = self.offset(u, day, 0, 0);
            dst.copy_from_slice(&self.data[from..from + chunk]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> FeatureCube {
        FeatureCube::new(3, Date::from_ymd(2010, 1, 1), 5, 2, 2)
    }

    #[test]
    fn add_get_roundtrip() {
        let mut c = cube();
        let d = Date::from_ymd(2010, 1, 3);
        c.add(2, d, 1, 0, 4.0);
        c.add(2, d, 1, 0, 1.0);
        assert_eq!(c.get(2, d, 1, 0), 5.0);
        assert_eq!(c.get(2, d, 0, 0), 0.0);
    }

    #[test]
    fn day_index_bounds() {
        let c = cube();
        assert_eq!(c.day_index(Date::from_ymd(2010, 1, 1)), Some(0));
        assert_eq!(c.day_index(Date::from_ymd(2010, 1, 5)), Some(4));
        assert_eq!(c.day_index(Date::from_ymd(2010, 1, 6)), None);
        assert_eq!(c.day_index(Date::from_ymd(2009, 12, 31)), None);
        assert_eq!(c.end(), Date::from_ymd(2010, 1, 6));
    }

    #[test]
    fn series_extraction() {
        let mut c = cube();
        for i in 0..5 {
            c.set_by_index(1, i, 0, 1, i as f32);
        }
        assert_eq!(c.series(1, 0, 1), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn group_mean() {
        let mut c = cube();
        c.set_by_index(0, 2, 0, 0, 2.0);
        c.set_by_index(1, 2, 0, 0, 4.0);
        c.set_by_index(2, 2, 0, 0, 9.0);
        assert_eq!(c.group_mean(&[0, 1], 2, 0, 0), 3.0);
        assert_eq!(c.group_mean(&[0, 1, 2], 2, 0, 0), 5.0);
    }

    #[test]
    fn user_blocks_are_disjoint_slabs() {
        let mut c = cube();
        c.set_by_index(1, 2, 1, 0, 7.0);
        assert_eq!(c.user_block_len(), 5 * 2 * 2);
        let block = c.user_block(1);
        assert_eq!(block[(2 * 2 + 1) * 2], 7.0);
        let blocks: Vec<_> = c.user_blocks_mut().collect();
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.len() == 20));
    }

    #[test]
    fn day_slice_gathers_all_users() {
        let mut c = cube();
        c.set_by_index(0, 2, 0, 1, 1.5);
        c.set_by_index(1, 2, 1, 0, 2.5);
        c.set_by_index(2, 2, 1, 1, 3.5);
        let mut out = vec![0.0; c.day_slice_len()];
        c.day_slice_into(2, &mut out);
        assert_eq!(out.len(), 3 * 2 * 2);
        // [user][frame][feature] layout.
        assert_eq!(out[1], 1.5); // u0 t0 f1
        assert_eq!(out[4 + 2], 2.5); // u1 t1 f0
        assert_eq!(out[8 + 3], 3.5); // u2 t1 f1
    }

    #[test]
    #[should_panic(expected = "date outside cube")]
    fn out_of_range_date_panics() {
        let c = cube();
        let _ = c.get(0, Date::from_ymd(2011, 1, 1), 0, 0);
    }

    #[test]
    #[should_panic(expected = "empty cube dimension")]
    fn zero_dimension_rejected() {
        let _ = FeatureCube::new(0, Date::from_ymd(2010, 1, 1), 1, 1, 1);
    }
}
