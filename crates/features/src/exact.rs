//! Exact, partition-independent `f32` summation.
//!
//! Floating-point addition is not associative, so two shards that each fold
//! their members' measurements in `f32` cannot, in general, combine their
//! partial sums into the same bits a single flat fold would produce. The
//! sharded engine (DESIGN.md §8) therefore accumulates group sums *exactly*:
//! every finite `f32` is an integer multiple of 2⁻¹⁴⁹ (the smallest positive
//! subnormal), so a sum of `f32`s is representable as a wide fixed-point
//! integer. Integer addition is associative and commutative, which makes the
//! accumulated value independent of both summand order and partitioning;
//! a single correctly-rounded conversion back to `f32` at the end yields one
//! well-defined result no matter how the inputs were sharded.
//!
//! [`ExactF32Sum`] holds that fixed-point value in 320 bits of two's
//! complement — enough headroom to absorb on the order of 10¹² summands of
//! the largest finite `f32` magnitude without overflow, far beyond any
//! realistic roster. Both the monolithic group-statistics path and the
//! sharded two-phase reduce use it, so their group averages are bit-equal
//! by construction.

/// Number of 64-bit limbs in the accumulator.
const LIMBS: usize = 5;

/// Binary exponent of the fixed-point unit: values are integers × 2⁻¹⁴⁹.
const UNIT_EXP: i32 = -149;

/// An exact accumulator for `f32` values.
///
/// The running sum is a 320-bit two's-complement integer in units of 2⁻¹⁴⁹.
/// [`add`](Self::add) folds in one value, [`merge`](Self::merge) combines two
/// accumulators (associative and commutative), and [`round`](Self::round)
/// performs the single round-to-nearest-even conversion back to `f32`.
///
/// Non-finite inputs (`NaN`, `±∞`) have no fixed-point representation; they
/// poison the accumulator, and a poisoned sum rounds to `NaN`.
///
/// # Examples
///
/// ```
/// use acobe_features::exact::ExactF32Sum;
///
/// let values = [0.1f32, 0.2, 0.3, -0.6];
/// let mut whole = ExactF32Sum::new();
/// for v in values {
///     whole.add(v);
/// }
/// // Any partition merges to the identical sum.
/// let mut left = ExactF32Sum::new();
/// left.add(values[2]);
/// let mut right = ExactF32Sum::new();
/// right.add(values[1]);
/// right.add(values[3]);
/// right.add(values[0]);
/// left.merge(&right);
/// assert_eq!(whole.round().to_bits(), left.round().to_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactF32Sum {
    /// Little-endian limbs of the two's-complement fixed-point sum.
    limbs: [u64; LIMBS],
    /// Set when a non-finite value was added; forces `round()` to `NaN`.
    poisoned: bool,
}

impl Default for ExactF32Sum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactF32Sum {
    /// An empty (zero) sum.
    pub fn new() -> Self {
        ExactF32Sum { limbs: [0; LIMBS], poisoned: false }
    }

    /// Whether a non-finite value has been absorbed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Adds one `f32` to the sum exactly.
    pub fn add(&mut self, x: f32) {
        if !x.is_finite() {
            self.poisoned = true;
            return;
        }
        if x == 0.0 {
            return;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 23) & 0xff) as u32;
        let frac = (bits & 0x7f_ffff) as u64;
        // value = mantissa × 2^shift × 2⁻¹⁴⁹ (normals carry the implicit bit
        // and a rebased exponent; subnormals are already integer multiples).
        let (mantissa, shift) = if exp > 0 { (frac | (1 << 23), exp - 1) } else { (frac, 0) };
        let limb = (shift / 64) as usize;
        let bit = shift % 64;
        let wide = (mantissa as u128) << bit;
        let (lo, hi) = (wide as u64, (wide >> 64) as u64);
        if bits >> 31 == 0 {
            self.add_magnitude(limb, lo, hi);
        } else {
            self.sub_magnitude(limb, lo, hi);
        }
    }

    /// Adds `lo` at `limb` and `hi` at `limb + 1`, propagating carries.
    fn add_magnitude(&mut self, limb: usize, lo: u64, hi: u64) {
        let mut carry;
        (self.limbs[limb], carry) = self.limbs[limb].overflowing_add(lo);
        let mut i = limb + 1;
        let (word, c1) = self.limbs[i].overflowing_add(hi);
        let (word, c2) = word.overflowing_add(carry as u64);
        self.limbs[i] = word;
        carry = c1 || c2;
        while carry {
            i += 1;
            // Wrap silently past the top limb: two's complement keeps
            // negative partial sums correct, and 320 bits cannot overflow
            // from realistic `f32` workloads (see module docs).
            if i == LIMBS {
                break;
            }
            (self.limbs[i], carry) = self.limbs[i].overflowing_add(1);
        }
    }

    /// Subtracts `lo` at `limb` and `hi` at `limb + 1`, propagating borrows.
    fn sub_magnitude(&mut self, limb: usize, lo: u64, hi: u64) {
        let mut borrow;
        (self.limbs[limb], borrow) = self.limbs[limb].overflowing_sub(lo);
        let mut i = limb + 1;
        let (word, b1) = self.limbs[i].overflowing_sub(hi);
        let (word, b2) = word.overflowing_sub(borrow as u64);
        self.limbs[i] = word;
        borrow = b1 || b2;
        while borrow {
            i += 1;
            if i == LIMBS {
                break;
            }
            (self.limbs[i], borrow) = self.limbs[i].overflowing_sub(1);
        }
    }

    /// Folds another accumulator into this one. Limb-wise integer addition,
    /// so `merge` is associative and commutative: any partition of a value
    /// set across accumulators merges to the same bits.
    pub fn merge(&mut self, other: &ExactF32Sum) {
        self.poisoned |= other.poisoned;
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (word, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (word, c2) = word.overflowing_add(carry);
            self.limbs[i] = word;
            carry = (c1 || c2) as u64;
        }
    }

    /// Converts the exact sum to the nearest `f32` (ties to even).
    ///
    /// This is the only rounding step in the whole summation, so the result
    /// is a pure function of the *set* of added values.
    pub fn round(&self) -> f32 {
        if self.poisoned {
            return f32::NAN;
        }
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            // Two's-complement negation: invert and add one.
            let mut carry = 1u64;
            for limb in &mut mag {
                let (word, c) = (!*limb).overflowing_add(carry);
                *limb = word;
                carry = c as u64;
            }
        }
        let Some(high) = highest_bit(&mag) else {
            return 0.0;
        };
        let unsigned = if high <= 52 {
            // ≤ 53 significant bits: exact in f64, so the single f64→f32
            // cast below performs the one correct rounding (this branch
            // covers all results in the f32 subnormal range).
            mag[0] as f64 * pow2(UNIT_EXP)
        } else {
            // Keep the top 53 bits and fold every dropped bit into the LSB
            // as a sticky bit. f64→f32 keeps 24 bits, so the round bit is
            // bit 28 of this mantissa and the sticky OR sits strictly below
            // it — the final cast rounds exactly like a direct 320-bit→f32
            // round-to-nearest-even would.
            let cut = high - 52;
            let mut m53 = shift_right(&mag, cut);
            if any_bit_below(&mag, cut) {
                m53 |= 1;
            }
            m53 as f64 * pow2(cut as i32 + UNIT_EXP)
        };
        let rounded = unsigned as f32;
        if negative {
            -rounded
        } else {
            rounded
        }
    }
}

/// 2^`exp` built directly from IEEE-754 bits — exact, unlike libm `exp2`.
fn pow2(exp: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&exp), "pow2 exponent out of normal range");
    f64::from_bits(((exp + 1023) as u64) << 52)
}

/// Index of the highest set bit across little-endian limbs, if any.
fn highest_bit(limbs: &[u64; LIMBS]) -> Option<usize> {
    for i in (0..LIMBS).rev() {
        if limbs[i] != 0 {
            return Some(i * 64 + 63 - limbs[i].leading_zeros() as usize);
        }
    }
    None
}

/// The limbs logically shifted right by `count` bits, truncated to 64 bits.
fn shift_right(limbs: &[u64; LIMBS], count: usize) -> u64 {
    let word = count / 64;
    let bit = count % 64;
    let lo = limbs.get(word).copied().unwrap_or(0) >> bit;
    if bit == 0 {
        lo
    } else {
        lo | limbs.get(word + 1).copied().unwrap_or(0) << (64 - bit)
    }
}

/// Whether any bit strictly below position `count` is set.
fn any_bit_below(limbs: &[u64; LIMBS], count: usize) -> bool {
    let word = count / 64;
    let bit = count % 64;
    limbs[..word.min(LIMBS)].iter().any(|&l| l != 0)
        || (bit > 0 && word < LIMBS && limbs[word] & ((1u64 << bit) - 1) != 0)
}

/// Sums an iterator of `f32`s exactly and rounds once at the end.
///
/// # Examples
///
/// ```
/// use acobe_features::exact::exact_sum;
/// assert_eq!(exact_sum([1.0f32, 2.0, 3.0]), 6.0);
/// ```
pub fn exact_sum(values: impl IntoIterator<Item = f32>) -> f32 {
    let mut acc = ExactF32Sum::new();
    for v in values {
        acc.add(v);
    }
    acc.round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_via_parts(values: &[f32], parts: usize) -> f32 {
        let mut accs = vec![ExactF32Sum::new(); parts];
        for (i, &v) in values.iter().enumerate() {
            accs[i % parts].add(v);
        }
        let mut total = ExactF32Sum::new();
        for acc in &accs {
            total.merge(acc);
        }
        total.round()
    }

    #[test]
    fn integer_sums_are_exact() {
        assert_eq!(exact_sum([1.0f32, 2.0, 3.0, 4.0]), 10.0);
        assert_eq!(exact_sum(std::iter::repeat(1.0f32).take(1000)), 1000.0);
    }

    #[test]
    fn empty_and_zero_sums() {
        assert_eq!(exact_sum(std::iter::empty::<f32>()).to_bits(), 0.0f32.to_bits());
        assert_eq!(exact_sum([0.0f32, -0.0]).to_bits(), 0.0f32.to_bits());
        assert_eq!(exact_sum([5.5f32, -5.5]).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn cancellation_is_exact() {
        // Naive f32 folds lose the small term; the exact sum keeps it.
        let vals = [1.0e8f32, 1.0, -1.0e8];
        assert_eq!(exact_sum(vals), 1.0);
        let naive: f32 = vals.iter().sum();
        assert_eq!(naive, 0.0);
    }

    #[test]
    fn subnormals_round_trip() {
        let tiny = f32::from_bits(1); // 2⁻¹⁴⁹
        assert_eq!(exact_sum([tiny]).to_bits(), tiny.to_bits());
        assert_eq!(exact_sum([tiny, tiny]).to_bits(), f32::from_bits(2).to_bits());
        assert_eq!(exact_sum([tiny, -tiny]).to_bits(), 0.0f32.to_bits());
        assert_eq!(exact_sum([-tiny]).to_bits(), (-tiny).to_bits());
    }

    #[test]
    fn single_values_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = f32::from_bits(rng.gen::<u32>());
            if !v.is_finite() {
                continue;
            }
            assert_eq!(exact_sum([v]).to_bits(), (v + 0.0).to_bits(), "value {v:?}");
        }
    }

    #[test]
    fn partition_independent() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let n = rng.gen_range(1..200);
            let values: Vec<f32> = (0..n)
                .map(|_| {
                    let scale = 10f32.powi(rng.gen_range(-6..7));
                    rng.gen_range(-1.0f32..1.0) * scale
                })
                .collect();
            let whole = exact_sum(values.iter().copied());
            for parts in [1usize, 2, 3, 4, 7, 16] {
                let split = exact_via_parts(&values, parts);
                assert_eq!(
                    whole.to_bits(),
                    split.to_bits(),
                    "trial {trial}: {parts}-way partition diverged"
                );
            }
            // Order independence too: reversed input, same bits.
            let reversed = exact_sum(values.iter().rev().copied());
            assert_eq!(whole.to_bits(), reversed.to_bits());
        }
    }

    #[test]
    fn rounding_matches_f64_reference_on_moderate_values() {
        // For a handful of values whose exact sum fits in f64 without
        // rounding (24-bit mantissas, nearby exponents), f64 accumulation is
        // itself exact, so casting its total to f32 is the ground truth.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let values: Vec<f32> =
                (0..rng.gen_range(1..20)).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
            let reference = values.iter().map(|&v| v as f64).sum::<f64>() as f32;
            assert_eq!(exact_sum(values.iter().copied()).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn large_magnitudes_do_not_overflow() {
        let big = f32::MAX;
        let n = 1000;
        let mut acc = ExactF32Sum::new();
        for _ in 0..n {
            acc.add(big);
        }
        // Exact total is n × MAX, far above f32 range → rounds to +∞.
        assert_eq!(acc.round(), f32::INFINITY);
        for _ in 0..n {
            acc.add(-big);
        }
        assert_eq!(acc.round().to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn non_finite_poisons() {
        let mut acc = ExactF32Sum::new();
        acc.add(1.0);
        acc.add(f32::INFINITY);
        assert!(acc.is_poisoned());
        assert!(acc.round().is_nan());
        let mut other = ExactF32Sum::new();
        other.add(2.0);
        other.merge(&acc);
        assert!(other.round().is_nan());
        assert!(exact_sum([f32::NAN]).is_nan());
    }

    #[test]
    fn negative_totals_round_correctly() {
        assert_eq!(exact_sum([-1.5f32, -2.5]), -4.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let values: Vec<f32> =
                (0..rng.gen_range(1..30)).map(|_| rng.gen_range(-50.0f32..10.0)).collect();
            let reference = values.iter().map(|&v| v as f64).sum::<f64>() as f32;
            assert_eq!(exact_sum(values.iter().copied()).to_bits(), reference.to_bits());
        }
    }
}
