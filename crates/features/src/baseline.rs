//! Baseline (Liu et al. 2018) feature extraction.
//!
//! The paper's comparison model builds "four autoencoders for coarse-grained
//! unweighted features from the numbers of activities (e.g., connect, write,
//! download, logoff) in four aspects (device, file, HTTP, logon)" and "splits
//! one day into 24 time-frames" (Section V-C). This extractor produces that
//! representation: 11 plain activity counts × 24 hourly frames.

use crate::counts::FeatureCube;
use crate::spec::{baseline_feature_set, FeatureSet};
use acobe_logs::event::{FileActivity, HttpActivity, LogonActivity, LogEvent};
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;

/// Streaming extractor producing the Baseline cube (24 hourly frames).
///
/// # Examples
///
/// ```
/// use acobe_features::baseline::BaselineExtractor;
/// use acobe_logs::time::Date;
/// let start = Date::from_ymd(2010, 1, 1);
/// let mut ex = BaselineExtractor::new(2, start, start.add_days(2));
/// ex.ingest_day(start, &[]);
/// ex.ingest_day(start.add_days(1), &[]);
/// assert_eq!(ex.finish().frames(), 24);
/// ```
#[derive(Debug)]
pub struct BaselineExtractor {
    cube: FeatureCube,
    next_date: Date,
}

impl BaselineExtractor {
    /// Creates an extractor for `users` users over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the date range is empty or `users == 0`.
    pub fn new(users: usize, start: Date, end: Date) -> Self {
        let days = end.days_since(start);
        assert!(days > 0, "empty date range");
        let fs = baseline_feature_set();
        BaselineExtractor {
            cube: FeatureCube::new(users, start, days as usize, 24, fs.len()),
            next_date: start,
        }
    }

    /// The feature catalog this extractor fills.
    pub fn feature_set() -> FeatureSet {
        baseline_feature_set()
    }

    /// Processes one day of events (must be called in date order).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order days or user indices out of range.
    pub fn ingest_day(&mut self, date: Date, events: &[LogEvent]) {
        assert_eq!(date, self.next_date, "days must be ingested in order");
        self.next_date = date.add_days(1);

        for event in events {
            let user = event.user().index();
            assert!(user < self.cube.users(), "user index out of range");
            let hour = event.ts().hour() as usize;
            let feature = match event {
                LogEvent::Device(e) => match e.activity {
                    acobe_logs::event::DeviceActivity::Connect => Some(0),
                    acobe_logs::event::DeviceActivity::Disconnect => Some(1),
                },
                LogEvent::File(e) => Some(match e.activity {
                    FileActivity::Open => 2,
                    FileActivity::Write => 3,
                    FileActivity::Copy => 4,
                    FileActivity::Delete => 5,
                }),
                LogEvent::Http(e) => Some(match e.activity {
                    HttpActivity::Visit => 6,
                    HttpActivity::Download => 7,
                    HttpActivity::Upload => 8,
                }),
                LogEvent::Logon(e) => Some(match e.activity {
                    LogonActivity::Logon => 9,
                    LogonActivity::Logoff => 10,
                }),
                _ => None,
            };
            if let Some(f) = feature {
                self.cube.add(user, date, hour, f, 1.0);
            }
        }
    }

    /// Completes extraction.
    ///
    /// # Panics
    ///
    /// Panics if not every day in the range was ingested.
    pub fn finish(self) -> FeatureCube {
        assert_eq!(self.next_date, self.cube.end(), "not all days ingested");
        self.cube
    }
}

/// Extracts the Baseline feature cube from a finalized [`LogStore`].
pub fn extract_baseline_features(
    store: &LogStore,
    users: usize,
    start: Date,
    end: Date,
) -> FeatureCube {
    let mut ex = BaselineExtractor::new(users, start, end);
    for date in start.range_to(end) {
        ex.ingest_day(date, store.day(date));
    }
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::event::*;
    use acobe_logs::ids::{DomainId, HostId, UserId};

    fn day(n: u32) -> Date {
        Date::from_ymd(2010, 2, n)
    }

    #[test]
    fn counts_land_in_hourly_frames() {
        let mut ex = BaselineExtractor::new(1, day(1), day(2));
        let events = vec![
            LogEvent::Http(HttpEvent {
                ts: day(1).at(3, 30, 0),
                user: UserId(0),
                domain: DomainId(1),
                activity: HttpActivity::Visit,
                filetype: FileType::Other,
                success: true,
            }),
            LogEvent::Http(HttpEvent {
                ts: day(1).at(3, 45, 0),
                user: UserId(0),
                domain: DomainId(2),
                activity: HttpActivity::Visit,
                filetype: FileType::Other,
                success: true,
            }),
            LogEvent::Logon(LogonEvent {
                ts: day(1).at(8, 0, 0),
                user: UserId(0),
                host: HostId(0),
                activity: LogonActivity::Logon,
                success: true,
            }),
        ];
        ex.ingest_day(day(1), &events);
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 3, 6), 2.0); // two visits at 03:xx
        assert_eq!(cube.get(0, day(1), 8, 9), 1.0); // one logon at 08:00
        assert_eq!(cube.get(0, day(1), 4, 6), 0.0);
    }

    #[test]
    fn visits_are_counted_unlike_acobe_features() {
        // The Baseline uses plain activity counts including visits.
        let mut ex = BaselineExtractor::new(1, day(1), day(2));
        ex.ingest_day(
            day(1),
            &[LogEvent::Http(HttpEvent {
                ts: day(1).at(12, 0, 0),
                user: UserId(0),
                domain: DomainId(1),
                activity: HttpActivity::Visit,
                filetype: FileType::Other,
                success: true,
            })],
        );
        assert_eq!(ex.finish().total(), 1.0);
    }

    #[test]
    fn windows_and_proxy_events_ignored() {
        let mut ex = BaselineExtractor::new(1, day(1), day(2));
        ex.ingest_day(
            day(1),
            &[LogEvent::Windows(WindowsEvent {
                ts: day(1).at(12, 0, 0),
                user: UserId(0),
                channel: WinChannel::Sysmon,
                event_id: 11,
                object: 1,
            })],
        );
        assert_eq!(ex.finish().total(), 0.0);
    }
}
