//! Feature extraction for the CERT-style evaluation dataset
//! (paper Section V-A3).

use crate::counts::FeatureCube;
use crate::spec::{cert_feature_set, FeatureSet};
use acobe_logs::event::{FileActivity, HttpActivity, FileType, LogEvent, Location};
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// How features f1-f6 of the file/HTTP categories count operations.
///
/// The paper's wording ("the number of operation in terms of
/// (feature, file-ID) pair that the user never had conducted before day d")
/// can be read as novelty-only counting; plain activity counting matches the
/// figures' day-to-day texture better. Both are implemented; `Plain` is the
/// default (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CountSemantics {
    /// f1-f6 count every operation; `new-op` features count novel pairs.
    #[default]
    Plain,
    /// Every feature counts only operations on novel `(feature, object)` pairs.
    NovelOnly,
}

/// Tags identifying a `(feature, object)` pair class for first-seen tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum FileTag {
    OpenLocal,
    OpenRemote,
    WriteLocal,
    WriteRemote,
    CopyLr,
    CopyRl,
    Delete,
    Other,
}

/// A per-day extraction failure.
///
/// The streaming engine needs "which day failed and is it retryable" as a
/// programmatic question, so the unbounded day extractor reports typed errors
/// instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// Days must be offered consecutively; a gap or repeat was detected.
    OutOfOrder {
        /// The day the extractor expected next.
        expected: Date,
        /// The day that was actually offered.
        got: Date,
    },
    /// An event referenced a user index outside the configured population.
    UnknownUser {
        /// The offending user index.
        user: usize,
        /// The configured population size.
        users: usize,
    },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::OutOfOrder { expected, got } => write!(
                f,
                "days must be ingested in order: expected {expected}, got {got}"
            ),
            ExtractError::UnknownUser { user, users } => {
                write!(f, "user index out of range: {user} >= {users}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// The `event → (user, frame)` counting slot every per-day aggregation in
/// the pipeline keys on.
///
/// Both the feature extractor ([`DayExtractor`]) and the raw-log ingest
/// frontend (`acobe-ingest`'s per-day rule aggregation) historically
/// computed this inline; they must agree or rule hits and measurements
/// land in different frames. This is the single shared definition.
pub fn event_slot(event: &LogEvent) -> (usize, usize) {
    (event.user().index(), event.ts().time_frame().index())
}

/// One in-progress (open) day of incremental feature accumulation.
///
/// An `OpenDay` holds the partially-accumulated `[user][frame][feature]`
/// measurement vector plus the day-local novelty overlays ("pairs first
/// seen today stay novel for the whole day"). It is created and advanced
/// by [`DayExtractor::push_events`] — the novelty *baseline* (`seen_*`
/// sets) lives on the extractor, so the open day only carries the overlay
/// — and folded back by [`DayExtractor::close_day`].
///
/// Because counting is additive and events arrive in order, pushing a
/// day's events in any number of sub-batches and then closing produces a
/// vector bit-identical to the one-shot [`DayExtractor::ingest_day`] path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenDay {
    date: Date,
    day: Vec<f32>,
    today_hosts: Vec<HashSet<u32>>,
    today_file: Vec<HashSet<(FileTag, u32)>>,
    today_http: Vec<HashSet<(u8, u32)>>,
    events: u64,
    flushes: u64,
    last_event_secs: Option<i64>,
}

impl OpenDay {
    fn new(date: Date, users: usize, width: usize) -> Self {
        OpenDay {
            date,
            day: vec![0.0f32; width],
            today_hosts: vec![HashSet::new(); users],
            today_file: vec![HashSet::new(); users],
            today_http: vec![HashSet::new(); users],
            events: 0,
            flushes: 0,
            last_event_secs: None,
        }
    }

    /// The day being accumulated.
    pub fn date(&self) -> Date {
        self.date
    }

    /// The measurements accumulated so far, flattened `[user][frame][feature]`.
    ///
    /// This is a live partial view: it grows with every
    /// [`DayExtractor::push_events`] call and becomes the closed day's
    /// vector verbatim at [`DayExtractor::close_day`].
    pub fn measurements_so_far(&self) -> &[f32] {
        &self.day
    }

    /// Events pushed into this day so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Sub-day batches ([`DayExtractor::push_events`] calls) absorbed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Timestamp (epoch seconds) of the last event pushed, if any.
    pub fn last_event_secs(&self) -> Option<i64> {
        self.last_event_secs
    }
}

/// Unbounded day-at-a-time extractor producing one flattened
/// `[user][frame][feature]` measurement vector per day — the form the
/// incremental detection engine ingests.
///
/// Unlike [`CertExtractor`] (which fills a date-bounded [`FeatureCube`] and
/// is now a thin wrapper over this type), a `DayExtractor` has no end date:
/// it carries only the per-user first-seen sets and can stream forever. It
/// serializes with serde so a production deployment can checkpoint
/// mid-stream and resume with novelty tracking intact.
///
/// # Examples
///
/// ```
/// use acobe_features::cert::{CountSemantics, DayExtractor};
/// use acobe_logs::time::Date;
/// let start = Date::from_ymd(2010, 1, 1);
/// let mut ex = DayExtractor::new(4, start, CountSemantics::Plain);
/// let day = ex.ingest_day(start, &[]).unwrap();
/// assert_eq!(day.len(), 4 * 2 * 16);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayExtractor {
    users: usize,
    features: usize,
    semantics: CountSemantics,
    seen_hosts: Vec<HashSet<u32>>,
    seen_file: Vec<HashSet<(FileTag, u32)>>,
    seen_http: Vec<HashSet<(u8, u32)>>,
    next_date: Date,
    /// The in-progress day, if one is open. `default` so sidecars written
    /// before intra-day accumulation existed still deserialize.
    #[serde(default)]
    open: Option<OpenDay>,
}

impl DayExtractor {
    /// Creates a day extractor for `users` users, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `users == 0`.
    pub fn new(users: usize, start: Date, semantics: CountSemantics) -> Self {
        assert!(users > 0, "empty population");
        DayExtractor {
            users,
            features: cert_feature_set().len(),
            semantics,
            seen_hosts: vec![HashSet::new(); users],
            seen_file: vec![HashSet::new(); users],
            seen_http: vec![HashSet::new(); users],
            next_date: start,
            open: None,
        }
    }

    /// Number of users tracked.
    pub fn users(&self) -> usize {
        self.users
    }

    /// The next day this extractor expects.
    pub fn next_date(&self) -> Date {
        self.next_date
    }

    /// Width of one day's measurement vector: `users × 2 frames × features`.
    pub fn day_width(&self) -> usize {
        self.users * 2 * self.features
    }

    /// Processes one day of events, returning that day's measurements
    /// flattened `[user][frame][feature]`.
    ///
    /// This is now sugar over the incremental path — one
    /// [`DayExtractor::push_events`] followed by [`DayExtractor::close_day`]
    /// — and is bit-identical to it at any sub-batch split. If a day is
    /// already open on `date`, the events append to it and the day closes.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::OutOfOrder`] for non-consecutive days and
    /// [`ExtractError::UnknownUser`] for events outside the population; in
    /// both cases the first-seen state is left untouched.
    pub fn ingest_day(&mut self, date: Date, events: &[LogEvent]) -> Result<Vec<f32>, ExtractError> {
        self.push_events(date, events)?;
        Ok(self.close_day().expect("push_events opened the day"))
    }

    /// Pushes a sub-day batch of events into the open day, opening it if
    /// necessary.
    ///
    /// The first push for a day must be for the extractor's expected next
    /// date; subsequent pushes must stay on the same day until
    /// [`DayExtractor::close_day`]. Counting is additive and novelty
    /// overlays are day-local, so any split of a day's (in-order) events
    /// into pushes yields the same closed-day vector as a single push.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::OutOfOrder`] when `date` is not the open
    /// (or, with no open day, the expected next) day, and
    /// [`ExtractError::UnknownUser`] for events outside the population;
    /// in both cases extractor state — including any open day — is left
    /// untouched.
    pub fn push_events(&mut self, date: Date, events: &[LogEvent]) -> Result<(), ExtractError> {
        let expected = match &self.open {
            Some(open) => open.date,
            None => self.next_date,
        };
        if date != expected {
            return Err(ExtractError::OutOfOrder { expected, got: date });
        }
        if let Some(event) = events.iter().find(|e| e.user().index() >= self.users) {
            return Err(ExtractError::UnknownUser {
                user: event.user().index(),
                users: self.users,
            });
        }
        let mut open = self
            .open
            .take()
            .unwrap_or_else(|| OpenDay::new(date, self.users, self.day_width()));
        for event in events {
            debug_assert_eq!(event.ts().date(), date, "event on wrong day");
            self.apply_event(&mut open, event);
            open.events += 1;
            open.last_event_secs = Some(event.ts().secs());
        }
        open.flushes += 1;
        self.open = Some(open);
        Ok(())
    }

    /// The in-progress day, if one is open.
    pub fn open_day(&self) -> Option<&OpenDay> {
        self.open.as_ref()
    }

    /// Re-installs an open day recovered from a checkpoint (the engine
    /// checkpoint's `ODAY` section), so a mid-day crash resumes accumulation
    /// exactly where the save left off.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::OutOfOrder`] when a day is already open or
    /// when the recovered day is not the extractor's expected next date —
    /// the checkpoint and the extractor snapshot disagree in that case.
    pub fn restore_open_day(&mut self, open: OpenDay) -> Result<(), ExtractError> {
        if let Some(current) = &self.open {
            return Err(ExtractError::OutOfOrder { expected: current.date, got: open.date });
        }
        if open.date != self.next_date {
            return Err(ExtractError::OutOfOrder { expected: self.next_date, got: open.date });
        }
        self.open = Some(open);
        Ok(())
    }

    /// The open day's partial measurements, if a day is open.
    ///
    /// Shorthand for `open_day().map(OpenDay::measurements_so_far)`.
    pub fn measurements_so_far(&self) -> Option<&[f32]> {
        self.open.as_ref().map(|o| o.measurements_so_far())
    }

    /// Closes the open day: merges its novelty overlay into the first-seen
    /// sets ("before day d" semantics), advances the expected date, and
    /// returns the day's measurements. Returns `None` if no day is open.
    pub fn close_day(&mut self) -> Option<Vec<f32>> {
        let OpenDay {
            date,
            day,
            mut today_hosts,
            mut today_file,
            mut today_http,
            ..
        } = self.open.take()?;
        for u in 0..self.users {
            self.seen_hosts[u].extend(today_hosts[u].drain());
            self.seen_file[u].extend(today_file[u].drain());
            self.seen_http[u].extend(today_http[u].drain());
        }
        self.next_date = date.add_days(1);
        Some(day)
    }

    /// Folds one event into the open day's counts and novelty overlay.
    ///
    /// The novelty decision reads the committed `seen_*` sets (the "before
    /// day d" baseline, immutable while a day is open) plus the day-local
    /// `today_*` overlay.
    fn apply_event(&self, open: &mut OpenDay, event: &LogEvent) {
        let (user, frame) = event_slot(event);
        let features = self.features;
        let OpenDay {
            day,
            today_hosts,
            today_file,
            today_http,
            ..
        } = open;
        let mut add = |user: usize, frame: usize, feature: usize| {
            day[(user * 2 + frame) * features + feature] += 1.0;
        };
        match event {
            LogEvent::Device(e) => {
                if e.activity == acobe_logs::event::DeviceActivity::Connect {
                    add(user, frame, 0);
                    // "Before day d" semantics: a host stays novel for the
                    // whole day, so only the committed set gates counting.
                    if !self.seen_hosts[user].contains(&e.host.0) {
                        add(user, frame, 1);
                        today_hosts[user].insert(e.host.0);
                    }
                }
            }
            LogEvent::File(e) => {
                let tag = file_tag(e.activity, e.from, e.to);
                let feature = file_feature(tag);
                let pair = (tag, e.file.0);
                let is_new = !self.seen_file[user].contains(&pair);
                if is_new {
                    add(user, frame, 8); // file.new-op
                    today_file[user].insert(pair);
                }
                if let Some(f) = feature {
                    if self.semantics == CountSemantics::Plain || is_new {
                        add(user, frame, f);
                    }
                }
            }
            LogEvent::Http(e) => {
                // Visits and downloads are not considered (paper V-A3).
                if e.activity == HttpActivity::Upload {
                    if let Some(ft_idx) = upload_type_index(e.filetype) {
                        let feature = 9 + ft_idx;
                        let pair = (ft_idx as u8, e.domain.0);
                        let is_new = !self.seen_http[user].contains(&pair);
                        if is_new {
                            add(user, frame, 15); // http.new-op
                            today_http[user].insert(pair);
                        }
                        if self.semantics == CountSemantics::Plain || is_new {
                            add(user, frame, feature);
                        }
                    }
                }
            }
            // Email / logon / enterprise events carry no CERT features.
            _ => {}
        }
    }

    /// Processes one day of events and routes the measurements into
    /// per-shard slabs: `slabs[s]` concatenates the `[frame][feature]`
    /// chunks of every user with `assign[user] == s`, in ascending user
    /// order — exactly the local layout a sharded engine's shard ingests
    /// (`ShardedEngine::ingest_day_slabs` in `acobe`).
    ///
    /// First-seen novelty tracking stays global: a host is novel for a user
    /// regardless of which shard the user lands on, so routed and unrouted
    /// extraction produce identical measurements.
    ///
    /// # Panics
    ///
    /// Panics if `assign` does not cover exactly the tracked users or
    /// references a shard `>= shards`.
    ///
    /// # Errors
    ///
    /// Same contract as [`DayExtractor::ingest_day`].
    pub fn ingest_day_sharded(
        &mut self,
        date: Date,
        events: &[LogEvent],
        assign: &[u32],
        shards: usize,
    ) -> Result<Vec<Vec<f32>>, ExtractError> {
        assert_eq!(assign.len(), self.users, "assignment must cover every user");
        assert!(
            assign.iter().all(|&s| (s as usize) < shards),
            "assignment references a shard >= {shards}"
        );
        let day = self.ingest_day(date, events)?;
        Ok(route_day_slabs(&day, self.users, self.features, assign, shards))
    }

    /// Approximate heap footprint of the novelty state — the per-user
    /// first-seen sets plus the open day's accumulator, if one is open — in
    /// bytes. This is the memory that grows with stream lifetime (first-seen
    /// sets only ever gain members), so it is the number worth watching.
    pub fn state_bytes(&self) -> usize {
        seen_set_bytes(&self.seen_hosts)
            + seen_set_bytes(&self.seen_file)
            + seen_set_bytes(&self.seen_http)
            + self.open.as_ref().map_or(0, |o| o.state_bytes())
    }
}

impl acobe_obs::MemAccount for DayExtractor {
    fn mem_bytes(&self) -> usize {
        self.state_bytes()
    }
}

impl OpenDay {
    /// Approximate heap footprint of the open day's accumulator, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.day.capacity() * std::mem::size_of::<f32>()
            + seen_set_bytes(&self.today_hosts)
            + seen_set_bytes(&self.today_file)
            + seen_set_bytes(&self.today_http)
    }
}

/// Approximate heap bytes of a per-user vector of hash sets: allocated
/// slots (element + one control byte each, hashbrown's layout) plus the
/// set headers themselves.
fn seen_set_bytes<T>(sets: &[HashSet<T>]) -> usize {
    let slots: usize =
        sets.iter().map(|s| s.capacity() * (std::mem::size_of::<T>() + 1)).sum();
    slots + sets.len() * std::mem::size_of::<HashSet<T>>()
}

/// Routes one flat day vector (`[user][frame][feature]`, as produced by
/// [`DayExtractor::ingest_day`]) into per-shard slabs: `slabs[s]`
/// concatenates the `[frame][feature]` chunks of every user with
/// `assign[user] == s`, in ascending user order.
///
/// This is the routing half of [`DayExtractor::ingest_day_sharded`], exposed
/// so callers that also need the flat vector (for example to accumulate a
/// training cube *and* feed shards from one extraction pass) can route it
/// without extracting twice.
///
/// # Panics
///
/// Panics if `day.len() != users * 2 * features`, if `assign` does not cover
/// exactly `users` entries, or if it references a shard `>= shards`.
pub fn route_day_slabs(
    day: &[f32],
    users: usize,
    features: usize,
    assign: &[u32],
    shards: usize,
) -> Vec<Vec<f32>> {
    let chunk = 2 * features;
    assert_eq!(day.len(), users * chunk, "day vector has the wrong width");
    assert_eq!(assign.len(), users, "assignment must cover every user");
    assert!(
        assign.iter().all(|&s| (s as usize) < shards),
        "assignment references a shard >= {shards}"
    );
    let mut slabs = vec![Vec::new(); shards];
    for (u, &s) in assign.iter().enumerate() {
        slabs[s as usize].extend_from_slice(&day[u * chunk..(u + 1) * chunk]);
    }
    slabs
}

/// Bounded extractor producing the 16-feature CERT cube over a fixed date
/// range — a thin accumulation wrapper around [`DayExtractor`].
///
/// Call [`CertExtractor::ingest_day`] with consecutive days, then
/// [`CertExtractor::finish`].
///
/// # Examples
///
/// ```
/// use acobe_features::cert::{CertExtractor, CountSemantics};
/// use acobe_logs::time::Date;
/// let start = Date::from_ymd(2010, 1, 1);
/// let end = Date::from_ymd(2010, 1, 8);
/// let mut ex = CertExtractor::new(4, start, end, CountSemantics::Plain);
/// for date in start.range_to(end) {
///     ex.ingest_day(date, &[]);
/// }
/// let cube = ex.finish();
/// assert_eq!(cube.days(), 7);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertExtractor {
    cube: FeatureCube,
    day: DayExtractor,
}

impl CertExtractor {
    /// Creates an extractor for `users` users over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the date range is empty or `users == 0`.
    pub fn new(users: usize, start: Date, end: Date, semantics: CountSemantics) -> Self {
        let days = end.days_since(start);
        assert!(days > 0, "empty date range");
        let fs = cert_feature_set();
        CertExtractor {
            cube: FeatureCube::new(users, start, days as usize, 2, fs.len()),
            day: DayExtractor::new(users, start, semantics),
        }
    }

    /// The feature catalog this extractor fills.
    pub fn feature_set() -> FeatureSet {
        cert_feature_set()
    }

    /// Processes one day of events (must be called in date order).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order days, days outside the range, or events whose
    /// user index exceeds the configured user count.
    pub fn ingest_day(&mut self, date: Date, events: &[LogEvent]) {
        let measurements = self.day.ingest_day(date, events).unwrap_or_else(|e| panic!("{e}"));
        assert!(self.cube.day_index(date).is_some(), "date outside extractor range");
        let frames = self.cube.frames();
        let features = self.cube.features();
        for u in 0..self.cube.users() {
            for t in 0..frames {
                for f in 0..features {
                    let v = measurements[(u * frames + t) * features + f];
                    if v != 0.0 {
                        self.cube.add(u, date, t, f, v);
                    }
                }
            }
        }
    }

    /// Completes extraction.
    ///
    /// # Panics
    ///
    /// Panics if not every day in the range was ingested.
    pub fn finish(self) -> FeatureCube {
        assert_eq!(
            self.day.next_date(),
            self.cube.end(),
            "not all days ingested (next expected: {})",
            self.day.next_date()
        );
        self.cube
    }
}

fn file_tag(activity: FileActivity, from: Location, to: Location) -> FileTag {
    match (activity, from, to) {
        (FileActivity::Open, Location::Local, _) => FileTag::OpenLocal,
        (FileActivity::Open, Location::Remote, _) => FileTag::OpenRemote,
        (FileActivity::Write, _, Location::Local) => FileTag::WriteLocal,
        (FileActivity::Write, _, Location::Remote) => FileTag::WriteRemote,
        (FileActivity::Copy, Location::Local, Location::Remote) => FileTag::CopyLr,
        (FileActivity::Copy, Location::Remote, Location::Local) => FileTag::CopyRl,
        (FileActivity::Delete, _, _) => FileTag::Delete,
        (FileActivity::Copy, _, _) => FileTag::Other,
    }
}

fn file_feature(tag: FileTag) -> Option<usize> {
    match tag {
        FileTag::OpenLocal => Some(2),
        FileTag::OpenRemote => Some(3),
        FileTag::WriteLocal => Some(4),
        FileTag::WriteRemote => Some(5),
        FileTag::CopyLr => Some(6),
        FileTag::CopyRl => Some(7),
        FileTag::Delete | FileTag::Other => None,
    }
}

fn upload_type_index(ft: FileType) -> Option<usize> {
    FileType::upload_feature_order().iter().position(|&x| x == ft)
}

/// Extracts the CERT feature cube from a finalized [`LogStore`].
pub fn extract_cert_features(
    store: &LogStore,
    users: usize,
    start: Date,
    end: Date,
    semantics: CountSemantics,
) -> FeatureCube {
    let _span = acobe_obs::span!("extraction");
    acobe_obs::counter("features/events_ingested").add(store.len() as u64);
    acobe_obs::counter("features/days_ingested").add(end.days_since(start).max(0) as u64);
    let mut ex = CertExtractor::new(users, start, end, semantics);
    for date in start.range_to(end) {
        ex.ingest_day(date, store.day(date));
    }
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::event::*;
    use acobe_logs::ids::{DomainId, FileId, HostId, UserId};

    fn day(n: u32) -> Date {
        Date::from_ymd(2010, 1, n)
    }

    fn device(d: Date, hour: u32, user: u32, host: u32) -> LogEvent {
        LogEvent::Device(DeviceEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            host: HostId(host),
            activity: DeviceActivity::Connect,
        })
    }

    fn upload(d: Date, hour: u32, user: u32, domain: u32, ft: FileType) -> LogEvent {
        LogEvent::Http(HttpEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            domain: DomainId(domain),
            activity: HttpActivity::Upload,
            filetype: ft,
            success: true,
        })
    }

    fn file_op(d: Date, hour: u32, user: u32, file: u32) -> LogEvent {
        LogEvent::File(FileEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            host: HostId(0),
            file: FileId(file),
            activity: FileActivity::Copy,
            from: Location::Local,
            to: Location::Remote,
        })
    }

    #[test]
    fn novelty_state_bytes_grow_with_first_seen_sets() {
        let mut ex = DayExtractor::new(2, day(1), CountSemantics::Plain);
        let empty = ex.state_bytes();
        let events: Vec<LogEvent> =
            (0..64).map(|h| device(day(1), 9, 0, h)).collect();
        ex.ingest_day(day(1), &events).unwrap();
        assert!(ex.state_bytes() > empty, "{} vs {empty}", ex.state_bytes());
        // An open day adds its accumulator on top of the first-seen sets.
        let closed = ex.state_bytes();
        ex.push_events(day(2), &[device(day(2), 9, 0, 200)]).unwrap();
        assert!(ex.state_bytes() > closed);
        assert_eq!(acobe_obs::MemAccount::mem_bytes(&ex), ex.state_bytes());
    }

    #[test]
    fn device_connection_and_new_host() {
        let mut ex = CertExtractor::new(1, day(1), day(4), CountSemantics::Plain);
        ex.ingest_day(day(1), &[device(day(1), 9, 0, 5), device(day(1), 10, 0, 5)]);
        ex.ingest_day(day(2), &[device(day(2), 9, 0, 5), device(day(2), 21, 0, 6)]);
        ex.ingest_day(day(3), &[]);
        let cube = ex.finish();
        // Day 1: two connections, both to host 5 which is new all day.
        assert_eq!(cube.get(0, day(1), 0, 0), 2.0);
        assert_eq!(cube.get(0, day(1), 0, 1), 2.0);
        // Day 2 working: host 5 is now known.
        assert_eq!(cube.get(0, day(2), 0, 0), 1.0);
        assert_eq!(cube.get(0, day(2), 0, 1), 0.0);
        // Day 2 off-hours: host 6 is new.
        assert_eq!(cube.get(0, day(2), 1, 0), 1.0);
        assert_eq!(cube.get(0, day(2), 1, 1), 1.0);
    }

    #[test]
    fn http_upload_features_and_new_op() {
        let mut ex = CertExtractor::new(1, day(1), day(3), CountSemantics::Plain);
        ex.ingest_day(
            day(1),
            &[
                upload(day(1), 9, 0, 100, FileType::Doc),
                upload(day(1), 10, 0, 100, FileType::Doc),
                upload(day(1), 11, 0, 101, FileType::Zip),
            ],
        );
        ex.ingest_day(day(2), &[upload(day(2), 9, 0, 100, FileType::Doc)]);
        let cube = ex.finish();
        // Day 1: upload-doc = 2 (plain counts). new-op counts *operations* on
        // pairs unseen before day d, so both (doc,100) uploads and the
        // (zip,101) upload all count: 3.
        assert_eq!(cube.get(0, day(1), 0, 9), 2.0);
        assert_eq!(cube.get(0, day(1), 0, 14), 1.0); // zip
        assert_eq!(cube.get(0, day(1), 0, 15), 3.0);
        // Day 2: pair now known, no new-op.
        assert_eq!(cube.get(0, day(2), 0, 9), 1.0);
        assert_eq!(cube.get(0, day(2), 0, 15), 0.0);
    }

    #[test]
    fn novel_only_semantics_suppresses_repeats() {
        let mut ex = CertExtractor::new(1, day(1), day(3), CountSemantics::NovelOnly);
        ex.ingest_day(
            day(1),
            &[
                upload(day(1), 9, 0, 100, FileType::Doc),
                upload(day(1), 10, 0, 100, FileType::Doc),
            ],
        );
        ex.ingest_day(day(2), &[upload(day(2), 9, 0, 100, FileType::Doc)]);
        let cube = ex.finish();
        // Both day-1 uploads are on a pair unseen before day 1.
        assert_eq!(cube.get(0, day(1), 0, 9), 2.0);
        // Day 2: known pair, not counted at all.
        assert_eq!(cube.get(0, day(2), 0, 9), 0.0);
    }

    #[test]
    fn file_copy_features() {
        let mut ex = CertExtractor::new(1, day(1), day(3), CountSemantics::Plain);
        ex.ingest_day(day(1), &[file_op(day(1), 9, 0, 7), file_op(day(1), 10, 0, 7)]);
        ex.ingest_day(day(2), &[file_op(day(2), 9, 0, 7)]);
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 0, 6), 2.0); // copy local->remote
        assert_eq!(cube.get(0, day(1), 0, 8), 2.0); // both ops on a new pair
        assert_eq!(cube.get(0, day(2), 0, 8), 0.0);
    }

    #[test]
    fn sharded_routing_matches_unrouted() {
        // Two extractors over the same events: full-day output re-gathered
        // from the routed slabs must be identical, including novelty counts.
        let users = 5;
        let mut plain = DayExtractor::new(users, day(1), CountSemantics::Plain);
        let mut routed = DayExtractor::new(users, day(1), CountSemantics::Plain);
        let assign: Vec<u32> = vec![1, 0, 2, 0, 1];
        let shards = 3;
        let chunk = 2 * plain.features;
        for d in 1..4 {
            let events = vec![
                device(day(d), 9, 0, d as u32),
                device(day(d), 21, 2, 5),
                upload(day(d), 10, 4, 100, FileType::Doc),
                file_op(day(d), 11, 1, d as u32),
            ];
            let full = plain.ingest_day(day(d), &events).unwrap();
            let slabs = routed.ingest_day_sharded(day(d), &events, &assign, shards).unwrap();
            assert_eq!(slabs.len(), shards);
            // Rebuild the full day from the slabs via the assignment.
            let mut cursors = vec![0usize; shards];
            for (u, &s) in assign.iter().enumerate() {
                let s = s as usize;
                let got = &slabs[s][cursors[s]..cursors[s] + chunk];
                assert_eq!(got, &full[u * chunk..(u + 1) * chunk], "day {d} user {u}");
                cursors[s] += chunk;
            }
            for (s, slab) in slabs.iter().enumerate() {
                assert_eq!(slab.len(), cursors[s], "shard {s} slab length");
            }
        }
    }

    #[test]
    #[should_panic(expected = "assignment must cover every user")]
    fn sharded_routing_rejects_short_assignment() {
        let mut ex = DayExtractor::new(3, day(1), CountSemantics::Plain);
        let _ = ex.ingest_day_sharded(day(1), &[], &[0, 1], 2);
    }

    #[test]
    fn visits_and_downloads_ignored() {
        let mut ex = CertExtractor::new(1, day(1), day(2), CountSemantics::Plain);
        let visit = LogEvent::Http(HttpEvent {
            ts: day(1).at(9, 0, 0),
            user: UserId(0),
            domain: DomainId(5),
            activity: HttpActivity::Visit,
            filetype: FileType::Other,
            success: true,
        });
        ex.ingest_day(day(1), &[visit]);
        let cube = ex.finish();
        assert_eq!(cube.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "not all days ingested")]
    fn finish_requires_all_days() {
        let ex = CertExtractor::new(1, day(1), day(5), CountSemantics::Plain);
        let _ = ex.finish();
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;
    use acobe_logs::event::{DeviceActivity, DeviceEvent, LogEvent};
    use acobe_logs::ids::{HostId, UserId};

    /// Early-morning off-hours events (00:00-06:00) land in the off frame of
    /// the same civil day.
    #[test]
    fn early_morning_is_off_frame_of_same_day() {
        let d = Date::from_ymd(2010, 4, 1);
        let mut ex = CertExtractor::new(1, d, d.add_days(1), CountSemantics::Plain);
        let event = LogEvent::Device(DeviceEvent {
            ts: d.at(3, 0, 0),
            user: UserId(0),
            host: HostId(0),
            activity: DeviceActivity::Connect,
        });
        ex.ingest_day(d, &[event]);
        let cube = ex.finish();
        assert_eq!(cube.get(0, d, 1, 0), 1.0); // off frame
        assert_eq!(cube.get(0, d, 0, 0), 0.0);
    }

    /// Disconnects never count as connections.
    #[test]
    fn disconnects_not_counted() {
        let d = Date::from_ymd(2010, 4, 1);
        let mut ex = CertExtractor::new(1, d, d.add_days(1), CountSemantics::Plain);
        let event = LogEvent::Device(DeviceEvent {
            ts: d.at(10, 0, 0),
            user: UserId(0),
            host: HostId(0),
            activity: DeviceActivity::Disconnect,
        });
        ex.ingest_day(d, &[event]);
        assert_eq!(ex.finish().total(), 0.0);
    }

    /// The unbounded day extractor reports typed errors and leaves its
    /// novelty state untouched on failure.
    #[test]
    fn day_extractor_typed_errors() {
        let mut ex = DayExtractor::new(2, day(1), CountSemantics::Plain);
        let err = ex.ingest_day(day(2), &[]).unwrap_err();
        assert_eq!(err, ExtractError::OutOfOrder { expected: day(1), got: day(2) });
        assert!(err.to_string().contains("days must be ingested in order"));

        let err = ex.ingest_day(day(1), &[device(day(1), 10, 5, 0)]).unwrap_err();
        assert_eq!(err, ExtractError::UnknownUser { user: 5, users: 2 });
        assert!(err.to_string().contains("user index out of range"));
        // The failed day was not consumed.
        assert_eq!(ex.next_date(), day(1));

        let buf = ex.ingest_day(day(1), &[device(day(1), 10, 0, 7)]).unwrap();
        assert_eq!(buf[0], 1.0); // u0 t0 connect
        assert_eq!(buf[1], 1.0); // u0 t0 novel host
    }

    /// Checkpointing the day extractor mid-stream preserves first-seen
    /// novelty tracking exactly.
    #[test]
    fn day_extractor_serde_roundtrip_preserves_novelty() {
        let mut ex = DayExtractor::new(1, day(1), CountSemantics::Plain);
        ex.ingest_day(day(1), &[device(day(1), 10, 0, 42)]).unwrap();

        let json = serde_json::to_string(&ex).unwrap();
        let mut restored: DayExtractor = serde_json::from_str(&json).unwrap();

        // Same host again: known to both the original and the restored copy.
        let a = ex.ingest_day(day(2), &[device(day(2), 10, 0, 42)]).unwrap();
        let b = restored.ingest_day(day(2), &[device(day(2), 10, 0, 42)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0], 1.0); // connect counted
        assert_eq!(a[1], 0.0); // host 42 is no longer novel
        assert_eq!(restored.next_date(), day(3));
    }

    /// Pushing a day's events in any number of sub-batches then closing is
    /// bit-identical to the one-shot `ingest_day` path — the tentpole
    /// invariant the intra-day pipeline rests on.
    #[test]
    fn push_close_matches_one_shot_at_any_split() {
        let mk_events = |d: Date, salt: u32| {
            vec![
                device(d, 7, 0, salt % 3),
                device(d, 8, 0, salt % 3), // repeat: novel all day
                upload(d, 9, 1, 100 + salt % 2, FileType::Doc),
                upload(d, 10, 1, 100 + salt % 2, FileType::Doc),
                file_op(d, 11, 0, salt % 4),
                device(d, 21, 1, 9),
            ]
        };
        for semantics in [CountSemantics::Plain, CountSemantics::NovelOnly] {
            let mut one_shot = DayExtractor::new(2, day(1), semantics);
            let reference: Vec<Vec<f32>> = (1..4u32)
                .map(|d| one_shot.ingest_day(day(d), &mk_events(day(d), d)).unwrap())
                .collect();
            // Split points 0..=len, covering empty first and last batches.
            for split in 0..=6usize {
                let mut pushed = DayExtractor::new(2, day(1), semantics);
                for d in 1..4u32 {
                    let events = mk_events(day(d), d);
                    pushed.push_events(day(d), &events[..split]).unwrap();
                    assert_eq!(
                        pushed.open_day().unwrap().events(),
                        split as u64,
                        "split {split} day {d}"
                    );
                    pushed.push_events(day(d), &events[split..]).unwrap();
                    let partial = pushed.measurements_so_far().unwrap().to_vec();
                    let closed = pushed.close_day().unwrap();
                    assert_eq!(partial, closed, "final partial view is the closed day");
                    assert_eq!(closed, reference[(d - 1) as usize], "split {split} day {d}");
                }
            }
        }
    }

    /// A mid-day serde checkpoint of the extractor preserves the open day —
    /// partial counts, novelty overlay and counters — exactly.
    #[test]
    fn open_day_serde_roundtrip_resumes_mid_day() {
        let d = day(1);
        let mut ex = DayExtractor::new(2, d, CountSemantics::Plain);
        ex.push_events(d, &[device(d, 9, 0, 42), upload(d, 10, 1, 7, FileType::Zip)])
            .unwrap();

        let json = serde_json::to_string(&ex).unwrap();
        let mut restored: DayExtractor = serde_json::from_str(&json).unwrap();
        let open = restored.open_day().unwrap();
        assert_eq!(open.date(), d);
        assert_eq!(open.events(), 2);
        assert_eq!(open.flushes(), 1);
        assert_eq!(open.last_event_secs(), Some(d.at(10, 0, 0).secs()));

        let tail = [device(d, 11, 0, 42), upload(d, 12, 1, 7, FileType::Zip)];
        ex.push_events(d, &tail).unwrap();
        restored.push_events(d, &tail).unwrap();
        assert_eq!(ex.close_day(), restored.close_day());
        assert_eq!(ex.next_date(), day(2));
        assert_eq!(restored.next_date(), day(2));

        // Pre-open-day sidecars (no `open` field) still deserialize.
        let mut legacy: serde_json::Value = serde_json::from_str(&json).unwrap();
        legacy.as_object_mut().unwrap().remove("open");
        let legacy: DayExtractor = serde_json::from_value(legacy).unwrap();
        assert!(legacy.open_day().is_none());
    }

    /// Pushes for the wrong day are rejected without disturbing the open day.
    #[test]
    fn push_events_rejects_wrong_day() {
        let mut ex = DayExtractor::new(1, day(1), CountSemantics::Plain);
        ex.push_events(day(1), &[device(day(1), 9, 0, 1)]).unwrap();
        let err = ex.push_events(day(2), &[]).unwrap_err();
        assert_eq!(err, ExtractError::OutOfOrder { expected: day(1), got: day(2) });
        assert_eq!(ex.open_day().unwrap().events(), 1);
        // Unknown users are rejected before any state changes too.
        let err = ex.push_events(day(1), &[device(day(1), 9, 3, 1)]).unwrap_err();
        assert_eq!(err, ExtractError::UnknownUser { user: 3, users: 1 });
        assert_eq!(ex.open_day().unwrap().events(), 1);
        // close with no open day after closing
        ex.close_day().unwrap();
        assert!(ex.close_day().is_none());
    }

    /// Lock test: the shared `event_slot` routing equals the historical
    /// inline `(user().index(), ts().time_frame().index())` computation that
    /// both the extractor and the ingest frontend used to carry separately.
    #[test]
    fn event_slot_matches_historical_inline_routing() {
        let d = day(3);
        for hour in 0..24 {
            let events = [
                device(d, hour, 2, 9),
                upload(d, hour, 1, 5, FileType::Pdf),
                file_op(d, hour, 0, 4),
            ];
            for e in &events {
                let historical = (e.user().index(), e.ts().time_frame().index());
                assert_eq!(event_slot(e), historical, "hour {hour}");
            }
        }
    }

    /// The bounded cube extractor and the day extractor agree value for value.
    #[test]
    fn cube_matches_day_extractor_stream() {
        let start = day(1);
        let end = day(5);
        let mut cube_ex = CertExtractor::new(2, start, end, CountSemantics::Plain);
        let mut day_ex = DayExtractor::new(2, start, CountSemantics::Plain);
        for (i, date) in start.range_to(end).enumerate() {
            let events = vec![
                device(date, 9, 0, i as u32 % 2),
                upload(date, 10, 1, 3, FileType::Doc),
                file_op(date, 11, 0, i as u32),
            ];
            cube_ex.ingest_day(date, &events);
            let buf = day_ex.ingest_day(date, &events).unwrap();
            assert_eq!(buf.len(), day_ex.day_width());
            for u in 0..2 {
                for t in 0..2 {
                    for f in 0..16 {
                        assert_eq!(
                            buf[(u * 2 + t) * 16 + f],
                            cube_ex.cube.get(u, date, t, f),
                            "u{u} t{t} f{f} on {date}"
                        );
                    }
                }
            }
        }
        cube_ex.finish();
    }
}
