//! Feature extraction for the CERT-style evaluation dataset
//! (paper Section V-A3).

use crate::counts::FeatureCube;
use crate::spec::{cert_feature_set, FeatureSet};
use acobe_logs::event::{FileActivity, HttpActivity, FileType, LogEvent, Location};
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;
use std::collections::HashSet;

/// How features f1-f6 of the file/HTTP categories count operations.
///
/// The paper's wording ("the number of operation in terms of
/// (feature, file-ID) pair that the user never had conducted before day d")
/// can be read as novelty-only counting; plain activity counting matches the
/// figures' day-to-day texture better. Both are implemented; `Plain` is the
/// default (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountSemantics {
    /// f1-f6 count every operation; `new-op` features count novel pairs.
    #[default]
    Plain,
    /// Every feature counts only operations on novel `(feature, object)` pairs.
    NovelOnly,
}

/// Tags identifying a `(feature, object)` pair class for first-seen tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FileTag {
    OpenLocal,
    OpenRemote,
    WriteLocal,
    WriteRemote,
    CopyLr,
    CopyRl,
    Delete,
    Other,
}

/// Streaming extractor producing the 16-feature CERT cube.
///
/// Call [`CertExtractor::ingest_day`] with consecutive days, then
/// [`CertExtractor::finish`].
///
/// # Examples
///
/// ```
/// use acobe_features::cert::{CertExtractor, CountSemantics};
/// use acobe_logs::time::Date;
/// let start = Date::from_ymd(2010, 1, 1);
/// let end = Date::from_ymd(2010, 1, 8);
/// let mut ex = CertExtractor::new(4, start, end, CountSemantics::Plain);
/// for date in start.range_to(end) {
///     ex.ingest_day(date, &[]);
/// }
/// let cube = ex.finish();
/// assert_eq!(cube.days(), 7);
/// ```
#[derive(Debug)]
pub struct CertExtractor {
    cube: FeatureCube,
    semantics: CountSemantics,
    seen_hosts: Vec<HashSet<u32>>,
    seen_file: Vec<HashSet<(FileTag, u32)>>,
    seen_http: Vec<HashSet<(u8, u32)>>,
    today_hosts: Vec<HashSet<u32>>,
    today_file: Vec<HashSet<(FileTag, u32)>>,
    today_http: Vec<HashSet<(u8, u32)>>,
    next_date: Date,
}

impl CertExtractor {
    /// Creates an extractor for `users` users over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the date range is empty or `users == 0`.
    pub fn new(users: usize, start: Date, end: Date, semantics: CountSemantics) -> Self {
        let days = end.days_since(start);
        assert!(days > 0, "empty date range");
        let fs = cert_feature_set();
        CertExtractor {
            cube: FeatureCube::new(users, start, days as usize, 2, fs.len()),
            semantics,
            seen_hosts: vec![HashSet::new(); users],
            seen_file: vec![HashSet::new(); users],
            seen_http: vec![HashSet::new(); users],
            today_hosts: vec![HashSet::new(); users],
            today_file: vec![HashSet::new(); users],
            today_http: vec![HashSet::new(); users],
            next_date: start,
        }
    }

    /// The feature catalog this extractor fills.
    pub fn feature_set() -> FeatureSet {
        cert_feature_set()
    }

    /// Processes one day of events (must be called in date order).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order days, days outside the range, or events whose
    /// user index exceeds the configured user count.
    pub fn ingest_day(&mut self, date: Date, events: &[LogEvent]) {
        assert_eq!(date, self.next_date, "days must be ingested in order");
        assert!(self.cube.day_index(date).is_some(), "date outside extractor range");
        self.next_date = date.add_days(1);

        for event in events {
            debug_assert_eq!(event.ts().date(), date, "event on wrong day");
            let user = event.user().index();
            assert!(user < self.cube.users(), "user index out of range");
            let frame = event.ts().time_frame().index();
            match event {
                LogEvent::Device(e) => {
                    if e.activity == acobe_logs::event::DeviceActivity::Connect {
                        self.cube.add(user, date, frame, 0, 1.0);
                        if !self.seen_hosts[user].contains(&e.host.0) {
                            self.cube.add(user, date, frame, 1, 1.0);
                            self.today_hosts[user].insert(e.host.0);
                        }
                    }
                }
                LogEvent::File(e) => {
                    let tag = file_tag(e.activity, e.from, e.to);
                    let feature = file_feature(tag);
                    let pair = (tag, e.file.0);
                    let is_new = !self.seen_file[user].contains(&pair);
                    if is_new {
                        self.cube.add(user, date, frame, 8, 1.0); // file.new-op
                        self.today_file[user].insert(pair);
                    }
                    if let Some(f) = feature {
                        if self.semantics == CountSemantics::Plain || is_new {
                            self.cube.add(user, date, frame, f, 1.0);
                        }
                    }
                }
                LogEvent::Http(e) => {
                    // Visits and downloads are not considered (paper V-A3).
                    if e.activity == HttpActivity::Upload {
                        if let Some(ft_idx) = upload_type_index(e.filetype) {
                            let feature = 9 + ft_idx;
                            let pair = (ft_idx as u8, e.domain.0);
                            let is_new = !self.seen_http[user].contains(&pair);
                            if is_new {
                                self.cube.add(user, date, frame, 15, 1.0); // http.new-op
                                self.today_http[user].insert(pair);
                            }
                            if self.semantics == CountSemantics::Plain || is_new {
                                self.cube.add(user, date, frame, feature, 1.0);
                            }
                        }
                    }
                }
                // Email / logon / enterprise events carry no CERT features.
                _ => {}
            }
        }

        // "Before day d" semantics: first-seen sets update only at day end.
        for u in 0..self.cube.users() {
            let hosts = std::mem::take(&mut self.today_hosts[u]);
            self.seen_hosts[u].extend(hosts);
            let files = std::mem::take(&mut self.today_file[u]);
            self.seen_file[u].extend(files);
            let https = std::mem::take(&mut self.today_http[u]);
            self.seen_http[u].extend(https);
        }
    }

    /// Completes extraction.
    ///
    /// # Panics
    ///
    /// Panics if not every day in the range was ingested.
    pub fn finish(self) -> FeatureCube {
        assert_eq!(
            self.next_date,
            self.cube.end(),
            "not all days ingested (next expected: {})",
            self.next_date
        );
        self.cube
    }
}

fn file_tag(activity: FileActivity, from: Location, to: Location) -> FileTag {
    match (activity, from, to) {
        (FileActivity::Open, Location::Local, _) => FileTag::OpenLocal,
        (FileActivity::Open, Location::Remote, _) => FileTag::OpenRemote,
        (FileActivity::Write, _, Location::Local) => FileTag::WriteLocal,
        (FileActivity::Write, _, Location::Remote) => FileTag::WriteRemote,
        (FileActivity::Copy, Location::Local, Location::Remote) => FileTag::CopyLr,
        (FileActivity::Copy, Location::Remote, Location::Local) => FileTag::CopyRl,
        (FileActivity::Delete, _, _) => FileTag::Delete,
        (FileActivity::Copy, _, _) => FileTag::Other,
    }
}

fn file_feature(tag: FileTag) -> Option<usize> {
    match tag {
        FileTag::OpenLocal => Some(2),
        FileTag::OpenRemote => Some(3),
        FileTag::WriteLocal => Some(4),
        FileTag::WriteRemote => Some(5),
        FileTag::CopyLr => Some(6),
        FileTag::CopyRl => Some(7),
        FileTag::Delete | FileTag::Other => None,
    }
}

fn upload_type_index(ft: FileType) -> Option<usize> {
    FileType::upload_feature_order().iter().position(|&x| x == ft)
}

/// Extracts the CERT feature cube from a finalized [`LogStore`].
pub fn extract_cert_features(
    store: &LogStore,
    users: usize,
    start: Date,
    end: Date,
    semantics: CountSemantics,
) -> FeatureCube {
    let _span = acobe_obs::span!("extraction");
    acobe_obs::counter("features/events_ingested").add(store.len() as u64);
    acobe_obs::counter("features/days_ingested").add(end.days_since(start).max(0) as u64);
    let mut ex = CertExtractor::new(users, start, end, semantics);
    for date in start.range_to(end) {
        ex.ingest_day(date, store.day(date));
    }
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::event::*;
    use acobe_logs::ids::{DomainId, FileId, HostId, UserId};

    fn day(n: u32) -> Date {
        Date::from_ymd(2010, 1, n)
    }

    fn device(d: Date, hour: u32, user: u32, host: u32) -> LogEvent {
        LogEvent::Device(DeviceEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            host: HostId(host),
            activity: DeviceActivity::Connect,
        })
    }

    fn upload(d: Date, hour: u32, user: u32, domain: u32, ft: FileType) -> LogEvent {
        LogEvent::Http(HttpEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            domain: DomainId(domain),
            activity: HttpActivity::Upload,
            filetype: ft,
            success: true,
        })
    }

    fn file_op(d: Date, hour: u32, user: u32, file: u32) -> LogEvent {
        LogEvent::File(FileEvent {
            ts: d.at(hour, 0, 0),
            user: UserId(user),
            host: HostId(0),
            file: FileId(file),
            activity: FileActivity::Copy,
            from: Location::Local,
            to: Location::Remote,
        })
    }

    #[test]
    fn device_connection_and_new_host() {
        let mut ex = CertExtractor::new(1, day(1), day(4), CountSemantics::Plain);
        ex.ingest_day(day(1), &[device(day(1), 9, 0, 5), device(day(1), 10, 0, 5)]);
        ex.ingest_day(day(2), &[device(day(2), 9, 0, 5), device(day(2), 21, 0, 6)]);
        ex.ingest_day(day(3), &[]);
        let cube = ex.finish();
        // Day 1: two connections, both to host 5 which is new all day.
        assert_eq!(cube.get(0, day(1), 0, 0), 2.0);
        assert_eq!(cube.get(0, day(1), 0, 1), 2.0);
        // Day 2 working: host 5 is now known.
        assert_eq!(cube.get(0, day(2), 0, 0), 1.0);
        assert_eq!(cube.get(0, day(2), 0, 1), 0.0);
        // Day 2 off-hours: host 6 is new.
        assert_eq!(cube.get(0, day(2), 1, 0), 1.0);
        assert_eq!(cube.get(0, day(2), 1, 1), 1.0);
    }

    #[test]
    fn http_upload_features_and_new_op() {
        let mut ex = CertExtractor::new(1, day(1), day(3), CountSemantics::Plain);
        ex.ingest_day(
            day(1),
            &[
                upload(day(1), 9, 0, 100, FileType::Doc),
                upload(day(1), 10, 0, 100, FileType::Doc),
                upload(day(1), 11, 0, 101, FileType::Zip),
            ],
        );
        ex.ingest_day(day(2), &[upload(day(2), 9, 0, 100, FileType::Doc)]);
        let cube = ex.finish();
        // Day 1: upload-doc = 2 (plain counts). new-op counts *operations* on
        // pairs unseen before day d, so both (doc,100) uploads and the
        // (zip,101) upload all count: 3.
        assert_eq!(cube.get(0, day(1), 0, 9), 2.0);
        assert_eq!(cube.get(0, day(1), 0, 14), 1.0); // zip
        assert_eq!(cube.get(0, day(1), 0, 15), 3.0);
        // Day 2: pair now known, no new-op.
        assert_eq!(cube.get(0, day(2), 0, 9), 1.0);
        assert_eq!(cube.get(0, day(2), 0, 15), 0.0);
    }

    #[test]
    fn novel_only_semantics_suppresses_repeats() {
        let mut ex = CertExtractor::new(1, day(1), day(3), CountSemantics::NovelOnly);
        ex.ingest_day(
            day(1),
            &[
                upload(day(1), 9, 0, 100, FileType::Doc),
                upload(day(1), 10, 0, 100, FileType::Doc),
            ],
        );
        ex.ingest_day(day(2), &[upload(day(2), 9, 0, 100, FileType::Doc)]);
        let cube = ex.finish();
        // Both day-1 uploads are on a pair unseen before day 1.
        assert_eq!(cube.get(0, day(1), 0, 9), 2.0);
        // Day 2: known pair, not counted at all.
        assert_eq!(cube.get(0, day(2), 0, 9), 0.0);
    }

    #[test]
    fn file_copy_features() {
        let mut ex = CertExtractor::new(1, day(1), day(3), CountSemantics::Plain);
        ex.ingest_day(day(1), &[file_op(day(1), 9, 0, 7), file_op(day(1), 10, 0, 7)]);
        ex.ingest_day(day(2), &[file_op(day(2), 9, 0, 7)]);
        let cube = ex.finish();
        assert_eq!(cube.get(0, day(1), 0, 6), 2.0); // copy local->remote
        assert_eq!(cube.get(0, day(1), 0, 8), 2.0); // both ops on a new pair
        assert_eq!(cube.get(0, day(2), 0, 8), 0.0);
    }

    #[test]
    fn visits_and_downloads_ignored() {
        let mut ex = CertExtractor::new(1, day(1), day(2), CountSemantics::Plain);
        let visit = LogEvent::Http(HttpEvent {
            ts: day(1).at(9, 0, 0),
            user: UserId(0),
            domain: DomainId(5),
            activity: HttpActivity::Visit,
            filetype: FileType::Other,
            success: true,
        });
        ex.ingest_day(day(1), &[visit]);
        let cube = ex.finish();
        assert_eq!(cube.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "not all days ingested")]
    fn finish_requires_all_days() {
        let ex = CertExtractor::new(1, day(1), day(5), CountSemantics::Plain);
        let _ = ex.finish();
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;
    use acobe_logs::event::{DeviceActivity, DeviceEvent, LogEvent};
    use acobe_logs::ids::{HostId, UserId};

    /// Early-morning off-hours events (00:00-06:00) land in the off frame of
    /// the same civil day.
    #[test]
    fn early_morning_is_off_frame_of_same_day() {
        let d = Date::from_ymd(2010, 4, 1);
        let mut ex = CertExtractor::new(1, d, d.add_days(1), CountSemantics::Plain);
        let event = LogEvent::Device(DeviceEvent {
            ts: d.at(3, 0, 0),
            user: UserId(0),
            host: HostId(0),
            activity: DeviceActivity::Connect,
        });
        ex.ingest_day(d, &[event]);
        let cube = ex.finish();
        assert_eq!(cube.get(0, d, 1, 0), 1.0); // off frame
        assert_eq!(cube.get(0, d, 0, 0), 0.0);
    }

    /// Disconnects never count as connections.
    #[test]
    fn disconnects_not_counted() {
        let d = Date::from_ymd(2010, 4, 1);
        let mut ex = CertExtractor::new(1, d, d.add_days(1), CountSemantics::Plain);
        let event = LogEvent::Device(DeviceEvent {
            ts: d.at(10, 0, 0),
            user: UserId(0),
            host: HostId(0),
            activity: DeviceActivity::Disconnect,
        });
        ex.ingest_day(d, &[event]);
        assert_eq!(ex.finish().total(), 0.0);
    }
}
