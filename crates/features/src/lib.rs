//! Behavioral feature extraction for the ACOBE reproduction.
//!
//! Turns raw audit logs into the per-`(user, day, time-frame, feature)`
//! numeric measurements `m_{f,t,d}` that the paper's compound behavioral
//! deviation matrices are built from:
//!
//! * [`counts`] — the dense [`counts::FeatureCube`] measurement store,
//! * [`exact`] — partition-independent exact `f32` summation backing the
//!   group statistics (and the sharded engine's two-phase reduce),
//! * [`spec`] — feature catalogs and behavioral-aspect partitions,
//! * [`cert`] — the 16 evaluation features (device / file / HTTP, with
//!   "new-op" first-seen tracking, paper Section V-A3),
//! * [`baseline`] — the Liu et al. coarse features over 24 hourly frames
//!   (paper Section V-C),
//! * [`enterprise`] — the case-study features over Windows-event and proxy
//!   logs (paper Section VI-B).
//!
//! # Examples
//!
//! ```
//! use acobe_features::cert::{extract_cert_features, CountSemantics};
//! use acobe_synth::cert::{CertConfig, CertGenerator};
//!
//! let mut gen = CertGenerator::new(CertConfig::small(1));
//! let store = gen.build_store();
//! let cfg = gen.config();
//! let cube = extract_cert_features(
//!     &store,
//!     cfg.org.total_users(),
//!     cfg.start,
//!     cfg.end,
//!     CountSemantics::Plain,
//! );
//! assert!(cube.total() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod cert;
pub mod counts;
pub mod enterprise;
pub mod exact;
pub mod seq;
pub mod spec;

pub use counts::FeatureCube;
pub use spec::{AspectSpec, FeatureSet};
