//! Event-sequence anomaly features (paper Section VI-B1).
//!
//! For the *predictable* behavioral aspects the paper notes that "when
//! dependency or causality exists among consecutive events, we may predict
//! upcoming events based on a sequence of events" and points to DeepLog-style
//! models. This module provides the classical, dependency-free equivalent: a
//! per-user first-order Markov model over discrete event types, scored by
//! DeepLog's criterion — an event is anomalous when it is not among the
//! top-k most probable successors of its predecessor.
//!
//! The per-day anomalous-transition counts can be appended to the feature
//! cube as additional "predictable aspect" features.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A first-order Markov model over `u32` event symbols.
///
/// # Examples
///
/// ```
/// use acobe_features::seq::MarkovModel;
/// let mut m = MarkovModel::new();
/// m.train(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
/// // After 1 comes 2 — always.
/// assert!(m.is_expected(1, 2, 1));
/// assert!(!m.is_expected(1, 3, 1));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MarkovModel {
    transitions: HashMap<u32, HashMap<u32, u32>>,
    total_transitions: u64,
}

impl MarkovModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates transition counts from one event sequence.
    pub fn train(&mut self, sequence: &[u32]) {
        for pair in sequence.windows(2) {
            *self
                .transitions
                .entry(pair[0])
                .or_default()
                .entry(pair[1])
                .or_insert(0) += 1;
        }
        self.total_transitions += sequence.len().saturating_sub(1) as u64;
    }

    /// Number of transitions observed during training.
    pub fn total_transitions(&self) -> u64 {
        self.total_transitions
    }

    /// Probability of `next` following `prev` (0 for unseen states).
    pub fn probability(&self, prev: u32, next: u32) -> f64 {
        let Some(successors) = self.transitions.get(&prev) else {
            return 0.0;
        };
        let total: u32 = successors.values().sum();
        if total == 0 {
            return 0.0;
        }
        *successors.get(&next).unwrap_or(&0) as f64 / total as f64
    }

    /// The up-to-`k` most probable successors of `prev`, most probable first.
    pub fn top_k(&self, prev: u32, k: usize) -> Vec<u32> {
        let Some(successors) = self.transitions.get(&prev) else {
            return Vec::new();
        };
        let mut pairs: Vec<(u32, u32)> = successors.iter().map(|(&s, &c)| (s, c)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.into_iter().take(k).map(|(s, _)| s).collect()
    }

    /// DeepLog's criterion: is `next` among the top-`k` successors of `prev`?
    ///
    /// An unseen `prev` state makes every successor unexpected.
    pub fn is_expected(&self, prev: u32, next: u32, k: usize) -> bool {
        self.top_k(prev, k).contains(&next)
    }

    /// Scores a sequence: the number of transitions whose successor is not
    /// in the predecessor's top-`k`, and the total transition count.
    pub fn score_sequence(&self, sequence: &[u32], k: usize) -> SequenceScore {
        let mut anomalous = 0usize;
        let mut total = 0usize;
        for pair in sequence.windows(2) {
            total += 1;
            if !self.is_expected(pair[0], pair[1], k) {
                anomalous += 1;
            }
        }
        SequenceScore { anomalous, total }
    }
}

/// Result of scoring one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceScore {
    /// Transitions outside the model's top-k expectations.
    pub anomalous: usize,
    /// Total transitions scored.
    pub total: usize,
}

impl SequenceScore {
    /// Fraction of anomalous transitions (0 for empty sequences).
    pub fn miss_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.anomalous as f64 / self.total as f64
        }
    }
}

/// Per-user sequence models over a population, trained and scored day by day.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequenceProfiler {
    models: Vec<MarkovModel>,
    top_k: usize,
}

impl SequenceProfiler {
    /// Creates profilers for `users` users with DeepLog parameter `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(users: usize, top_k: usize) -> Self {
        assert!(top_k > 0, "top_k must be positive");
        SequenceProfiler { models: vec![MarkovModel::new(); users], top_k }
    }

    /// Trains user `u` on one day's event-type sequence.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn train_day(&mut self, user: usize, sequence: &[u32]) {
        self.models[user].train(sequence);
    }

    /// Scores user `u`'s day against their own history.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn score_day(&self, user: usize, sequence: &[u32]) -> SequenceScore {
        self.models[user].score_sequence(sequence, self.top_k)
    }

    /// Access a user's model.
    pub fn model(&self, user: usize) -> &MarkovModel {
        &self.models[user]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_deterministic_cycle() {
        let mut m = MarkovModel::new();
        m.train(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1]);
        assert_eq!(m.probability(1, 2), 1.0);
        assert_eq!(m.probability(2, 3), 1.0);
        assert_eq!(m.probability(1, 3), 0.0);
        assert_eq!(m.top_k(1, 2), vec![2]);
    }

    #[test]
    fn top_k_orders_by_frequency() {
        let mut m = MarkovModel::new();
        m.train(&[0, 1, 0, 1, 0, 1, 0, 2, 0, 3]);
        // After 0: 1 (3x), 2 (1x), 3 (1x).
        assert_eq!(m.top_k(0, 1), vec![1]);
        assert_eq!(m.top_k(0, 2), vec![1, 2]); // tie broken by symbol
        assert!(m.is_expected(0, 1, 1));
        assert!(!m.is_expected(0, 3, 2));
    }

    #[test]
    fn normal_replay_scores_clean() {
        let mut m = MarkovModel::new();
        let habitual = [5u32, 6, 7, 5, 6, 7, 5, 6, 7, 5, 6, 7];
        m.train(&habitual);
        let score = m.score_sequence(&habitual, 2);
        assert_eq!(score.anomalous, 0);
        assert_eq!(score.miss_rate(), 0.0);
    }

    #[test]
    fn malware_sequence_scores_dirty() {
        let mut m = MarkovModel::new();
        for _ in 0..10 {
            m.train(&[5, 6, 7, 5, 6, 7]);
        }
        // Zeus-like: unseen process-creation / registry pattern.
        let attack = [5u32, 99, 98, 97, 99, 98];
        let score = m.score_sequence(&attack, 2);
        assert!(score.miss_rate() > 0.8, "{score:?}");
    }

    #[test]
    fn unseen_state_is_unexpected() {
        let m = MarkovModel::new();
        assert!(!m.is_expected(1, 2, 3));
        assert_eq!(m.probability(1, 2), 0.0);
        assert!(m.top_k(1, 5).is_empty());
    }

    #[test]
    fn profiler_is_per_user() {
        let mut p = SequenceProfiler::new(2, 1);
        p.train_day(0, &[1, 2, 1, 2, 1, 2]);
        p.train_day(1, &[3, 4, 3, 4, 3, 4]);
        // User 0's habits are anomalous for user 1.
        assert_eq!(p.score_day(0, &[1, 2, 1, 2]).anomalous, 0);
        assert!(p.score_day(1, &[1, 2, 1, 2]).anomalous > 0);
        assert_eq!(p.model(0).total_transitions(), 5);
    }

    #[test]
    fn empty_sequences_are_neutral() {
        let mut m = MarkovModel::new();
        m.train(&[]);
        m.train(&[7]);
        assert_eq!(m.total_transitions(), 0);
        assert_eq!(m.score_sequence(&[], 3).miss_rate(), 0.0);
        assert_eq!(m.score_sequence(&[7], 3).total, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Miss rate is in [0, 1] and a trained sequence replayed against
        /// itself with a generous k is never fully anomalous.
        #[test]
        fn miss_rate_bounds(seq in prop::collection::vec(0u32..8, 2..60)) {
            let mut m = MarkovModel::new();
            m.train(&seq);
            let score = m.score_sequence(&seq, 8);
            prop_assert!(score.total == seq.len() - 1);
            prop_assert!((0.0..=1.0).contains(&score.miss_rate()));
            // With k >= alphabet size, every trained transition is expected.
            prop_assert_eq!(score.anomalous, 0);
        }

        /// Probabilities over successors of any state sum to ~1.
        #[test]
        fn successor_probabilities_normalize(seq in prop::collection::vec(0u32..6, 2..60)) {
            let mut m = MarkovModel::new();
            m.train(&seq);
            for prev in 0u32..6 {
                let total: f64 = (0u32..6).map(|next| m.probability(prev, next)).sum();
                prop_assert!(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9);
            }
        }
    }
}
