//! Feature and behavioral-aspect catalogs.
//!
//! A *behavioral aspect* is "a set of relevant behavioral features" (paper
//! Section IV-B); the ensemble trains one autoencoder per aspect.

use serde::{Deserialize, Serialize};

/// One named behavioral aspect: a contiguous-or-not set of feature indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AspectSpec {
    /// Aspect name (e.g. `device-access`).
    pub name: String,
    /// Indices into the feature catalog.
    pub features: Vec<usize>,
}

/// A complete feature catalog with its aspect partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Feature names, index-aligned with the extractor's cube.
    pub names: Vec<String>,
    /// Aspect partition (aspects may overlap in principle; ours do not).
    pub aspects: Vec<AspectSpec>,
}

impl FeatureSet {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the catalog has no features.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up an aspect by name.
    pub fn aspect(&self, name: &str) -> Option<&AspectSpec> {
        self.aspects.iter().find(|a| a.name == name)
    }

    /// A single aspect covering every feature — the paper's "All-in-1"
    /// ablation (Section V-B3).
    pub fn all_in_one(&self) -> FeatureSet {
        FeatureSet {
            names: self.names.clone(),
            aspects: vec![AspectSpec {
                name: "all".to_string(),
                features: (0..self.names.len()).collect(),
            }],
        }
    }
}

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// The evaluation feature catalog (paper Section V-A3): 16 features in three
/// aspects over CERT-style logs.
///
/// Feature indices:
/// `0` device.connection, `1` device.new-host-connection,
/// `2..8` file open/write/copy direction features, `8` file.new-op,
/// `9..15` http upload-{doc,exe,jpg,pdf,txt,zip}, `15` http.new-op.
pub fn cert_feature_set() -> FeatureSet {
    FeatureSet {
        names: strings(&[
            "device.connection",
            "device.new-host-connection",
            "file.open-from-local",
            "file.open-from-remote",
            "file.write-to-local",
            "file.write-to-remote",
            "file.copy-local-to-remote",
            "file.copy-remote-to-local",
            "file.new-op",
            "http.upload-doc",
            "http.upload-exe",
            "http.upload-jpg",
            "http.upload-pdf",
            "http.upload-txt",
            "http.upload-zip",
            "http.new-op",
        ]),
        aspects: vec![
            AspectSpec { name: "device-access".into(), features: vec![0, 1] },
            AspectSpec { name: "file-access".into(), features: (2..9).collect() },
            AspectSpec { name: "http-access".into(), features: (9..16).collect() },
        ],
    }
}

/// The Baseline (Liu et al. 2018) catalog: coarse unweighted activity counts
/// in four aspects (device, file, HTTP, logon), measured over 24 hourly
/// time frames (paper Section V-C).
pub fn baseline_feature_set() -> FeatureSet {
    FeatureSet {
        names: strings(&[
            "device.connect",
            "device.disconnect",
            "file.open",
            "file.write",
            "file.copy",
            "file.delete",
            "http.visit",
            "http.download",
            "http.upload",
            "logon.logon",
            "logon.logoff",
        ]),
        aspects: vec![
            AspectSpec { name: "device".into(), features: vec![0, 1] },
            AspectSpec { name: "file".into(), features: (2..6).collect() },
            AspectSpec { name: "http".into(), features: (6..9).collect() },
            AspectSpec { name: "logon".into(), features: (9..11).collect() },
        ],
    }
}

/// The enterprise case-study catalog (paper Section VI-B): four predictable
/// aspects (File / Command / Config / Resource, three features each) plus the
/// statistical HTTP and Logon aspects.
pub fn enterprise_feature_set() -> FeatureSet {
    FeatureSet {
        names: strings(&[
            "file.events",
            "file.unique",
            "file.new",
            "command.events",
            "command.unique",
            "command.new",
            "config.events",
            "config.unique",
            "config.new",
            "resource.events",
            "resource.unique",
            "resource.new",
            "http.success",
            "http.success-new-domain",
            "http.failure",
            "http.failure-new-domain",
            "logon.success",
            "logon.failure",
            "logon.new-host",
            "logon.distinct-hosts",
        ]),
        aspects: vec![
            AspectSpec { name: "file".into(), features: vec![0, 1, 2] },
            AspectSpec { name: "command".into(), features: vec![3, 4, 5] },
            AspectSpec { name: "config".into(), features: vec![6, 7, 8] },
            AspectSpec { name: "resource".into(), features: vec![9, 10, 11] },
            AspectSpec { name: "http".into(), features: vec![12, 13, 14, 15] },
            AspectSpec { name: "logon".into(), features: vec![16, 17, 18, 19] },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cert_set_shape() {
        let fs = cert_feature_set();
        assert_eq!(fs.len(), 16);
        assert_eq!(fs.aspects.len(), 3);
        assert_eq!(fs.aspect("device-access").unwrap().features, vec![0, 1]);
        assert_eq!(fs.aspect("file-access").unwrap().features.len(), 7);
        assert_eq!(fs.aspect("http-access").unwrap().features.len(), 7);
    }

    #[test]
    fn aspects_partition_cert_features() {
        let fs = cert_feature_set();
        let mut covered = vec![false; fs.len()];
        for a in &fs.aspects {
            for &f in &a.features {
                assert!(!covered[f], "feature {f} in two aspects");
                covered[f] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn all_in_one_merges() {
        let fs = cert_feature_set().all_in_one();
        assert_eq!(fs.aspects.len(), 1);
        assert_eq!(fs.aspects[0].features.len(), 16);
    }

    #[test]
    fn baseline_set_shape() {
        let fs = baseline_feature_set();
        assert_eq!(fs.len(), 11);
        assert_eq!(fs.aspects.len(), 4);
        assert!(fs.aspect("logon").is_some());
    }

    #[test]
    fn enterprise_set_shape() {
        let fs = enterprise_feature_set();
        assert_eq!(fs.len(), 20);
        assert_eq!(fs.aspects.len(), 6);
        assert_eq!(fs.aspect("http").unwrap().features.len(), 4);
    }
}
