//! Intra-day flush-cadence identity: splitting a day's events into any
//! number of in-order sub-day flushes — with provisional scoring between
//! flushes and an optional mid-day checkpoint save/resume — must leave every
//! committed artifact byte-identical to the daily (single-flush) path:
//! day-close scores, investigation lists, drained alerts, and the final
//! on-disk checkpoint. Provisional output is advisory only.

use std::sync::OnceLock;

use acobe::alert::AlertPolicy;
use acobe::config::AcobeConfig;
use acobe::engine::{DayScores, DetectionEngine, EngineCheckpoint};
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::cert::{extract_cert_features, route_day_slabs, CountSemantics, DayExtractor};
use acobe_features::spec::cert_feature_set;
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;
use acobe_obs::alert::Alert;
use acobe_synth::cert::{CertConfig, CertGenerator};
use proptest::prelude::*;

/// Days scored after the training horizon in every case.
const SCORE_DAYS: i64 = 4;

/// The expensive, deterministic part shared by every proptest case: a small
/// synthetic CERT dataset, a pipeline fitted on its training window, and the
/// resulting engine reset to streaming mode and warmed through `train_end`
/// (the exact `acobe stream` training flow).
struct Fixture {
    users: usize,
    train_end: Date,
    /// Trained monolith checkpoint, warmed through `train_end`.
    checkpoint: EngineCheckpoint,
    /// Matching extractor whose expected next date is `train_end`.
    extractor: DayExtractor,
    store: LogStore,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut gen = CertGenerator::new(CertConfig::small(11));
        let store = gen.build_store();
        let cfg = gen.config().clone();
        let users = cfg.org.total_users();
        let start = cfg.start;
        let train_end = start.add_days(24);
        let groups: Vec<Vec<usize>> = gen
            .directory()
            .departments()
            .map(|d| gen.directory().members(d).iter().map(|u| u.index()).collect())
            .collect();
        let cube = extract_cert_features(&store, users, start, train_end, CountSemantics::Plain);
        let mut pipe = AcobePipeline::new(
            cube,
            cert_feature_set(),
            &groups,
            AcobeConfig::tiny().with_critic_n(2),
        )
        .expect("pipeline");
        pipe.fit(start, train_end).expect("fit");
        let mut engine = pipe.into_engine();
        engine.reset_stream();
        let mut extractor = DayExtractor::new(users, start, CountSemantics::Plain);
        let mut d = start;
        while d < train_end {
            let flat = extractor.ingest_day(d, store.day(d)).expect("extract");
            engine.warm_day(d, &flat).expect("warm");
            d = d.add_days(1);
        }
        let checkpoint = engine.snapshot();
        Fixture { users, train_end, checkpoint, extractor, store }
    })
}

fn temp_dir(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("acobe_intraday_{}_{name}_{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh sharded engine restored from the fixture checkpoint with the
/// default alert policy — the state both twins start every case from.
fn fresh_engine(shards: usize) -> ShardedEngine {
    let fx = fixture();
    let engine = DetectionEngine::restore(fx.checkpoint.clone()).expect("restore");
    let mut engine = ShardedEngine::from_engine(engine, shards).expect("shard");
    engine.set_alert_policy(Some(AlertPolicy::default()));
    engine
}

/// Everything the daily path commits, collected for comparison.
struct Committed {
    scores: Vec<Option<DayScores>>,
    investigations: Vec<String>,
    alerts: String,
}

fn collect_day(
    engine: &mut ShardedEngine,
    scores: Option<DayScores>,
    out: &mut Committed,
    alerts: &mut Vec<Alert>,
) {
    out.investigations
        .push(serde_json::to_string(&engine.daily_investigation(2, 1)).expect("json"));
    out.scores.push(scores);
    alerts.extend(engine.take_alerts());
}

/// Reference run: one flush per day, exactly the pre-intraday pipeline.
fn run_daily(shards: usize, dir: &std::path::Path) -> Committed {
    let fx = fixture();
    let mut engine = fresh_engine(shards);
    let mut ex = fx.extractor.clone();
    let mut out =
        Committed { scores: Vec::new(), investigations: Vec::new(), alerts: String::new() };
    let mut alerts = Vec::new();
    for i in 0..SCORE_DAYS {
        let date = fx.train_end.add_days(i);
        let scores = engine.ingest_day_events(&mut ex, date, fx.store.day(date)).expect("ingest");
        collect_day(&mut engine, scores, &mut out, &mut alerts);
    }
    out.alerts = serde_json::to_string(&alerts).expect("json");
    engine.save(dir).expect("save");
    out
}

/// Scales raw proptest cut points (0..1000) onto an event slice, yielding
/// in-order flush boundaries (possibly empty or duplicated — both legal).
fn flush_bounds(cuts: &[usize], n: usize) -> Vec<usize> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c * n / 1000).collect();
    bounds.sort_unstable();
    bounds.push(n);
    bounds
}

/// Flushed run: each day's events split at the case's cut points, with a
/// provisional score after every flush and — on the chosen flush of the
/// chosen day — a full checkpoint save, reload, and ODAY-restore resume
/// simulating a mid-day crash.
fn run_flushed(
    shards: usize,
    day_cuts: &[Vec<usize>],
    save_day: usize,
    save_flush: usize,
    dir: &std::path::Path,
    mid_dir: &std::path::Path,
) -> Committed {
    let fx = fixture();
    let features = cert_feature_set().len();
    let mut engine = fresh_engine(shards);
    let mut ex = fx.extractor.clone();
    let mut out =
        Committed { scores: Vec::new(), investigations: Vec::new(), alerts: String::new() };
    let mut alerts = Vec::new();
    for i in 0..SCORE_DAYS {
        let date = fx.train_end.add_days(i);
        let events = fx.store.day(date);
        // The sidecar a real deployment would have persisted at the last day
        // boundary — the state a crash rewinds the extractor to.
        let boundary_snapshot = ex.clone();
        let cuts = &day_cuts[i as usize];
        let bounds = flush_bounds(cuts, events.len());
        let mut consumed = 0usize;
        for (flush, &end) in bounds.iter().enumerate() {
            ex.push_events(date, &events[consumed..end]).expect("push");
            consumed = end;
            let open = ex.open_day().expect("open day");
            let measurements = open.measurements_so_far().to_vec();
            engine
                .ingest_partial(date, &measurements, open.events())
                .expect("partial");
            if i as usize == save_day && flush == save_flush.min(bounds.len() - 1) {
                // Mid-day crash: save with the ODAY section, reload, and
                // restore the open day into a boundary-fresh extractor.
                engine.set_open_day(ex.open_day().cloned());
                engine.save(mid_dir).expect("mid save");
                let mut resumed = ShardedEngine::load(mid_dir, shards).expect("mid load");
                resumed.set_alert_policy(Some(AlertPolicy::default()));
                let open = resumed.take_open_day().expect("ODAY section");
                let mut ex2 = boundary_snapshot.clone();
                ex2.restore_open_day(open).expect("restore open day");
                engine = resumed;
                ex = ex2;
            }
        }
        let flat = ex.close_day().expect("close");
        let slabs = route_day_slabs(
            &flat,
            fx.users,
            features,
            &engine.assignment().to_vec(),
            engine.shard_count(),
        );
        let scores = engine.ingest_day_slabs(date, &slabs).expect("ingest");
        // Provisional alerts are advisory: every one raised this day must
        // resolve at close, and none may leak a committed al- id prefix.
        for resolution in engine.take_provisional_resolutions() {
            assert!(resolution.alert.id.starts_with("pv-"), "{:?}", resolution.alert.id);
        }
        collect_day(&mut engine, scores, &mut out, &mut alerts);
    }
    out.alerts = serde_json::to_string(&alerts).expect("json");
    // Mirror the CLI save funnel: no open day at a boundary save, so any
    // staged mid-day ODAY must not leak into the final checkpoint.
    engine.set_open_day(ex.open_day().cloned());
    engine.save(dir).expect("save");
    out
}

fn checkpoint_files(shards: usize) -> Vec<String> {
    let mut files = vec!["manifest.acb".to_string()];
    files.extend((0..shards).map(|s| format!("shard_{s:03}.acb")));
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any flush cadence, any shard count, any mid-day save point: the
    /// committed artifacts match the daily path byte for byte.
    #[test]
    fn flush_cadence_commits_identically(
        shards in prop_oneof![Just(1usize), Just(4usize)],
        day_cuts in prop::collection::vec(prop::collection::vec(0usize..1000, 0..4), SCORE_DAYS as usize),
        save_day in 0..SCORE_DAYS as usize,
        save_flush in 0usize..4,
        case in 0u64..u64::MAX,
    ) {
        let dir_daily = temp_dir("daily", case);
        let dir_flushed = temp_dir("flushed", case);
        let dir_mid = temp_dir("mid", case);
        let daily = run_daily(shards, &dir_daily);
        let flushed =
            run_flushed(shards, &day_cuts, save_day, save_flush, &dir_flushed, &dir_mid);

        prop_assert_eq!(&daily.scores, &flushed.scores);
        prop_assert_eq!(&daily.investigations, &flushed.investigations);
        prop_assert_eq!(&daily.alerts, &flushed.alerts);
        for file in checkpoint_files(shards) {
            let a = std::fs::read(dir_daily.join(&file)).expect("daily file");
            let b = std::fs::read(dir_flushed.join(&file)).expect("flushed file");
            prop_assert_eq!(a, b, "{} diverged", file);
        }
        let _ = std::fs::remove_dir_all(&dir_daily);
        let _ = std::fs::remove_dir_all(&dir_flushed);
        let _ = std::fs::remove_dir_all(&dir_mid);
    }
}
