//! End-to-end causal-tracing test: one day ingested through a K-shard
//! [`ShardedEngine`] must leave exactly one connected, well-formed span
//! tree in the trace stream — every per-shard phase span reaches the
//! day-root span through its parent chain even though the phases run on
//! pool workers — and that tree must export as valid Chrome/Perfetto
//! trace-event JSON.

use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::shard::ShardedEngine;
use acobe_features::spec::cert_feature_set;
use acobe_logs::time::Date;
use acobe_obs::event::{self, EventKind};
use acobe_obs::perfetto;
use acobe_obs::TraceEvent;
use proptest::prelude::*;
use std::sync::atomic::{AtomicI32, Ordering};

/// Each case ingests a distinct date so its events are identifiable in the
/// shared process-wide ring even when cases interleave.
static NEXT_DAY: AtomicI32 = AtomicI32::new(0);

/// Ingests one warm day through a freshly built K-shard engine and returns
/// the day string plus the trace events belonging to that day's trace.
fn ingest_one_day(users: usize, shards: usize) -> (String, Vec<TraceEvent>) {
    let feature_set = cert_feature_set();
    let frames = 2;
    let features = feature_set.len();
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks((users / 2).max(1))
        .map(|c| c.to_vec())
        .collect();
    let start =
        Date::from_ymd(2010, 1, 1).add_days(NEXT_DAY.fetch_add(1, Ordering::Relaxed));
    let engine = DetectionEngine::new(
        users,
        frames,
        start,
        feature_set,
        &groups,
        AcobeConfig::fast(),
    )
    .expect("engine");
    let mut engine = ShardedEngine::from_engine(engine, shards).expect("shard");

    let day: Vec<f32> = (0..users * frames * features)
        .map(|i| ((i * 31) % 13) as f32 * 0.5)
        .collect();
    engine.warm_day(start, &day).expect("ingest");
    let day_str = start.to_string();

    let all = event::recent(usize::MAX);
    let root = all
        .iter()
        .find(|e| {
            e.kind == EventKind::SpanEnter
                && e.name == "engine/warm_day"
                && e.fields.iter().any(|(k, v)| k == "day" && v == &day_str)
        })
        .expect("day-root span enter still in the ring");
    let trace = root.trace.expect("root span carries a trace id");
    let ours: Vec<TraceEvent> =
        all.into_iter().filter(|e| e.trace == Some(trace)).collect();
    (day_str, ours)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any roster size and shard count, a warm day forms a single
    /// connected span tree: one root, one `shard_ingest` span per shard
    /// (each tagged with its shard index), no dangling parents, no cycles
    /// — and the exported Chrome JSON passes the format checker.
    #[test]
    fn sharded_day_exports_one_well_formed_tree(
        users in 8usize..=32,
        shards in 2usize..=4,
    ) {
        let (day_str, ours) = ingest_one_day(users, shards);

        let stats = perfetto::validate_span_tree(&ours)
            .expect("day trace is a well-formed forest");
        prop_assert_eq!(stats.roots, 1, "one day = one tree: {:?}", ours);

        let shard_spans: Vec<&TraceEvent> = ours
            .iter()
            .filter(|e| {
                e.kind == EventKind::SpanEnter && e.name.contains("shard_ingest")
            })
            .collect();
        prop_assert_eq!(shard_spans.len(), shards);
        let mut shard_tags: Vec<String> = shard_spans
            .iter()
            .filter_map(|e| {
                e.fields.iter().find(|(k, _)| k == "shard").map(|(_, v)| v.clone())
            })
            .collect();
        shard_tags.sort();
        shard_tags.dedup();
        prop_assert_eq!(shard_tags.len(), shards, "every shard span tags its index");

        // The day's subtree selector recovers the whole tree from the root
        // tag alone — nothing in this trace is orphaned outside it.
        let subtree = perfetto::day_subtree(&ours, &day_str);
        let enters = |evs: &[TraceEvent]| {
            evs.iter().filter(|e| e.kind == EventKind::SpanEnter).count()
        };
        prop_assert_eq!(enters(&subtree), enters(&ours));

        // And the export is Perfetto-loadable.
        let text = perfetto::render(&subtree);
        let checked = perfetto::validate(&text).expect("export validates");
        prop_assert!(checked >= 1 + shards);
    }
}

/// Two consecutive days produce two disjoint trees: the day filter on one
/// date never captures the other day's spans.
#[test]
fn consecutive_days_are_separate_trees() {
    let users = 12;
    let feature_set = cert_feature_set();
    let frames = 2;
    let features = feature_set.len();
    let groups = vec![(0..users).collect::<Vec<_>>()];
    let start = Date::from_ymd(2031, 6, 1);
    let engine = DetectionEngine::new(
        users,
        frames,
        start,
        feature_set,
        &groups,
        AcobeConfig::fast(),
    )
    .expect("engine");
    let mut engine = ShardedEngine::from_engine(engine, 2).expect("shard");
    let day: Vec<f32> = (0..users * frames * features).map(|i| (i % 7) as f32).collect();
    engine.warm_day(start, &day).expect("day 1");
    engine.warm_day(start.add_days(1), &day).expect("day 2");

    let all = event::recent(usize::MAX);
    let first = perfetto::day_subtree(&all, &start.to_string());
    let second = perfetto::day_subtree(&all, &start.add_days(1).to_string());
    assert!(!first.is_empty() && !second.is_empty());
    let first_ids: std::collections::BTreeSet<u64> = first.iter().map(|e| e.id).collect();
    assert!(
        second.iter().all(|e| !first_ids.contains(&e.id)),
        "day subtrees overlap"
    );
    // Each day's tree carries its own trace id throughout.
    for tree in [&first, &second] {
        let trace = tree[0].trace.expect("rooted");
        assert!(tree.iter().all(|e| e.trace == Some(trace)));
    }
}
