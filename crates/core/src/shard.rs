//! The sharded detection engine: partitioned per-user state with an exact
//! global group reduce.
//!
//! A [`ShardedEngine`] owns `N` [`EngineShard`]s, each holding the rolling
//! deviation histories, [`DayRing`] matrix buffers, models, and score state
//! for a stable hash-partitioned subset of users. Every ingested day runs in
//! three explicit phases:
//!
//! 1. **Local accumulation** — each shard, in parallel on the
//!    [`acobe_nn::pool`], gathers its users' measurements, folds them into
//!    its rolling deviation state, and produces *partial* per-group sums as
//!    [`ExactF32Sum`] integer accumulators.
//! 2. **Global group reduce** — the orchestrator merges the partial sums and
//!    rounds once, producing org-wide group-average measurements that are
//!    bit-identical to the unsharded [`DetectionEngine`]: integer
//!    accumulation is associative and commutative, so neither shard count
//!    nor roster partitioning can change the result (DESIGN.md §8).
//! 3. **Per-shard finalize** — each shard assembles its users' compound
//!    matrix rows (local ring + shared group ring), scores them with its own
//!    copy of the trained models, and emits local scores that the
//!    orchestrator scatters into the global per-day score vector; the global
//!    critic then ranks users exactly as the monolith would.
//!
//! Checkpoints are a directory: a manifest (shared config, assignment, group
//! state, model snapshots) plus one file per shard. A shard file that fails
//! to parse or validate is *quarantined* — its users drop out of scoring
//! (group means degrade to the live-member average) while the remaining
//! shards keep the stream going.

use crate::alert::{AlertPolicy, AlertState};
use crate::checkpoint::{
    self, ChainEntry, CheckpointFormat, CheckpointOptions, DeltaTracker, PendingDay, SaveKind,
    SaveReport, CHAIN_FILE, CHECKPOINT_EDGES, MANIFEST_FILE_V3,
};
use crate::config::{AcobeConfig, Representation};
use crate::critic::{investigate_from_scores, Investigation};
use crate::engine::{
    counts_block_into, resolve_provisional_alerts, ring_block_into, DayRing, DayScores,
    DetectionEngine, EngineCheckpoint, ProvisionalResolution, ProvisionalScores, INGEST_EDGES,
    SCORE_HISTORY_DAYS,
};
use crate::error::AcobeError;
use crate::streaming::RollingDeviation;
use acobe_features::cert::OpenDay;
use acobe_features::exact::ExactF32Sum;
use acobe_features::spec::FeatureSet;
use acobe_logs::time::Date;
use acobe_nn::autoencoder::Autoencoder;
use acobe_nn::serialize::{restore as restore_model, SavedAutoencoder};
use acobe_nn::tensor::Matrix;
use acobe_obs::alert::{Alert, AlertTrigger};
use acobe_obs::{DriftConfig, DriftMonitor, HealthEvent, ShardStatus};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Version carried inside shard checkpoints (the JSON layout is v2; the v3
/// binary container re-stamps this same logical version on decode).
pub(crate) const SHARD_CHECKPOINT_VERSION: u32 = 2;

/// v2 manifest file name inside a sharded checkpoint directory.
const MANIFEST_FILE: &str = "manifest.json";

/// SplitMix64 finalizer — a seedless, stable 64-bit mix. The user→shard
/// assignment must never change across versions or runs, or restored
/// checkpoints would scatter state to the wrong shards.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable shard assignment for a roster: `assign[user] = splitmix64(user) %
/// shards`. Deterministic and independent of everything but the two inputs.
pub fn assign_users(users: usize, shards: usize) -> Vec<u32> {
    assert!(shards > 0, "shards must be positive");
    (0..users).map(|u| (splitmix64(u as u64) % shards as u64) as u32).collect()
}

/// Per-shard rosters (ascending user order) derived from an assignment.
fn rosters_from(assign: &[u32], shards: usize) -> Vec<Vec<usize>> {
    let mut rosters = vec![Vec::new(); shards];
    for (u, &s) in assign.iter().enumerate() {
        rosters[s as usize].push(u);
    }
    rosters
}

fn io_error(path: &Path, source: std::io::Error) -> AcobeError {
    AcobeError::Io { path: path.display().to_string(), source }
}

/// One day of measurements, either full-width or pre-routed per shard.
#[derive(Clone, Copy)]
enum DayInput<'a> {
    /// Flattened `[user][frame][feature]` for the whole organization.
    Full(&'a [f32]),
    /// One slab per shard, flattened `[local user][frame][feature]` in
    /// ascending global user order.
    Slabs(&'a [Vec<f32>]),
}

/// Immutable per-day facts shared by every shard's local accumulation.
struct DayContext {
    frames: usize,
    features: usize,
    /// `groups × frames × features` when group behavior is on, else 0.
    group_cells: usize,
    use_weights: bool,
    representation: Representation,
}

/// One shard's slice of the engine: rolling histories, matrix ring, models,
/// baselines, and recent scores for a hash-partitioned subset of users.
#[derive(Debug)]
pub struct EngineShard {
    /// Global user indices, ascending.
    users: Vec<usize>,
    /// Global group index per local user (`usize::MAX` when ungrouped).
    user_group: Vec<usize>,
    rolling: Option<RollingDeviation>,
    ring: DayRing,
    models: Vec<Autoencoder>,
    /// `baselines[aspect][local_user]` calibration divisors.
    baselines: Vec<Vec<f32>>,
    /// Recent daily scores, local columns only.
    score_history: Vec<DayScores>,
}

impl EngineShard {
    /// Extracts one shard's slice out of a monolithic engine.
    fn extract(
        engine: &DetectionEngine,
        roster: &[usize],
        chunk: usize,
        saved: &[SavedAutoencoder],
    ) -> Result<EngineShard, AcobeError> {
        let rolling = match (&engine.user_rolling, roster.is_empty()) {
            (Some(r), false) => Some(r.extract_entities(roster)),
            _ => None,
        };
        let models = if roster.is_empty() {
            Vec::new()
        } else {
            saved.iter().map(restore_model).collect::<Result<Vec<_>, _>>()?
        };
        Ok(EngineShard {
            users: roster.to_vec(),
            user_group: roster.iter().map(|&u| engine.user_group[u]).collect(),
            rolling,
            ring: engine.user_ring.extract_entities(roster, chunk),
            models,
            baselines: engine
                .baselines
                .iter()
                .map(|b| roster.iter().map(|&u| b[u]).collect())
                .collect(),
            score_history: engine
                .score_history
                .iter()
                .map(|d| DayScores {
                    date: d.date,
                    scores: d
                        .scores
                        .iter()
                        .map(|s| roster.iter().map(|&u| s[u]).collect())
                        .collect(),
                })
                .collect(),
        })
    }

    /// Phase 1: folds this shard's slab (flattened `[local user][frame]
    /// [feature]`) into the local rolling/ring state and returns the shard's
    /// partial per-group sums.
    fn accumulate(&mut self, slab: &[f32], ctx: &DayContext) -> Result<Vec<ExactF32Sum>, AcobeError> {
        let chunk = ctx.frames * ctx.features;
        if slab.len() != self.users.len() * chunk {
            return Err(AcobeError::WidthMismatch {
                expected: self.users.len() * chunk,
                found: slab.len(),
            });
        }
        let mut sums = vec![ExactF32Sum::new(); ctx.group_cells];
        if self.users.is_empty() {
            self.ring.push(Vec::new());
            return Ok(sums);
        }
        if ctx.group_cells > 0 {
            for (k, &g) in self.user_group.iter().enumerate() {
                let from = k * chunk;
                for i in 0..chunk {
                    sums[g * chunk + i].add(slab[from + i]);
                }
            }
        }
        match ctx.representation {
            Representation::Deviation => {
                let rolling = self.rolling.as_mut().expect("shard deviation state");
                let mut dev = rolling.push_day(slab)?;
                if ctx.use_weights {
                    for (s, w) in dev.sigma.iter_mut().zip(&dev.weights) {
                        *s *= w;
                    }
                }
                self.ring.push(dev.sigma);
            }
            Representation::SingleDayCounts => self.ring.push(slab.to_vec()),
        }
        Ok(sums)
    }

    /// Phase 3: assembles this shard's matrix rows (local ring + shared group
    /// ring), scores every aspect, calibrates, and appends the local day to
    /// the score history. Returns `scores[aspect][local_user]`.
    fn finalize_day(
        &mut self,
        date: Date,
        group_ring: Option<&DayRing>,
        feature_set: &FeatureSet,
        config: &AcobeConfig,
        frames: usize,
    ) -> Vec<Vec<f32>> {
        let scores = score_shard_rows(
            &mut self.models,
            &self.baselines,
            &self.user_group,
            &self.ring,
            group_ring,
            feature_set,
            config,
            frames,
        );
        self.score_history.push(DayScores { date, scores: scores.clone() });
        if self.score_history.len() > SCORE_HISTORY_DAYS {
            self.score_history.remove(0);
        }
        scores
    }

    /// One shard's read-only slab gather out of full-width measurements.
    fn gather_slab(&self, measurements: &[f32], chunk: usize) -> Vec<f32> {
        let mut slab = Vec::with_capacity(self.users.len() * chunk);
        for &u in &self.users {
            slab.extend_from_slice(&measurements[u * chunk..(u + 1) * chunk]);
        }
        slab
    }

    fn state_bytes(&self) -> usize {
        let (rolling, ring, baselines, history) = self.state_parts();
        rolling + ring + baselines + history
    }

    /// [`Shard::state_bytes`] broken out as
    /// `(rolling, ring, baselines, score history)`.
    fn state_parts(&self) -> (usize, usize, usize, usize) {
        let rolling = self.rolling.as_ref().map_or(0, |r| r.state_bytes());
        let baselines: usize =
            self.baselines.iter().map(|b| b.len() * std::mem::size_of::<f32>()).sum();
        let history: usize = self
            .score_history
            .iter()
            .flat_map(|d| d.scores.iter())
            .map(|s| s.len() * std::mem::size_of::<f32>())
            .sum();
        (rolling, self.ring.bytes(), baselines, history)
    }

    /// Heap bytes of this shard's model replicas (parameters + gradients +
    /// optimizer buffers; `&mut` because the tensor walk hands out mutable
    /// views).
    fn model_bytes(&mut self) -> usize {
        let mut bytes = 0usize;
        for model in &mut self.models {
            let net = model.net_mut();
            let params = net.param_count();
            let mut buffers = 0usize;
            net.visit_buffers(&mut |b| buffers += b.len());
            bytes += (params * 2 + buffers) * std::mem::size_of::<f32>();
        }
        bytes
    }
}

/// Matrix assembly + scoring for one shard's users against an explicit
/// local ring — the committed ring at day close, an overlay ring (committed
/// days plus the provisional day) for provisional scoring. Returns
/// `scores[aspect][local_user]`; the shard's score history is untouched.
#[allow(clippy::too_many_arguments)]
fn score_shard_rows(
    models: &mut [Autoencoder],
    baselines: &[Vec<f32>],
    user_group: &[usize],
    ring: &DayRing,
    group_ring: Option<&DayRing>,
    feature_set: &FeatureSet,
    config: &AcobeConfig,
    frames: usize,
) -> Vec<Vec<f32>> {
    let locals = user_group.len();
    let n_features = feature_set.len();
    let mut scores = Vec::with_capacity(models.len());
    if locals == 0 {
        scores.resize_with(models.len(), Vec::new);
        return scores;
    }
    for (aspect, model) in models.iter_mut().enumerate() {
        let features = &feature_set.aspects[aspect].features;
        let dim = config.matrix.input_dim(features.len(), frames);
        let mut batch = Matrix::zeros(locals, dim);
        let mut row = Vec::with_capacity(dim);
        for k in 0..locals {
            row.clear();
            match config.representation {
                Representation::Deviation => {
                    ring_block_into(
                        ring,
                        k,
                        features,
                        frames,
                        n_features,
                        config.matrix.matrix_days,
                        config.matrix.delta,
                        &mut row,
                    );
                    if let Some(gring) = group_ring {
                        ring_block_into(
                            gring,
                            user_group[k],
                            features,
                            frames,
                            n_features,
                            config.matrix.matrix_days,
                            config.matrix.delta,
                            &mut row,
                        );
                    }
                }
                Representation::SingleDayCounts => {
                    counts_block_into(ring, k, features, frames, n_features, &mut row);
                    if let Some(gring) = group_ring {
                        counts_block_into(
                            gring,
                            user_group[k],
                            features,
                            frames,
                            n_features,
                            &mut row,
                        );
                    }
                }
            }
            batch.row_mut(k).copy_from_slice(&row);
        }
        let mut errs = model.reconstruction_errors(&batch);
        if config.calibrate && !baselines.is_empty() {
            for (e, &b) in errs.iter_mut().zip(&baselines[aspect]) {
                *e /= b;
            }
        }
        scores.push(errs);
    }
    scores
}

/// A shard slot: live state, or a quarantine record for a shard whose
/// checkpoint failed to restore.
#[derive(Debug)]
enum ShardSlot {
    Live(Box<EngineShard>),
    Quarantined {
        /// Global user indices the dead shard owned.
        users: Vec<usize>,
        /// Why it was quarantined.
        error: AcobeError,
    },
}

/// Serialized shared state of a sharded checkpoint (`manifest.json` for v2,
/// the `manifest.acb` META/ASGN/… sections for v3 — see `crate::checkpoint`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ShardManifest {
    pub(crate) version: u32,
    pub(crate) config: AcobeConfig,
    pub(crate) feature_set: FeatureSet,
    pub(crate) groups: Vec<Vec<usize>>,
    pub(crate) user_group: Vec<usize>,
    pub(crate) users: usize,
    pub(crate) frames: usize,
    pub(crate) start: Date,
    pub(crate) next_date: Date,
    pub(crate) assign: Vec<u32>,
    pub(crate) shard_files: Vec<String>,
    pub(crate) group_rolling: Option<RollingDeviation>,
    pub(crate) group_ring: Option<DayRing>,
    pub(crate) models: Vec<SavedAutoencoder>,
    /// Drift-monitor trailing window (appended with a default so v2
    /// checkpoints written before alerting still parse).
    #[serde(default)]
    pub(crate) monitor: Option<DriftMonitor>,
    /// Alert-evaluation state, including the `next_seq` high-water mark.
    #[serde(default)]
    pub(crate) alert_state: AlertState,
    /// The intraday open-day accumulator captured at save time (the v3
    /// `ODAY` section), so a crash between sub-day flushes resumes without
    /// losing the open day. `None` on saves at a day boundary and on
    /// pre-intraday checkpoints.
    #[serde(default)]
    pub(crate) open_day: Option<OpenDay>,
}

impl ShardManifest {
    /// Shape checks for the shared state; per-shard files are validated (and
    /// quarantined) individually.
    fn validate(&self) -> Result<(), AcobeError> {
        fn corrupt(msg: String) -> AcobeError {
            AcobeError::CorruptCheckpoint(msg)
        }
        self.config.validate()?;
        if self.users == 0 || self.frames == 0 {
            return Err(corrupt("users and frames must be positive".into()));
        }
        if self.shard_files.is_empty() {
            return Err(corrupt("manifest lists no shard files".into()));
        }
        if self.assign.len() != self.users {
            return Err(corrupt(format!(
                "assignment has {} entries for {} users",
                self.assign.len(),
                self.users
            )));
        }
        let shards = self.shard_files.len();
        if let Some(&s) = self.assign.iter().find(|&&s| s as usize >= shards) {
            return Err(corrupt(format!("assignment references shard {s} of {shards}")));
        }
        if self.user_group.len() != self.users {
            return Err(corrupt(format!(
                "user_group has {} entries for {} users",
                self.user_group.len(),
                self.users
            )));
        }
        let features = self.feature_set.len();
        let aspects = self.feature_set.aspects.len();
        for aspect in &self.feature_set.aspects {
            if aspect.features.iter().any(|&f| f >= features) {
                return Err(corrupt(format!("aspect {} has out-of-range features", aspect.name)));
            }
        }
        if self.config.critic_n > aspects {
            return Err(corrupt(format!(
                "critic_n {} exceeds {aspects} aspects",
                self.config.critic_n
            )));
        }
        for (g, members) in self.groups.iter().enumerate() {
            if let Some(&u) = members.iter().find(|&&u| u >= self.users) {
                return Err(corrupt(format!("group {g} contains unknown user {u}")));
            }
        }
        let include_group = self.config.matrix.include_group;
        if include_group {
            if self.groups.is_empty() || self.groups.iter().any(|m| m.is_empty()) {
                return Err(corrupt("group behavior requires non-empty groups".into()));
            }
            if self.user_group.iter().any(|&g| g >= self.groups.len()) {
                return Err(corrupt("a user belongs to no known group".into()));
            }
        }
        let needs_dev = self.config.representation == Representation::Deviation;
        let group_series = self.groups.len() * self.frames * features;
        match (&self.group_rolling, needs_dev && include_group) {
            (Some(r), true) if r.series_count() != group_series => {
                return Err(corrupt(format!(
                    "group rolling state has {} series, expected {group_series}",
                    r.series_count()
                )));
            }
            (None, true) => return Err(corrupt("missing group rolling deviation state".into())),
            (Some(_), false) => return Err(corrupt("unexpected group rolling state".into())),
            _ => {}
        }
        let matrix_days = self.config.matrix.matrix_days;
        match (&self.group_ring, include_group) {
            (Some(ring), true) => {
                if ring.capacity() != matrix_days {
                    return Err(corrupt(format!(
                        "group ring capacity {} does not match matrix_days {matrix_days}",
                        ring.capacity()
                    )));
                }
                if !ring.days_have_width(group_series) {
                    return Err(corrupt(format!("group ring days must hold {group_series} values")));
                }
            }
            (None, true) => return Err(corrupt("missing group ring".into())),
            (Some(_), false) => return Err(corrupt("unexpected group ring".into())),
            _ => {}
        }
        if !self.models.is_empty() && self.models.len() != aspects {
            return Err(corrupt(format!(
                "{} model snapshots for {aspects} aspects",
                self.models.len()
            )));
        }
        if self.next_date.days_since(self.start) < 0 {
            return Err(corrupt(format!(
                "next_date {} precedes stream start {}",
                self.next_date, self.start
            )));
        }
        Ok(())
    }
}

/// Serialized state of one shard (`shard_NNN.json` for v2, `shard_NNN.acb`
/// for v3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ShardCheckpoint {
    pub(crate) version: u32,
    pub(crate) shard: usize,
    pub(crate) users: Vec<usize>,
    pub(crate) rolling: Option<RollingDeviation>,
    pub(crate) ring: DayRing,
    pub(crate) baselines: Vec<Vec<f32>>,
    pub(crate) score_history: Vec<DayScores>,
}

/// The sharded detection engine: an orchestrator over `N` [`EngineShard`]s
/// plus the shared group-behavior state.
///
/// Produces scores and investigation lists bit-identical to the monolithic
/// [`DetectionEngine`] it was built from — for any shard count — while every
/// per-user phase runs in parallel (see the module docs for the three-phase
/// ingest and DESIGN.md §8 for the exactness argument).
///
/// # Examples
///
/// ```
/// use acobe::config::AcobeConfig;
/// use acobe::engine::DetectionEngine;
/// use acobe::shard::ShardedEngine;
/// use acobe_features::spec::{AspectSpec, FeatureSet};
/// use acobe_logs::time::Date;
///
/// let fs = FeatureSet {
///     names: vec!["a".into(), "b".into()],
///     aspects: vec![AspectSpec { name: "all".into(), features: vec![0, 1] }],
/// };
/// let cfg = AcobeConfig::tiny().without_group().with_critic_n(1);
/// let start = Date::from_ymd(2010, 1, 1);
/// let engine = DetectionEngine::new(8, 2, start, fs, &[], cfg).unwrap();
/// let mut sharded = ShardedEngine::from_engine(engine, 4).unwrap();
/// assert_eq!(sharded.shard_count(), 4);
/// sharded.warm_day(start, &vec![0.0; sharded.day_width()]).unwrap();
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: AcobeConfig,
    feature_set: FeatureSet,
    groups: Vec<Vec<usize>>,
    user_group: Vec<usize>,
    users: usize,
    frames: usize,
    start: Date,
    next_date: Date,
    assign: Vec<u32>,
    slots: Vec<ShardSlot>,
    group_rolling: Option<RollingDeviation>,
    group_ring: Option<DayRing>,
    saved_models: Vec<SavedAutoencoder>,
    /// Live members per group — the divisor of the degraded group mean.
    /// Equals the full roster size while no shard is quarantined.
    live_group_counts: Vec<usize>,
    /// Drift thresholds for the score-distribution monitor.
    drift: DriftConfig,
    /// Per-aspect score-distribution sketches over the merged global scores
    /// (built lazily on the first scored day; checkpointed in the manifest).
    monitor: Option<DriftMonitor>,
    /// Health events raised since the last [`ShardedEngine::take_health_events`].
    pending_health: Vec<HealthEvent>,
    /// Alerting thresholds; `None` (the default) disables alert evaluation.
    alert_policy: Option<AlertPolicy>,
    /// Checkpointed alert-evaluation state (sequence high-water mark,
    /// watchlist baseline, dedup cooldowns, degraded-shard latch).
    alert_state: AlertState,
    /// Alerts raised since the last [`ShardedEngine::take_alerts`].
    pending_alerts: Vec<Alert>,
    /// Provisional alerts from the most recent [`ShardedEngine::ingest_partial`]
    /// of the still-open day; resolved (confirmed/retracted) when that day
    /// closes. Deliberately *not* part of the committed alert state.
    provisional_alerts: Vec<Alert>,
    /// Resolutions produced at day close, drained by
    /// [`ShardedEngine::take_provisional_resolutions`].
    provisional_resolutions: Vec<ProvisionalResolution>,
    /// Intraday open-day accumulator to persist in the next checkpoint's
    /// `ODAY` section. Set by the driver (via [`ShardedEngine::set_open_day`])
    /// just before a mid-day save; `None` at day boundaries.
    open_day: Option<OpenDay>,
    /// Delta-checkpoint book-keeping: present once delta saves are enabled
    /// (via [`ShardedEngine::save_checkpoint`] with a non-zero
    /// `delta_every`), buffering per-day encoded slabs between saves.
    delta_tracker: Option<DeltaTracker>,
}

impl ShardedEngine {
    /// Partitions a monolithic engine into `shards` hash-assigned shards.
    /// The engine may be anywhere in its lifecycle — untrained, trained,
    /// mid-stream — and the sharded engine continues the stream from exactly
    /// the same position with bit-identical outputs.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Config`] when `shards == 0` and
    /// [`AcobeError::Model`] when a model snapshot fails to round-trip.
    pub fn from_engine(mut engine: DetectionEngine, shards: usize) -> Result<Self, AcobeError> {
        if shards == 0 {
            return Err(AcobeError::Config("shards must be positive".into()));
        }
        let saved_models: Vec<SavedAutoencoder> =
            engine.models.iter_mut().map(acobe_nn::serialize::snapshot).collect();
        let assign = assign_users(engine.users, shards);
        let chunk = engine.frames * engine.feature_set.len();
        let mut slots = Vec::with_capacity(shards);
        for roster in &rosters_from(&assign, shards) {
            let shard = EngineShard::extract(&engine, roster, chunk, &saved_models)?;
            slots.push(ShardSlot::Live(Box::new(shard)));
        }
        let live_group_counts = live_counts(engine.groups.len(), &engine.user_group, &slots);
        let sharded = ShardedEngine {
            config: engine.config,
            feature_set: engine.feature_set,
            groups: engine.groups,
            user_group: engine.user_group,
            users: engine.users,
            frames: engine.frames,
            start: engine.start,
            next_date: engine.next_date,
            assign,
            slots,
            group_rolling: engine.group_rolling,
            group_ring: engine.group_ring,
            saved_models,
            live_group_counts,
            drift: engine.drift,
            monitor: engine.monitor,
            pending_health: Vec::new(),
            alert_policy: engine.alert_policy,
            alert_state: engine.alert_state,
            pending_alerts: engine.pending_alerts,
            provisional_alerts: engine.provisional_alerts,
            provisional_resolutions: engine.provisional_resolutions,
            open_day: None,
            delta_tracker: None,
        };
        sharded.publish_shard_health();
        Ok(sharded)
    }

    /// The configuration.
    pub fn config(&self) -> &AcobeConfig {
        &self.config
    }

    /// The feature catalog / aspect partition.
    pub fn feature_set(&self) -> &FeatureSet {
        &self.feature_set
    }

    /// Total users across all shards (live and quarantined).
    pub fn users(&self) -> usize {
        self.users
    }

    /// Time frames per day.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// First day of the stream.
    pub fn start(&self) -> Date {
        self.start
    }

    /// The day the engine expects next.
    pub fn next_date(&self) -> Date {
        self.next_date
    }

    /// Days ingested since the stream start.
    pub fn days_ingested(&self) -> usize {
        self.next_date.days_since(self.start).max(0) as usize
    }

    /// Width of one day of measurements: `users × frames × features`.
    pub fn day_width(&self) -> usize {
        self.users * self.frames * self.feature_set.len()
    }

    /// True once trained models are attached.
    pub fn is_trained(&self) -> bool {
        !self.saved_models.is_empty()
    }

    /// Number of shards (live + quarantined).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The stable user→shard assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// Users on live shards (scored every day).
    pub fn live_users(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                ShardSlot::Live(shard) => shard.users.len(),
                ShardSlot::Quarantined { .. } => 0,
            })
            .sum()
    }

    /// Quarantined shards as `(shard index, error)` pairs — shards whose
    /// checkpoint failed to restore and whose users are excluded from
    /// scoring until a repaired checkpoint is loaded.
    pub fn quarantined(&self) -> Vec<(usize, &AcobeError)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ShardSlot::Quarantined { error, .. } => Some((i, error)),
                ShardSlot::Live(_) => None,
            })
            .collect()
    }

    /// Approximate heap footprint of the temporal state across all shards
    /// plus the shared group state, in bytes.
    pub fn state_bytes(&self) -> usize {
        let shards: usize = self
            .slots
            .iter()
            .map(|s| match s {
                ShardSlot::Live(shard) => shard.state_bytes(),
                ShardSlot::Quarantined { .. } => 0,
            })
            .sum();
        shards
            + self.group_rolling.as_ref().map_or(0, |r| r.state_bytes())
            + self.group_ring.as_ref().map_or(0, |r| r.bytes())
    }

    /// Ingests one day of measurements without scoring it (history warm-up).
    ///
    /// # Errors
    ///
    /// Same contract as [`DetectionEngine::warm_day`], plus
    /// [`AcobeError::Shard`] when a shard's local phase fails.
    pub fn warm_day(&mut self, date: Date, measurements: &[f32]) -> Result<(), AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/warm_day",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        self.step(date, measurements, false)?;
        acobe_obs::histogram("engine/ingest_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(())
    }

    /// Ingests one day of measurements and, once trained, scores it.
    ///
    /// Returns `None` before training. After training, the per-aspect,
    /// per-user scores for `date`; users on quarantined shards score
    /// `f32::NAN`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedEngine::warm_day`].
    pub fn ingest_day(
        &mut self,
        date: Date,
        measurements: &[f32],
    ) -> Result<Option<DayScores>, AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/ingest_day",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        let out = self.step(date, measurements, true)?;
        acobe_obs::histogram("engine/ingest_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(out)
    }

    /// [`ShardedEngine::warm_day`] over pre-routed per-shard slabs —
    /// `slabs[s]` flattened `[local user][frame][feature]` in ascending
    /// global user order, as produced by
    /// `DayExtractor::ingest_day_sharded`. Skips the phase-1 gather.
    ///
    /// # Errors
    ///
    /// Additionally returns [`AcobeError::Config`] for a wrong slab count
    /// and a shard-wrapped [`AcobeError::WidthMismatch`] for a wrong-width
    /// slab.
    pub fn warm_day_slabs(&mut self, date: Date, slabs: &[Vec<f32>]) -> Result<(), AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/warm_day",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        self.step_input(date, DayInput::Slabs(slabs), false)?;
        acobe_obs::histogram("engine/ingest_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(())
    }

    /// [`ShardedEngine::ingest_day`] over pre-routed per-shard slabs (see
    /// [`ShardedEngine::warm_day_slabs`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedEngine::warm_day_slabs`].
    pub fn ingest_day_slabs(
        &mut self,
        date: Date,
        slabs: &[Vec<f32>],
    ) -> Result<Option<DayScores>, AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/ingest_day",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        let out = self.step_input(date, DayInput::Slabs(slabs), true)?;
        acobe_obs::histogram("engine/ingest_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(out)
    }

    /// [`ShardedEngine::warm_day`] over raw per-day events: extracts one day
    /// of measurements with `extractor`, routes them through the stable
    /// user→shard assignment, and ingests the resulting slabs. This is the
    /// entry point the raw-log ingestion frontend (`acobe-ingest`) feeds.
    ///
    /// The extractor must track the same population as this engine and be in
    /// step with it (`extractor.next_date() == self.next_date()`); novelty
    /// state stays inside the extractor, so the measurements — and therefore
    /// every downstream score — are bit-identical to the
    /// `DayMeasurements` path at any shard count.
    ///
    /// # Errors
    ///
    /// [`AcobeError::Extract`] when extraction rejects the day (out-of-order
    /// date, unknown user), plus the [`ShardedEngine::warm_day_slabs`]
    /// contract.
    pub fn warm_day_events(
        &mut self,
        extractor: &mut acobe_features::cert::DayExtractor,
        date: Date,
        events: &[acobe_logs::event::LogEvent],
    ) -> Result<(), AcobeError> {
        let slabs = self.extract_event_slabs(extractor, date, events)?;
        self.warm_day_slabs(date, &slabs)
    }

    /// [`ShardedEngine::ingest_day`] over raw per-day events (see
    /// [`ShardedEngine::warm_day_events`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedEngine::warm_day_events`].
    pub fn ingest_day_events(
        &mut self,
        extractor: &mut acobe_features::cert::DayExtractor,
        date: Date,
        events: &[acobe_logs::event::LogEvent],
    ) -> Result<Option<DayScores>, AcobeError> {
        let slabs = self.extract_event_slabs(extractor, date, events)?;
        self.ingest_day_slabs(date, &slabs)
    }

    fn extract_event_slabs(
        &self,
        extractor: &mut acobe_features::cert::DayExtractor,
        date: Date,
        events: &[acobe_logs::event::LogEvent],
    ) -> Result<Vec<Vec<f32>>, AcobeError> {
        if extractor.users() != self.users {
            return Err(AcobeError::Config(format!(
                "extractor tracks {} users but the engine has {}",
                extractor.users(),
                self.users
            )));
        }
        extractor
            .ingest_day_sharded(date, events, &self.assign, self.slots.len())
            .map_err(AcobeError::from)
    }

    /// Scores the open day `date` provisionally against the committed
    /// per-shard baselines, without committing anything — the sharded
    /// counterpart of [`DetectionEngine::ingest_partial`], bit-identical to
    /// it at any shard count (read-only peeks replace the rolling pushes;
    /// overlay rings replace the ring pushes; the exact group reduce is
    /// unchanged). Users on quarantined shards score `f32::NAN`. Returns
    /// `None` before training.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::OutOfOrder`] when `date` is not the open
    /// (next-expected) day, [`AcobeError::WidthMismatch`] for a wrong-length
    /// slice, and a shard-wrapped error when a shard's read-only peek fails;
    /// the engine state is unchanged in every case.
    pub fn ingest_partial(
        &mut self,
        date: Date,
        measurements: &[f32],
        events: u64,
    ) -> Result<Option<ProvisionalScores>, AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/ingest_partial",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        if date != self.next_date {
            return Err(AcobeError::OutOfOrder { expected: self.next_date, got: date });
        }
        let width = self.day_width();
        if measurements.len() != width {
            return Err(AcobeError::WidthMismatch { expected: width, found: measurements.len() });
        }
        if self.saved_models.is_empty() {
            return Ok(None);
        }
        let frames = self.frames;
        let chunk = frames * self.feature_set.len();
        let group_cells =
            if self.config.matrix.include_group { self.groups.len() * chunk } else { 0 };
        let use_weights = self.config.matrix.use_weights;

        // Phase 1 (read-only): per-shard slab gather, partial group sums,
        // and the peeked provisional day layered onto a cloned local ring.
        let n = self.slots.len();
        let mut merged = vec![ExactF32Sum::new(); group_cells];
        let mut overlay_rings: Vec<Option<DayRing>> = Vec::with_capacity(n);
        for (i, slot) in self.slots.iter().enumerate() {
            let ShardSlot::Live(shard) = slot else {
                overlay_rings.push(None);
                continue;
            };
            let slab = shard.gather_slab(measurements, chunk);
            if group_cells > 0 {
                for (k, &g) in shard.user_group.iter().enumerate() {
                    let from = k * chunk;
                    for j in 0..chunk {
                        merged[g * chunk + j].add(slab[from + j]);
                    }
                }
            }
            let today = if shard.users.is_empty() {
                Vec::new()
            } else {
                match self.config.representation {
                    Representation::Deviation => {
                        let rolling = shard.rolling.as_ref().expect("shard deviation state");
                        let mut dev = rolling
                            .peek_day(&slab)
                            .map_err(|e| AcobeError::Shard { shard: i, source: Box::new(e) })?;
                        if use_weights {
                            for (s, w) in dev.sigma.iter_mut().zip(&dev.weights) {
                                *s *= w;
                            }
                        }
                        dev.sigma
                    }
                    Representation::SingleDayCounts => slab,
                }
            };
            let mut ring = shard.ring.clone();
            ring.push(today);
            overlay_rings.push(Some(ring));
        }

        // Phase 2 (read-only): exact global group reduce + peeked group day
        // layered onto a cloned group ring.
        let group_overlay = if group_cells > 0 {
            let gday: Vec<f32> = merged
                .iter()
                .enumerate()
                .map(|(j, s)| s.round() / self.live_group_counts[j / chunk] as f32)
                .collect();
            let today = match self.config.representation {
                Representation::Deviation => {
                    let rolling = self.group_rolling.as_ref().expect("group deviation state");
                    let mut gdev = rolling.peek_day(&gday)?;
                    if use_weights {
                        for (s, w) in gdev.sigma.iter_mut().zip(&gdev.weights) {
                            *s *= w;
                        }
                    }
                    gdev.sigma
                }
                Representation::SingleDayCounts => gday,
            };
            let mut ring = self.group_ring.as_ref().expect("group ring").clone();
            ring.push(today);
            Some(ring)
        } else {
            None
        };

        // Phase 3 (read-only except model scratch buffers): score every live
        // shard against its overlay ring and scatter into the global vector.
        let aspects = self.saved_models.len();
        let mut scores = vec![vec![f32::NAN; self.users]; aspects];
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let ShardSlot::Live(shard) = slot else { continue };
            let Some(ring) = &overlay_rings[i] else { continue };
            let local = score_shard_rows(
                &mut shard.models,
                &shard.baselines,
                &shard.user_group,
                ring,
                group_overlay.as_ref(),
                &self.feature_set,
                &self.config,
                frames,
            );
            for (a, col) in local.into_iter().enumerate() {
                for (k, &u) in shard.users.iter().enumerate() {
                    scores[a][u] = col[k];
                }
            }
        }
        let investigation = investigate_from_scores(&scores, self.config.critic_n);
        let alerts = self.provisional_alert_pass(
            date,
            &scores,
            &overlay_rings,
            group_overlay.as_ref(),
            events,
        );
        self.provisional_alerts = alerts.clone();
        acobe_obs::counter("engine/partial_scores").inc();
        acobe_obs::histogram("engine/provisional_score_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(Some(ProvisionalScores { date, events, scores, investigation, alerts }))
    }

    /// Evaluates the alert policy against provisional scores on a throwaway
    /// copy of the alert state (dropped afterwards). Evidence bundles read
    /// the overlay rings, so they show the open day at offset 0 exactly as a
    /// close would.
    fn provisional_alert_pass(
        &self,
        date: Date,
        scores: &[Vec<f32>],
        overlay_rings: &[Option<DayRing>],
        group_ring: Option<&DayRing>,
        events: u64,
    ) -> Vec<Alert> {
        let Some(policy) = self.alert_policy.clone() else { return Vec::new() };
        let mut state = self.alert_state.clone();
        let day_str = date.to_string();
        let input = crate::alert::AlertDayInput {
            day: &day_str,
            scores,
            drift: &[],
            degraded: &[],
            critic_n: self.config.critic_n,
        };
        let feature_set = &self.feature_set;
        let frames = self.frames;
        let user_group = &self.user_group;
        let assign = &self.assign;
        let slots = &self.slots;
        let top_k = policy.top_k_features;
        let mut alerts =
            crate::alert::evaluate_day(&policy, &mut state, &input, |user, position, priority| {
                let shard = assign[user] as usize;
                let ShardSlot::Live(owner) = &slots[shard] else {
                    unreachable!("watchlisted user {user} on quarantined shard {shard}")
                };
                let ring = overlay_rings[shard].as_ref().expect("overlay ring for live shard");
                let local =
                    owner.users.binary_search(&user).expect("user missing from shard roster");
                let group_entity = user_group.get(user).copied().filter(|&g| g != usize::MAX);
                crate::alert::build_evidence(
                    feature_set,
                    frames,
                    ring,
                    local,
                    group_ring,
                    group_entity,
                    scores,
                    user,
                    position,
                    priority,
                    top_k,
                )
            });
        for alert in &mut alerts {
            alert.id = format!("pv-{:06}", alert.seq);
            alert.trigger =
                AlertTrigger::Provisional { inner: Box::new(alert.trigger.clone()), events };
        }
        let board = acobe_obs::alert::alerts();
        for alert in &alerts {
            board.publish(alert);
        }
        alerts
    }

    /// Drains the provisional-alert resolutions produced at the most recent
    /// day close.
    pub fn take_provisional_resolutions(&mut self) -> Vec<ProvisionalResolution> {
        std::mem::take(&mut self.provisional_resolutions)
    }

    /// The provisional alerts outstanding for the still-open day (the most
    /// recent [`ShardedEngine::ingest_partial`] evaluation wins).
    pub fn provisional_alerts(&self) -> &[Alert] {
        &self.provisional_alerts
    }

    /// Stages an intraday open-day accumulator for the next checkpoint's
    /// `ODAY` section (pass `None` at a day boundary to clear it). The engine
    /// itself never reads this state — it exists so a mid-day crash can
    /// resume the open day from the checkpoint alone.
    pub fn set_open_day(&mut self, open_day: Option<OpenDay>) {
        self.open_day = open_day;
    }

    /// The staged (or checkpoint-restored) intraday open-day accumulator.
    pub fn open_day(&self) -> Option<&OpenDay> {
        self.open_day.as_ref()
    }

    /// Removes and returns the checkpoint-restored open-day accumulator, for
    /// the driver to hand back to its [`acobe_features::cert::DayExtractor`]
    /// on mid-day resume.
    pub fn take_open_day(&mut self) -> Option<OpenDay> {
        self.open_day.take()
    }

    /// Per-shard approximate heap footprint of the temporal state, in bytes
    /// (quarantined shards report 0). Unlike [`ShardedEngine::state_bytes`]
    /// this excludes the shared group state, so it reflects what each shard
    /// would cost on its own host.
    pub fn shard_state_bytes(&self) -> Vec<usize> {
        self.slots
            .iter()
            .map(|s| match s {
                ShardSlot::Live(shard) => shard.state_bytes(),
                ShardSlot::Quarantined { .. } => 0,
            })
            .collect()
    }

    /// Itemizes every shard's heap owners — rolling histories, matrix
    /// rings, calibration baselines, score history, model replicas — plus
    /// the shared group state into a [`MemReport`](acobe_obs::MemReport).
    /// The non-`models` entries sum to exactly
    /// [`ShardedEngine::state_bytes`]; quarantined shards contribute no
    /// rows. `&mut self` for the same reason as
    /// [`DetectionEngine::mem_report`](crate::engine::DetectionEngine::mem_report).
    pub fn mem_report(&mut self) -> acobe_obs::MemReport {
        let mut report = acobe_obs::MemReport::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let ShardSlot::Live(shard) = slot else { continue };
            let (rolling, ring, baselines, scores) = shard.state_parts();
            report.push_shard("rolling", i, rolling);
            report.push_shard("rings", i, ring);
            report.push_shard("baselines", i, baselines);
            report.push_shard("scores", i, scores);
            report.push_shard("models", i, shard.model_bytes());
        }
        let group = self.group_rolling.as_ref().map_or(0, |r| r.state_bytes())
            + self.group_ring.as_ref().map_or(0, |r| r.bytes());
        report.push("group", group);
        report
    }

    /// The three-phase day step shared by warm-up and scoring.
    fn step(
        &mut self,
        date: Date,
        measurements: &[f32],
        score: bool,
    ) -> Result<Option<DayScores>, AcobeError> {
        let width = self.day_width();
        if measurements.len() != width {
            return Err(AcobeError::WidthMismatch { expected: width, found: measurements.len() });
        }
        self.step_input(date, DayInput::Full(measurements), score)
    }

    /// [`ShardedEngine::step`] over either input shape.
    fn step_input(
        &mut self,
        date: Date,
        input: DayInput<'_>,
        score: bool,
    ) -> Result<Option<DayScores>, AcobeError> {
        if date != self.next_date {
            return Err(AcobeError::OutOfOrder { expected: self.next_date, got: date });
        }
        if let DayInput::Slabs(slabs) = input {
            if slabs.len() != self.slots.len() {
                return Err(AcobeError::Config(format!(
                    "expected {} per-shard slabs, got {}",
                    self.slots.len(),
                    slabs.len()
                )));
            }
        }
        let ctx = DayContext {
            frames: self.frames,
            features: self.feature_set.len(),
            group_cells: if self.config.matrix.include_group {
                self.groups.len() * self.frames * self.feature_set.len()
            } else {
                0
            },
            use_weights: self.config.matrix.use_weights,
            representation: self.config.representation,
        };

        // Phase 1 — per-shard local accumulation, in parallel on the shared
        // worker pool (no matmuls run here, so nesting is safe). When delta
        // checkpointing is armed, each worker also encodes its slab through
        // the certified f32 codec here, off the save path.
        let n = self.slots.len();
        let record_deltas = self.delta_tracker.is_some();
        type Phase1Out = Option<Result<(Vec<ExactF32Sum>, f64, Option<Vec<u8>>), AcobeError>>;
        let mut partials: Vec<Phase1Out> = Vec::with_capacity(n);
        partials.resize_with(n, || None);
        {
            let ctx = &ctx;
            let chunk = ctx.frames * ctx.features;
            // Pool workers have their own span stacks; carry the caller's
            // day span across so every shard span joins the same trace tree.
            let trace_ctx = acobe_obs::TraceContext::current();
            let trace_ctx = &trace_ctx;
            let jobs: Vec<acobe_nn::pool::Job<'_>> = self
                .slots
                .iter_mut()
                .zip(partials.iter_mut())
                .enumerate()
                .filter_map(|(i, (slot, out))| {
                    let ShardSlot::Live(shard) = slot else { return None };
                    Some(Box::new(move || {
                        let _ctx = trace_ctx.attach();
                        let _span = acobe_obs::span!("engine/shard_ingest", shard = i);
                        let t0 = Instant::now();
                        let gathered;
                        let slab: &[f32] = match input {
                            DayInput::Full(measurements) => {
                                let mut local = Vec::with_capacity(shard.users.len() * chunk);
                                for &u in &shard.users {
                                    local.extend_from_slice(
                                        &measurements[u * chunk..(u + 1) * chunk],
                                    );
                                }
                                gathered = local;
                                &gathered
                            }
                            DayInput::Slabs(slabs) => &slabs[i],
                        };
                        let enc = record_deltas.then(|| checkpoint::encode_slab(slab));
                        let r = shard.accumulate(slab, ctx);
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        *out = Some(r.map(|sums| (sums, ms, enc)));
                    }) as acobe_nn::pool::Job<'_>)
                })
                .collect();
            acobe_nn::pool::global().scope(jobs);
        }
        let mut shard_ms = vec![0.0f64; n];
        let mut merged = vec![ExactF32Sum::new(); ctx.group_cells];
        let mut enc_slabs: Vec<Option<Vec<u8>>> = vec![None; n];
        for (i, p) in partials.into_iter().enumerate() {
            let Some(result) = p else { continue };
            let (sums, ms, enc) =
                result.map_err(|e| AcobeError::Shard { shard: i, source: Box::new(e) })?;
            for (m, s) in merged.iter_mut().zip(&sums) {
                m.merge(s);
            }
            shard_ms[i] = ms;
            enc_slabs[i] = enc;
        }

        // Phase 2 — global group reduce: one final rounding of the merged
        // integer sums, divided by the live member count (the full roster
        // while nothing is quarantined — bit-identical to the monolith).
        if ctx.group_cells > 0 {
            let per = ctx.frames * ctx.features;
            let gday: Vec<f32> = merged
                .iter()
                .enumerate()
                .map(|(i, s)| s.round() / self.live_group_counts[i / per] as f32)
                .collect();
            match ctx.representation {
                Representation::Deviation => {
                    let rolling = self.group_rolling.as_mut().expect("group deviation state");
                    let mut gdev = rolling.push_day(&gday)?;
                    if ctx.use_weights {
                        for (s, w) in gdev.sigma.iter_mut().zip(&gdev.weights) {
                            *s *= w;
                        }
                    }
                    self.group_ring.as_mut().expect("group ring").push(gdev.sigma);
                }
                Representation::SingleDayCounts => {
                    self.group_ring.as_mut().expect("group ring").push(gday);
                }
            }
        }

        // Phase 3 — per-shard finalize: matrix assembly + scoring. Model
        // forwards parallelize internally on the worker pool, so shards run
        // on plain scoped threads to avoid nesting pool scopes.
        let out = if score && !self.saved_models.is_empty() {
            let aspects = self.saved_models.len();
            let mut finals: Vec<Option<(Vec<Vec<f32>>, f64)>> = Vec::with_capacity(n);
            finals.resize_with(n, || None);
            {
                let group_ring = self.group_ring.as_ref();
                let feature_set = &self.feature_set;
                let config = &self.config;
                let frames = self.frames;
                let trace_ctx = acobe_obs::TraceContext::current();
                let trace_ctx = &trace_ctx;
                std::thread::scope(|scope| {
                    for (i, (slot, out)) in
                        self.slots.iter_mut().zip(finals.iter_mut()).enumerate()
                    {
                        let ShardSlot::Live(shard) = slot else { continue };
                        scope.spawn(move || {
                            let _ctx = trace_ctx.attach();
                            let _span = acobe_obs::span!("engine/shard_finalize", shard = i);
                            let t0 = Instant::now();
                            let scores =
                                shard.finalize_day(date, group_ring, feature_set, config, frames);
                            *out = Some((scores, t0.elapsed().as_secs_f64() * 1e3));
                        });
                    }
                });
            }
            let mut scores = vec![vec![f32::NAN; self.users]; aspects];
            let mut rows = 0usize;
            for (i, f) in finals.into_iter().enumerate() {
                let Some((local, ms)) = f else { continue };
                shard_ms[i] += ms;
                let ShardSlot::Live(shard) = &self.slots[i] else { continue };
                rows += shard.users.len();
                for (a, col) in local.into_iter().enumerate() {
                    for (k, &u) in shard.users.iter().enumerate() {
                        scores[a][u] = col[k];
                    }
                }
            }
            acobe_obs::counter("engine/rows_scored").add((rows * aspects) as u64);
            Some(DayScores { date, scores })
        } else {
            None
        };

        let live_ms: Vec<(usize, f64)> = shard_ms
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(self.slots[*i], ShardSlot::Live(_)))
            .map(|(i, ms)| (i, *ms))
            .collect();
        for &(i, ms) in &live_ms {
            let label = i.to_string();
            acobe_obs::histogram_with(
                "engine/shard_ingest_ms",
                &[("shard", label.as_str())],
                INGEST_EDGES,
            )
            .observe(ms);
        }
        // A shard far above its peers' phase time is a capacity problem the
        // operator should see before it becomes a backlog: flag anything
        // beyond `lag_ratio`x the live median once the gap is material
        // (> `lag_min_ms`); both thresholds come from the [`DriftConfig`].
        if live_ms.len() >= 2 {
            let mut sorted: Vec<f64> = live_ms.iter().map(|&(_, ms)| ms).collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite shard times"));
            let median = sorted[sorted.len() / 2];
            for &(i, ms) in &live_ms {
                if ms > median * self.drift.lag_ratio && ms > median + self.drift.lag_min_ms {
                    let event = HealthEvent::ShardLagging {
                        shard: i,
                        day: date.to_string(),
                        shard_ms: ms,
                        median_ms: median,
                    };
                    acobe_obs::monitor::board().report(event.clone());
                    self.pending_health.push(event);
                }
            }
        }
        if let Some(tracker) = &mut self.delta_tracker {
            tracker.pending.push(PendingDay { date, scored: out.is_some(), enc_slabs });
        }
        self.next_date = date.add_days(1);
        acobe_obs::counter("engine/days_ingested").inc();
        let day_str = date.to_string();
        acobe_obs::monitor::board().note_ingested(&day_str);
        acobe_obs::event::note("engine/day", &[("day", day_str.as_str())]);
        self.publish_shard_health();
        if let Some(day) = &out {
            let drift = self.observe_scored_day(day);
            let committed_from = self.pending_alerts.len();
            self.evaluate_alerts(day, &drift);
            self.resolve_provisional(date, committed_from);
        } else {
            // The day closed without alert evaluation (warm-up or
            // untrained), so any provisional alerts for it are retracted.
            self.resolve_provisional(date, self.pending_alerts.len());
        }
        Ok(out)
    }

    /// Resolves the open day's provisional alerts against the committed
    /// alerts raised at its close (see
    /// [`crate::engine::DetectionEngine::take_provisional_resolutions`] for
    /// the monolith counterpart).
    fn resolve_provisional(&mut self, date: Date, committed_from: usize) {
        resolve_provisional_alerts(
            &mut self.provisional_alerts,
            &self.pending_alerts[committed_from..],
            date,
            &mut self.provisional_resolutions,
        );
    }

    /// Evaluates the alert policy against one scored day. Evidence bundles
    /// are built from the owning shard's local deviation ring (and the
    /// shared group ring), so they are bit-identical to the monolith's —
    /// [`DayRing::extract_entities`] preserves ring content and positions.
    /// Quarantined shards additionally raise latched
    /// [`acobe_obs::alert::AlertTrigger::ShardDegraded`] alerts.
    fn evaluate_alerts(&mut self, day: &DayScores, drift: &[HealthEvent]) {
        let Some(policy) = self.alert_policy.clone() else { return };
        let mut state = std::mem::take(&mut self.alert_state);
        let degraded: Vec<(usize, String)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                ShardSlot::Quarantined { error, .. } => Some((i, error.to_string())),
                ShardSlot::Live(_) => None,
            })
            .collect();
        let day_str = day.date.to_string();
        let input = crate::alert::AlertDayInput {
            day: &day_str,
            scores: &day.scores,
            drift,
            degraded: &degraded,
            critic_n: self.config.critic_n,
        };
        let feature_set = &self.feature_set;
        let frames = self.frames;
        let group_ring = self.group_ring.as_ref();
        let user_group = &self.user_group;
        let assign = &self.assign;
        let slots = &self.slots;
        let top_k = policy.top_k_features;
        let alerts =
            crate::alert::evaluate_day(&policy, &mut state, &input, |user, position, priority| {
                // Watchlisted users always score non-NaN, so their shard is
                // live and their column exists in its ring.
                let shard = assign[user] as usize;
                let ShardSlot::Live(owner) = &slots[shard] else {
                    unreachable!("watchlisted user {user} on quarantined shard {shard}")
                };
                let local =
                    owner.users.binary_search(&user).expect("user missing from shard roster");
                let group_entity = user_group.get(user).copied().filter(|&g| g != usize::MAX);
                crate::alert::build_evidence(
                    feature_set,
                    frames,
                    &owner.ring,
                    local,
                    group_ring,
                    group_entity,
                    &day.scores,
                    user,
                    position,
                    priority,
                    top_k,
                )
            });
        self.alert_state = state;
        if alerts.is_empty() {
            return;
        }
        let board = acobe_obs::alert::alerts();
        for alert in &alerts {
            board.publish(alert);
        }
        self.pending_alerts.extend(alerts);
    }

    /// The global critic's investigation list for the most recent scored
    /// day: per-shard trailing means gathered in ascending global user
    /// order, ranked exactly as [`DetectionEngine::daily_investigation`]
    /// ranks the monolith. Users on quarantined shards are excluded.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, or if `n` is invalid once scores exist.
    pub fn daily_investigation(&self, n: usize, window: usize) -> Vec<Investigation> {
        assert!(window > 0, "window must be positive");
        let aspects = self.saved_models.len();
        let mut rows: Vec<(usize, Vec<f32>)> = Vec::new();
        for slot in &self.slots {
            let ShardSlot::Live(shard) = slot else { continue };
            if shard.score_history.is_empty() {
                continue;
            }
            let len = shard.score_history.len().min(window);
            let tail = &shard.score_history[shard.score_history.len() - len..];
            for (k, &u) in shard.users.iter().enumerate() {
                let means = (0..aspects)
                    .map(|a| tail.iter().map(|d| d.scores[a][k]).sum::<f32>() / len as f32)
                    .collect();
                rows.push((u, means));
            }
        }
        if rows.is_empty() {
            return Vec::new();
        }
        let _span = acobe_obs::span!("critic");
        rows.sort_by_key(|&(u, _)| u);
        let per_aspect: Vec<Vec<f32>> =
            (0..aspects).map(|a| rows.iter().map(|(_, m)| m[a]).collect()).collect();
        investigate_from_scores(&per_aspect, n)
            .into_iter()
            .map(|inv| Investigation { user: rows[inv.user].0, priority: inv.priority })
            .collect()
    }

    /// Builds the manifest struct describing the current shared state.
    fn manifest_snapshot(&self, shard_files: Vec<String>) -> ShardManifest {
        ShardManifest {
            version: SHARD_CHECKPOINT_VERSION,
            config: self.config.clone(),
            feature_set: self.feature_set.clone(),
            groups: self.groups.clone(),
            user_group: self.user_group.clone(),
            users: self.users,
            frames: self.frames,
            start: self.start,
            next_date: self.next_date,
            assign: self.assign.clone(),
            shard_files,
            group_rolling: self.group_rolling.clone(),
            group_ring: self.group_ring.clone(),
            models: self.saved_models.clone(),
            monitor: self.monitor.clone(),
            alert_state: self.alert_state.clone(),
            open_day: self.open_day.clone(),
        }
    }

    /// Builds shard `i`'s checkpoint struct.
    fn shard_snapshot(&self, i: usize, shard: &EngineShard) -> ShardCheckpoint {
        ShardCheckpoint {
            version: SHARD_CHECKPOINT_VERSION,
            shard: i,
            users: shard.users.clone(),
            rolling: shard.rolling.clone(),
            ring: shard.ring.clone(),
            baselines: shard.baselines.clone(),
            score_history: shard.score_history.clone(),
        }
    }

    /// The generation stamp of a full save: the stream position, so every
    /// shard file of one snapshot — and any delta chain layered on it —
    /// carries the same fence, turning torn saves into typed quarantines
    /// instead of silently inconsistent state.
    fn generation(&self) -> u64 {
        self.next_date.days() as u64
    }

    /// Saves a sharded checkpoint in the v3 binary format: one
    /// `dir/shard_NNN.acb` per live shard, then `dir/manifest.acb` as the
    /// commit point (all written atomically via tmp + rename). Quarantined
    /// shards have no state to save; their missing files quarantine them
    /// again on load. Any delta chain in the directory is deleted — this
    /// snapshot supersedes it.
    ///
    /// Use [`ShardedEngine::save_checkpoint`] for delta-aware periodic
    /// saves and [`ShardedEngine::save_v2`] for the legacy JSON layout.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures.
    pub fn save<P: AsRef<Path>>(&self, dir: P) -> Result<(), AcobeError> {
        self.save_v3_full(dir.as_ref()).map(|_| ())
    }

    /// v3 full snapshot; returns `(bytes written, files written, generation)`.
    fn save_v3_full(&self, dir: &Path) -> Result<(u64, usize, u64), AcobeError> {
        std::fs::create_dir_all(dir).map_err(|e| io_error(dir, e))?;
        let generation = self.generation();
        let shard_files: Vec<String> =
            (0..self.slots.len()).map(checkpoint::shard_file_v3).collect();
        let mut bytes = 0u64;
        let mut files = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let ShardSlot::Live(shard) = slot else { continue };
            let encoded = checkpoint::encode_shard(&self.shard_snapshot(i, shard), generation);
            let path = dir.join(&shard_files[i]);
            acobe_obs::write_atomic(&path, &encoded).map_err(|e| io_error(&path, e))?;
            bytes += encoded.len() as u64;
            files += 1;
        }
        let manifest = self.manifest_snapshot(shard_files);
        let encoded = checkpoint::encode_manifest(&manifest, generation);
        let path = dir.join(MANIFEST_FILE_V3);
        acobe_obs::write_atomic(&path, &encoded).map_err(|e| io_error(&path, e))?;
        bytes += encoded.len() as u64;
        files += 1;
        // The snapshot is committed; any previous delta chain is stale.
        let _ = std::fs::remove_file(dir.join(CHAIN_FILE));
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("delta_") && name.ends_with(".acb") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok((bytes, files, generation))
    }

    /// Saves a sharded checkpoint in the legacy v2 JSON layout:
    /// `dir/manifest.json` plus one `dir/shard_NNN.json` per live shard
    /// (written atomically via tmp + rename).
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures and
    /// [`AcobeError::Checkpoint`] for serialization failures.
    pub fn save_v2<P: AsRef<Path>>(&self, dir: P) -> Result<(), AcobeError> {
        self.save_v2_inner(dir.as_ref()).map(|_| ())
    }

    fn save_v2_inner(&self, dir: &Path) -> Result<(u64, usize), AcobeError> {
        std::fs::create_dir_all(dir).map_err(|e| io_error(dir, e))?;
        let shard_files: Vec<String> =
            (0..self.slots.len()).map(|i| format!("shard_{i:03}.json")).collect();
        let manifest = self.manifest_snapshot(shard_files.clone());
        let path = dir.join(MANIFEST_FILE);
        let json = serde_json::to_string(&manifest)?;
        acobe_obs::write_atomic(&path, json.as_bytes()).map_err(|e| io_error(&path, e))?;
        let mut bytes = json.len() as u64;
        let mut files = 1usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let ShardSlot::Live(shard) = slot else { continue };
            let path = dir.join(&shard_files[i]);
            let json = serde_json::to_string(&self.shard_snapshot(i, shard))?;
            acobe_obs::write_atomic(&path, json.as_bytes()).map_err(|e| io_error(&path, e))?;
            bytes += json.len() as u64;
            files += 1;
        }
        Ok((bytes, files))
    }

    /// Appends one delta to the chain: per-shard day-replay files first,
    /// then the rewritten `chain.acb` as the atomic commit point. Returns
    /// `(bytes, files)`; an empty pending buffer writes nothing.
    fn save_v3_delta(&mut self, dir: &Path) -> Result<(u64, usize), AcobeError> {
        let monitor_json = serde_json::to_string(&self.monitor)?;
        let alert_json = serde_json::to_string(&self.alert_state)?;
        let n = self.slots.len();
        let tracker = self.delta_tracker.as_mut().expect("delta save without tracker");
        let base = tracker.base_generation.expect("delta save without base snapshot");
        if tracker.pending.is_empty() {
            // Nothing ingested since the last save — the chain already
            // describes the on-disk state.
            return Ok((0, 0));
        }
        let seq = tracker.entries.last().map_or(0, |e| e.seq + 1);
        let pending = std::mem::take(&mut tracker.pending);
        let days: Vec<(Date, bool)> = pending.iter().map(|d| (d.date, d.scored)).collect();
        let mut bytes = 0u64;
        let mut files_written = 0usize;
        let mut files: Vec<Option<String>> = vec![None; n];
        for i in 0..n {
            let shard_days: Vec<(Date, &[u8])> = pending
                .iter()
                .filter_map(|d| d.enc_slabs[i].as_deref().map(|slab| (d.date, slab)))
                .collect();
            if shard_days.len() != pending.len() {
                // Quarantined (or mid-stream-lost) shard: no slabs recorded.
                continue;
            }
            let encoded = checkpoint::encode_delta(i, base, seq, &shard_days);
            let name = checkpoint::delta_file(seq, i);
            let path = dir.join(&name);
            acobe_obs::write_atomic(&path, &encoded).map_err(|e| io_error(&path, e))?;
            bytes += encoded.len() as u64;
            files_written += 1;
            files[i] = Some(name);
        }
        tracker.entries.push(ChainEntry { seq, days, files, monitor_json, alert_json });
        let encoded = checkpoint::encode_chain(base, &tracker.entries);
        let path = dir.join(CHAIN_FILE);
        acobe_obs::write_atomic(&path, &encoded).map_err(|e| io_error(&path, e))?;
        bytes += encoded.len() as u64;
        files_written += 1;
        Ok((bytes, files_written))
    }

    /// Delta-aware periodic save: dispatches on
    /// [`CheckpointOptions::format`], arming the delta tracker on the first
    /// v3 save so subsequent days buffer their slabs for cheap incremental
    /// saves, and compacting back to a full snapshot every
    /// [`CheckpointOptions::delta_every`] deltas. Records
    /// `checkpoint/write_ms` and `checkpoint/bytes{kind=…}` metrics and
    /// publishes the artifact size to the health board.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures and
    /// [`AcobeError::Checkpoint`] for JSON serialization failures.
    pub fn save_checkpoint<P: AsRef<Path>>(
        &mut self,
        dir: P,
        options: &CheckpointOptions,
    ) -> Result<SaveReport, AcobeError> {
        let dir = dir.as_ref();
        let started = Instant::now();
        let report = match options.format {
            CheckpointFormat::V2Json => {
                let (bytes, files) = self.save_v2_inner(dir)?;
                if let Some(tracker) = &mut self.delta_tracker {
                    // The committed state is JSON now; a v3 chain in this
                    // directory no longer applies.
                    tracker.base_generation = None;
                    tracker.entries.clear();
                    tracker.pending.clear();
                }
                SaveReport { kind: SaveKind::Full, bytes, files, format_version: 2 }
            }
            CheckpointFormat::V3Binary => {
                if options.delta_every == 0 {
                    self.delta_tracker = None;
                } else if let Some(tracker) = self.delta_tracker.as_mut() {
                    tracker.delta_every = options.delta_every;
                } else {
                    self.delta_tracker = Some(DeltaTracker::new(options.delta_every));
                }
                // Delta saves append slab entries without rewriting the
                // manifest, so a staged mid-day open day (the ODAY section
                // lives in the manifest) must ride a full snapshot.
                let needs_full = self.open_day.is_some()
                    || self.delta_tracker.as_ref().is_none_or(|t| t.needs_full());
                if needs_full {
                    let (bytes, files, generation) = self.save_v3_full(dir)?;
                    if let Some(tracker) = &mut self.delta_tracker {
                        tracker.note_full(generation);
                    }
                    SaveReport { kind: SaveKind::Full, bytes, files, format_version: 3 }
                } else {
                    let (bytes, files) = self.save_v3_delta(dir)?;
                    SaveReport { kind: SaveKind::Delta, bytes, files, format_version: 3 }
                }
            }
        };
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let kind = report.kind.label();
        acobe_obs::histogram_with("checkpoint/write_ms", &[("kind", kind)], CHECKPOINT_EDGES)
            .observe(ms);
        acobe_obs::counter_with("checkpoint/bytes", &[("kind", kind)]).add(report.bytes);
        acobe_obs::monitor::board().set_checkpoint_artifact(
            report.bytes,
            report.format_version,
            kind,
        );
        Ok(report)
    }

    /// Loads a checkpoint saved by [`ShardedEngine::save`] — or, when `path`
    /// is a single file, migrates a v1 [`DetectionEngine`] checkpoint into
    /// `shards_for_v1` shards.
    ///
    /// Shard files that are missing, truncated, or internally inconsistent
    /// quarantine their shard ([`AcobeError::Shard`] wrapping the cause,
    /// inspectable via [`ShardedEngine::quarantined`]) while the remaining
    /// shards resume scoring.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`]/[`AcobeError::Checkpoint`] for an
    /// unreadable or unparsable manifest, [`AcobeError::CorruptCheckpoint`]
    /// for bad versions or inconsistent shared state, [`AcobeError::Model`]
    /// for corrupt model snapshots, and [`AcobeError::NoLiveShards`] when
    /// every shard quarantines.
    pub fn load<P: AsRef<Path>>(path: P, shards_for_v1: usize) -> Result<Self, AcobeError> {
        let started = Instant::now();
        let path = path.as_ref();
        let sharded = if path.is_file() {
            // A single file is an engine checkpoint: v3 binary or v1 JSON,
            // sniffed from the magic bytes.
            let bytes = std::fs::read(path).map_err(|e| io_error(path, e))?;
            let checkpoint = if checkpoint::is_v3(&bytes) {
                checkpoint::decode_engine(&bytes)?
            } else {
                let json = std::str::from_utf8(&bytes).map_err(|_| {
                    AcobeError::CorruptCheckpoint(
                        "checkpoint is neither a v3 container nor UTF-8 JSON".into(),
                    )
                })?;
                serde_json::from_str::<EngineCheckpoint>(json)?
            };
            let engine = DetectionEngine::restore(checkpoint)?;
            Self::from_engine(engine, shards_for_v1.max(1))?
        } else if path.join(MANIFEST_FILE_V3).is_file() {
            Self::load_v3_dir(path)?
        } else {
            Self::load_v2_dir(path)?
        };
        let ms = started.elapsed().as_secs_f64() * 1e3;
        acobe_obs::histogram_with("checkpoint/restore_ms", &[("kind", "full")], CHECKPOINT_EDGES)
            .observe(ms);
        Ok(sharded)
    }

    /// Assembles the engine from a validated manifest + shard slots, wiring
    /// health events for every quarantined slot.
    fn assemble(manifest: ShardManifest, slots: Vec<ShardSlot>) -> Result<Self, AcobeError> {
        if !slots.iter().any(|s| matches!(s, ShardSlot::Live(_))) {
            return Err(AcobeError::NoLiveShards);
        }
        let live_group_counts = live_counts(manifest.groups.len(), &manifest.user_group, &slots);
        let mut sharded = ShardedEngine {
            config: manifest.config,
            feature_set: manifest.feature_set,
            groups: manifest.groups,
            user_group: manifest.user_group,
            users: manifest.users,
            frames: manifest.frames,
            start: manifest.start,
            next_date: manifest.next_date,
            assign: manifest.assign,
            slots,
            group_rolling: manifest.group_rolling,
            group_ring: manifest.group_ring,
            saved_models: manifest.models,
            live_group_counts,
            drift: manifest
                .monitor
                .as_ref()
                .map(|m| m.config().clone())
                .unwrap_or_default(),
            monitor: manifest.monitor,
            pending_health: Vec::new(),
            alert_policy: None,
            alert_state: manifest.alert_state,
            pending_alerts: Vec::new(),
            provisional_alerts: Vec::new(),
            provisional_resolutions: Vec::new(),
            open_day: manifest.open_day,
            delta_tracker: None,
        };
        let board = acobe_obs::monitor::board();
        for (i, slot) in sharded.slots.iter().enumerate() {
            let ShardSlot::Quarantined { error, .. } = slot else { continue };
            let event =
                HealthEvent::ShardQuarantined { shard: i, reason: error.to_string() };
            board.report(event.clone());
            sharded.pending_health.push(event);
        }
        sharded.publish_shard_health();
        Ok(sharded)
    }

    /// Loads a v2 JSON checkpoint directory.
    fn load_v2_dir(path: &Path) -> Result<Self, AcobeError> {
        let manifest_path = path.join(MANIFEST_FILE);
        let json =
            std::fs::read_to_string(&manifest_path).map_err(|e| io_error(&manifest_path, e))?;
        let manifest: ShardManifest = serde_json::from_str(&json)?;
        if manifest.version != SHARD_CHECKPOINT_VERSION {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "unsupported sharded checkpoint version {} (expected {SHARD_CHECKPOINT_VERSION})",
                manifest.version
            )));
        }
        manifest.validate()?;
        // Manifest-level model corruption is fatal (every shard shares the
        // snapshots), so surface it before touching shard files.
        for saved in &manifest.models {
            restore_model(saved)?;
        }
        let shards = manifest.shard_files.len();
        let rosters = rosters_from(&manifest.assign, shards);
        let mut slots = Vec::with_capacity(shards);
        for (i, file) in manifest.shard_files.iter().enumerate() {
            match load_shard_v2(&path.join(file), i, &rosters[i], &manifest) {
                Ok(shard) => slots.push(ShardSlot::Live(Box::new(shard))),
                Err(error) => slots.push(ShardSlot::Quarantined {
                    users: rosters[i].clone(),
                    error: AcobeError::Shard { shard: i, source: Box::new(error) },
                }),
            }
        }
        Self::assemble(manifest, slots)
    }

    /// Loads a v3 binary checkpoint directory: the base snapshot
    /// (`manifest.acb` + shard files), then — when a committed `chain.acb`
    /// matches the base generation — replays the buffered delta days to
    /// reach the exact stream position of the last delta save.
    fn load_v3_dir(path: &Path) -> Result<Self, AcobeError> {
        let manifest_path = path.join(MANIFEST_FILE_V3);
        let bytes = std::fs::read(&manifest_path).map_err(|e| io_error(&manifest_path, e))?;
        let (manifest, generation) = checkpoint::decode_manifest(&bytes)?;
        manifest.validate()?;
        // Manifest-level model corruption is fatal (every shard shares the
        // snapshots), so surface it before touching shard files.
        for saved in &manifest.models {
            restore_model(saved)?;
        }
        let shards = manifest.shard_files.len();
        let rosters = rosters_from(&manifest.assign, shards);
        let mut slots = Vec::with_capacity(shards);
        for (i, file) in manifest.shard_files.iter().enumerate() {
            match load_shard_v3(&path.join(file), i, &rosters[i], &manifest, generation) {
                Ok(shard) => slots.push(ShardSlot::Live(Box::new(shard))),
                Err(error) => slots.push(ShardSlot::Quarantined {
                    users: rosters[i].clone(),
                    error: AcobeError::Shard { shard: i, source: Box::new(error) },
                }),
            }
        }
        let mut sharded = Self::assemble(manifest, slots)?;
        sharded.replay_chain(path, generation)?;
        Ok(sharded)
    }

    /// Replays a committed delta chain over the freshly loaded base
    /// snapshot. A chain whose base generation does not match the manifest
    /// is stale (a crash interrupted full-save cleanup) and is ignored; a
    /// chain that parses but cannot be replayed coherently is a fatal
    /// [`AcobeError::CorruptCheckpoint`]. Per-shard delta files that are
    /// missing or damaged quarantine only their shard before replay begins.
    fn replay_chain(&mut self, dir: &Path, generation: u64) -> Result<(), AcobeError> {
        let chain_path = dir.join(CHAIN_FILE);
        let bytes = match std::fs::read(&chain_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(io_error(&chain_path, e)),
        };
        let (base, entries) = checkpoint::decode_chain(&bytes)?;
        if base != generation || entries.is_empty() {
            // Stale chain from an older base snapshot — superseded state.
            return Ok(());
        }
        let n = self.slots.len();
        let width = self.frames * self.feature_set.len();
        // Pre-validate every live shard's delta files; failures quarantine
        // the shard so the remaining shards still replay and resume.
        //
        // decoded[i] = per chain entry, that shard's slabs in day order.
        let mut decoded: Vec<Option<Vec<Vec<Vec<f32>>>>> = Vec::with_capacity(n);
        for i in 0..n {
            if !matches!(self.slots[i], ShardSlot::Live(_)) {
                decoded.push(None);
                continue;
            }
            match load_shard_deltas(dir, i, &entries, base, self.roster_len(i) * width) {
                Ok(slabs) => decoded.push(Some(slabs)),
                Err(error) => {
                    self.quarantine_shard(i, error);
                    decoded.push(None);
                }
            }
        }
        if !self.slots.iter().any(|s| matches!(s, ShardSlot::Live(_))) {
            return Err(AcobeError::NoLiveShards);
        }
        // Replay day by day. Alerting is off during load (the policy is
        // re-attached afterwards) and the monitor is overwritten below, so
        // replay affects exactly the per-shard temporal state.
        let health_before = std::mem::take(&mut self.pending_health);
        for (entry_idx, entry) in entries.iter().enumerate() {
            for (day_idx, &(date, scored)) in entry.days.iter().enumerate() {
                if date != self.next_date {
                    return Err(AcobeError::CorruptCheckpoint(format!(
                        "delta chain discontinuity: entry {entry_idx} replays {date} where {} \
                         was expected",
                        self.next_date
                    )));
                }
                let slabs: Vec<Vec<f32>> = (0..n)
                    .map(|i| {
                        decoded[i]
                            .as_ref()
                            .map(|per_entry| per_entry[entry_idx][day_idx].clone())
                            .unwrap_or_default()
                    })
                    .collect();
                self.step_input(date, DayInput::Slabs(&slabs), scored).map_err(|e| {
                    AcobeError::CorruptCheckpoint(format!("delta replay failed at {date}: {e}"))
                })?;
            }
        }
        // The shared mutable state is not replayed — it is restored from
        // the snapshots the last delta save committed, so alert sequence
        // numbers and drift windows resume exactly-once.
        let last = entries.last().expect("non-empty chain");
        self.monitor = serde_json::from_str(&last.monitor_json)?;
        self.alert_state = serde_json::from_str(&last.alert_json)?;
        if let Some(monitor) = &self.monitor {
            self.drift = monitor.config().clone();
        }
        self.pending_alerts.clear();
        self.pending_health = health_before;
        Ok(())
    }

    /// The roster size of slot `i` (live or quarantined).
    fn roster_len(&self, i: usize) -> usize {
        match &self.slots[i] {
            ShardSlot::Live(shard) => shard.users.len(),
            ShardSlot::Quarantined { users, .. } => users.len(),
        }
    }

    /// Quarantines live slot `i` with `error`, rebuilding the live group
    /// counts and reporting the health event.
    fn quarantine_shard(&mut self, i: usize, error: AcobeError) {
        let users = match &self.slots[i] {
            ShardSlot::Live(shard) => shard.users.clone(),
            ShardSlot::Quarantined { users, .. } => users.clone(),
        };
        let error = AcobeError::Shard { shard: i, source: Box::new(error) };
        let event = HealthEvent::ShardQuarantined { shard: i, reason: error.to_string() };
        acobe_obs::monitor::board().report(event.clone());
        self.pending_health.push(event);
        self.slots[i] = ShardSlot::Quarantined { users, error };
        self.live_group_counts = live_counts(self.groups.len(), &self.user_group, &self.slots);
        self.publish_shard_health();
    }

    /// Replaces the drift-monitor thresholds and restarts the monitor's
    /// trailing window from scratch.
    pub fn set_drift_config(&mut self, cfg: DriftConfig) {
        self.drift = cfg;
        self.monitor = None;
    }

    /// Retunes only the shard-lag heuristic thresholds (`lag_ratio`x the
    /// live median, material beyond `lag_min_ms`), leaving the drift
    /// monitor's trailing window intact — a resumed stream must keep raising
    /// the same drift events.
    pub fn set_lag_config(&mut self, lag_ratio: f64, lag_min_ms: f64) {
        self.drift.lag_ratio = lag_ratio;
        self.drift.lag_min_ms = lag_min_ms;
    }

    /// Sets (or with `None` disables) the alert policy evaluated after every
    /// scored day. The policy is not checkpointed — thresholds may be
    /// retuned across a resume — but the [`AlertState`] it drives rides in
    /// the manifest.
    pub fn set_alert_policy(&mut self, policy: Option<AlertPolicy>) {
        self.alert_policy = policy;
    }

    /// The active alert policy, if alerting is enabled.
    pub fn alert_policy(&self) -> Option<&AlertPolicy> {
        self.alert_policy.as_ref()
    }

    /// Drains the alerts raised since the previous call. Alerts are also
    /// published to the global [`acobe_obs::alert::alerts`] board as they
    /// happen.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending_alerts)
    }

    /// The sequence number the next raised alert will take — the high-water
    /// mark [`crate::alert::AlertLog::open`] reconciles against on resume.
    pub fn alert_next_seq(&self) -> u64 {
        self.alert_state.next_seq
    }

    /// Drains the health events raised since the previous call (quarantined
    /// shards at load, lagging shards, score drift). Events are also
    /// reported to the global [`acobe_obs::monitor::board`] as they happen.
    pub fn take_health_events(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.pending_health)
    }

    /// Publishes per-shard labeled gauges (`engine/shard_users{shard=…}`,
    /// `engine/shard_live{shard=…}`) and refreshes the health board's shard
    /// table.
    fn publish_shard_health(&self) {
        let mut statuses = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.iter().enumerate() {
            let (users, live, error) = match slot {
                ShardSlot::Live(shard) => (shard.users.len(), true, None),
                ShardSlot::Quarantined { users, error } => {
                    (users.len(), false, Some(error.to_string()))
                }
            };
            let label = i.to_string();
            acobe_obs::gauge_with("engine/shard_users", &[("shard", label.as_str())])
                .set(users as f64);
            acobe_obs::gauge_with("engine/shard_live", &[("shard", label.as_str())])
                .set(if live { 1.0 } else { 0.0 });
            statuses.push(ShardStatus { shard: i, users, live, error });
        }
        acobe_obs::monitor::board().set_shards(statuses);
    }

    /// Folds one scored day into the drift monitor, publishing score
    /// quantiles as labeled gauges and reporting any drift events. NaN
    /// columns (quarantined users) are skipped by the sketch. Returns the
    /// events raised *for this day* (they are also queued for
    /// [`ShardedEngine::take_health_events`]).
    fn observe_scored_day(&mut self, day: &DayScores) -> Vec<HealthEvent> {
        if self.monitor.is_none() {
            let aspects =
                self.feature_set.aspects.iter().map(|a| a.name.clone()).collect();
            self.monitor = Some(DriftMonitor::new(aspects, self.drift.clone()));
        }
        let day_str = day.date.to_string();
        let slices: Vec<&[f32]> = day.scores.iter().map(|s| s.as_slice()).collect();
        let monitor = self.monitor.as_mut().expect("drift monitor");
        let events = monitor.observe_day(&day_str, &slices);
        let board = acobe_obs::monitor::board();
        board.note_scored(&day_str);
        for event in &events {
            board.report(event.clone());
        }
        self.pending_health.extend(events.iter().cloned());
        events
    }
}

/// Live members per group across the current slots.
fn live_counts(groups: usize, user_group: &[usize], slots: &[ShardSlot]) -> Vec<usize> {
    let mut counts = vec![0usize; groups];
    for slot in slots {
        let ShardSlot::Live(shard) = slot else { continue };
        for &u in &shard.users {
            let g = user_group[u];
            if g != usize::MAX {
                counts[g] += 1;
            }
        }
    }
    counts
}

/// Reads and parses one v2 JSON shard file, then rebuilds the shard. Any
/// error quarantines the shard (the caller wraps it in [`AcobeError::Shard`]).
fn load_shard_v2(
    path: &Path,
    index: usize,
    roster: &[usize],
    manifest: &ShardManifest,
) -> Result<EngineShard, AcobeError> {
    let json = std::fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    let cp: ShardCheckpoint = serde_json::from_str(&json)?;
    if cp.version != SHARD_CHECKPOINT_VERSION {
        return Err(AcobeError::CorruptCheckpoint(format!(
            "unsupported shard checkpoint version {} (expected {SHARD_CHECKPOINT_VERSION})",
            cp.version
        )));
    }
    build_shard(cp, index, roster, manifest)
}

/// Reads and decodes one v3 binary shard file, checks its generation fence
/// against the manifest's (a mismatch means a torn save), then rebuilds the
/// shard. Any error quarantines the shard.
fn load_shard_v3(
    path: &Path,
    index: usize,
    roster: &[usize],
    manifest: &ShardManifest,
    generation: u64,
) -> Result<EngineShard, AcobeError> {
    let bytes = std::fs::read(path).map_err(|e| io_error(path, e))?;
    let (cp, shard_generation) = checkpoint::decode_shard(&bytes)?;
    if shard_generation != generation {
        return Err(AcobeError::CorruptCheckpoint(format!(
            "shard file generation {shard_generation} does not match manifest generation \
             {generation} (torn save)"
        )));
    }
    build_shard(cp, index, roster, manifest)
}

/// Reads, decodes, and cross-checks every delta file shard `index` needs to
/// replay `entries`. Returns `slabs[entry][day]` in chain order; any failure
/// quarantines the shard (the caller wraps it).
fn load_shard_deltas(
    dir: &Path,
    index: usize,
    entries: &[ChainEntry],
    base: u64,
    slab_width: usize,
) -> Result<Vec<Vec<Vec<f32>>>, AcobeError> {
    fn corrupt(msg: String) -> AcobeError {
        AcobeError::CorruptCheckpoint(msg)
    }
    let mut decoded = Vec::with_capacity(entries.len());
    for entry in entries {
        let Some(name) = entry.files.get(index).cloned().flatten() else {
            return Err(corrupt(format!(
                "delta chain entry {} has no data for this shard",
                entry.seq
            )));
        };
        let path = dir.join(&name);
        let bytes = std::fs::read(&path).map_err(|e| io_error(&path, e))?;
        let delta = checkpoint::decode_delta(&bytes)?;
        if delta.shard != index {
            return Err(corrupt(format!(
                "delta file {name} claims shard {}, expected {index}",
                delta.shard
            )));
        }
        if delta.base_generation != base {
            return Err(corrupt(format!(
                "delta file {name} targets base generation {}, chain expects {base}",
                delta.base_generation
            )));
        }
        if delta.seq != entry.seq {
            return Err(corrupt(format!(
                "delta file {name} carries sequence {}, chain entry expects {}",
                delta.seq, entry.seq
            )));
        }
        if delta.days.len() != entry.days.len() {
            return Err(corrupt(format!(
                "delta file {name} covers {} days, chain entry lists {}",
                delta.days.len(),
                entry.days.len()
            )));
        }
        let mut slabs = Vec::with_capacity(delta.days.len());
        for ((date, slab), &(expected_date, _)) in delta.days.into_iter().zip(&entry.days) {
            if date != expected_date {
                return Err(corrupt(format!(
                    "delta file {name} replays {date} where the chain lists {expected_date}"
                )));
            }
            if slab.len() != slab_width {
                return Err(corrupt(format!(
                    "delta file {name} day {date} has {} values, roster needs {slab_width}",
                    slab.len()
                )));
            }
            slabs.push(slab);
        }
        decoded.push(slabs);
    }
    Ok(decoded)
}

/// Validates a parsed shard checkpoint against the manifest and rebuilds the
/// live shard (shared by the v2 and v3 load paths).
fn build_shard(
    cp: ShardCheckpoint,
    index: usize,
    roster: &[usize],
    manifest: &ShardManifest,
) -> Result<EngineShard, AcobeError> {
    fn corrupt(msg: String) -> AcobeError {
        AcobeError::CorruptCheckpoint(msg)
    }
    if cp.shard != index {
        return Err(corrupt(format!("shard file claims index {}, expected {index}", cp.shard)));
    }
    if cp.users != roster {
        return Err(corrupt(format!(
            "shard roster has {} users, assignment expects {}",
            cp.users.len(),
            roster.len()
        )));
    }
    let features = manifest.feature_set.len();
    let locals = roster.len();
    let local_series = locals * manifest.frames * features;
    let needs_dev = manifest.config.representation == Representation::Deviation;
    match (&cp.rolling, needs_dev && locals > 0) {
        (Some(r), true) if r.series_count() != local_series => {
            return Err(corrupt(format!(
                "shard rolling state has {} series, expected {local_series}",
                r.series_count()
            )));
        }
        (None, true) => return Err(corrupt("missing shard rolling deviation state".into())),
        (Some(_), false) => return Err(corrupt("unexpected shard rolling state".into())),
        _ => {}
    }
    if cp.ring.capacity() != manifest.config.matrix.matrix_days {
        return Err(corrupt(format!(
            "shard ring capacity {} does not match matrix_days {}",
            cp.ring.capacity(),
            manifest.config.matrix.matrix_days
        )));
    }
    if !cp.ring.days_have_width(local_series) {
        return Err(corrupt(format!("shard ring days must hold {local_series} values")));
    }
    if !cp.baselines.is_empty() {
        if cp.baselines.len() != manifest.models.len() {
            return Err(corrupt(format!(
                "{} baseline rows for {} models",
                cp.baselines.len(),
                manifest.models.len()
            )));
        }
        if cp.baselines.iter().any(|b| b.len() != locals) {
            return Err(corrupt(format!("baseline rows must hold {locals} users")));
        }
    }
    for day in &cp.score_history {
        if day.scores.len() != manifest.models.len()
            || day.scores.iter().any(|s| s.len() != locals)
        {
            return Err(corrupt(format!("score history for {} has inconsistent shape", day.date)));
        }
    }
    let models = if locals == 0 {
        Vec::new()
    } else {
        manifest.models.iter().map(restore_model).collect::<Result<Vec<_>, _>>()?
    };
    Ok(EngineShard {
        users: cp.users,
        user_group: roster.iter().map(|&u| manifest.user_group[u]).collect(),
        rolling: cp.rolling,
        ring: cp.ring,
        models,
        baselines: cp.baselines,
        score_history: cp.score_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_features::spec::AspectSpec;

    fn feature_set() -> FeatureSet {
        FeatureSet {
            names: vec!["a".into(), "b".into()],
            aspects: vec![AspectSpec { name: "all".into(), features: vec![0, 1] }],
        }
    }

    fn grouped_engine(users: usize) -> DetectionEngine {
        let cfg = AcobeConfig::tiny().with_critic_n(1);
        let groups: Vec<Vec<usize>> = (0..users)
            .step_by(3)
            .map(|lo| (lo..(lo + 3).min(users)).collect())
            .collect();
        DetectionEngine::new(users, 2, Date::from_ymd(2010, 1, 1), feature_set(), &groups, cfg)
            .unwrap()
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("acobe_shard_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn day(width: usize, seed: i32) -> Vec<f32> {
        (0..width).map(|j| ((seed * 31 + j as i32 * 7) % 13) as f32 * 0.5).collect()
    }

    #[test]
    fn assignment_is_stable_and_covers_all_shards() {
        let a = assign_users(1000, 4);
        let b = assign_users(1000, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 4));
        for s in 0..4u32 {
            let n = a.iter().filter(|&&x| x == s).count();
            assert!(n > 150, "shard {s} got only {n} of 1000 users");
        }
        // Growing the roster never reassigns existing users.
        let bigger = assign_users(2000, 4);
        assert_eq!(&bigger[..1000], &a[..]);
    }

    #[test]
    fn zero_shards_rejected() {
        let engine = grouped_engine(6);
        let err = ShardedEngine::from_engine(engine, 0).unwrap_err();
        assert!(matches!(err, AcobeError::Config(_)), "{err:?}");
    }

    #[test]
    fn untrained_sharded_stream_checkpoints_and_resumes() {
        let dir = temp_dir("resume");
        let mut engine = grouped_engine(7);
        let width = engine.day_width();
        let start = engine.start();
        for i in 0..6 {
            engine.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        let mut sharded = ShardedEngine::from_engine(engine, 3).unwrap();
        assert_eq!(sharded.users(), 7);
        assert_eq!(sharded.live_users(), 7);
        assert_eq!(sharded.days_ingested(), 6);
        for i in 6..9 {
            sharded.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        sharded.save(&dir).unwrap();
        let mut resumed = ShardedEngine::load(&dir, 0).unwrap();
        assert_eq!(resumed.next_date(), sharded.next_date());
        assert!(resumed.quarantined().is_empty());
        for i in 9..12 {
            let d = day(width, i);
            sharded.warm_day(start.add_days(i), &d).unwrap();
            resumed.warm_day(start.add_days(i), &d).unwrap();
        }
        assert_eq!(resumed.state_bytes(), sharded.state_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_day_section_roundtrips_through_checkpoint() {
        use acobe_features::cert::{CountSemantics, DayExtractor};
        let dir = temp_dir("oday");
        let mut sharded = ShardedEngine::from_engine(grouped_engine(6), 2).unwrap();
        let width = sharded.day_width();
        let start = sharded.start();
        for i in 0..5 {
            sharded.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        // Day-boundary save: no ODAY section, nothing restored.
        sharded.save(&dir).unwrap();
        let resumed = ShardedEngine::load(&dir, 0).unwrap();
        assert!(resumed.open_day().is_none());
        // Mid-day save: stage the extractor's open day and save again.
        let mut ex = DayExtractor::new(6, start, CountSemantics::Plain);
        for i in 0..5 {
            ex.ingest_day(start.add_days(i), &[]).unwrap();
        }
        ex.push_events(start.add_days(5), &[]).unwrap();
        sharded.set_open_day(ex.open_day().cloned());
        sharded.save(&dir).unwrap();
        let mut resumed = ShardedEngine::load(&dir, 0).unwrap();
        let restored = resumed.take_open_day().expect("ODAY section restored");
        assert_eq!(restored.date(), start.add_days(5));
        assert_eq!(restored.flushes(), 1);
        // A fresh extractor at the same position accepts the recovered day.
        let mut fresh = DayExtractor::new(6, start, CountSemantics::Plain);
        for i in 0..5 {
            fresh.ingest_day(start.add_days(i), &[]).unwrap();
        }
        fresh.restore_open_day(restored).unwrap();
        assert_eq!(fresh.open_day().map(OpenDay::flushes), Some(1));
        // But rejects it when a day is already open or the dates disagree.
        let stale = fresh.open_day().cloned().unwrap();
        assert!(fresh.restore_open_day(stale.clone()).is_err());
        fresh.close_day();
        assert!(fresh.restore_open_day(stale).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slab_ingest_matches_full_ingest() {
        // Warm one engine with full-width days and a twin with pre-routed
        // slabs; their serialized checkpoints must be byte-identical.
        let dir_a = temp_dir("slab_a");
        let dir_b = temp_dir("slab_b");
        let mut full = ShardedEngine::from_engine(grouped_engine(8), 3).unwrap();
        let mut slabbed = ShardedEngine::from_engine(grouped_engine(8), 3).unwrap();
        let width = full.day_width();
        let start = full.start();
        let chunk = full.frames() * full.feature_set().len();
        let assign = full.assignment().to_vec();
        for i in 0..7 {
            let d = day(width, i);
            full.warm_day(start.add_days(i), &d).unwrap();
            let mut slabs = vec![Vec::new(); 3];
            for (u, &s) in assign.iter().enumerate() {
                slabs[s as usize].extend_from_slice(&d[u * chunk..(u + 1) * chunk]);
            }
            slabbed.warm_day_slabs(start.add_days(i), &slabs).unwrap();
        }
        full.save(&dir_a).unwrap();
        slabbed.save(&dir_b).unwrap();
        for file in ["manifest.acb", "shard_000.acb", "shard_001.acb", "shard_002.acb"] {
            assert_eq!(
                std::fs::read(dir_a.join(file)).unwrap(),
                std::fs::read(dir_b.join(file)).unwrap(),
                "{file} diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn truncated_shard_file_quarantines_but_stream_continues() {
        let dir = temp_dir("quarantine");
        let mut engine = grouped_engine(9);
        let width = engine.day_width();
        let start = engine.start();
        for i in 0..4 {
            engine.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        let sharded = ShardedEngine::from_engine(engine, 3).unwrap();
        sharded.save(&dir).unwrap();
        // Truncate one shard file mid-container.
        let victim = dir.join("shard_001.acb");
        let full = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &full[..full.len() / 2]).unwrap();
        let mut degraded = ShardedEngine::load(&dir, 0).unwrap();
        let quarantined = degraded.quarantined();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].0, 1);
        assert!(matches!(quarantined[0].1, AcobeError::Shard { shard: 1, .. }));
        assert!(degraded.live_users() < degraded.users());
        // The degraded engine keeps ingesting.
        degraded.warm_day(start.add_days(4), &day(width, 4)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_shards_dead_is_a_typed_error() {
        let dir = temp_dir("all_dead");
        let engine = grouped_engine(5);
        let sharded = ShardedEngine::from_engine(engine, 2).unwrap();
        sharded.save(&dir).unwrap();
        std::fs::write(dir.join("shard_000.acb"), "{").unwrap();
        std::fs::write(dir.join("shard_001.acb"), "not a container at all").unwrap();
        let err = ShardedEngine::load(&dir, 0).unwrap_err();
        assert!(matches!(err, AcobeError::NoLiveShards), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_manifest_version_rejected() {
        let dir = temp_dir("bad_version");
        let engine = grouped_engine(4);
        let sharded = ShardedEngine::from_engine(engine, 2).unwrap();
        sharded.save_v2(&dir).unwrap();
        let manifest = dir.join(MANIFEST_FILE);
        let json = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, json.replacen("\"version\":2", "\"version\":9", 1)).unwrap();
        let err = ShardedEngine::load(&dir, 0).unwrap_err();
        assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "{err:?}");
        assert!(err.to_string().contains("checkpoint version"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_file_checkpoint_migrates_into_shards() {
        let dir = temp_dir("v1_migrate");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = grouped_engine(6);
        let width = engine.day_width();
        let start = engine.start();
        for i in 0..5 {
            engine.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        let path = dir.join("legacy.json");
        let json = serde_json::to_string(&engine.snapshot()).unwrap();
        std::fs::write(&path, json).unwrap();
        let mut sharded = ShardedEngine::load(&path, 4).unwrap();
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.next_date(), start.add_days(5));
        sharded.warm_day(start.add_days(5), &day(width, 5)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_json_checkpoint_still_loads() {
        let dir = temp_dir("v2_compat");
        let mut engine = grouped_engine(6);
        let width = engine.day_width();
        let start = engine.start();
        for i in 0..5 {
            engine.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        let mut sharded = ShardedEngine::from_engine(engine, 3).unwrap();
        sharded.save_v2(&dir).unwrap();
        assert!(dir.join(MANIFEST_FILE).exists());
        assert!(!dir.join(MANIFEST_FILE_V3).exists());
        let mut resumed = ShardedEngine::load(&dir, 0).unwrap();
        assert!(resumed.quarantined().is_empty());
        for i in 5..8 {
            let d = day(width, i);
            sharded.warm_day(start.add_days(i), &d).unwrap();
            resumed.warm_day(start.add_days(i), &d).unwrap();
        }
        assert_eq!(resumed.state_bytes(), sharded.state_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_chain_resume_is_bit_identical() {
        let dir = temp_dir("delta_chain");
        let mut engine = grouped_engine(7);
        let width = engine.day_width();
        let start = engine.start();
        for i in 0..4 {
            engine.warm_day(start.add_days(i), &day(width, i)).unwrap();
        }
        let mut sharded = ShardedEngine::from_engine(engine, 3).unwrap();
        let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 4 };
        let report = sharded.save_checkpoint(&dir, &opts).unwrap();
        assert_eq!(report.kind, SaveKind::Full);
        for i in 4..7 {
            sharded.warm_day(start.add_days(i), &day(width, i)).unwrap();
            let report = sharded.save_checkpoint(&dir, &opts).unwrap();
            assert_eq!(report.kind, SaveKind::Delta, "day {i} should append a delta");
            assert!(report.bytes > 0);
        }
        assert!(dir.join(CHAIN_FILE).exists());
        let mut resumed = ShardedEngine::load(&dir, 0).unwrap();
        assert_eq!(resumed.next_date(), sharded.next_date());
        assert!(resumed.quarantined().is_empty());
        for i in 7..9 {
            let d = day(width, i);
            sharded.warm_day(start.add_days(i), &d).unwrap();
            resumed.warm_day(start.add_days(i), &d).unwrap();
        }
        // The replayed engine must be byte-identical to the one that never stopped.
        let dir_a = temp_dir("delta_chain_a");
        let dir_b = temp_dir("delta_chain_b");
        sharded.save(&dir_a).unwrap();
        resumed.save(&dir_b).unwrap();
        for file in ["manifest.acb", "shard_000.acb", "shard_001.acb", "shard_002.acb"] {
            assert_eq!(
                std::fs::read(dir_a.join(file)).unwrap(),
                std::fs::read(dir_b.join(file)).unwrap(),
                "{file} diverged after delta-chain resume"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn delta_compaction_rolls_back_to_full() {
        let dir = temp_dir("delta_compact");
        let mut sharded = ShardedEngine::from_engine(grouped_engine(5), 2).unwrap();
        let width = sharded.day_width();
        let start = sharded.start();
        let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 2 };
        assert_eq!(sharded.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Full);
        for i in 0..2 {
            sharded.warm_day(start.add_days(i), &day(width, i)).unwrap();
            assert_eq!(sharded.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Delta);
        }
        // Chain is at the delta_every bound: the next save must compact to a full
        // snapshot and clear the chain.
        sharded.warm_day(start.add_days(2), &day(width, 2)).unwrap();
        assert_eq!(sharded.save_checkpoint(&dir, &opts).unwrap().kind, SaveKind::Full);
        assert!(!dir.join(CHAIN_FILE).exists());
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .all(|e| !e.file_name().to_string_lossy().starts_with("delta_")));
        let resumed = ShardedEngine::load(&dir, 0).unwrap();
        assert_eq!(resumed.next_date(), sharded.next_date());
        assert_eq!(resumed.state_bytes(), sharded.state_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_chain_file_is_a_typed_error() {
        let dir = temp_dir("bad_chain");
        let mut sharded = ShardedEngine::from_engine(grouped_engine(5), 2).unwrap();
        let width = sharded.day_width();
        let start = sharded.start();
        let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 8 };
        sharded.save_checkpoint(&dir, &opts).unwrap();
        sharded.warm_day(start, &day(width, 0)).unwrap();
        sharded.save_checkpoint(&dir, &opts).unwrap();
        // Flip a byte deep inside the chain payload: the section CRC must catch it.
        let chain = dir.join(CHAIN_FILE);
        let mut bytes = std::fs::read(&chain).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&chain, &bytes).unwrap();
        let err = ShardedEngine::load(&dir, 0).unwrap_err();
        assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_delta_file_quarantines_that_shard() {
        let dir = temp_dir("lost_delta");
        let mut sharded = ShardedEngine::from_engine(grouped_engine(6), 2).unwrap();
        let width = sharded.day_width();
        let start = sharded.start();
        let opts = CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 8 };
        sharded.save_checkpoint(&dir, &opts).unwrap();
        sharded.warm_day(start, &day(width, 0)).unwrap();
        sharded.save_checkpoint(&dir, &opts).unwrap();
        std::fs::remove_file(dir.join(checkpoint::delta_file(0, 0))).unwrap();
        let degraded = ShardedEngine::load(&dir, 0).unwrap();
        let quarantined = degraded.quarantined();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].0, 0);
        // The surviving shard replayed the chain up to the live frontier.
        assert_eq!(degraded.next_date(), sharded.next_date());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
