//! Online deviation computation shared by the batch and streaming paths.
//!
//! An enterprise deployment sees one day of measurements at a time, so
//! [`RollingDeviation`] maintains the ω-day history per `(entity, frame,
//! feature)` in ring buffers plus running `Σx`/`Σx²` sums, and emits each
//! day's `σ` and weights incrementally. Since PR 3 this is the *only*
//! deviation implementation: the batch
//! [`compute_deviations`](crate::deviation::compute_deviations) replays days
//! through it, so the two paths are bit-identical by construction (same
//! floating-point operations in the same order, per series).

use crate::deviation::DeviationConfig;
use crate::error::AcobeError;
use serde::{Deserialize, Serialize};

/// Incremental deviation state for a population of entities.
///
/// # Examples
///
/// ```
/// use acobe::deviation::DeviationConfig;
/// use acobe::streaming::RollingDeviation;
///
/// let config = DeviationConfig { window: 5, delta: 3.0, epsilon: 1e-3, min_history: 2 };
/// let mut rolling = RollingDeviation::new(1, 1, 1, config);
/// // Warm-up days emit zero deviation...
/// let day = rolling.push_day(&[5.0]).unwrap();
/// assert_eq!(day.sigma, vec![0.0]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RollingDeviation {
    config: DeviationConfig,
    entities: usize,
    frames: usize,
    features: usize,
    /// Ring buffers: `[entity * frames * features][window - 1]` recent values.
    history: Vec<Vec<f32>>,
    /// Write cursor per series. When the ring is full it points at the oldest
    /// value — the day about to leave the window.
    cursor: Vec<usize>,
    /// Number of values seen per series (saturates at `window - 1`).
    filled: Vec<usize>,
    /// Running window sum per series, kept in f64 exactly as the historical
    /// batch path did.
    sum: Vec<f64>,
    /// Running window sum of squares per series.
    sum_sq: Vec<f64>,
    days_seen: usize,
}

/// One day's deviations and weights, flattened `[entity][frame][feature]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayDeviations {
    /// Clamped deviations σ.
    pub sigma: Vec<f32>,
    /// TF-style feature weights.
    pub weights: Vec<f32>,
}

impl RollingDeviation {
    /// Creates rolling state for `entities × frames × features` series.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any dimension is zero.
    pub fn new(entities: usize, frames: usize, features: usize, config: DeviationConfig) -> Self {
        config.validate().expect("invalid deviation config");
        assert!(entities > 0 && frames > 0 && features > 0, "empty dimension");
        let series = entities * frames * features;
        RollingDeviation {
            config,
            entities,
            frames,
            features,
            history: vec![vec![0.0; config.window - 1]; series],
            cursor: vec![0; series],
            filled: vec![0; series],
            sum: vec![0.0; series],
            sum_sq: vec![0.0; series],
            days_seen: 0,
        }
    }

    /// Number of series tracked.
    pub fn series_count(&self) -> usize {
        self.history.len()
    }

    /// Days pushed so far.
    pub fn days_seen(&self) -> usize {
        self.days_seen
    }

    /// Index of `(entity, frame, feature)` in the flattened day vectors.
    pub fn index(&self, entity: usize, frame: usize, feature: usize) -> usize {
        debug_assert!(entity < self.entities && frame < self.frames && feature < self.features);
        (entity * self.frames + frame) * self.features + feature
    }

    /// Approximate heap footprint of the rolling state, in bytes.
    pub fn state_bytes(&self) -> usize {
        let series = self.series_count();
        series * (self.config.window - 1) * std::mem::size_of::<f32>()
            + series * 2 * std::mem::size_of::<usize>()
            + series * 2 * std::mem::size_of::<f64>()
    }

    /// Rolling state for only the listed entities, in `keep` order — the
    /// per-shard projection of whole-organization state. Per-series rings,
    /// cursors, and running sums are copied verbatim, so the extracted state
    /// continues the stream bit-identically for the kept entities.
    pub(crate) fn extract_entities(&self, keep: &[usize]) -> RollingDeviation {
        assert!(!keep.is_empty(), "cannot extract zero entities");
        let per_entity = self.frames * self.features;
        let mut history = Vec::with_capacity(keep.len() * per_entity);
        let mut cursor = Vec::with_capacity(keep.len() * per_entity);
        let mut filled = Vec::with_capacity(keep.len() * per_entity);
        let mut sum = Vec::with_capacity(keep.len() * per_entity);
        let mut sum_sq = Vec::with_capacity(keep.len() * per_entity);
        for &e in keep {
            assert!(e < self.entities, "entity {e} out of range");
            let from = e * per_entity;
            for i in from..from + per_entity {
                history.push(self.history[i].clone());
                cursor.push(self.cursor[i]);
                filled.push(self.filled[i]);
                sum.push(self.sum[i]);
                sum_sq.push(self.sum_sq[i]);
            }
        }
        RollingDeviation {
            config: self.config,
            entities: keep.len(),
            frames: self.frames,
            features: self.features,
            history,
            cursor,
            filled,
            sum,
            sum_sq,
            days_seen: self.days_seen,
        }
    }

    // --- raw state access for the binary checkpoint codec -----------------
    //
    // `crate::checkpoint` flattens these fields into quantized arrays and
    // rebuilds the struct via `from_state`; everything stays private to the
    // crate so the in-memory invariants cannot be broken from outside.

    /// The deviation configuration.
    pub(crate) fn config(&self) -> DeviationConfig {
        self.config
    }

    /// `(entities, frames, features)` dimensions.
    pub(crate) fn dims(&self) -> (usize, usize, usize) {
        (self.entities, self.frames, self.features)
    }

    /// Per-series ring buffers, `[series][window - 1]`.
    pub(crate) fn history(&self) -> &[Vec<f32>] {
        &self.history
    }

    /// Per-series write cursors.
    pub(crate) fn cursor(&self) -> &[usize] {
        &self.cursor
    }

    /// Per-series fill counts.
    pub(crate) fn filled(&self) -> &[usize] {
        &self.filled
    }

    /// Per-series running window sums (exact f64 accumulators).
    pub(crate) fn sum(&self) -> &[f64] {
        &self.sum
    }

    /// Per-series running window sums of squares (exact f64 accumulators).
    pub(crate) fn sum_sq(&self) -> &[f64] {
        &self.sum_sq
    }

    /// Rebuilds rolling state from raw checkpoint fields, validating every
    /// dimension so a corrupt checkpoint cannot construct broken state.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::CorruptCheckpoint`] naming the first
    /// inconsistency.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_state(
        config: DeviationConfig,
        entities: usize,
        frames: usize,
        features: usize,
        history: Vec<Vec<f32>>,
        cursor: Vec<usize>,
        filled: Vec<usize>,
        sum: Vec<f64>,
        sum_sq: Vec<f64>,
        days_seen: usize,
    ) -> Result<Self, AcobeError> {
        config
            .validate()
            .map_err(|e| AcobeError::CorruptCheckpoint(format!("rolling config: {e}")))?;
        if entities == 0 || frames == 0 || features == 0 {
            return Err(AcobeError::CorruptCheckpoint(
                "rolling state has an empty dimension".into(),
            ));
        }
        let series = entities * frames * features;
        let cap = config.window - 1;
        if history.len() != series
            || cursor.len() != series
            || filled.len() != series
            || sum.len() != series
            || sum_sq.len() != series
        {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "rolling state arrays do not match {series} series (history {}, cursor {}, \
                 filled {}, sum {}, sum_sq {})",
                history.len(),
                cursor.len(),
                filled.len(),
                sum.len(),
                sum_sq.len()
            )));
        }
        if let Some(i) = history.iter().position(|h| h.len() != cap) {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "rolling series {i} ring has {} slots, window {} needs {cap}",
                history[i].len(),
                config.window
            )));
        }
        if let Some(i) = cursor.iter().position(|&c| c >= cap) {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "rolling series {i} cursor {} out of range (ring capacity {cap})",
                cursor[i]
            )));
        }
        if let Some(i) = filled.iter().position(|&n| n > cap) {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "rolling series {i} fill count {} exceeds ring capacity {cap}",
                filled[i]
            )));
        }
        Ok(RollingDeviation {
            config,
            entities,
            frames,
            features,
            history,
            cursor,
            filled,
            sum,
            sum_sq,
            days_seen,
        })
    }

    /// Consumes one day of measurements (flattened `[entity][frame][feature]`)
    /// and returns that day's deviations, then folds the measurements into
    /// the history.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::WidthMismatch`] when `measurements.len()` does
    /// not match the tracked series; the rolling state is left untouched.
    pub fn push_day(&mut self, measurements: &[f32]) -> Result<DayDeviations, AcobeError> {
        let _span = acobe_obs::span!("streaming_deviation");
        acobe_obs::counter("streaming/days_pushed").inc();
        acobe_obs::counter("streaming/series_updated").add(measurements.len() as u64);
        let mut sigma = vec![0.0f32; self.series_count()];
        let mut weights = vec![1.0f32; self.series_count()];
        self.push_day_into(measurements, &mut sigma, &mut weights)?;
        Ok(DayDeviations { sigma, weights })
    }

    /// Emits the deviations today's measurements *would* produce — the same
    /// arithmetic as [`RollingDeviation::push_day`]'s emit phase, bit for
    /// bit — **without** folding the measurements into the window.
    ///
    /// This is the provisional-scoring primitive: an open (in-progress) day
    /// can be peeked any number of times at any fill level, and the eventual
    /// `push_day` at day close still sees exactly the state it would have
    /// seen on the daily path.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::WidthMismatch`] when `measurements.len()` does
    /// not match the tracked series.
    pub fn peek_day(&self, measurements: &[f32]) -> Result<DayDeviations, AcobeError> {
        acobe_obs::counter("streaming/days_peeked").inc();
        let mut sigma = vec![0.0f32; self.series_count()];
        let mut weights = vec![1.0f32; self.series_count()];
        self.peek_day_into(measurements, &mut sigma, &mut weights)?;
        Ok(DayDeviations { sigma, weights })
    }

    /// Core of [`RollingDeviation::peek_day`], writing into caller-owned
    /// slices. The per-series emit is copied verbatim from
    /// [`RollingDeviation::push_day_into`] minus the fold, so
    /// `peek_day(m) == push_day(m)`'s emitted deviations for any state.
    pub(crate) fn peek_day_into(
        &self,
        measurements: &[f32],
        sigma: &mut [f32],
        weights: &mut [f32],
    ) -> Result<(), AcobeError> {
        if measurements.len() != self.series_count() {
            return Err(AcobeError::WidthMismatch {
                expected: self.series_count(),
                found: measurements.len(),
            });
        }
        debug_assert_eq!(sigma.len(), measurements.len());
        debug_assert_eq!(weights.len(), measurements.len());
        for (i, &m) in measurements.iter().enumerate() {
            let hist_len = self.filled[i];
            if hist_len >= self.config.min_history {
                let n = hist_len as f64;
                let mean = self.sum[i] / n;
                let var = (self.sum_sq[i] / n - mean * mean).max(0.0);
                let std = (var.sqrt() as f32).max(self.config.epsilon);
                let delta = (m - mean as f32) / std;
                sigma[i] = delta.clamp(-self.config.delta, self.config.delta);
                weights[i] = 1.0 / std.max(2.0).log2();
            } else {
                sigma[i] = 0.0;
                weights[i] = 1.0;
            }
        }
        Ok(())
    }

    /// Core of [`RollingDeviation::push_day`], writing into caller-owned
    /// slices: the batch replay uses this to fill cube slabs directly.
    ///
    /// Every element of `sigma`/`weights` is written (warm-up days get
    /// `σ = 0`, weight 1). The emit/fold operation order matches the
    /// pre-refactor batch loop exactly, so replaying a series day-by-day
    /// reproduces the batch output bit for bit.
    pub(crate) fn push_day_into(
        &mut self,
        measurements: &[f32],
        sigma: &mut [f32],
        weights: &mut [f32],
    ) -> Result<(), AcobeError> {
        if measurements.len() != self.series_count() {
            return Err(AcobeError::WidthMismatch {
                expected: self.series_count(),
                found: measurements.len(),
            });
        }
        debug_assert_eq!(sigma.len(), measurements.len());
        debug_assert_eq!(weights.len(), measurements.len());
        let cap = self.config.window - 1;

        for (i, &m) in measurements.iter().enumerate() {
            // Emit first, using the window content *before* today.
            let hist_len = self.filled[i];
            if hist_len >= self.config.min_history {
                let n = hist_len as f64;
                let mean = self.sum[i] / n;
                let var = (self.sum_sq[i] / n - mean * mean).max(0.0);
                let std = (var.sqrt() as f32).max(self.config.epsilon);
                let delta = (m - mean as f32) / std;
                sigma[i] = delta.clamp(-self.config.delta, self.config.delta);
                weights[i] = 1.0 / std.max(2.0).log2();
            } else {
                sigma[i] = 0.0;
                weights[i] = 1.0;
            }
            // Slide: add today, then drop the day leaving the window — the
            // same add-then-subtract order as the historical batch loop.
            let incoming = m as f64;
            self.sum[i] += incoming;
            self.sum_sq[i] += incoming * incoming;
            let pos = self.cursor[i];
            if self.filled[i] == cap {
                let outgoing = self.history[i][pos] as f64;
                self.sum[i] -= outgoing;
                self.sum_sq[i] -= outgoing * outgoing;
            } else {
                self.filled[i] += 1;
            }
            self.history[i][pos] = m;
            self.cursor[i] = (pos + 1) % cap;
        }
        self.days_seen += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::compute_deviations;
    use acobe_features::counts::FeatureCube;
    use acobe_logs::time::Date;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_batch_computation_bit_exactly() {
        let (users, days, frames, features) = (3usize, 60usize, 2usize, 4usize);
        let mut rng = StdRng::seed_from_u64(17);
        let mut cube = FeatureCube::new(users, Date::from_ymd(2010, 1, 1), days, frames, features);
        for u in 0..users {
            for d in 0..days {
                for t in 0..frames {
                    for f in 0..features {
                        cube.set_by_index(u, d, t, f, rng.gen_range(0.0..40.0));
                    }
                }
            }
        }
        let config = DeviationConfig { window: 14, delta: 3.0, epsilon: 1e-3, min_history: 5 };
        let batch = compute_deviations(&cube, &config);
        let mut rolling = RollingDeviation::new(users, frames, features, config);
        for d in 0..days {
            let mut day = Vec::with_capacity(users * frames * features);
            for u in 0..users {
                for t in 0..frames {
                    for f in 0..features {
                        day.push(cube.get_by_index(u, d, t, f));
                    }
                }
            }
            let out = rolling.push_day(&day).unwrap();
            for u in 0..users {
                for t in 0..frames {
                    for f in 0..features {
                        let i = rolling.index(u, t, f);
                        assert_eq!(
                            batch.sigma.get_by_index(u, d, t, f),
                            out.sigma[i],
                            "sigma day {d} u{u} t{t} f{f}"
                        );
                        assert_eq!(
                            batch.weights.get_by_index(u, d, t, f),
                            out.weights[i],
                            "weight day {d} u{u} t{t} f{f}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warmup_emits_zero() {
        let config = DeviationConfig { window: 10, delta: 3.0, epsilon: 1e-3, min_history: 4 };
        let mut rolling = RollingDeviation::new(1, 1, 1, config);
        for _ in 0..4 {
            let out = rolling.push_day(&[100.0]).unwrap();
            assert_eq!(out.sigma, vec![0.0]);
            assert_eq!(out.weights, vec![1.0]);
        }
        // Fifth day has 4 history days: deviations start.
        let out = rolling.push_day(&[100.0]).unwrap();
        assert_eq!(out.sigma, vec![0.0]); // constant history, same value
        let out = rolling.push_day(&[500.0]).unwrap();
        assert_eq!(out.sigma, vec![3.0]); // spike clamps at delta
    }

    /// `min_history` edge cases (formerly only exercised by the doctest):
    /// day `min_history` is the first to deviate, and `min_history` may equal
    /// `window − 1` (deviations start only with a full ring).
    #[test]
    fn min_history_boundaries() {
        // min_history = 1: the second day already deviates.
        let config = DeviationConfig { window: 5, delta: 3.0, epsilon: 1e-3, min_history: 1 };
        let mut rolling = RollingDeviation::new(1, 1, 1, config);
        let first = rolling.push_day(&[5.0]).unwrap();
        assert_eq!(first.sigma, vec![0.0]);
        let second = rolling.push_day(&[50.0]).unwrap();
        assert_eq!(second.sigma, vec![3.0]);

        // min_history = window - 1: warm-up lasts until the ring is full.
        let config = DeviationConfig { window: 4, delta: 3.0, epsilon: 1e-3, min_history: 3 };
        let mut rolling = RollingDeviation::new(1, 1, 1, config);
        for day in 0..3 {
            let out = rolling.push_day(&[7.0]).unwrap();
            assert_eq!(out.sigma, vec![0.0], "day {day} still warming up");
            assert_eq!(out.weights, vec![1.0]);
        }
        let out = rolling.push_day(&[70.0]).unwrap();
        assert_eq!(out.sigma, vec![3.0]);
    }

    #[test]
    fn ring_evicts_oldest() {
        // Window 4 -> history 3. After a level shift, deviations die out
        // once the shift fills the ring.
        let config = DeviationConfig { window: 4, delta: 3.0, epsilon: 1e-3, min_history: 2 };
        let mut rolling = RollingDeviation::new(1, 1, 1, config);
        for _ in 0..6 {
            rolling.push_day(&[1.0]).unwrap();
        }
        let first = rolling.push_day(&[50.0]).unwrap();
        assert_eq!(first.sigma, vec![3.0]);
        rolling.push_day(&[50.0]).unwrap();
        rolling.push_day(&[50.0]).unwrap();
        // History is now all 50s.
        let later = rolling.push_day(&[50.0]).unwrap();
        assert!(later.sigma[0].abs() < 0.1, "{:?}", later.sigma);
    }

    #[test]
    fn wrong_width_is_a_typed_error() {
        let mut rolling = RollingDeviation::new(2, 2, 2, DeviationConfig::default());
        let err = rolling.push_day(&[0.0; 3]).unwrap_err();
        assert!(
            matches!(err, AcobeError::WidthMismatch { expected: 8, found: 3 }),
            "{err:?}"
        );
        assert!(err.to_string().contains("measurement width mismatch"));
        // The failed push left the state untouched.
        assert_eq!(rolling.days_seen(), 0);
        assert!(rolling.push_day(&[0.0; 8]).is_ok());
    }

    #[test]
    fn extracted_entities_continue_bit_identically() {
        // Stream a 5-entity population, project out entities {1, 3, 4}, and
        // verify the projection's subsequent outputs equal the corresponding
        // slices of the full population's outputs.
        let config = DeviationConfig { window: 6, delta: 3.0, epsilon: 1e-3, min_history: 2 };
        let (frames, features) = (2usize, 3usize);
        let mut full = RollingDeviation::new(5, frames, features, config);
        let mut rng = StdRng::seed_from_u64(11);
        let width = 5 * frames * features;
        for _ in 0..9 {
            let day: Vec<f32> = (0..width).map(|_| rng.gen_range(0.0f32..20.0)).collect();
            full.push_day(&day).unwrap();
        }
        let keep = [1usize, 3, 4];
        let mut part = full.extract_entities(&keep);
        assert_eq!(part.series_count(), keep.len() * frames * features);
        assert_eq!(part.days_seen(), full.days_seen());
        let per_entity = frames * features;
        for _ in 0..8 {
            let day: Vec<f32> = (0..width).map(|_| rng.gen_range(0.0f32..20.0)).collect();
            let sub: Vec<f32> = keep
                .iter()
                .flat_map(|&e| day[e * per_entity..(e + 1) * per_entity].iter().copied())
                .collect();
            let out_full = full.push_day(&day).unwrap();
            let out_part = part.push_day(&sub).unwrap();
            for (k, &e) in keep.iter().enumerate() {
                for j in 0..per_entity {
                    assert_eq!(out_part.sigma[k * per_entity + j], out_full.sigma[e * per_entity + j]);
                    assert_eq!(
                        out_part.weights[k * per_entity + j],
                        out_full.weights[e * per_entity + j]
                    );
                }
            }
        }
    }

    /// `peek_day` emits exactly what `push_day` would emit — at every point
    /// in the stream — and never perturbs subsequent pushes.
    #[test]
    fn peek_matches_push_and_never_mutates() {
        let config = DeviationConfig { window: 6, delta: 3.0, epsilon: 1e-3, min_history: 2 };
        let (frames, features) = (2usize, 3usize);
        let mut rolling = RollingDeviation::new(3, frames, features, config);
        let mut rng = StdRng::seed_from_u64(23);
        let width = 3 * frames * features;
        for day in 0..15 {
            let m: Vec<f32> = (0..width).map(|_| rng.gen_range(0.0f32..20.0)).collect();
            // Peek twice (any number of peeks must be idempotent) ...
            let peek1 = rolling.peek_day(&m).unwrap();
            let peek2 = rolling.peek_day(&m).unwrap();
            assert_eq!(peek1, peek2, "day {day}");
            let before_days = rolling.days_seen();
            // ... then push the same day: emitted deviations must agree.
            let pushed = rolling.push_day(&m).unwrap();
            assert_eq!(peek1, pushed, "day {day}");
            assert_eq!(before_days + 1, rolling.days_seen());
        }
        let err = rolling.peek_day(&[0.0; 3]).unwrap_err();
        assert!(matches!(err, AcobeError::WidthMismatch { .. }), "{err:?}");
    }

    #[test]
    fn serde_roundtrip_preserves_stream() {
        // A JSON round-trip mid-stream must not change subsequent outputs.
        let config = DeviationConfig { window: 6, delta: 3.0, epsilon: 1e-3, min_history: 2 };
        let mut a = RollingDeviation::new(2, 1, 2, config);
        let mut rng = StdRng::seed_from_u64(5);
        let mut day = || (0..4).map(|_| rng.gen_range(0.0f32..9.0)).collect::<Vec<_>>();
        let inputs: Vec<Vec<f32>> = (0..20).map(|_| day()).collect();
        for m in &inputs[..9] {
            a.push_day(m).unwrap();
        }
        let json = serde_json::to_string(&a).unwrap();
        let mut b: RollingDeviation = serde_json::from_str(&json).unwrap();
        for m in &inputs[9..] {
            let out_a = a.push_day(m).unwrap();
            let out_b = b.push_day(m).unwrap();
            assert_eq!(out_a, out_b);
        }
    }
}
