//! Online deviation computation for production deployments.
//!
//! [`compute_deviations`](crate::deviation::compute_deviations) needs the
//! whole measurement cube in memory; an enterprise deployment instead sees
//! one day of measurements at a time. [`RollingDeviation`] maintains the
//! ω-day history per `(entity, frame, feature)` in ring buffers and emits
//! each day's `σ` and weights incrementally, producing bit-identical results
//! to the batch path.

use crate::deviation::DeviationConfig;
use serde::{Deserialize, Serialize};

/// Incremental deviation state for a population of entities.
///
/// # Examples
///
/// ```
/// use acobe::deviation::DeviationConfig;
/// use acobe::streaming::RollingDeviation;
///
/// let config = DeviationConfig { window: 5, delta: 3.0, epsilon: 1e-3, min_history: 2 };
/// let mut rolling = RollingDeviation::new(1, 1, 1, config);
/// // Warm-up days emit zero deviation...
/// let day = rolling.push_day(&[5.0]);
/// assert_eq!(day.sigma, vec![0.0]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RollingDeviation {
    config: DeviationConfig,
    entities: usize,
    frames: usize,
    features: usize,
    /// Ring buffers: `[entity * frames * features][window - 1]` recent values.
    history: Vec<Vec<f32>>,
    /// Write cursor per series.
    cursor: Vec<usize>,
    /// Number of values seen per series (saturates at `window - 1`).
    filled: Vec<usize>,
    days_seen: usize,
}

/// One day's deviations and weights, flattened `[entity][frame][feature]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayDeviations {
    /// Clamped deviations σ.
    pub sigma: Vec<f32>,
    /// TF-style feature weights.
    pub weights: Vec<f32>,
}

impl RollingDeviation {
    /// Creates rolling state for `entities × frames × features` series.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any dimension is zero.
    pub fn new(entities: usize, frames: usize, features: usize, config: DeviationConfig) -> Self {
        config.validate().expect("invalid deviation config");
        assert!(entities > 0 && frames > 0 && features > 0, "empty dimension");
        let series = entities * frames * features;
        RollingDeviation {
            config,
            entities,
            frames,
            features,
            history: vec![vec![0.0; config.window - 1]; series],
            cursor: vec![0; series],
            filled: vec![0; series],
            days_seen: 0,
        }
    }

    /// Number of series tracked.
    pub fn series_count(&self) -> usize {
        self.history.len()
    }

    /// Days pushed so far.
    pub fn days_seen(&self) -> usize {
        self.days_seen
    }

    /// Index of `(entity, frame, feature)` in the flattened day vectors.
    pub fn index(&self, entity: usize, frame: usize, feature: usize) -> usize {
        debug_assert!(entity < self.entities && frame < self.frames && feature < self.features);
        (entity * self.frames + frame) * self.features + feature
    }

    /// Consumes one day of measurements (flattened `[entity][frame][feature]`)
    /// and returns that day's deviations, then folds the measurements into
    /// the history.
    ///
    /// # Panics
    ///
    /// Panics if `measurements.len()` does not match the tracked series.
    pub fn push_day(&mut self, measurements: &[f32]) -> DayDeviations {
        assert_eq!(
            measurements.len(),
            self.series_count(),
            "measurement width mismatch"
        );
        let _span = acobe_obs::span!("streaming_deviation");
        acobe_obs::counter("streaming/days_pushed").inc();
        acobe_obs::counter("streaming/series_updated").add(measurements.len() as u64);
        let mut sigma = vec![0.0f32; measurements.len()];
        let mut weights = vec![1.0f32; measurements.len()];

        for (i, &m) in measurements.iter().enumerate() {
            let n = self.filled[i];
            if n >= self.config.min_history {
                let hist = &self.history[i][..n.min(self.config.window - 1)];
                let count = hist.len() as f64;
                let sum: f64 = hist.iter().map(|&x| x as f64).sum();
                let sum_sq: f64 = hist.iter().map(|&x| (x as f64) * (x as f64)).sum();
                let mean = sum / count;
                let var = (sum_sq / count - mean * mean).max(0.0);
                let std = (var.sqrt() as f32).max(self.config.epsilon);
                let delta = (m - mean as f32) / std;
                sigma[i] = delta.clamp(-self.config.delta, self.config.delta);
                weights[i] = 1.0 / std.max(2.0).log2();
            }
            // Fold today's measurement into the ring.
            let cap = self.config.window - 1;
            let pos = self.cursor[i];
            self.history[i][pos] = m;
            self.cursor[i] = (pos + 1) % cap;
            if self.filled[i] < cap {
                self.filled[i] += 1;
            }
        }
        self.days_seen += 1;
        DayDeviations { sigma, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::compute_deviations;
    use acobe_features::counts::FeatureCube;
    use acobe_logs::time::Date;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_batch_computation() {
        let (users, days, frames, features) = (3usize, 60usize, 2usize, 4usize);
        let mut rng = StdRng::seed_from_u64(17);
        let mut cube = FeatureCube::new(users, Date::from_ymd(2010, 1, 1), days, frames, features);
        for u in 0..users {
            for d in 0..days {
                for t in 0..frames {
                    for f in 0..features {
                        cube.set_by_index(u, d, t, f, rng.gen_range(0.0..40.0));
                    }
                }
            }
        }
        let config = DeviationConfig { window: 14, delta: 3.0, epsilon: 1e-3, min_history: 5 };
        let batch = compute_deviations(&cube, &config);
        let mut rolling = RollingDeviation::new(users, frames, features, config);
        for d in 0..days {
            let mut day = Vec::with_capacity(users * frames * features);
            for u in 0..users {
                for t in 0..frames {
                    for f in 0..features {
                        day.push(cube.get_by_index(u, d, t, f));
                    }
                }
            }
            let out = rolling.push_day(&day);
            for u in 0..users {
                for t in 0..frames {
                    for f in 0..features {
                        let i = rolling.index(u, t, f);
                        let expected = batch.sigma.get_by_index(u, d, t, f);
                        let got = out.sigma[i];
                        assert!(
                            (expected - got).abs() < 1e-4,
                            "day {d} u{u} t{t} f{f}: batch {expected} vs rolling {got}"
                        );
                        let ew = batch.weights.get_by_index(u, d, t, f);
                        assert!((ew - out.weights[i]).abs() < 1e-4);
                    }
                }
            }
        }
    }

    #[test]
    fn warmup_emits_zero() {
        let config = DeviationConfig { window: 10, delta: 3.0, epsilon: 1e-3, min_history: 4 };
        let mut rolling = RollingDeviation::new(1, 1, 1, config);
        for _ in 0..4 {
            let out = rolling.push_day(&[100.0]);
            assert_eq!(out.sigma, vec![0.0]);
            assert_eq!(out.weights, vec![1.0]);
        }
        // Fifth day has 4 history days: deviations start.
        let out = rolling.push_day(&[100.0]);
        assert_eq!(out.sigma, vec![0.0]); // constant history, same value
        let out = rolling.push_day(&[500.0]);
        assert_eq!(out.sigma, vec![3.0]); // spike clamps at delta
    }

    #[test]
    fn ring_evicts_oldest() {
        // Window 4 -> history 3. After a level shift, deviations die out
        // once the shift fills the ring.
        let config = DeviationConfig { window: 4, delta: 3.0, epsilon: 1e-3, min_history: 2 };
        let mut rolling = RollingDeviation::new(1, 1, 1, config);
        for _ in 0..6 {
            rolling.push_day(&[1.0]);
        }
        let first = rolling.push_day(&[50.0]);
        assert_eq!(first.sigma, vec![3.0]);
        rolling.push_day(&[50.0]);
        rolling.push_day(&[50.0]);
        // History is now all 50s.
        let later = rolling.push_day(&[50.0]);
        assert!(later.sigma[0].abs() < 0.1, "{:?}", later.sigma);
    }

    #[test]
    #[should_panic(expected = "measurement width mismatch")]
    fn wrong_width_rejected() {
        let mut rolling = RollingDeviation::new(2, 2, 2, DeviationConfig::default());
        let _ = rolling.push_day(&[0.0; 3]);
    }
}
