//! The anomaly detection critic (paper Section IV-C, Algorithm 1).
//!
//! Given per-aspect anomaly ranks for each user, a user's investigation
//! priority is their N-th best (smallest) rank across aspects; the
//! investigation list is sorted by priority ascending.

use serde::{Deserialize, Serialize};

/// One entry of the ordered investigation list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Investigation {
    /// User index.
    pub user: usize,
    /// Priority = N-th best per-aspect rank (1-based; smaller = investigate
    /// first).
    pub priority: usize,
}

/// True when score `b` is strictly less anomalous than score `a` under the
/// critic's total order: NaN (an unscored user, e.g. on a quarantined shard)
/// is strictly worse than every real score, and two NaNs tie.
fn strictly_below(b: f32, a: f32) -> bool {
    match (b.is_nan(), a.is_nan()) {
        (true, true) => false,
        (true, false) => true,
        (false, true) => false,
        (false, false) => b < a,
    }
}

/// Converts per-aspect anomaly scores (higher = more anomalous) into
/// per-aspect 1-based ranks. Ties share the better (smaller) rank so that a
/// tie cannot demote a user below an identically-scored peer.
///
/// The ordering is a total order: NaN scores (users excluded from scoring,
/// e.g. on a quarantined shard) sort strictly worst and share one rank
/// block, with index as the final sort tie-break — so the result never
/// depends on input insertion order, and investigation lists are stable
/// across shard counts.
pub fn scores_to_ranks(scores: &[f32]) -> Vec<usize> {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        // Descending by score with NaN last; total_cmp puts NaN above every
        // real value, so a plain reverse would rank NaN best — flip it via
        // the NaN-aware comparison instead.
        let worse_a = strictly_below(scores[a], scores[b]);
        let worse_b = strictly_below(scores[b], scores[a]);
        match (worse_a, worse_b) {
            (false, true) => std::cmp::Ordering::Less,
            (true, false) => std::cmp::Ordering::Greater,
            _ => a.cmp(&b),
        }
    });
    let mut ranks = vec![0usize; n];
    let mut rank = 0usize;
    for (pos, &idx) in order.iter().enumerate() {
        if pos == 0 || strictly_below(scores[idx], scores[order[pos - 1]]) {
            rank = pos + 1;
        }
        ranks[idx] = rank;
    }
    ranks
}

/// Algorithm 1: computes the ordered investigation list.
///
/// `aspect_ranks[a][u]` is user `u`'s 1-based rank in aspect `a`; `n` is the
/// number of aspects that must "vote" (the paper evaluates N = 3 with
/// alternatives N = 1, 2 in Figure 6(c)).
///
/// The returned list is sorted by priority ascending with ties broken by
/// user index (stable, deterministic).
///
/// # Panics
///
/// Panics if `aspect_ranks` is empty, ragged, or `n` is 0 or larger than the
/// number of aspects.
pub fn investigation_list(aspect_ranks: &[Vec<usize>], n: usize) -> Vec<Investigation> {
    assert!(!aspect_ranks.is_empty(), "need at least one aspect");
    let users = aspect_ranks[0].len();
    assert!(
        aspect_ranks.iter().all(|r| r.len() == users),
        "ragged aspect ranks"
    );
    assert!(
        n >= 1 && n <= aspect_ranks.len(),
        "n must be in 1..=aspects ({n} vs {})",
        aspect_ranks.len()
    );

    let mut list: Vec<Investigation> = (0..users)
        .map(|u| {
            let mut ranks: Vec<usize> = aspect_ranks.iter().map(|a| a[u]).collect();
            ranks.sort_unstable();
            Investigation { user: u, priority: ranks[n - 1] }
        })
        .collect();
    list.sort_by_key(|inv| (inv.priority, inv.user));
    list
}

/// Convenience: scores per aspect → ranks → investigation list.
///
/// # Panics
///
/// Same conditions as [`investigation_list`].
pub fn investigate_from_scores(aspect_scores: &[Vec<f32>], n: usize) -> Vec<Investigation> {
    let ranks: Vec<Vec<usize>> = aspect_scores.iter().map(|s| scores_to_ranks(s)).collect();
    investigation_list(&ranks, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_descending_scores() {
        let ranks = scores_to_ranks(&[0.1, 0.9, 0.5]);
        assert_eq!(ranks, vec![3, 1, 2]);
    }

    #[test]
    fn tied_scores_share_better_rank() {
        let ranks = scores_to_ranks(&[0.5, 0.5, 0.9]);
        assert_eq!(ranks[2], 1);
        assert_eq!(ranks[0], 2);
        assert_eq!(ranks[1], 2);
    }

    #[test]
    fn paper_example() {
        // "say N=2 and a user is ranked at 3rd, 5th, 4th in terms of in-total
        // three behavioral aspects, since 4th is the 2nd highest rank of this
        // user, this user has a investigation priority of 4."
        let aspect_ranks = vec![vec![3], vec![5], vec![4]];
        let list = investigation_list(&aspect_ranks, 2);
        assert_eq!(list[0].priority, 4);
    }

    #[test]
    fn list_ordering() {
        // Two users, two aspects, N = 1.
        // user0: ranks (1, 2) -> priority 1; user1: ranks (2, 1) -> priority 1.
        // user2: ranks (3, 3) -> priority 3.
        let aspect_ranks = vec![vec![1, 2, 3], vec![2, 1, 3]];
        let list = investigation_list(&aspect_ranks, 1);
        assert_eq!(list[0].user, 0); // tie on priority 1 broken by index
        assert_eq!(list[1].user, 1);
        assert_eq!(list[2].user, 2);
        assert_eq!(list[2].priority, 3);
    }

    #[test]
    fn n_equals_aspects_requires_consensus() {
        // N = 2 of 2: a user must rank well in *both* aspects.
        let aspect_ranks = vec![vec![1, 2], vec![5, 2]];
        let list = investigation_list(&aspect_ranks, 2);
        // user0 priority = max(1,5)=5; user1 priority = 2.
        assert_eq!(list[0].user, 1);
        assert_eq!(list[0].priority, 2);
        assert_eq!(list[1].priority, 5);
    }

    #[test]
    fn from_scores_end_to_end() {
        // user2 is top anomalous in both aspects.
        let scores = vec![vec![0.1, 0.2, 0.9], vec![0.3, 0.1, 0.8]];
        let list = investigate_from_scores(&scores, 2);
        assert_eq!(list[0].user, 2);
        assert_eq!(list[0].priority, 1);
    }

    #[test]
    #[should_panic(expected = "n must be in")]
    fn invalid_n_rejected() {
        let _ = investigation_list(&[vec![1, 2]], 2);
    }

    #[test]
    fn nan_scores_rank_worst_deterministically() {
        // NaN columns (quarantined users) must sort strictly below every
        // real score and share one rank block, regardless of where the NaNs
        // sit in the input — insertion order must not leak into ranks.
        let ranks = scores_to_ranks(&[f32::NAN, 0.9, f32::NAN, 0.1]);
        assert_eq!(ranks, vec![3, 1, 3, 2]);
        // Same multiset, permuted: per-user ranks are identical.
        let permuted = scores_to_ranks(&[0.1, f32::NAN, 0.9, f32::NAN]);
        assert_eq!(permuted, vec![2, 3, 1, 3]);
    }

    #[test]
    fn nan_ties_keep_investigation_list_stable() {
        // Two quarantined users in one aspect: the list still orders by
        // (priority, user) with the NaN pair sharing the worst priority.
        let scores = vec![vec![0.5, f32::NAN, 0.8, f32::NAN]];
        let list = investigate_from_scores(&scores, 1);
        let order: Vec<(usize, usize)> = list.iter().map(|i| (i.user, i.priority)).collect();
        assert_eq!(order, vec![(2, 1), (0, 2), (1, 3), (3, 3)]);
    }
}
