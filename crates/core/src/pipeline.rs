//! The end-to-end ACOBE pipeline (paper Figure 1): measurements → compound
//! behavioral deviation matrices → autoencoder ensemble → anomaly scores →
//! ordered investigation list.
//!
//! Since PR 3 the pipeline is a thin *batch driver* over the incremental
//! [`DetectionEngine`](crate::engine::DetectionEngine): training, calibration
//! and scoring all replay cube days through the engine one at a time, so the
//! batch and streaming paths are a single scoring code path and agree bit for
//! bit (DESIGN.md §7).

use crate::config::{AcobeConfig, OptimizerKind, Representation};
use crate::critic::{investigate_from_scores, Investigation};
use crate::engine::DetectionEngine;
use crate::error::AcobeError;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::FeatureSet;
use acobe_logs::time::Date;
use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig, OutputActivationKind};
use acobe_nn::optim::{Adadelta, Adam, Optimizer};
use acobe_nn::tensor::Matrix;
use acobe_nn::train::{fit_autoencoder_observed, ProgressObserver, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-aspect, per-day, per-user anomaly scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreTable {
    /// Aspect names, index-aligned with `scores`.
    pub aspect_names: Vec<String>,
    /// First scored day.
    pub start: Date,
    /// Number of users.
    pub users: usize,
    /// `scores[aspect][day][user]` = reconstruction error.
    pub scores: Vec<Vec<Vec<f32>>>,
}

impl ScoreTable {
    /// Number of scored days.
    pub fn days(&self) -> usize {
        self.scores.first().map_or(0, |a| a.len())
    }

    /// All users' scores for one `(aspect, day)`.
    pub fn daily(&self, aspect: usize, day: usize) -> &[f32] {
        &self.scores[aspect][day]
    }

    /// One user's score trend across days for an aspect (Figure 5/7 series).
    pub fn user_series(&self, aspect: usize, user: usize) -> Vec<f32> {
        self.scores[aspect].iter().map(|day| day[user]).collect()
    }

    /// Each user's maximum daily score in an aspect — the scalar used to
    /// rank users over a test window.
    pub fn max_per_user(&self, aspect: usize) -> Vec<f32> {
        self.smoothed_max_per_user(aspect, 1)
    }

    /// Each user's maximum *trailing-mean* score: the max over days of the
    /// mean of the last `window` daily scores.
    ///
    /// `window = 1` is the plain max. Larger windows favor *persistent*
    /// anomalies (the paper's Figure 5(b) victims stay elevated for days)
    /// over one-day noise spikes.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn smoothed_max_per_user(&self, aspect: usize, window: usize) -> Vec<f32> {
        assert!(window > 0, "window must be positive");
        let days = self.scores[aspect].len();
        let mut out = vec![f32::MIN; self.users];
        for u in 0..self.users {
            let mut sum = 0.0f32;
            for d in 0..days {
                sum += self.scores[aspect][d][u];
                if d >= window {
                    sum -= self.scores[aspect][d - window][u];
                }
                let len = (d + 1).min(window) as f32;
                let mean = sum / len;
                if mean > out[u] {
                    out[u] = mean;
                }
            }
            if days == 0 {
                out[u] = 0.0;
            }
        }
        out
    }

    /// Mean and standard deviation over every data point of an aspect
    /// (printed atop each Figure 5 sub-plot).
    pub fn mean_std(&self, aspect: usize) -> (f32, f32) {
        let all: Vec<f32> = self.scores[aspect].iter().flatten().copied().collect();
        let n = all.len().max(1) as f64;
        let mean = all.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = all.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean as f32, var.sqrt() as f32)
    }

    /// The critic's ordered investigation list over the whole window, using
    /// per-user max scores per aspect (Algorithm 1 with parameter `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds the number of aspects.
    pub fn investigation_list(&self, n: usize) -> Vec<Investigation> {
        self.investigation_list_smoothed(n, 1)
    }

    /// Like [`ScoreTable::investigation_list`] but ranking users by their
    /// maximum trailing `smooth`-day mean score per aspect.
    ///
    /// # Panics
    ///
    /// Panics if `n` is invalid or `smooth == 0`.
    pub fn investigation_list_smoothed(&self, n: usize, smooth: usize) -> Vec<Investigation> {
        let _span = acobe_obs::span!("critic");
        let per_aspect: Vec<Vec<f32>> = (0..self.scores.len())
            .map(|a| self.smoothed_max_per_user(a, smooth))
            .collect();
        investigate_from_scores(&per_aspect, n)
    }

    /// The critic's investigation list for a single day.
    ///
    /// # Panics
    ///
    /// Panics if `day` is out of range or `n` invalid.
    pub fn daily_investigation(&self, day: usize, n: usize) -> Vec<Investigation> {
        self.daily_investigation_smoothed(day, n, 1)
    }

    /// Daily investigation list ranking users by the trailing `window`-day
    /// mean of their scores (ending at `day`): persistent elevations beat
    /// one-day noise spikes, as in the windowed ranking.
    ///
    /// # Panics
    ///
    /// Panics if `day` is out of range, `n` invalid, or `window == 0`.
    pub fn daily_investigation_smoothed(
        &self,
        day: usize,
        n: usize,
        window: usize,
    ) -> Vec<Investigation> {
        assert!(window > 0, "window must be positive");
        let _span = acobe_obs::span!("critic");
        let lo = day.saturating_sub(window - 1);
        let len = (day - lo + 1) as f32;
        let per_aspect: Vec<Vec<f32>> = self
            .scores
            .iter()
            .map(|aspect| {
                (0..self.users)
                    .map(|u| (lo..=day).map(|d| aspect[d][u]).sum::<f32>() / len)
                    .collect()
            })
            .collect();
        investigate_from_scores(&per_aspect, n)
    }
}

/// Forwards per-epoch training telemetry into `acobe-obs`: every epoch's
/// wall time lands in the aspect-labeled `train/epoch_ms` histogram and, at
/// `-v` verbosity, prints one trace line per epoch.
struct EpochTelemetry<'a> {
    aspect: &'a str,
}

impl<'a> EpochTelemetry<'a> {
    fn new(aspect: &'a str) -> Self {
        EpochTelemetry { aspect }
    }
}

impl ProgressObserver for EpochTelemetry<'_> {
    fn on_epoch(&mut self, epoch: usize, loss: f32, elapsed_ms: f64) {
        acobe_obs::histogram_with(
            "train/epoch_ms",
            &[("aspect", self.aspect)],
            &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0],
        )
        .observe(elapsed_ms);
        acobe_obs::counter("train/epochs").inc();
        acobe_obs::detail!(
            "train[{}] epoch {:>3}: loss {:.6} ({:.1} ms)",
            self.aspect,
            epoch + 1,
            loss,
            elapsed_ms
        );
    }

    fn on_batch(&mut self, forward_ms: f64, backward_ms: f64) {
        const BATCH_EDGES: &[f64] = &[0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0];
        let labels = [("aspect", self.aspect)];
        acobe_obs::histogram_with("train/forward_ms", &labels, BATCH_EDGES).observe(forward_ms);
        acobe_obs::histogram_with("train/backward_ms", &labels, BATCH_EDGES).observe(backward_ms);
    }

    fn on_complete(&mut self, report: &TrainReport) {
        acobe_obs::detail!(
            "train[{}] done: {} epochs in {:.0} ms{}",
            self.aspect,
            report.epochs_run,
            report.total_ms(),
            if report.stopped_early { " (stopped early)" } else { "" }
        );
    }
}

/// The ACOBE detector: an ensemble of per-aspect autoencoders over compound
/// behavioral deviation matrices.
///
/// A pipeline couples a measurement [`FeatureCube`] with a
/// [`DetectionEngine`]; every operation replays cube days through the engine,
/// so batch results match a day-at-a-time streaming deployment exactly. Use
/// [`AcobePipeline::into_engine`] to take the trained engine into a streaming
/// deployment.
///
/// # Examples
///
/// See `examples/quickstart.rs` for an end-to-end run; unit tests below for a
/// minimal in-memory flow.
#[derive(Debug)]
pub struct AcobePipeline {
    counts: FeatureCube,
    engine: DetectionEngine,
}

impl AcobePipeline {
    /// Builds a pipeline over a measurement cube.
    ///
    /// `groups[g]` lists the user indices of group `g` (the paper uses LDAP
    /// departments). Every user must belong to exactly one group when the
    /// configuration includes group behavior.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Config`] for invalid configuration, feature
    /// indices outside the cube, or users without a group.
    pub fn new(
        counts: FeatureCube,
        feature_set: FeatureSet,
        groups: &[Vec<usize>],
        config: AcobeConfig,
    ) -> Result<Self, AcobeError> {
        if feature_set.len() != counts.features() {
            return Err(AcobeError::Config(format!(
                "feature set has {} features but cube has {}",
                feature_set.len(),
                counts.features()
            )));
        }
        let engine = DetectionEngine::new(
            counts.users(),
            counts.frames(),
            counts.start(),
            feature_set,
            groups,
            config,
        )?;

        acobe_obs::gauge("pipeline/users").set(counts.users() as f64);
        acobe_obs::gauge("pipeline/days").set(counts.days() as f64);
        acobe_obs::gauge("pipeline/aspects").set(engine.feature_set().aspects.len() as f64);

        Ok(AcobePipeline { counts, engine })
    }

    /// The configuration.
    pub fn config(&self) -> &AcobeConfig {
        self.engine.config()
    }

    /// The feature catalog / aspect partition.
    pub fn feature_set(&self) -> &FeatureSet {
        self.engine.feature_set()
    }

    /// The underlying incremental engine.
    pub fn engine(&self) -> &DetectionEngine {
        &self.engine
    }

    /// Consumes the pipeline, returning the (trained) engine for a streaming
    /// deployment. Call
    /// [`DetectionEngine::reset_stream`](crate::engine::DetectionEngine::reset_stream)
    /// before replaying a log stream from its first day.
    pub fn into_engine(self) -> DetectionEngine {
        self.engine
    }

    /// Flattened input width for an aspect.
    pub fn input_dim(&self, aspect: usize) -> usize {
        self.engine.input_dim(aspect)
    }

    /// Replays cube days `[0, end_idx)` through a freshly reset engine,
    /// invoking `visit(day_index)` after each day is absorbed.
    fn replay<F: FnMut(&mut DetectionEngine, usize) -> Result<(), AcobeError>>(
        &mut self,
        end_idx: usize,
        mut visit: F,
    ) -> Result<(), AcobeError> {
        self.engine.reset_stream();
        let mut day_buf = vec![0.0f32; self.counts.day_slice_len()];
        for d in 0..end_idx {
            self.counts.day_slice_into(d, &mut day_buf);
            let date = self.counts.start().add_days(d as i32);
            self.engine.warm_day(date, &day_buf)?;
            visit(&mut self.engine, d)?;
        }
        Ok(())
    }

    /// Trains one autoencoder per aspect on `(user, day)` samples from
    /// `[train_start, train_end)`, sampling down to `max_train_samples`.
    ///
    /// The training matrices are gathered by replaying days through the
    /// engine — the same incremental path that scores a stream.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Range`] when the range is outside the cube or
    /// leaves no eligible training days after deviation warm-up.
    pub fn fit(
        &mut self,
        train_start: Date,
        train_end: Date,
    ) -> Result<Vec<TrainReport>, AcobeError> {
        let start_idx = self
            .counts
            .day_index(train_start)
            .ok_or_else(|| AcobeError::Range("train_start outside cube".into()))?;
        let end_idx = train_end.days_since(self.counts.start());
        if end_idx <= start_idx as i32 || end_idx as usize > self.counts.days() {
            return Err(AcobeError::Range("invalid training range".into()));
        }
        let config = self.engine.config().clone();
        let warmup = match config.representation {
            Representation::Deviation => config.deviation.min_history,
            Representation::SingleDayCounts => 0,
        };
        let first = start_idx.max(warmup);
        let end_idx = end_idx as usize;
        if first >= end_idx {
            return Err(AcobeError::Range("no training days after deviation warm-up".into()));
        }

        // Deterministic (user, day) sampling shared across aspects.
        let mut samples: Vec<(usize, usize)> = (0..self.counts.users())
            .flat_map(|u| (first..end_idx).map(move |d| (u, d)))
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5a5a);
        samples.shuffle(&mut rng);
        samples.truncate(config.max_train_samples);

        acobe_obs::counter("pipeline/train_samples").add(samples.len() as u64);

        // Bucket samples by day: the replay visits each day once and fills
        // every aspect's rows for that day at their original sample index,
        // so the training matrices are identical to the pre-refactor batch
        // assembly (row content *and* row order).
        let mut by_day: Vec<Vec<(usize, usize)>> = vec![Vec::new(); end_idx];
        for (i, &(u, d)) in samples.iter().enumerate() {
            by_day[d].push((i, u));
        }

        let aspects = self.engine.feature_set().aspects.len();
        let mut prepared: Vec<(String, Matrix, AutoencoderConfig)> = (0..aspects)
            .map(|aspect| {
                let name = self.engine.feature_set().aspects[aspect].name.clone();
                let dim = self.engine.input_dim(aspect);
                let ae_config = AutoencoderConfig {
                    input_dim: dim,
                    encoder_dims: config.encoder_dims.clone(),
                    batch_norm: true,
                    output_activation: OutputActivationKind::Relu,
                    seed: config.seed.wrapping_add(aspect as u64),
                };
                (name, Matrix::zeros(samples.len(), dim), ae_config)
            })
            .collect();

        self.engine.clear_models();
        {
            let by_day = &by_day;
            let prepared = &mut prepared;
            self.replay(end_idx, |engine, d| {
                for (aspect, (name, data, _)) in prepared.iter_mut().enumerate() {
                    if by_day[d].is_empty() {
                        continue;
                    }
                    let _span = acobe_obs::span!("matrix", aspect = name);
                    for &(i, u) in &by_day[d] {
                        data.row_mut(i).copy_from_slice(&engine.input_row(aspect, u));
                    }
                    acobe_obs::counter("pipeline/matrix_rows").add(by_day[d].len() as u64);
                }
                Ok(())
            })?;
        }

        let train_cfg = &config.train;
        let optimizer_kind = config.optimizer;
        let train_one = |aspect_name: &str, data: &Matrix, ae_config: AutoencoderConfig| {
            let mut ae = Autoencoder::new(ae_config);
            let mut optimizer = make_optimizer(optimizer_kind);
            // The span stack is thread-local, so on a worker thread this is
            // still a top-level `train(aspect=...)` span.
            let _span = acobe_obs::span!("train", aspect = aspect_name);
            let mut observer = EpochTelemetry::new(aspect_name);
            let report = fit_autoencoder_observed(
                &mut ae,
                data,
                train_cfg,
                optimizer.as_mut(),
                &mut observer,
            );
            (ae, report)
        };

        let trained: Vec<(Autoencoder, TrainReport)> =
            if config.parallel_train && prepared.len() > 1 {
                std::thread::scope(|s| {
                    let handles: Vec<_> = prepared
                        .iter()
                        .map(|(name, data, ae_config)| {
                            let ae_config = ae_config.clone();
                            let train_one = &train_one;
                            s.spawn(move || train_one(name, data, ae_config))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("aspect trainer panicked")).collect()
                })
            } else {
                prepared
                    .iter()
                    .map(|(name, data, ae_config)| train_one(name, data, ae_config.clone()))
                    .collect()
            };

        let mut models = Vec::with_capacity(trained.len());
        let mut reports = Vec::with_capacity(trained.len());
        for (ae, report) in trained {
            models.push(ae);
            reports.push(report);
        }
        self.engine.set_models(models);

        if config.calibrate {
            let _span = acobe_obs::span!("calibrate");
            // Per-user baseline error over the last days of training,
            // gathered by replaying the same days through the now-trained
            // engine.
            let cal_days = 30.min(end_idx - first);
            let cal_start = end_idx - cal_days;
            let users = self.counts.users();
            let mut sums = vec![vec![0.0f64; users]; aspects];
            {
                let sums = &mut sums;
                self.replay(end_idx, |engine, d| {
                    if d >= cal_start {
                        for (aspect, aspect_sums) in sums.iter_mut().enumerate() {
                            let errs = engine.raw_day_scores(aspect);
                            for (s, e) in aspect_sums.iter_mut().zip(errs) {
                                *s += e as f64;
                            }
                        }
                    }
                    Ok(())
                })?;
            }
            let mut baselines = Vec::with_capacity(aspects);
            for aspect_sums in &sums {
                let mut baseline: Vec<f32> =
                    aspect_sums.iter().map(|&s| (s / cal_days as f64) as f32).collect();
                // Floor at a tenth of the aspect median so near-zero
                // baselines cannot explode ratios.
                let mut sorted = baseline.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let median = sorted[sorted.len() / 2].max(1e-6);
                for b in &mut baseline {
                    *b = b.max(median * 0.1);
                }
                baselines.push(baseline);
            }
            self.engine.set_baselines(baselines);
        }
        Ok(reports)
    }

    /// True once [`AcobePipeline::fit`] has run.
    pub fn is_trained(&self) -> bool {
        self.engine.is_trained()
    }

    /// Scores every user on every day of `[start, end)` by replaying the
    /// cube through the engine: warm-up days up to `start`, then one scored
    /// ingest per day.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::NotTrained`] before [`AcobePipeline::fit`] and
    /// [`AcobeError::Range`] for a range outside the cube.
    pub fn score_range(&mut self, start: Date, end: Date) -> Result<ScoreTable, AcobeError> {
        if !self.engine.is_trained() {
            return Err(AcobeError::NotTrained);
        }
        let start_idx = self
            .counts
            .day_index(start)
            .ok_or_else(|| AcobeError::Range("start outside cube".into()))?;
        let end_idx = end.days_since(self.counts.start());
        if end_idx <= start_idx as i32 || end_idx as usize > self.counts.days() {
            return Err(AcobeError::Range("invalid scoring range".into()));
        }
        let end_idx = end_idx as usize;
        let users = self.counts.users();
        let aspects = self.engine.feature_set().aspects.len();

        let _span = acobe_obs::span!("score");
        acobe_obs::counter("pipeline/days_scored").add((end_idx - start_idx) as u64);
        acobe_obs::counter("pipeline/rows_scored")
            .add(((end_idx - start_idx) * users * aspects) as u64);

        self.engine.reset_stream();
        let mut day_buf = vec![0.0f32; self.counts.day_slice_len()];
        let mut scores = vec![Vec::with_capacity(end_idx - start_idx); aspects];
        for d in 0..end_idx {
            self.counts.day_slice_into(d, &mut day_buf);
            let date = self.counts.start().add_days(d as i32);
            if d < start_idx {
                self.engine.warm_day(date, &day_buf)?;
            } else {
                let day = self
                    .engine
                    .ingest_day(date, &day_buf)?
                    .expect("trained engine scores every ingested day");
                for (aspect, errs) in day.scores.into_iter().enumerate() {
                    scores[aspect].push(errs);
                }
            }
        }
        Ok(ScoreTable {
            aspect_names: self
                .engine
                .feature_set()
                .aspects
                .iter()
                .map(|a| a.name.clone())
                .collect(),
            start,
            users,
            scores,
        })
    }
}

fn make_optimizer(kind: OptimizerKind) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Adadelta => Box::new(Adadelta::new()),
        OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DetectionEngine;
    use acobe_features::spec::{AspectSpec, FeatureSet};
    use rand::Rng;

    /// A synthetic cube: 12 users × 120 days × 2 frames × 4 features with
    /// stable habits, where user 0 massively deviates on features 0/2 in the
    /// last 10 days.
    fn test_cube(anomalous: bool) -> FeatureCube {
        let mut rng = StdRng::seed_from_u64(99);
        let mut c = FeatureCube::new(12, Date::from_ymd(2010, 1, 1), 120, 2, 4);
        for u in 0..12 {
            let base: f32 = 4.0 + (u % 3) as f32;
            for d in 0..120 {
                for t in 0..2 {
                    for f in 0..4 {
                        let noise: f32 = rng.gen_range(-1.0..1.0);
                        let mut v = (base + f as f32 + noise).max(0.0);
                        if t == 1 {
                            v *= 0.3;
                        }
                        if anomalous && u == 0 && d >= 110 && (f == 0 || f == 2) {
                            v += 40.0;
                        }
                        c.set_by_index(u, d, t, f, v);
                    }
                }
            }
        }
        c
    }

    fn feature_set() -> FeatureSet {
        FeatureSet {
            names: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            aspects: vec![
                AspectSpec { name: "first".into(), features: vec![0, 1] },
                AspectSpec { name: "second".into(), features: vec![2, 3] },
            ],
        }
    }

    fn groups() -> Vec<Vec<usize>> {
        vec![(0..6).collect(), (6..12).collect()]
    }

    fn dates(cube: &FeatureCube) -> (Date, Date, Date) {
        let start = cube.start();
        (start, start.add_days(100), start.add_days(120))
    }

    #[test]
    fn end_to_end_detects_the_anomalous_user() {
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        let list = table.investigation_list(2);
        assert_eq!(list[0].user, 0, "anomalous user must top the list: {list:?}");
    }

    #[test]
    fn score_table_shapes() {
        let cube = test_cube(false);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        assert_eq!(table.days(), 20);
        assert_eq!(table.users, 12);
        assert_eq!(table.aspect_names, vec!["first", "second"]);
        assert_eq!(table.user_series(0, 3).len(), 20);
        assert_eq!(table.max_per_user(1).len(), 12);
        let (mean, std) = table.mean_std(0);
        assert!(mean.is_finite() && std.is_finite());
    }

    #[test]
    fn single_day_variant_runs() {
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let cfg = AcobeConfig::tiny().single_day();
        let mut pipe = AcobePipeline::new(cube, feature_set(), &groups(), cfg).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        assert_eq!(table.days(), 20);
    }

    #[test]
    fn no_group_variant_runs() {
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let cfg = AcobeConfig::tiny().without_group();
        let mut pipe = AcobePipeline::new(cube, feature_set(), &groups(), cfg).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        let list = table.investigation_list(2);
        assert_eq!(list[0].user, 0);
    }

    #[test]
    fn calibration_divides_by_a_per_user_constant() {
        // Calibrated scores must equal raw scores divided by one positive
        // per-user constant (the training-tail baseline): the ratio
        // raw/calibrated is constant across days for each user.
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let run_with = |calibrate: bool| {
            let mut cfg = AcobeConfig::tiny();
            cfg.calibrate = calibrate;
            let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups(), cfg).unwrap();
            pipe.fit(start, split).unwrap();
            pipe.score_range(split, end).unwrap()
        };
        let raw = run_with(false);
        let calibrated = run_with(true);
        for a in 0..raw.scores.len() {
            for u in 0..raw.users {
                let raw_series = raw.user_series(a, u);
                let cal_series = calibrated.user_series(a, u);
                let mut ratio: Option<f32> = None;
                for (r, c) in raw_series.iter().zip(&cal_series) {
                    if *c > 1e-12 {
                        let k = r / c;
                        assert!(k > 0.0, "baseline must be positive");
                        match ratio {
                            None => ratio = Some(k),
                            Some(prev) => assert!(
                                (k - prev).abs() / prev < 1e-3,
                                "aspect {a} user {u}: ratios {prev} vs {k}"
                            ),
                        }
                    }
                }
                assert!(ratio.is_some(), "no usable days for user {u}");
            }
        }
    }

    #[test]
    fn pipeline_records_observability_spans() {
        let cube = test_cube(false);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        let _ = table.investigation_list(2);

        let registry = acobe_obs::global();
        for stage in [
            "engine/ingest_day",
            "matrix(aspect=first)",
            "matrix(aspect=second)",
            "train(aspect=first)",
            "train(aspect=second)",
            "score",
            "critic",
        ] {
            let stats = registry.span_stats(stage).unwrap_or_else(|| {
                panic!("stage '{stage}' missing from {:?}", registry.span_paths())
            });
            assert!(stats.count >= 1, "stage '{stage}' never completed");
        }
        assert!(acobe_obs::counter("pipeline/train_samples").get() > 0);
        assert!(acobe_obs::counter("engine/days_ingested").get() > 0);
        assert!(acobe_obs::counter("train/epochs").get() > 0);
        assert!(acobe_obs::to_jsonl().contains("\"kind\":\"span\""));
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // Per-aspect seeding plus the deterministic kernel make concurrent
        // ensemble training bit-identical to the serial path.
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let run = |parallel: bool| {
            let mut cfg = AcobeConfig::tiny();
            cfg.parallel_train = parallel;
            let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups(), cfg).unwrap();
            let reports = pipe.fit(start, split).unwrap();
            let table = pipe.score_range(split, end).unwrap();
            (reports, table)
        };
        let (parallel_reports, parallel_table) = run(true);
        let (serial_reports, serial_table) = run(false);
        assert_eq!(parallel_reports.len(), serial_reports.len());
        for (p, s) in parallel_reports.iter().zip(&serial_reports) {
            assert_eq!(p.epoch_losses, s.epoch_losses);
        }
        assert_eq!(parallel_table.scores, serial_table.scores);
    }

    #[test]
    fn streaming_engine_replay_matches_batch_scores_bit_exactly() {
        // The tentpole guarantee: a trained engine fed the same days one at a
        // time — as a streaming deployment would — produces the exact same
        // scores as the batch `score_range`.
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube.clone(), feature_set(), &groups(), AcobeConfig::tiny())
                .unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();

        let mut engine = pipe.into_engine();
        engine.reset_stream();
        let split_idx = cube.day_index(split).unwrap();
        let mut day_buf = vec![0.0f32; cube.day_slice_len()];
        for d in 0..cube.days() {
            cube.day_slice_into(d, &mut day_buf);
            let date = cube.start().add_days(d as i32);
            if d < split_idx {
                engine.warm_day(date, &day_buf).unwrap();
            } else {
                let day = engine.ingest_day(date, &day_buf).unwrap().unwrap();
                for (aspect, errs) in day.scores.iter().enumerate() {
                    assert_eq!(
                        &table.scores[aspect][d - split_idx],
                        errs,
                        "aspect {aspect} day {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpoint_mid_window_changes_no_scores() {
        // Interrupt a stream mid-window, checkpoint through JSON, restore,
        // and finish: every remaining day scores bit-identically to the
        // uninterrupted stream.
        let cube = test_cube(true);
        let (start, split, _end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube.clone(), feature_set(), &groups(), AcobeConfig::tiny())
                .unwrap();
        pipe.fit(start, split).unwrap();
        let mut engine = pipe.into_engine();
        engine.reset_stream();

        let split_idx = cube.day_index(split).unwrap();
        let checkpoint_at = split_idx + 7; // mid-window: D = 7 for tiny()
        let mut day_buf = vec![0.0f32; cube.day_slice_len()];
        let mut restored: Option<DetectionEngine> = None;
        for d in 0..cube.days() {
            cube.day_slice_into(d, &mut day_buf);
            let date = cube.start().add_days(d as i32);
            if d < split_idx {
                engine.warm_day(date, &day_buf).unwrap();
                continue;
            }
            let expected = engine.ingest_day(date, &day_buf).unwrap().unwrap();
            if d == checkpoint_at {
                let json = serde_json::to_string(&engine.snapshot()).unwrap();
                restored =
                    Some(DetectionEngine::restore(serde_json::from_str(&json).unwrap()).unwrap());
            }
            if let Some(other) = restored.as_mut() {
                if d > checkpoint_at {
                    let got = other.ingest_day(date, &day_buf).unwrap().unwrap();
                    assert_eq!(expected, got, "day {d} diverged after restore");
                }
            }
        }
        let engine_list = engine.daily_investigation(2, 3);
        let restored_list = restored.unwrap().daily_investigation(2, 3);
        assert_eq!(engine_list.len(), restored_list.len());
        for (a, b) in engine_list.iter().zip(&restored_list) {
            assert_eq!(a.user, b.user);
        }
    }

    #[test]
    fn scoring_before_fit_errors() {
        let cube = test_cube(false);
        let (_, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        let err = pipe.score_range(split, end).unwrap_err();
        assert!(matches!(err, AcobeError::NotTrained), "{err:?}");
        assert!(err.to_string().contains("not trained"));
    }

    #[test]
    fn user_without_group_rejected() {
        let cube = test_cube(false);
        let err = AcobePipeline::new(
            cube,
            feature_set(),
            &[vec![0, 1, 2]],
            AcobeConfig::tiny(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("belongs to no group"), "{err}");
    }

    #[test]
    fn mismatched_feature_set_rejected() {
        let cube = test_cube(false);
        let mut fs = feature_set();
        fs.names.push("extra".into());
        let err =
            AcobePipeline::new(cube, fs, &groups(), AcobeConfig::tiny()).unwrap_err();
        assert!(err.to_string().contains("feature set"), "{err}");
    }

    #[test]
    fn critic_n_larger_than_aspects_rejected() {
        let cube = test_cube(false);
        let cfg = AcobeConfig::tiny().with_critic_n(5);
        let err = AcobePipeline::new(cube, feature_set(), &groups(), cfg).unwrap_err();
        assert!(err.to_string().contains("critic_n"), "{err}");
    }
}
