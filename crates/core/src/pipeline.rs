//! The end-to-end ACOBE pipeline (paper Figure 1): measurements → compound
//! behavioral deviation matrices → autoencoder ensemble → anomaly scores →
//! ordered investigation list.

use crate::config::{AcobeConfig, OptimizerKind, Representation};
use crate::critic::{investigate_from_scores, Investigation};
use crate::deviation::{compute_deviations, group_average_cube, DeviationCube};
use crate::matrix::build_row;
use acobe_features::counts::FeatureCube;
use acobe_features::spec::FeatureSet;
use acobe_logs::time::Date;
use acobe_nn::autoencoder::{Autoencoder, AutoencoderConfig, OutputActivationKind};
use acobe_nn::optim::{Adadelta, Adam, Optimizer};
use acobe_nn::tensor::Matrix;
use acobe_nn::train::{fit_autoencoder_observed, ProgressObserver, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-aspect, per-day, per-user anomaly scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreTable {
    /// Aspect names, index-aligned with `scores`.
    pub aspect_names: Vec<String>,
    /// First scored day.
    pub start: Date,
    /// Number of users.
    pub users: usize,
    /// `scores[aspect][day][user]` = reconstruction error.
    pub scores: Vec<Vec<Vec<f32>>>,
}

impl ScoreTable {
    /// Number of scored days.
    pub fn days(&self) -> usize {
        self.scores.first().map_or(0, |a| a.len())
    }

    /// All users' scores for one `(aspect, day)`.
    pub fn daily(&self, aspect: usize, day: usize) -> &[f32] {
        &self.scores[aspect][day]
    }

    /// One user's score trend across days for an aspect (Figure 5/7 series).
    pub fn user_series(&self, aspect: usize, user: usize) -> Vec<f32> {
        self.scores[aspect].iter().map(|day| day[user]).collect()
    }

    /// Each user's maximum daily score in an aspect — the scalar used to
    /// rank users over a test window.
    pub fn max_per_user(&self, aspect: usize) -> Vec<f32> {
        self.smoothed_max_per_user(aspect, 1)
    }

    /// Each user's maximum *trailing-mean* score: the max over days of the
    /// mean of the last `window` daily scores.
    ///
    /// `window = 1` is the plain max. Larger windows favor *persistent*
    /// anomalies (the paper's Figure 5(b) victims stay elevated for days)
    /// over one-day noise spikes.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn smoothed_max_per_user(&self, aspect: usize, window: usize) -> Vec<f32> {
        assert!(window > 0, "window must be positive");
        let days = self.scores[aspect].len();
        let mut out = vec![f32::MIN; self.users];
        for u in 0..self.users {
            let mut sum = 0.0f32;
            for d in 0..days {
                sum += self.scores[aspect][d][u];
                if d >= window {
                    sum -= self.scores[aspect][d - window][u];
                }
                let len = (d + 1).min(window) as f32;
                let mean = sum / len;
                if mean > out[u] {
                    out[u] = mean;
                }
            }
            if days == 0 {
                out[u] = 0.0;
            }
        }
        out
    }

    /// Mean and standard deviation over every data point of an aspect
    /// (printed atop each Figure 5 sub-plot).
    pub fn mean_std(&self, aspect: usize) -> (f32, f32) {
        let all: Vec<f32> = self.scores[aspect].iter().flatten().copied().collect();
        let n = all.len().max(1) as f64;
        let mean = all.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = all.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean as f32, var.sqrt() as f32)
    }

    /// The critic's ordered investigation list over the whole window, using
    /// per-user max scores per aspect (Algorithm 1 with parameter `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds the number of aspects.
    pub fn investigation_list(&self, n: usize) -> Vec<Investigation> {
        self.investigation_list_smoothed(n, 1)
    }

    /// Like [`ScoreTable::investigation_list`] but ranking users by their
    /// maximum trailing `smooth`-day mean score per aspect.
    ///
    /// # Panics
    ///
    /// Panics if `n` is invalid or `smooth == 0`.
    pub fn investigation_list_smoothed(&self, n: usize, smooth: usize) -> Vec<Investigation> {
        let _span = acobe_obs::span!("critic");
        let per_aspect: Vec<Vec<f32>> = (0..self.scores.len())
            .map(|a| self.smoothed_max_per_user(a, smooth))
            .collect();
        investigate_from_scores(&per_aspect, n)
    }

    /// The critic's investigation list for a single day.
    ///
    /// # Panics
    ///
    /// Panics if `day` is out of range or `n` invalid.
    pub fn daily_investigation(&self, day: usize, n: usize) -> Vec<Investigation> {
        self.daily_investigation_smoothed(day, n, 1)
    }

    /// Daily investigation list ranking users by the trailing `window`-day
    /// mean of their scores (ending at `day`): persistent elevations beat
    /// one-day noise spikes, as in the windowed ranking.
    ///
    /// # Panics
    ///
    /// Panics if `day` is out of range, `n` invalid, or `window == 0`.
    pub fn daily_investigation_smoothed(
        &self,
        day: usize,
        n: usize,
        window: usize,
    ) -> Vec<Investigation> {
        assert!(window > 0, "window must be positive");
        let _span = acobe_obs::span!("critic");
        let lo = day.saturating_sub(window - 1);
        let len = (day - lo + 1) as f32;
        let per_aspect: Vec<Vec<f32>> = self
            .scores
            .iter()
            .map(|aspect| {
                (0..self.users)
                    .map(|u| (lo..=day).map(|d| aspect[d][u]).sum::<f32>() / len)
                    .collect()
            })
            .collect();
        investigate_from_scores(&per_aspect, n)
    }
}

/// Forwards per-epoch training telemetry into `acobe-obs`: every epoch's
/// wall time lands in the `train/epoch_ms` histogram and, at `-v`
/// verbosity, prints one trace line per epoch.
struct EpochTelemetry<'a> {
    aspect: &'a str,
}

impl<'a> EpochTelemetry<'a> {
    fn new(aspect: &'a str) -> Self {
        EpochTelemetry { aspect }
    }
}

impl ProgressObserver for EpochTelemetry<'_> {
    fn on_epoch(&mut self, epoch: usize, loss: f32, elapsed_ms: f64) {
        acobe_obs::histogram(
            "train/epoch_ms",
            &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0],
        )
        .observe(elapsed_ms);
        acobe_obs::counter("train/epochs").inc();
        acobe_obs::detail!(
            "train[{}] epoch {:>3}: loss {:.6} ({:.1} ms)",
            self.aspect,
            epoch + 1,
            loss,
            elapsed_ms
        );
    }

    fn on_batch(&mut self, forward_ms: f64, backward_ms: f64) {
        const BATCH_EDGES: &[f64] = &[0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0];
        acobe_obs::histogram("train/forward_ms", BATCH_EDGES).observe(forward_ms);
        acobe_obs::histogram("train/backward_ms", BATCH_EDGES).observe(backward_ms);
    }

    fn on_complete(&mut self, report: &TrainReport) {
        acobe_obs::detail!(
            "train[{}] done: {} epochs in {:.0} ms{}",
            self.aspect,
            report.epochs_run,
            report.total_ms(),
            if report.stopped_early { " (stopped early)" } else { "" }
        );
    }
}

/// The ACOBE detector: an ensemble of per-aspect autoencoders over compound
/// behavioral deviation matrices.
///
/// # Examples
///
/// See `examples/quickstart.rs` for an end-to-end run; unit tests below for a
/// minimal in-memory flow.
#[derive(Debug)]
pub struct AcobePipeline {
    config: AcobeConfig,
    feature_set: FeatureSet,
    user_group: Vec<usize>,
    counts: FeatureCube,
    group_counts: Option<FeatureCube>,
    user_dev: Option<DeviationCube>,
    group_dev: Option<DeviationCube>,
    models: Vec<Autoencoder>,
    /// Per-aspect, per-user baseline reconstruction error from the tail of
    /// the training window (used when `config.calibrate`).
    baselines: Vec<Vec<f32>>,
}

impl AcobePipeline {
    /// Builds a pipeline over a measurement cube.
    ///
    /// `groups[g]` lists the user indices of group `g` (the paper uses LDAP
    /// departments). Every user must belong to exactly one group when the
    /// configuration includes group behavior.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid configuration, feature indices outside
    /// the cube, or users without a group.
    pub fn new(
        counts: FeatureCube,
        feature_set: FeatureSet,
        groups: &[Vec<usize>],
        config: AcobeConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        if feature_set.len() != counts.features() {
            return Err(format!(
                "feature set has {} features but cube has {}",
                feature_set.len(),
                counts.features()
            ));
        }
        for aspect in &feature_set.aspects {
            if aspect.features.iter().any(|&f| f >= counts.features()) {
                return Err(format!("aspect {} has out-of-range features", aspect.name));
            }
        }
        if config.critic_n > feature_set.aspects.len() {
            return Err(format!(
                "critic_n {} exceeds {} aspects",
                config.critic_n,
                feature_set.aspects.len()
            ));
        }

        let mut user_group = vec![usize::MAX; counts.users()];
        for (g, members) in groups.iter().enumerate() {
            for &u in members {
                if u >= counts.users() {
                    return Err(format!("group {g} contains unknown user {u}"));
                }
                user_group[u] = g;
            }
        }
        if config.matrix.include_group {
            if groups.is_empty() {
                return Err("group behavior requires non-empty groups".into());
            }
            if let Some(u) = user_group.iter().position(|&g| g == usize::MAX) {
                return Err(format!("user {u} belongs to no group"));
            }
        }

        acobe_obs::gauge("pipeline/users").set(counts.users() as f64);
        acobe_obs::gauge("pipeline/days").set(counts.days() as f64);
        acobe_obs::gauge("pipeline/aspects").set(feature_set.aspects.len() as f64);

        let needs_dev = config.representation == Representation::Deviation;
        let needs_group = config.matrix.include_group;
        let _span = acobe_obs::span!("deviation");
        let group_counts = if needs_group {
            Some(group_average_cube(&counts, groups))
        } else {
            None
        };
        let user_dev = needs_dev.then(|| compute_deviations(&counts, &config.deviation));
        let group_dev = match (&group_counts, needs_dev) {
            (Some(gc), true) => Some(compute_deviations(gc, &config.deviation)),
            _ => None,
        };
        drop(_span);

        Ok(AcobePipeline {
            config,
            feature_set,
            user_group,
            counts,
            group_counts,
            user_dev,
            group_dev,
            models: Vec::new(),
            baselines: Vec::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &AcobeConfig {
        &self.config
    }

    /// The feature catalog / aspect partition.
    pub fn feature_set(&self) -> &FeatureSet {
        &self.feature_set
    }

    /// Flattened input width for an aspect.
    pub fn input_dim(&self, aspect: usize) -> usize {
        self.config
            .matrix
            .input_dim(self.feature_set.aspects[aspect].features.len(), self.counts.frames())
    }

    /// Builds the model-input row for `(user, day_index)` in an aspect.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn build_input_row(&self, aspect: usize, user: usize, day: usize) -> Vec<f32> {
        let features = &self.feature_set.aspects[aspect].features;
        match self.config.representation {
            Representation::Deviation => build_row(
                self.user_dev.as_ref().expect("deviation cube"),
                self.group_dev.as_ref(),
                user,
                self.user_group[user],
                day,
                features,
                &self.config.matrix,
            ),
            Representation::SingleDayCounts => {
                let frames = self.counts.frames();
                let mut row =
                    Vec::with_capacity(self.config.matrix.input_dim(features.len(), frames));
                for &f in features {
                    for t in 0..frames {
                        let c = self.counts.get_by_index(user, day, t, f);
                        row.push(c / (1.0 + c));
                    }
                }
                if let Some(gc) = &self.group_counts {
                    let g = self.user_group[user];
                    for &f in features {
                        for t in 0..frames {
                            let c = gc.get_by_index(g, day, t, f);
                            row.push(c / (1.0 + c));
                        }
                    }
                }
                row
            }
        }
    }

    /// Trains one autoencoder per aspect on `(user, day)` samples from
    /// `[train_start, train_end)`, sampling down to `max_train_samples`.
    ///
    /// # Errors
    ///
    /// Returns a message when the range is outside the cube or leaves no
    /// eligible training days after deviation warm-up.
    pub fn fit(&mut self, train_start: Date, train_end: Date) -> Result<Vec<TrainReport>, String> {
        let start_idx = self
            .counts
            .day_index(train_start)
            .ok_or("train_start outside cube")?;
        let end_idx = train_end.days_since(self.counts.start());
        if end_idx <= start_idx as i32 || end_idx as usize > self.counts.days() {
            return Err("invalid training range".into());
        }
        let warmup = match self.config.representation {
            Representation::Deviation => self.config.deviation.min_history,
            Representation::SingleDayCounts => 0,
        };
        let first = start_idx.max(warmup);
        let end_idx = end_idx as usize;
        if first >= end_idx {
            return Err("no training days after deviation warm-up".into());
        }

        // Deterministic (user, day) sampling shared across aspects.
        let mut samples: Vec<(usize, usize)> = (0..self.counts.users())
            .flat_map(|u| (first..end_idx).map(move |d| (u, d)))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5a5a);
        samples.shuffle(&mut rng);
        samples.truncate(self.config.max_train_samples);

        acobe_obs::counter("pipeline/train_samples").add(samples.len() as u64);

        // Build every aspect's training matrix first (row construction
        // borrows `self`), then train the ensemble — concurrently when
        // configured. Per-aspect seeds make the two paths bit-identical.
        self.models.clear();
        self.baselines.clear();
        let mut prepared = Vec::with_capacity(self.feature_set.aspects.len());
        for aspect in 0..self.feature_set.aspects.len() {
            let aspect_name = self.feature_set.aspects[aspect].name.clone();
            let dim = self.input_dim(aspect);
            let mut data = Matrix::zeros(samples.len(), dim);
            {
                let _span = acobe_obs::span!("matrix", aspect = aspect_name);
                for (i, &(u, d)) in samples.iter().enumerate() {
                    let row = self.build_input_row(aspect, u, d);
                    data.row_mut(i).copy_from_slice(&row);
                }
                acobe_obs::counter("pipeline/matrix_rows").add(samples.len() as u64);
            }
            let ae_config = AutoencoderConfig {
                input_dim: dim,
                encoder_dims: self.config.encoder_dims.clone(),
                batch_norm: true,
                output_activation: OutputActivationKind::Relu,
                seed: self.config.seed.wrapping_add(aspect as u64),
            };
            prepared.push((aspect_name, data, ae_config));
        }

        let train_cfg = &self.config.train;
        let optimizer_kind = self.config.optimizer;
        let train_one = |aspect_name: &str, data: &Matrix, ae_config: AutoencoderConfig| {
            let mut ae = Autoencoder::new(ae_config);
            let mut optimizer = make_optimizer(optimizer_kind);
            // The span stack is thread-local, so on a worker thread this is
            // still a top-level `train(aspect=...)` span.
            let _span = acobe_obs::span!("train", aspect = aspect_name);
            let mut observer = EpochTelemetry::new(aspect_name);
            let report = fit_autoencoder_observed(
                &mut ae,
                data,
                train_cfg,
                optimizer.as_mut(),
                &mut observer,
            );
            (ae, report)
        };

        let trained: Vec<(Autoencoder, TrainReport)> =
            if self.config.parallel_train && prepared.len() > 1 {
                std::thread::scope(|s| {
                    let handles: Vec<_> = prepared
                        .iter()
                        .map(|(name, data, ae_config)| {
                            let ae_config = ae_config.clone();
                            let train_one = &train_one;
                            s.spawn(move || train_one(name, data, ae_config))
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("aspect trainer panicked")).collect()
                })
            } else {
                prepared
                    .iter()
                    .map(|(name, data, ae_config)| train_one(name, data, ae_config.clone()))
                    .collect()
            };

        let mut reports = Vec::with_capacity(trained.len());
        for (ae, report) in trained {
            self.models.push(ae);
            reports.push(report);
        }

        if self.config.calibrate {
            let _span = acobe_obs::span!("calibrate");
            // Per-user baseline error over the last days of training.
            let cal_days = 30.min(end_idx - first);
            let cal_start = end_idx - cal_days;
            let users = self.counts.users();
            for aspect in 0..self.models.len() {
                let mut sums = vec![0.0f64; users];
                for day in cal_start..end_idx {
                    let errs = self.score_day_raw(aspect, day);
                    for (s, e) in sums.iter_mut().zip(errs) {
                        *s += e as f64;
                    }
                }
                let mut baseline: Vec<f32> =
                    sums.iter().map(|&s| (s / cal_days as f64) as f32).collect();
                // Floor at a tenth of the aspect median so near-zero
                // baselines cannot explode ratios.
                let mut sorted = baseline.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let median = sorted[sorted.len() / 2].max(1e-6);
                for b in &mut baseline {
                    *b = b.max(median * 0.1);
                }
                self.baselines.push(baseline);
            }
        }
        Ok(reports)
    }

    /// Raw (uncalibrated) per-user reconstruction errors for one day.
    ///
    /// Hot path shared by scoring and calibration; spans live in the
    /// callers so per-day guards do not pile up.
    fn score_day_raw(&mut self, aspect: usize, day: usize) -> Vec<f32> {
        let users = self.counts.users();
        let dim = self.input_dim(aspect);
        let mut batch = Matrix::zeros(users, dim);
        for u in 0..users {
            let row = self.build_input_row(aspect, u, day);
            batch.row_mut(u).copy_from_slice(&row);
        }
        self.models[aspect].reconstruction_errors(&batch)
    }

    /// True once [`AcobePipeline::fit`] has run.
    pub fn is_trained(&self) -> bool {
        !self.models.is_empty()
    }

    /// Scores every user on every day of `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns a message when called before [`AcobePipeline::fit`] or with a
    /// range outside the cube.
    pub fn score_range(&mut self, start: Date, end: Date) -> Result<ScoreTable, String> {
        if self.models.is_empty() {
            return Err("pipeline is not trained".into());
        }
        let start_idx = self.counts.day_index(start).ok_or("start outside cube")?;
        let end_idx = end.days_since(self.counts.start());
        if end_idx <= start_idx as i32 || end_idx as usize > self.counts.days() {
            return Err("invalid scoring range".into());
        }
        let end_idx = end_idx as usize;
        let users = self.counts.users();

        let _span = acobe_obs::span!("score");
        acobe_obs::counter("pipeline/days_scored").add((end_idx - start_idx) as u64);
        acobe_obs::counter("pipeline/rows_scored")
            .add(((end_idx - start_idx) * users * self.models.len()) as u64);
        let mut scores = vec![Vec::with_capacity(end_idx - start_idx); self.models.len()];
        for day in start_idx..end_idx {
            for aspect in 0..self.models.len() {
                let mut errs = self.score_day_raw(aspect, day);
                if self.config.calibrate {
                    for (e, &b) in errs.iter_mut().zip(&self.baselines[aspect]) {
                        *e /= b;
                    }
                }
                scores[aspect].push(errs);
            }
        }
        Ok(ScoreTable {
            aspect_names: self
                .feature_set
                .aspects
                .iter()
                .map(|a| a.name.clone())
                .collect(),
            start,
            users,
            scores,
        })
    }
}

fn make_optimizer(kind: OptimizerKind) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Adadelta => Box::new(Adadelta::new()),
        OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_features::spec::{AspectSpec, FeatureSet};
    use rand::Rng;

    /// A synthetic cube: 12 users × 120 days × 2 frames × 4 features with
    /// stable habits, where user 0 massively deviates on features 0/2 in the
    /// last 10 days.
    fn test_cube(anomalous: bool) -> FeatureCube {
        let mut rng = StdRng::seed_from_u64(99);
        let mut c = FeatureCube::new(12, Date::from_ymd(2010, 1, 1), 120, 2, 4);
        for u in 0..12 {
            let base: f32 = 4.0 + (u % 3) as f32;
            for d in 0..120 {
                for t in 0..2 {
                    for f in 0..4 {
                        let noise: f32 = rng.gen_range(-1.0..1.0);
                        let mut v = (base + f as f32 + noise).max(0.0);
                        if t == 1 {
                            v *= 0.3;
                        }
                        if anomalous && u == 0 && d >= 110 && (f == 0 || f == 2) {
                            v += 40.0;
                        }
                        c.set_by_index(u, d, t, f, v);
                    }
                }
            }
        }
        c
    }

    fn feature_set() -> FeatureSet {
        FeatureSet {
            names: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            aspects: vec![
                AspectSpec { name: "first".into(), features: vec![0, 1] },
                AspectSpec { name: "second".into(), features: vec![2, 3] },
            ],
        }
    }

    fn groups() -> Vec<Vec<usize>> {
        vec![(0..6).collect(), (6..12).collect()]
    }

    fn dates(cube: &FeatureCube) -> (Date, Date, Date) {
        let start = cube.start();
        (start, start.add_days(100), start.add_days(120))
    }

    #[test]
    fn end_to_end_detects_the_anomalous_user() {
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        let list = table.investigation_list(2);
        assert_eq!(list[0].user, 0, "anomalous user must top the list: {list:?}");
    }

    #[test]
    fn score_table_shapes() {
        let cube = test_cube(false);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        assert_eq!(table.days(), 20);
        assert_eq!(table.users, 12);
        assert_eq!(table.aspect_names, vec!["first", "second"]);
        assert_eq!(table.user_series(0, 3).len(), 20);
        assert_eq!(table.max_per_user(1).len(), 12);
        let (mean, std) = table.mean_std(0);
        assert!(mean.is_finite() && std.is_finite());
    }

    #[test]
    fn single_day_variant_runs() {
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let cfg = AcobeConfig::tiny().single_day();
        let mut pipe = AcobePipeline::new(cube, feature_set(), &groups(), cfg).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        assert_eq!(table.days(), 20);
    }

    #[test]
    fn no_group_variant_runs() {
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let cfg = AcobeConfig::tiny().without_group();
        let mut pipe = AcobePipeline::new(cube, feature_set(), &groups(), cfg).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        let list = table.investigation_list(2);
        assert_eq!(list[0].user, 0);
    }

    #[test]
    fn calibration_divides_by_a_per_user_constant() {
        // Calibrated scores must equal raw scores divided by one positive
        // per-user constant (the training-tail baseline): the ratio
        // raw/calibrated is constant across days for each user.
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let run_with = |calibrate: bool| {
            let mut cfg = AcobeConfig::tiny();
            cfg.calibrate = calibrate;
            let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups(), cfg).unwrap();
            pipe.fit(start, split).unwrap();
            pipe.score_range(split, end).unwrap()
        };
        let raw = run_with(false);
        let calibrated = run_with(true);
        for a in 0..raw.scores.len() {
            for u in 0..raw.users {
                let raw_series = raw.user_series(a, u);
                let cal_series = calibrated.user_series(a, u);
                let mut ratio: Option<f32> = None;
                for (r, c) in raw_series.iter().zip(&cal_series) {
                    if *c > 1e-12 {
                        let k = r / c;
                        assert!(k > 0.0, "baseline must be positive");
                        match ratio {
                            None => ratio = Some(k),
                            Some(prev) => assert!(
                                (k - prev).abs() / prev < 1e-3,
                                "aspect {a} user {u}: ratios {prev} vs {k}"
                            ),
                        }
                    }
                }
                assert!(ratio.is_some(), "no usable days for user {u}");
            }
        }
    }

    #[test]
    fn pipeline_records_observability_spans() {
        let cube = test_cube(false);
        let (start, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        pipe.fit(start, split).unwrap();
        let table = pipe.score_range(split, end).unwrap();
        let _ = table.investigation_list(2);

        let registry = acobe_obs::global();
        for stage in [
            "deviation",
            "matrix(aspect=first)",
            "matrix(aspect=second)",
            "train(aspect=first)",
            "train(aspect=second)",
            "score",
            "critic",
        ] {
            let stats = registry.span_stats(stage).unwrap_or_else(|| {
                panic!("stage '{stage}' missing from {:?}", registry.span_paths())
            });
            assert!(stats.count >= 1, "stage '{stage}' never completed");
        }
        assert!(acobe_obs::counter("pipeline/train_samples").get() > 0);
        assert!(acobe_obs::counter("train/epochs").get() > 0);
        assert!(acobe_obs::to_jsonl().contains("\"kind\":\"span\""));
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // Per-aspect seeding plus the deterministic kernel make concurrent
        // ensemble training bit-identical to the serial path.
        let cube = test_cube(true);
        let (start, split, end) = dates(&cube);
        let run = |parallel: bool| {
            let mut cfg = AcobeConfig::tiny();
            cfg.parallel_train = parallel;
            let mut pipe = AcobePipeline::new(cube.clone(), feature_set(), &groups(), cfg).unwrap();
            let reports = pipe.fit(start, split).unwrap();
            let table = pipe.score_range(split, end).unwrap();
            (reports, table)
        };
        let (parallel_reports, parallel_table) = run(true);
        let (serial_reports, serial_table) = run(false);
        assert_eq!(parallel_reports.len(), serial_reports.len());
        for (p, s) in parallel_reports.iter().zip(&serial_reports) {
            assert_eq!(p.epoch_losses, s.epoch_losses);
        }
        assert_eq!(parallel_table.scores, serial_table.scores);
    }

    #[test]
    fn scoring_before_fit_errors() {
        let cube = test_cube(false);
        let (_, split, end) = dates(&cube);
        let mut pipe =
            AcobePipeline::new(cube, feature_set(), &groups(), AcobeConfig::tiny()).unwrap();
        assert!(pipe.score_range(split, end).is_err());
    }

    #[test]
    fn user_without_group_rejected() {
        let cube = test_cube(false);
        let err = AcobePipeline::new(
            cube,
            feature_set(),
            &[vec![0, 1, 2]],
            AcobeConfig::tiny(),
        )
        .unwrap_err();
        assert!(err.contains("belongs to no group"), "{err}");
    }

    #[test]
    fn mismatched_feature_set_rejected() {
        let cube = test_cube(false);
        let mut fs = feature_set();
        fs.names.push("extra".into());
        let err =
            AcobePipeline::new(cube, fs, &groups(), AcobeConfig::tiny()).unwrap_err();
        assert!(err.contains("feature set"), "{err}");
    }

    #[test]
    fn critic_n_larger_than_aspects_rejected() {
        let cube = test_cube(false);
        let cfg = AcobeConfig::tiny().with_critic_n(5);
        let err = AcobePipeline::new(cube, feature_set(), &groups(), cfg).unwrap_err();
        assert!(err.contains("critic_n"), "{err}");
    }
}
