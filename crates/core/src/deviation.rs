//! Behavioral deviation computation (paper Section IV-A).
//!
//! For each feature `f`, time-frame `t` and day `d`, the deviation is the
//! z-score of the measurement `m_{f,t,d}` against the `ω−1`-day sliding
//! history before `d`, clamped to `[-Δ, Δ]`:
//!
//! ```text
//! h          = [m_{f,t,i} | d−ω+1 ≤ i < d]
//! std(h)     = max(std(h), ε)
//! δ          = (m_{f,t,d} − mean(h)) / std(h)
//! σ          = clamp(δ, −Δ, Δ)
//! ```
//!
//! The history *slides*: users who shift their habits stop deviating once the
//! shift enters the window (the "white tails" of Figure 4).

use crate::error::AcobeError;
use crate::streaming::RollingDeviation;
use acobe_features::counts::FeatureCube;
use serde::{Deserialize, Serialize};

/// Parameters of the deviation measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviationConfig {
    /// Window size ω in days (history is the ω−1 days before `d`).
    /// The paper uses 30 for the evaluation and 14 for the case study.
    pub window: usize,
    /// Deviation bound Δ (paper: 3).
    pub delta: f32,
    /// Standard-deviation floor ε.
    pub epsilon: f32,
    /// Minimum history length before deviations are emitted (shorter
    /// histories produce σ = 0). Keeps early days from being all-Δ noise.
    pub min_history: usize,
}

impl Default for DeviationConfig {
    fn default() -> Self {
        DeviationConfig { window: 30, delta: 3.0, epsilon: 1e-3, min_history: 7 }
    }
}

impl DeviationConfig {
    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Config`] when the window is too small, Δ ≤ 0,
    /// ε ≤ 0, or `min_history` falls outside `[1, window)` (a zero
    /// `min_history` would divide by an empty history on day 0).
    pub fn validate(&self) -> Result<(), AcobeError> {
        if self.window < 2 {
            return Err(AcobeError::Config("window must be at least 2 days".into()));
        }
        if self.delta <= 0.0 {
            return Err(AcobeError::Config("delta must be positive".into()));
        }
        if self.epsilon <= 0.0 {
            return Err(AcobeError::Config("epsilon must be positive".into()));
        }
        if self.min_history == 0 {
            return Err(AcobeError::Config("min_history must be at least 1".into()));
        }
        if self.min_history >= self.window {
            return Err(AcobeError::Config(
                "min_history must be smaller than window".into(),
            ));
        }
        Ok(())
    }
}

/// Deviations σ and feature weights w, same shape as the measurement cube.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviationCube {
    /// Deviations σ in `[-Δ, Δ]`.
    pub sigma: FeatureCube,
    /// TF-style feature weights `w = 1 / log2(max(std(h), 2))` in `(0, 1]`
    /// (Equation 1 of the paper).
    pub weights: FeatureCube,
    /// Configuration used.
    pub config: DeviationConfig,
}

/// Computes deviations and weights for every `(user, day, frame, feature)`.
///
/// Days with fewer than `min_history` prior days in the window get σ = 0 and
/// weight 1.
///
/// Users are independent, so they are processed in parallel on the
/// [`acobe_nn::pool`] worker pool (one job per user over disjoint output
/// slabs). The result is identical to the serial computation regardless of
/// thread count.
///
/// Internally each job replays the user's days through a
/// [`RollingDeviation`] — the same incremental core the streaming engine
/// uses — so batch and streaming deviations are one code path.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`DeviationConfig::validate`]).
pub fn compute_deviations(counts: &FeatureCube, config: &DeviationConfig) -> DeviationCube {
    config.validate().expect("invalid deviation config");
    let (users, days, frames, features) =
        (counts.users(), counts.days(), counts.frames(), counts.features());
    let mut sigma = FeatureCube::new(users, counts.start(), days, frames, features);
    let mut weights = FeatureCube::new(users, counts.start(), days, frames, features);

    let cfg = *config;
    let day_width = frames * features;
    let jobs: Vec<acobe_nn::pool::Job<'_>> = sigma
        .user_blocks_mut()
        .zip(weights.user_blocks_mut())
        .enumerate()
        .map(|(u, (sigma_block, weights_block))| -> acobe_nn::pool::Job<'_> {
            let src = counts.user_block(u);
            Box::new(move || {
                // The per-user slab layout `(day * frames + frame) * features
                // + feature` makes each day a contiguous `[frame][feature]`
                // slice — exactly one rolling push.
                let mut rolling = RollingDeviation::new(1, frames, features, cfg);
                for d in 0..days {
                    let day = d * day_width..(d + 1) * day_width;
                    rolling
                        .push_day_into(
                            &src[day.clone()],
                            &mut sigma_block[day.clone()],
                            &mut weights_block[day],
                        )
                        .expect("day slice width matches rolling state");
                }
            })
        })
        .collect();
    acobe_nn::pool::global().scope(jobs);

    DeviationCube { sigma, weights, config: *config }
}

/// Averages a measurement cube over group members, producing a cube whose
/// "user" axis is groups: the paper's group behavior (Section IV-A).
///
/// # Panics
///
/// Panics if any group is empty or refers to an unknown user index.
pub fn group_average_cube(counts: &FeatureCube, groups: &[Vec<usize>]) -> FeatureCube {
    assert!(!groups.is_empty(), "no groups");
    let (days, frames, features) = (counts.days(), counts.frames(), counts.features());
    let mut out = FeatureCube::new(groups.len(), counts.start(), days, frames, features);
    for (g, members) in groups.iter().enumerate() {
        assert!(!members.is_empty(), "group {g} is empty");
        for d in 0..days {
            for t in 0..frames {
                for f in 0..features {
                    out.set_by_index(g, d, t, f, counts.group_mean(members, d, t, f));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::time::Date;

    fn cube_with_series(series: &[f32]) -> FeatureCube {
        let mut c = FeatureCube::new(1, Date::from_ymd(2010, 1, 1), series.len(), 1, 1);
        for (d, &v) in series.iter().enumerate() {
            c.set_by_index(0, d, 0, 0, v);
        }
        c
    }

    fn cfg(window: usize, min_history: usize) -> DeviationConfig {
        DeviationConfig { window, delta: 3.0, epsilon: 1e-3, min_history }
    }

    #[test]
    fn constant_history_spike_hits_delta() {
        // 10 days of exactly 5.0 then a spike.
        let mut series = vec![5.0; 10];
        series.push(50.0);
        let c = cube_with_series(&series);
        let dev = compute_deviations(&c, &cfg(30, 5));
        // History is constant -> std = epsilon -> clamped at +delta.
        assert_eq!(dev.sigma.get_by_index(0, 10, 0, 0), 3.0);
        // Constant days deviate by zero.
        assert_eq!(dev.sigma.get_by_index(0, 9, 0, 0), 0.0);
    }

    #[test]
    fn warmup_days_are_zero() {
        let c = cube_with_series(&[9.0; 10]);
        let dev = compute_deviations(&c, &cfg(30, 5));
        for d in 0..5 {
            assert_eq!(dev.sigma.get_by_index(0, d, 0, 0), 0.0);
            assert_eq!(dev.weights.get_by_index(0, d, 0, 0), 1.0);
        }
    }

    #[test]
    fn zscore_matches_hand_computation() {
        // History (window 4 -> 3 days): [2, 4, 6]: mean 4, pop-std sqrt(8/3).
        let series = vec![2.0, 4.0, 6.0, 8.0];
        let c = cube_with_series(&series);
        let dev = compute_deviations(&c, &cfg(4, 2));
        let expected = (8.0 - 4.0) / (8.0f32 / 3.0).sqrt(); // ≈ 2.45, inside ±Δ
        let got = dev.sigma.get_by_index(0, 3, 0, 0);
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn window_slides_and_recovers() {
        // A level shift: after `window` days at the new level, deviations die
        // out (the paper's "white tails").
        let mut series = vec![1.0; 20];
        series.extend(vec![30.0; 20]);
        let c = cube_with_series(&series);
        let dev = compute_deviations(&c, &cfg(8, 4));
        // Right at the shift: strongly positive.
        assert!(dev.sigma.get_by_index(0, 20, 0, 0) > 2.9);
        // Long after the shift is inside the window: back near zero.
        let late = dev.sigma.get_by_index(0, 35, 0, 0);
        assert!(late.abs() < 0.5, "late deviation {late}");
    }

    #[test]
    fn weights_decrease_with_chaotic_history() {
        // Feature 0: constant (std ~ 0 -> weight 1).
        // Feature 1: wildly varying (std >> 2 -> weight < 1).
        let mut c = FeatureCube::new(1, Date::from_ymd(2010, 1, 1), 20, 1, 2);
        for d in 0..20 {
            c.set_by_index(0, d, 0, 0, 4.0);
            c.set_by_index(0, d, 0, 1, if d % 2 == 0 { 0.0 } else { 40.0 });
        }
        let dev = compute_deviations(&c, &cfg(10, 5));
        let w_static = dev.weights.get_by_index(0, 15, 0, 0);
        let w_chaotic = dev.weights.get_by_index(0, 15, 0, 1);
        assert_eq!(w_static, 1.0);
        assert!(w_chaotic < 0.3, "chaotic weight {w_chaotic}");
    }

    #[test]
    fn weight_bounded_to_one_for_small_std() {
        // std in (0, 2) must still give weight exactly 1 (log base-2 of 2).
        let series: Vec<f32> = (0..20).map(|d| 5.0 + (d % 2) as f32).collect(); // std 0.5
        let c = cube_with_series(&series);
        let dev = compute_deviations(&c, &cfg(10, 5));
        assert_eq!(dev.weights.get_by_index(0, 15, 0, 0), 1.0);
    }

    #[test]
    fn negative_deviation_clamped() {
        let mut series = vec![50.0; 15];
        series.push(0.0);
        let c = cube_with_series(&series);
        let dev = compute_deviations(&c, &cfg(30, 5));
        assert_eq!(dev.sigma.get_by_index(0, 15, 0, 0), -3.0);
    }

    #[test]
    fn group_average() {
        let mut c = FeatureCube::new(3, Date::from_ymd(2010, 1, 1), 2, 1, 1);
        c.set_by_index(0, 0, 0, 0, 1.0);
        c.set_by_index(1, 0, 0, 0, 3.0);
        c.set_by_index(2, 0, 0, 0, 100.0);
        let g = group_average_cube(&c, &[vec![0, 1], vec![2]]);
        assert_eq!(g.users(), 2);
        assert_eq!(g.get_by_index(0, 0, 0, 0), 2.0);
        assert_eq!(g.get_by_index(1, 0, 0, 0), 100.0);
    }

    #[test]
    fn multi_user_cube_matches_per_user_computation() {
        // Parallel per-user jobs must reproduce exactly what each user would
        // get from a serial single-user run.
        let users = 5;
        let days = 25;
        let mut big = FeatureCube::new(users, Date::from_ymd(2010, 1, 1), days, 2, 2);
        for u in 0..users {
            for d in 0..days {
                for t in 0..2 {
                    for f in 0..2 {
                        let v = ((u * 31 + d * 7 + t * 3 + f) % 13) as f32 * 0.5;
                        big.set_by_index(u, d, t, f, v);
                    }
                }
            }
        }
        let config = cfg(8, 4);
        let all = compute_deviations(&big, &config);
        for u in 0..users {
            let mut solo = FeatureCube::new(1, Date::from_ymd(2010, 1, 1), days, 2, 2);
            for d in 0..days {
                for t in 0..2 {
                    for f in 0..2 {
                        solo.set_by_index(0, d, t, f, big.get_by_index(u, d, t, f));
                    }
                }
            }
            let one = compute_deviations(&solo, &config);
            for d in 0..days {
                for t in 0..2 {
                    for f in 0..2 {
                        assert_eq!(
                            all.sigma.get_by_index(u, d, t, f),
                            one.sigma.get_by_index(0, d, t, f),
                            "sigma mismatch at user {u}"
                        );
                        assert_eq!(
                            all.weights.get_by_index(u, d, t, f),
                            one.weights.get_by_index(0, d, t, f),
                            "weight mismatch at user {u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid deviation config")]
    fn bad_config_rejected() {
        let c = cube_with_series(&[1.0, 2.0]);
        let bad = DeviationConfig { window: 1, ..Default::default() };
        let _ = compute_deviations(&c, &bad);
    }

    #[test]
    #[should_panic(expected = "invalid deviation config")]
    fn zero_min_history_rejected() {
        // min_history = 0 would z-score day 0 against an empty history.
        let c = cube_with_series(&[1.0, 2.0]);
        let bad = DeviationConfig { min_history: 0, ..Default::default() };
        let _ = compute_deviations(&c, &bad);
    }
}
