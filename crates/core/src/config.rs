//! ACOBE pipeline configuration and the paper's model-variant presets.

use crate::deviation::DeviationConfig;
use crate::error::AcobeError;
use crate::matrix::MatrixConfig;
use acobe_nn::train::TrainConfig;
use serde::{Deserialize, Serialize};

/// How user behavior is represented before reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Representation {
    /// Compound behavioral deviation matrices (ACOBE).
    Deviation,
    /// Normalized single-day activity counts — the paper's "1-Day"
    /// reconstruction ablation and the Baseline/Base-FF models
    /// (`x = c / (1 + c)`, no history window).
    SingleDayCounts,
}

/// Which optimizer trains the autoencoders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adadelta with Zeiler defaults (the paper's optimizer).
    Adadelta,
    /// Adam with the given learning rate (faster convergence for tests).
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

/// Full configuration of an [`crate::pipeline::AcobePipeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcobeConfig {
    /// Deviation measurement parameters (ω, Δ, ε).
    pub deviation: DeviationConfig,
    /// Matrix construction parameters (D, group block, weights).
    pub matrix: MatrixConfig,
    /// Behavior representation.
    pub representation: Representation,
    /// Encoder hidden widths (decoder mirrors them).
    pub encoder_dims: Vec<usize>,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Optimizer choice.
    pub optimizer: OptimizerKind,
    /// The critic's N (votes required across aspects).
    pub critic_n: usize,
    /// Cap on training samples per aspect ((user, day) pairs are sampled
    /// deterministically beyond this).
    pub max_train_samples: usize,
    /// Divide each user's anomaly scores by their own baseline
    /// reconstruction error, measured on the last days of the *training*
    /// window. Normal users reconstruct at stable but different error
    /// levels; calibration removes that per-user offset without leaking
    /// test-period information (see DESIGN.md §5).
    pub calibrate: bool,
    /// Train the per-aspect autoencoders of the ensemble on concurrent
    /// threads. Per-aspect seeding makes the result identical to serial
    /// training; disable to reduce peak memory or to serialize per-aspect
    /// telemetry output.
    #[serde(default = "default_parallel_train")]
    pub parallel_train: bool,
    /// Master seed (weights, shuffling, sampling).
    pub seed: u64,
}

fn default_parallel_train() -> bool {
    true
}

impl AcobeConfig {
    /// The paper's configuration: ω = D = 30 days, Δ = 3, weighted deviations
    /// with group block, 512-256-128-64 autoencoders, Adadelta, N = 3.
    pub fn paper() -> Self {
        AcobeConfig {
            deviation: DeviationConfig { window: 30, delta: 3.0, epsilon: 1e-3, min_history: 7 },
            matrix: MatrixConfig {
                matrix_days: 30,
                include_group: true,
                use_weights: true,
                delta: 3.0,
            },
            representation: Representation::Deviation,
            encoder_dims: vec![512, 256, 128, 64],
            train: TrainConfig { epochs: 30, batch_size: 64, seed: 0x7ea1, early_stop_rel: None },
            optimizer: OptimizerKind::Adadelta,
            critic_n: 3,
            max_train_samples: 20_000,
            calibrate: true,
            parallel_train: true,
            seed: 0x_ac0be,
        }
    }

    /// A scaled-down configuration for experiments on laptop budgets:
    /// ω = D = 14, 128-64-32 autoencoders, Adam, fewer samples/epochs.
    /// The shape of every result is preserved (see DESIGN.md §5).
    pub fn fast() -> Self {
        AcobeConfig {
            deviation: DeviationConfig { window: 30, delta: 3.0, epsilon: 1e-3, min_history: 5 },
            matrix: MatrixConfig {
                matrix_days: 14,
                include_group: true,
                use_weights: true,
                delta: 3.0,
            },
            representation: Representation::Deviation,
            encoder_dims: vec![128, 64, 32],
            train: TrainConfig { epochs: 15, batch_size: 64, seed: 0x7ea1, early_stop_rel: None },
            optimizer: OptimizerKind::Adam { lr: 2e-3 },
            critic_n: 3,
            max_train_samples: 8_000,
            calibrate: true,
            parallel_train: true,
            seed: 0x_ac0be,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        AcobeConfig {
            deviation: DeviationConfig { window: 7, delta: 3.0, epsilon: 1e-3, min_history: 3 },
            matrix: MatrixConfig {
                matrix_days: 7,
                include_group: true,
                use_weights: true,
                delta: 3.0,
            },
            representation: Representation::Deviation,
            encoder_dims: vec![64, 32],
            train: TrainConfig { epochs: 8, batch_size: 32, seed: 0x7ea1, early_stop_rel: None },
            optimizer: OptimizerKind::Adam { lr: 3e-3 },
            critic_n: 2,
            max_train_samples: 2_000,
            calibrate: true,
            parallel_train: true,
            seed: 0x_ac0be,
        }
    }

    /// The "No-Group" ablation: identical but without group deviations
    /// (paper Section V-B2).
    pub fn without_group(mut self) -> Self {
        self.matrix.include_group = false;
        self
    }

    /// The "1-Day" ablation: single-day reconstruction of normalized
    /// occurrences (paper Section V-B1).
    pub fn single_day(mut self) -> Self {
        self.representation = Representation::SingleDayCounts;
        self.matrix.matrix_days = 1;
        self
    }

    /// The Baseline/Base-FF shape: single-day, unweighted, no group
    /// (paper Section V-C). Pair with the coarse 24-frame cube for Baseline
    /// or the fine-grained cube for Base-FF.
    pub fn baseline_style(mut self) -> Self {
        self = self.single_day().without_group();
        self.matrix.use_weights = false;
        self
    }

    /// Sets the critic's N (builder-style).
    pub fn with_critic_n(mut self, n: usize) -> Self {
        self.critic_n = n;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Config`] for invalid sub-configs, an empty
    /// architecture, or a deviation representation whose matrix is longer
    /// than the history warmup allows.
    pub fn validate(&self) -> Result<(), AcobeError> {
        self.deviation.validate()?;
        self.matrix.validate()?;
        if self.encoder_dims.is_empty() {
            return Err(AcobeError::Config("encoder_dims must be non-empty".into()));
        }
        if self.critic_n == 0 {
            return Err(AcobeError::Config("critic_n must be at least 1".into()));
        }
        if self.max_train_samples == 0 {
            return Err(AcobeError::Config("max_train_samples must be positive".into()));
        }
        if self.representation == Representation::SingleDayCounts && self.matrix.matrix_days != 1 {
            return Err(AcobeError::Config(
                "single-day representation requires matrix_days == 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        AcobeConfig::paper().validate().unwrap();
        AcobeConfig::fast().validate().unwrap();
        AcobeConfig::tiny().validate().unwrap();
        AcobeConfig::paper().without_group().validate().unwrap();
        AcobeConfig::paper().single_day().validate().unwrap();
        AcobeConfig::paper().baseline_style().validate().unwrap();
    }

    #[test]
    fn paper_matches_reported_hyperparameters() {
        let cfg = AcobeConfig::paper();
        assert_eq!(cfg.deviation.window, 30);
        assert_eq!(cfg.matrix.delta, 3.0);
        assert_eq!(cfg.encoder_dims, vec![512, 256, 128, 64]);
        assert_eq!(cfg.critic_n, 3);
        assert_eq!(cfg.optimizer, OptimizerKind::Adadelta);
    }

    #[test]
    fn variant_builders() {
        let ng = AcobeConfig::tiny().without_group();
        assert!(!ng.matrix.include_group);
        let sd = AcobeConfig::tiny().single_day();
        assert_eq!(sd.matrix.matrix_days, 1);
        assert_eq!(sd.representation, Representation::SingleDayCounts);
        let bs = AcobeConfig::tiny().baseline_style();
        assert!(!bs.matrix.use_weights && !bs.matrix.include_group);
    }

    #[test]
    fn inconsistent_single_day_rejected() {
        let mut cfg = AcobeConfig::tiny();
        cfg.representation = Representation::SingleDayCounts;
        cfg.matrix.matrix_days = 5;
        assert!(cfg.validate().is_err());
    }
}
