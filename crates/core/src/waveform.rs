//! Waveform-aware anomaly judgement — the paper's future-work critic
//! (Section VII-B), implemented as an optional post-processing stage.
//!
//! The paper sketches two additional factors for a more flexible critic:
//!
//! 1. *"whether the anomaly score has a recent spike"*, and
//! 2. *"whether the abnormal raise demonstrates a particular waveform"* —
//!    a developer starting a new project causes "a bursting raise with
//!    long-lasting but smooth decrease, whereas a cyberattack may not show
//!    the decrease but chaotic signals".
//!
//! [`analyze`] extracts those factors from a user's daily score series and
//! [`WaveformCritic`] folds them into the investigation list: users whose
//! elevation looks like a benign burst-with-smooth-decay are demoted.

use crate::critic::{scores_to_ranks, Investigation};
use crate::pipeline::ScoreTable;
use serde::{Deserialize, Serialize};

/// Shape classification of a score series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaveformKind {
    /// No notable spike over the baseline.
    Quiet,
    /// A burst followed by a long, smooth decrease — the paper's example of
    /// a benign behavioral shift (e.g. a developer starting a new project).
    BenignShift,
    /// A raise that stays elevated or decays chaotically — the attack-like
    /// shape.
    Suspicious,
}

/// Quantified waveform factors for one score series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformAnalysis {
    /// Peak score relative to the series median (≥ 1 means elevated).
    pub spike_ratio: f32,
    /// Fraction of post-peak steps that decrease (1 = monotone decay).
    pub decay_smoothness: f32,
    /// Mean absolute step change after the peak, relative to the peak height
    /// (higher = more chaotic).
    pub chaos: f32,
    /// How much of the post-peak tail remains above half the peak elevation.
    pub persistence: f32,
    /// The resulting classification.
    pub kind: WaveformKind,
}

/// Thresholds for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformConfig {
    /// Minimum spike ratio to count as elevated at all.
    pub spike_threshold: f32,
    /// Decay smoothness above which an elevation is considered benign.
    pub smooth_threshold: f32,
    /// Persistence above which an elevation is suspicious regardless of
    /// smoothness.
    pub persistence_threshold: f32,
}

impl Default for WaveformConfig {
    fn default() -> Self {
        WaveformConfig {
            spike_threshold: 1.5,
            smooth_threshold: 0.7,
            persistence_threshold: 0.6,
        }
    }
}

/// Analyzes one daily score series.
///
/// Returns a [`WaveformAnalysis`]; an empty or flat series is
/// [`WaveformKind::Quiet`].
pub fn analyze(series: &[f32], config: &WaveformConfig) -> WaveformAnalysis {
    if series.len() < 3 {
        return WaveformAnalysis {
            spike_ratio: 1.0,
            decay_smoothness: 1.0,
            chaos: 0.0,
            persistence: 0.0,
            kind: WaveformKind::Quiet,
        };
    }
    let mut sorted: Vec<f32> = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2].max(1e-9);
    let (peak_idx, &peak) = series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty series");
    let spike_ratio = peak / median;

    let tail = &series[peak_idx..];
    let elevation = (peak - median).max(1e-9);
    let (mut decreasing_steps, mut total_steps) = (0usize, 0usize);
    let mut step_change = 0.0f32;
    for pair in tail.windows(2) {
        total_steps += 1;
        if pair[1] <= pair[0] {
            decreasing_steps += 1;
        }
        step_change += (pair[1] - pair[0]).abs();
    }
    let decay_smoothness = if total_steps == 0 {
        1.0
    } else {
        decreasing_steps as f32 / total_steps as f32
    };
    let chaos = if total_steps == 0 {
        0.0
    } else {
        (step_change / total_steps as f32) / elevation
    };
    let persistence = if tail.len() <= 1 {
        1.0
    } else {
        tail[1..]
            .iter()
            .filter(|&&x| x - median > 0.5 * elevation)
            .count() as f32
            / (tail.len() - 1) as f32
    };

    let kind = if spike_ratio < config.spike_threshold {
        WaveformKind::Quiet
    } else if persistence >= config.persistence_threshold {
        WaveformKind::Suspicious
    } else if decay_smoothness >= config.smooth_threshold {
        WaveformKind::BenignShift
    } else {
        WaveformKind::Suspicious
    };

    WaveformAnalysis { spike_ratio, decay_smoothness, chaos, persistence, kind }
}

/// The future-work critic: Algorithm 1 plus waveform-based demotion.
#[derive(Debug, Clone, Default)]
pub struct WaveformCritic {
    /// Waveform thresholds.
    pub waveform: WaveformConfig,
    /// How many rank positions a benign-shift user is demoted by (applied to
    /// their priority).
    pub benign_demotion: usize,
}

impl WaveformCritic {
    /// Creates a critic with default thresholds and a demotion of 10.
    pub fn new() -> Self {
        WaveformCritic { waveform: WaveformConfig::default(), benign_demotion: 10 }
    }

    /// Produces an investigation list like
    /// [`ScoreTable::investigation_list_smoothed`], then demotes users whose
    /// every elevated aspect classifies as a benign shift.
    ///
    /// # Panics
    ///
    /// Panics if `n` is invalid for the table's aspect count.
    pub fn investigate(&self, table: &ScoreTable, n: usize, smooth: usize) -> Vec<Investigation> {
        let aspects = table.aspect_names.len();
        let per_aspect: Vec<Vec<f32>> = (0..aspects)
            .map(|a| table.smoothed_max_per_user(a, smooth))
            .collect();
        let ranks: Vec<Vec<usize>> = per_aspect.iter().map(|s| scores_to_ranks(s)).collect();

        let mut list: Vec<Investigation> = (0..table.users)
            .map(|u| {
                let mut user_ranks: Vec<usize> = ranks.iter().map(|r| r[u]).collect();
                user_ranks.sort_unstable();
                let mut priority = user_ranks[n - 1];

                // Examine the waveforms of this user's aspects; if any
                // elevated aspect looks attack-like, keep the priority; if
                // all elevated aspects look like benign shifts, demote.
                let mut elevated = 0usize;
                let mut suspicious = 0usize;
                for a in 0..aspects {
                    let analysis = analyze(&table.user_series(a, u), &self.waveform);
                    match analysis.kind {
                        WaveformKind::Quiet => {}
                        WaveformKind::BenignShift => elevated += 1,
                        WaveformKind::Suspicious => {
                            elevated += 1;
                            suspicious += 1;
                        }
                    }
                }
                if elevated > 0 && suspicious == 0 {
                    priority += self.benign_demotion;
                }
                Investigation { user: u, priority }
            })
            .collect();
        list.sort_by_key(|inv| (inv.priority, inv.user));
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WaveformConfig {
        WaveformConfig::default()
    }

    #[test]
    fn quiet_series() {
        let series = vec![1.0; 30];
        let a = analyze(&series, &cfg());
        assert_eq!(a.kind, WaveformKind::Quiet);
    }

    #[test]
    fn benign_burst_with_smooth_decay() {
        // Burst then monotone decay back to baseline.
        let mut series = vec![1.0; 10];
        series.push(5.0);
        for i in 0..15 {
            series.push(5.0 - (i as f32) * 0.27);
        }
        let a = analyze(&series, &cfg());
        assert_eq!(a.kind, WaveformKind::BenignShift, "{a:?}");
        assert!(a.decay_smoothness > 0.9);
    }

    #[test]
    fn sustained_elevation_is_suspicious() {
        let mut series = vec![1.0; 10];
        series.extend(vec![5.0, 4.9, 5.1, 4.8, 5.2, 4.9, 5.0, 5.1]);
        let a = analyze(&series, &cfg());
        assert_eq!(a.kind, WaveformKind::Suspicious, "{a:?}");
        assert!(a.persistence > 0.6);
    }

    #[test]
    fn chaotic_decay_is_suspicious() {
        let mut series = vec![1.0; 10];
        series.extend(vec![6.0, 1.0, 5.0, 0.8, 4.5, 1.2, 4.0, 0.9, 1.0, 0.8, 1.1, 0.9]);
        let a = analyze(&series, &cfg());
        assert_eq!(a.kind, WaveformKind::Suspicious, "{a:?}");
        assert!(a.decay_smoothness < 0.7);
    }

    #[test]
    fn short_series_is_quiet() {
        let a = analyze(&[9.0, 1.0], &cfg());
        assert_eq!(a.kind, WaveformKind::Quiet);
    }

    #[test]
    fn critic_demotes_benign_shift_users() {
        use crate::pipeline::ScoreTable;
        use acobe_logs::time::Date;
        // Three users, one aspect, 30 days.
        // user 0: benign burst + smooth decay; user 1: sustained attack-like
        // elevation (slightly lower peak); user 2: quiet.
        let days = 30usize;
        let mut scores = vec![Vec::with_capacity(days)];
        for d in 0..days {
            let u0 = if d == 10 {
                6.0
            } else if d > 10 {
                (6.0 - (d - 10) as f32 * 0.4).max(1.0)
            } else {
                1.0
            };
            let u1 = if d >= 12 { 5.0 + 0.05 * ((d % 3) as f32) } else { 1.0 };
            let u2 = 1.0;
            scores[0].push(vec![u0, u1, u2]);
        }
        let table = ScoreTable {
            aspect_names: vec!["only".into()],
            start: Date::from_ymd(2011, 1, 1),
            users: 3,
            scores,
        };
        // Plain critic puts user 0 (higher peak) first.
        let plain = table.investigation_list(1);
        assert_eq!(plain[0].user, 0);
        // The waveform critic demotes the benign shift; user 1 wins.
        let critic = WaveformCritic::new();
        let list = critic.investigate(&table, 1, 1);
        assert_eq!(list[0].user, 1, "{list:?}");
        // The demoted benign-shift user drops below even the quiet user.
        assert_eq!(list[2].user, 0, "{list:?}");
    }
}
