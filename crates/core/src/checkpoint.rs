//! The v3 checkpoint container: compact, checksummed, section-tagged binary
//! persistence shared by [`DetectionEngine`](crate::engine::DetectionEngine)
//! and [`ShardedEngine`](crate::shard::ShardedEngine).
//!
//! One module owns the entire wire format so the two engines cannot drift:
//! the monolithic engine writes a single `KIND_ENGINE` container, the sharded
//! engine writes a `KIND_MANIFEST` container plus one `KIND_SHARD` container
//! per live shard, and incremental saves append `KIND_DELTA` day-replay files
//! committed by a `KIND_CHAIN` index (see DESIGN.md §12 for the layout).
//!
//! Every container starts with the magic `b"ACB3"`, a container version, a
//! kind byte, and a section count; each section is a 4-byte ASCII tag, a
//! payload length, a CRC-32 of the payload, and the payload itself. CRCs are
//! verified eagerly on read so corruption is reported as a typed
//! [`AcobeError::CorruptCheckpoint`] naming *which* section is damaged,
//! never as a panic or a silently wrong score. Rolling histories are stored
//! through the certified-lossless codecs in [`acobe_obs::binio`], so a
//! restored engine scores bit-identically to the one that saved — narrower
//! encodings (f16 / u8 / sparse) are chosen only when every element provably
//! round-trips.

use crate::alert::AlertState;
use crate::config::AcobeConfig;
use crate::engine::{DayRing, DayScores, EngineCheckpoint, CHECKPOINT_VERSION};
use crate::error::AcobeError;
use crate::shard::{assign_users, ShardCheckpoint, ShardManifest, SHARD_CHECKPOINT_VERSION};
use crate::streaming::RollingDeviation;
use acobe_features::spec::FeatureSet;
use acobe_logs::time::Date;
use acobe_nn::serialize::SavedAutoencoder;
use acobe_obs::binio::{self, BinError, ByteReader, ByteWriter};
use acobe_obs::DriftMonitor;
use std::str::FromStr;

/// Magic prefix of every v3 checkpoint file.
pub const MAGIC: &[u8; 4] = b"ACB3";
/// Version of the binary container layout this build reads and writes.
pub const CONTAINER_VERSION: u32 = 3;

/// Container kind: a monolithic-engine snapshot.
pub(crate) const KIND_ENGINE: u8 = 1;
/// Container kind: a sharded-engine manifest.
pub(crate) const KIND_MANIFEST: u8 = 2;
/// Container kind: one shard's state.
pub(crate) const KIND_SHARD: u8 = 3;
/// Container kind: one shard's day-replay delta.
pub(crate) const KIND_DELTA: u8 = 4;
/// Container kind: the delta-chain commit index.
pub(crate) const KIND_CHAIN: u8 = 5;

/// Histogram bucket edges (milliseconds) for checkpoint write/restore timing.
pub(crate) const CHECKPOINT_EDGES: &[f64] =
    &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10_000.0, 60_000.0];

/// On-disk name of the v3 sharded-checkpoint manifest.
pub(crate) const MANIFEST_FILE_V3: &str = "manifest.acb";
/// On-disk name of the delta-chain commit index.
pub(crate) const CHAIN_FILE: &str = "chain.acb";

/// On-disk name of shard `i`'s v3 state file.
pub(crate) fn shard_file_v3(shard: usize) -> String {
    format!("shard_{shard:03}.acb")
}

/// On-disk name of shard `shard`'s delta file for chain entry `seq`.
pub(crate) fn delta_file(seq: u64, shard: usize) -> String {
    format!("delta_{seq:03}_shard_{shard:03}.acb")
}

/// True when `bytes` starts with the v3 container magic.
pub(crate) fn is_v3(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
}

/// Reports whether `dir` holds a v3 directory checkpoint (a binary
/// `manifest.acb` is present). Resume paths use this to decide whether a
/// legacy v2 JSON checkpoint should be upgraded on load.
pub fn dir_is_v3<P: AsRef<std::path::Path>>(dir: P) -> bool {
    dir.as_ref().join(MANIFEST_FILE_V3).is_file()
}

// ---------------------------------------------------------------------------
// Public save knobs
// ---------------------------------------------------------------------------

/// Which on-disk encoding a checkpoint save uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// The v2 directory layout: `manifest.json` + `shard_NNN.json`,
    /// human-readable, kept for compatibility and downgrade paths.
    V2Json,
    /// The v3 binary container layout (default): compact, checksummed,
    /// delta-capable.
    #[default]
    V3Binary,
}

impl FromStr for CheckpointFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "v2" | "json" | "v2-json" => Ok(CheckpointFormat::V2Json),
            "v3" | "binary" | "v3-binary" => Ok(CheckpointFormat::V3Binary),
            other => Err(format!(
                "unknown checkpoint format {other:?} (expected \"v2-json\" or \"v3-binary\")"
            )),
        }
    }
}

impl std::fmt::Display for CheckpointFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFormat::V2Json => f.write_str("v2-json"),
            CheckpointFormat::V3Binary => f.write_str("v3-binary"),
        }
    }
}

/// How a sharded save should be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// On-disk encoding.
    pub format: CheckpointFormat,
    /// Number of delta saves between full snapshots (bounded compaction).
    /// `0` disables deltas entirely — every save is a full snapshot.
    pub delta_every: usize,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        CheckpointOptions { format: CheckpointFormat::V3Binary, delta_every: 8 }
    }
}

/// What kind of artifact a save produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveKind {
    /// A complete snapshot (manifest + every live shard).
    Full,
    /// A day-replay delta covering only users touched since the last full.
    Delta,
}

impl SaveKind {
    /// Metric-label value for this kind.
    pub fn label(self) -> &'static str {
        match self {
            SaveKind::Full => "full",
            SaveKind::Delta => "delta",
        }
    }
}

/// Summary of one completed checkpoint save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReport {
    /// Whether the save was a full snapshot or a delta.
    pub kind: SaveKind,
    /// Total bytes written across all files of this save.
    pub bytes: u64,
    /// Number of files written.
    pub files: usize,
    /// Container format version written (2 or 3).
    pub format_version: u32,
}

// ---------------------------------------------------------------------------
// Error helpers
// ---------------------------------------------------------------------------

/// A typed corruption error.
pub(crate) fn corrupt(msg: impl Into<String>) -> AcobeError {
    AcobeError::CorruptCheckpoint(msg.into())
}

/// Maps a decode-layer [`BinError`] into a typed corruption error that names
/// what was being decoded.
fn bin_corrupt(what: &str, e: BinError) -> AcobeError {
    corrupt(format!("{what}: {e}"))
}

fn tag_str(tag: &[u8; 4]) -> String {
    String::from_utf8_lossy(tag).into_owned()
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

/// Serializes `sections` into one framed container of the given `kind`.
fn write_container(kind: u8, sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let total: usize = sections.iter().map(|(_, p)| p.len() + 16).sum();
    let mut w = ByteWriter::with_capacity(13 + total);
    w.put_bytes(MAGIC);
    w.put_u32(CONTAINER_VERSION);
    w.put_u8(kind);
    w.put_u32(sections.len() as u32);
    for (tag, payload) in sections {
        w.put_bytes(tag);
        w.put_u64(payload.len() as u64);
        w.put_u32(binio::crc32(payload));
        w.put_bytes(payload);
    }
    w.into_bytes()
}

/// Parsed sections of one container, with tag-based lookup.
struct Sections<'a> {
    what: &'a str,
    entries: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Sections<'a> {
    fn find(&self, tag: &[u8; 4]) -> Option<&'a [u8]> {
        self.entries.iter().find(|(t, _)| t == tag).map(|(_, p)| *p)
    }

    /// A reader over the named section, or a typed error naming it.
    fn required(&self, tag: &[u8; 4]) -> Result<ByteReader<'a>, AcobeError> {
        self.find(tag).map(ByteReader::new).ok_or_else(|| {
            corrupt(format!("{}: missing section {:?}", self.what, tag_str(tag)))
        })
    }

    /// Asserts the section reader consumed its whole payload.
    fn finish(&self, tag: &[u8; 4], r: &ByteReader<'_>) -> Result<(), AcobeError> {
        if r.is_done() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{}: section {:?} has {} trailing bytes",
                self.what,
                tag_str(tag),
                r.remaining()
            )))
        }
    }
}

/// Parses and checksum-verifies a framed container, expecting `kind`.
///
/// Unknown section tags are retained (and ignored by decoders) so future
/// writers can add sections without breaking this reader.
fn parse_container<'a>(
    bytes: &'a [u8],
    kind: u8,
    what: &'a str,
) -> Result<Sections<'a>, AcobeError> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .take(4)
        .map_err(|_| corrupt(format!("{what}: file too short for a v3 header")))?;
    if magic != MAGIC {
        return Err(corrupt(format!(
            "{what}: not a v3 checkpoint (magic {magic:02x?}, expected {MAGIC:02x?})"
        )));
    }
    let version = r.get_u32().map_err(|e| bin_corrupt(what, e))?;
    if version != CONTAINER_VERSION {
        return Err(corrupt(format!(
            "{what}: unsupported checkpoint container version {version} \
             (this build reads {CONTAINER_VERSION})"
        )));
    }
    let found_kind = r.get_u8().map_err(|e| bin_corrupt(what, e))?;
    if found_kind != kind {
        return Err(corrupt(format!(
            "{what}: container kind {found_kind} where kind {kind} was expected"
        )));
    }
    let n_sections = r.get_u32().map_err(|e| bin_corrupt(what, e))?;
    let mut entries = Vec::new();
    for i in 0..n_sections {
        let tag_bytes = r
            .take(4)
            .map_err(|_| corrupt(format!("{what}: truncated in section {i} header")))?;
        let tag: [u8; 4] = tag_bytes.try_into().expect("take(4) yields 4 bytes");
        let len = r
            .get_u64()
            .map_err(|_| corrupt(format!("{what}: truncated in section {i} header")))?;
        let crc = r
            .get_u32()
            .map_err(|_| corrupt(format!("{what}: truncated in section {i} header")))?;
        let len = usize::try_from(len)
            .map_err(|_| corrupt(format!("{what}: section {:?} length overflows", tag_str(&tag))))?;
        let payload = r.take(len).map_err(|_| {
            corrupt(format!("{what}: section {:?} truncated", tag_str(&tag)))
        })?;
        if binio::crc32(payload) != crc {
            return Err(corrupt(format!(
                "{what}: section {:?}: checksum mismatch",
                tag_str(&tag)
            )));
        }
        entries.push((tag, payload));
    }
    if !r.is_done() {
        return Err(corrupt(format!(
            "{what}: {} trailing bytes after the last section",
            r.remaining()
        )));
    }
    Ok(Sections { what, entries })
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

/// Writes a usize slice whose elements are often all equal (ring cursors and
/// fill counts after warm-up): mode byte 1 stores the single shared value,
/// mode 0 falls back to a full [`binio::put_usizes`] array.
fn put_uniform_usizes(w: &mut ByteWriter, vs: &[usize]) {
    if !vs.is_empty() && vs.iter().all(|&v| v == vs[0]) {
        w.put_u8(1);
        w.put_varu(vs[0] as u64);
    } else {
        w.put_u8(0);
        binio::put_usizes(w, vs);
    }
}

/// Reads a slice written by [`put_uniform_usizes`], checking it has exactly
/// `expected` elements before allocating.
fn get_uniform_usizes(
    r: &mut ByteReader<'_>,
    what: &str,
    expected: usize,
) -> Result<Vec<usize>, BinError> {
    match r.get_u8()? {
        1 => {
            let v = r.get_varu()? as usize;
            Ok(vec![v; expected])
        }
        0 => {
            let vs = binio::get_usizes(r, what)?;
            if vs.len() != expected {
                return Err(BinError::new(format!(
                    "{what}: {} elements where {expected} were expected",
                    vs.len()
                )));
            }
            Ok(vs)
        }
        m => Err(BinError::new(format!("{what}: unknown uniform mode {m}"))),
    }
}

/// Encodes one rolling-deviation state: config scalars, dimensions, every
/// per-series history ring flattened through the certified f32 codec, the
/// cursors/fill counts, and the **exact** f64 running sums (never quantized —
/// they are the accumulators the σ math depends on).
fn encode_rolling(w: &mut ByteWriter, rolling: &RollingDeviation) {
    let config = rolling.config();
    w.put_varu(config.window as u64);
    w.put_f32(config.delta);
    w.put_f32(config.epsilon);
    w.put_varu(config.min_history as u64);
    let (entities, frames, features) = rolling.dims();
    w.put_varu(entities as u64);
    w.put_varu(frames as u64);
    w.put_varu(features as u64);
    let cap = config.window - 1;
    let mut flat = Vec::with_capacity(rolling.history().len() * cap);
    for ring in rolling.history() {
        flat.extend_from_slice(ring);
    }
    binio::put_f32_array(w, &flat);
    put_uniform_usizes(w, rolling.cursor());
    put_uniform_usizes(w, rolling.filled());
    binio::put_f64_array(w, rolling.sum());
    binio::put_f64_array(w, rolling.sum_sq());
    w.put_varu(rolling.days_seen() as u64);
}

/// Decodes state written by [`encode_rolling`], re-validating every dimension
/// through [`RollingDeviation::from_state`].
fn decode_rolling(r: &mut ByteReader<'_>, what: &str) -> Result<RollingDeviation, AcobeError> {
    let err = |e| bin_corrupt(what, e);
    let window = r.get_varu().map_err(err)? as usize;
    let delta = r.get_f32().map_err(err)?;
    let epsilon = r.get_f32().map_err(err)?;
    let min_history = r.get_varu().map_err(err)? as usize;
    if window < 2 {
        return Err(corrupt(format!("{what}: window {window} below minimum 2")));
    }
    let entities = r.get_varu().map_err(err)? as usize;
    let frames = r.get_varu().map_err(err)? as usize;
    let features = r.get_varu().map_err(err)? as usize;
    let series = entities
        .checked_mul(frames)
        .and_then(|v| v.checked_mul(features))
        .ok_or_else(|| corrupt(format!("{what}: series count overflows")))?;
    let cap = window - 1;
    let flat = binio::get_f32_array(r, what).map_err(err)?;
    let expected = series
        .checked_mul(cap)
        .ok_or_else(|| corrupt(format!("{what}: history size overflows")))?;
    if flat.len() != expected {
        return Err(corrupt(format!(
            "{what}: flattened history has {} values, {series} series × {cap} slots need {expected}",
            flat.len()
        )));
    }
    let history: Vec<Vec<f32>> = flat.chunks(cap.max(1)).map(|c| c.to_vec()).collect();
    let cursor = get_uniform_usizes(r, what, series).map_err(err)?;
    let filled = get_uniform_usizes(r, what, series).map_err(err)?;
    let sum = binio::get_f64_array(r, what).map_err(err)?;
    let sum_sq = binio::get_f64_array(r, what).map_err(err)?;
    let days_seen = r.get_varu().map_err(err)? as usize;
    let config = crate::deviation::DeviationConfig { window, delta, epsilon, min_history };
    RollingDeviation::from_state(
        config, entities, frames, features, history, cursor, filled, sum, sum_sq, days_seen,
    )
}

/// Encodes a day ring: capacity, write cursor, then each stored day through
/// the certified f32 codec.
fn encode_ring(w: &mut ByteWriter, ring: &DayRing) {
    w.put_varu(ring.capacity() as u64);
    w.put_varu(ring.raw_next() as u64);
    w.put_varu(ring.raw_days().len() as u64);
    for day in ring.raw_days() {
        binio::put_f32_array(w, day);
    }
}

/// Decodes a ring written by [`encode_ring`] via [`DayRing::from_state`].
fn decode_ring(r: &mut ByteReader<'_>, what: &str) -> Result<DayRing, AcobeError> {
    let err = |e| bin_corrupt(what, e);
    let capacity = r.get_varu().map_err(err)? as usize;
    let next = r.get_varu().map_err(err)? as usize;
    let n_days = r.get_varu().map_err(err)? as usize;
    let mut days = Vec::with_capacity(n_days.min(4096));
    for _ in 0..n_days {
        days.push(binio::get_f32_array(r, what).map_err(err)?);
    }
    DayRing::from_state(capacity, days, next)
}

/// Encodes an `Option<RollingDeviation>` behind a presence byte.
fn encode_opt_rolling(rolling: Option<&RollingDeviation>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match rolling {
        Some(state) => {
            w.put_u8(1);
            encode_rolling(&mut w, state);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

fn decode_opt_rolling(
    r: &mut ByteReader<'_>,
    what: &str,
) -> Result<Option<RollingDeviation>, AcobeError> {
    match r.get_u8().map_err(|e| bin_corrupt(what, e))? {
        0 => Ok(None),
        1 => Ok(Some(decode_rolling(r, what)?)),
        m => Err(corrupt(format!("{what}: unknown presence byte {m}"))),
    }
}

/// Encodes an `Option<DayRing>` behind a presence byte.
fn encode_opt_ring(ring: Option<&DayRing>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match ring {
        Some(state) => {
            w.put_u8(1);
            encode_ring(&mut w, state);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

fn decode_opt_ring(r: &mut ByteReader<'_>, what: &str) -> Result<Option<DayRing>, AcobeError> {
    match r.get_u8().map_err(|e| bin_corrupt(what, e))? {
        0 => Ok(None),
        1 => Ok(Some(decode_ring(r, what)?)),
        m => Err(corrupt(format!("{what}: unknown presence byte {m}"))),
    }
}

/// Encodes the model bank as length-prefixed `ACNN` binary blocks.
fn encode_models(models: &[SavedAutoencoder]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varu(models.len() as u64);
    for model in models {
        let block = model.to_bytes();
        w.put_varu(block.len() as u64);
        w.put_bytes(&block);
    }
    w.into_bytes()
}

fn decode_models(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<SavedAutoencoder>, AcobeError> {
    let err = |e| bin_corrupt(what, e);
    let n = r.get_varu().map_err(err)? as usize;
    let mut models = Vec::with_capacity(n.min(4096));
    for i in 0..n {
        let len = r.get_varu().map_err(err)? as usize;
        let block = r
            .take(len)
            .map_err(|_| corrupt(format!("{what}: model {i} block truncated")))?;
        models.push(SavedAutoencoder::from_bytes(block).map_err(AcobeError::Model)?);
    }
    Ok(models)
}

/// Encodes per-aspect calibration baselines.
fn encode_baselines(baselines: &[Vec<f32>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varu(baselines.len() as u64);
    for row in baselines {
        binio::put_f32_array(&mut w, row);
    }
    w.into_bytes()
}

fn decode_baselines(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<Vec<f32>>, AcobeError> {
    let err = |e| bin_corrupt(what, e);
    let n = r.get_varu().map_err(err)? as usize;
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        rows.push(binio::get_f32_array(r, what).map_err(err)?);
    }
    Ok(rows)
}

/// Encodes the trailing score history (dates + per-aspect score rows).
fn encode_scores(history: &[DayScores]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varu(history.len() as u64);
    for day in history {
        w.put_i32(day.date.days());
        w.put_varu(day.scores.len() as u64);
        for aspect in &day.scores {
            binio::put_f32_array(&mut w, aspect);
        }
    }
    w.into_bytes()
}

fn decode_scores(r: &mut ByteReader<'_>, what: &str) -> Result<Vec<DayScores>, AcobeError> {
    let err = |e| bin_corrupt(what, e);
    let n = r.get_varu().map_err(err)? as usize;
    let mut history = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let date = Date::from_days(r.get_i32().map_err(err)?);
        let aspects = r.get_varu().map_err(err)? as usize;
        let mut scores = Vec::with_capacity(aspects.min(4096));
        for _ in 0..aspects {
            scores.push(binio::get_f32_array(r, what).map_err(err)?);
        }
        history.push(DayScores { date, scores });
    }
    Ok(history)
}

/// Shared META payload: config + feature set (as schema-flexible JSON — both
/// are tiny next to the state arrays), population shape, and the date range.
#[allow(clippy::too_many_arguments)]
fn encode_meta(
    config: &AcobeConfig,
    feature_set: &FeatureSet,
    users: usize,
    frames: usize,
    start: Date,
    next_date: Date,
    groups: &[Vec<usize>],
    user_group: &[usize],
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&serde_json::to_string(config).expect("config serializes"));
    w.put_str(&serde_json::to_string(feature_set).expect("feature set serializes"));
    w.put_varu(users as u64);
    w.put_varu(frames as u64);
    w.put_i32(start.days());
    w.put_i32(next_date.days());
    w.put_varu(groups.len() as u64);
    for group in groups {
        binio::put_usizes(&mut w, group);
    }
    binio::put_usizes(&mut w, user_group);
    w.into_bytes()
}

struct Meta {
    config: AcobeConfig,
    feature_set: FeatureSet,
    users: usize,
    frames: usize,
    start: Date,
    next_date: Date,
    groups: Vec<Vec<usize>>,
    user_group: Vec<usize>,
}

fn decode_meta(r: &mut ByteReader<'_>, what: &str) -> Result<Meta, AcobeError> {
    let err = |e| bin_corrupt(what, e);
    let config_json = r.get_str(what).map_err(err)?;
    let config: AcobeConfig = serde_json::from_str(&config_json)?;
    let feature_json = r.get_str(what).map_err(err)?;
    let feature_set: FeatureSet = serde_json::from_str(&feature_json)?;
    let users = r.get_varu().map_err(err)? as usize;
    let frames = r.get_varu().map_err(err)? as usize;
    let start = Date::from_days(r.get_i32().map_err(err)?);
    let next_date = Date::from_days(r.get_i32().map_err(err)?);
    let n_groups = r.get_varu().map_err(err)? as usize;
    let mut groups = Vec::with_capacity(n_groups.min(4096));
    for _ in 0..n_groups {
        groups.push(binio::get_usizes(r, what).map_err(err)?);
    }
    let user_group = binio::get_usizes(r, what).map_err(err)?;
    Ok(Meta { config, feature_set, users, frames, start, next_date, groups, user_group })
}

/// Encodes a JSON-carried section (drift monitor, alert state): small,
/// schema-evolving state rides as a length-prefixed JSON string.
fn encode_json<T: serde::Serialize>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&serde_json::to_string(value).expect("checkpoint side state serializes"));
    w.into_bytes()
}

fn decode_json<T: serde::de::DeserializeOwned>(
    r: &mut ByteReader<'_>,
    what: &str,
) -> Result<T, AcobeError> {
    let json = r.get_str(what).map_err(|e| bin_corrupt(what, e))?;
    Ok(serde_json::from_str(&json)?)
}

// ---------------------------------------------------------------------------
// Engine container (KIND_ENGINE)
// ---------------------------------------------------------------------------

/// Serializes a monolithic-engine checkpoint into one v3 container.
pub(crate) fn encode_engine(cp: &EngineCheckpoint) -> Vec<u8> {
    let sections: Vec<([u8; 4], Vec<u8>)> = vec![
        (
            *b"META",
            encode_meta(
                &cp.config,
                &cp.feature_set,
                cp.users,
                cp.frames,
                cp.start,
                cp.next_date,
                &cp.groups,
                &cp.user_group,
            ),
        ),
        (*b"UROL", encode_opt_rolling(cp.user_rolling.as_ref())),
        (*b"GROL", encode_opt_rolling(cp.group_rolling.as_ref())),
        (*b"URNG", {
            let mut w = ByteWriter::new();
            encode_ring(&mut w, &cp.user_ring);
            w.into_bytes()
        }),
        (*b"GRNG", encode_opt_ring(cp.group_ring.as_ref())),
        (*b"MODL", encode_models(&cp.models)),
        (*b"BASE", encode_baselines(&cp.baselines)),
        (*b"SCOR", encode_scores(&cp.score_history)),
        (*b"MONI", encode_json(&cp.monitor)),
        (*b"ALRT", encode_json(&cp.alert_state)),
    ];
    write_container(KIND_ENGINE, &sections)
}

/// Decodes a container written by [`encode_engine`].
///
/// # Errors
///
/// Returns [`AcobeError::CorruptCheckpoint`] naming the damaged section on
/// any framing, checksum, or shape failure.
pub(crate) fn decode_engine(bytes: &[u8]) -> Result<EngineCheckpoint, AcobeError> {
    let what = "engine checkpoint";
    let sections = parse_container(bytes, KIND_ENGINE, what)?;
    let mut r = sections.required(b"META")?;
    let meta = decode_meta(&mut r, "section META")?;
    sections.finish(b"META", &r)?;
    let mut r = sections.required(b"UROL")?;
    let user_rolling = decode_opt_rolling(&mut r, "section UROL")?;
    sections.finish(b"UROL", &r)?;
    let mut r = sections.required(b"GROL")?;
    let group_rolling = decode_opt_rolling(&mut r, "section GROL")?;
    sections.finish(b"GROL", &r)?;
    let mut r = sections.required(b"URNG")?;
    let user_ring = decode_ring(&mut r, "section URNG")?;
    sections.finish(b"URNG", &r)?;
    let mut r = sections.required(b"GRNG")?;
    let group_ring = decode_opt_ring(&mut r, "section GRNG")?;
    sections.finish(b"GRNG", &r)?;
    let mut r = sections.required(b"MODL")?;
    let models = decode_models(&mut r, "section MODL")?;
    sections.finish(b"MODL", &r)?;
    let mut r = sections.required(b"BASE")?;
    let baselines = decode_baselines(&mut r, "section BASE")?;
    sections.finish(b"BASE", &r)?;
    let mut r = sections.required(b"SCOR")?;
    let score_history = decode_scores(&mut r, "section SCOR")?;
    sections.finish(b"SCOR", &r)?;
    let mut r = sections.required(b"MONI")?;
    let monitor: Option<DriftMonitor> = decode_json(&mut r, "section MONI")?;
    sections.finish(b"MONI", &r)?;
    let mut r = sections.required(b"ALRT")?;
    let alert_state: AlertState = decode_json(&mut r, "section ALRT")?;
    sections.finish(b"ALRT", &r)?;
    Ok(EngineCheckpoint {
        version: CHECKPOINT_VERSION,
        config: meta.config,
        feature_set: meta.feature_set,
        groups: meta.groups,
        user_group: meta.user_group,
        users: meta.users,
        frames: meta.frames,
        start: meta.start,
        next_date: meta.next_date,
        user_rolling,
        group_rolling,
        user_ring,
        group_ring,
        models,
        baselines,
        score_history,
        monitor,
        alert_state,
    })
}

// ---------------------------------------------------------------------------
// Manifest container (KIND_MANIFEST)
// ---------------------------------------------------------------------------

/// Serializes a sharded-engine manifest with its save `generation` (the
/// torn-save fence every shard file of the same snapshot must match).
pub(crate) fn encode_manifest(manifest: &ShardManifest, generation: u64) -> Vec<u8> {
    let shards = manifest.shard_files.len();
    let mut asgn = ByteWriter::new();
    if assign_users(manifest.users, shards) == manifest.assign {
        // The default splitmix64 placement — store only the shard count.
        asgn.put_u8(1);
        asgn.put_varu(shards as u64);
    } else {
        asgn.put_u8(0);
        asgn.put_varu(shards as u64);
        asgn.put_varu(manifest.assign.len() as u64);
        for &a in &manifest.assign {
            asgn.put_varu(a as u64);
        }
    }
    let mut file = ByteWriter::new();
    file.put_varu(manifest.shard_files.len() as u64);
    for name in &manifest.shard_files {
        file.put_str(name);
    }
    let mut genr = ByteWriter::new();
    genr.put_u64(generation);
    let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![
        (
            *b"META",
            encode_meta(
                &manifest.config,
                &manifest.feature_set,
                manifest.users,
                manifest.frames,
                manifest.start,
                manifest.next_date,
                &manifest.groups,
                &manifest.user_group,
            ),
        ),
        (*b"ASGN", asgn.into_bytes()),
        (*b"FILE", file.into_bytes()),
        (*b"GROL", encode_opt_rolling(manifest.group_rolling.as_ref())),
        (*b"GRNG", encode_opt_ring(manifest.group_ring.as_ref())),
        (*b"MODL", encode_models(&manifest.models)),
        (*b"MONI", encode_json(&manifest.monitor)),
        (*b"ALRT", encode_json(&manifest.alert_state)),
        (*b"GENR", genr.into_bytes()),
    ];
    // The intraday open-day accumulator is only present on mid-day saves, so
    // day-boundary manifests stay byte-identical with pre-intraday builds.
    if manifest.open_day.is_some() {
        sections.push((*b"ODAY", encode_json(&manifest.open_day)));
    }
    write_container(KIND_MANIFEST, &sections)
}

/// Decodes a container written by [`encode_manifest`], returning the
/// manifest and its save generation.
pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<(ShardManifest, u64), AcobeError> {
    let what = "shard manifest";
    let sections = parse_container(bytes, KIND_MANIFEST, what)?;
    let mut r = sections.required(b"META")?;
    let meta = decode_meta(&mut r, "section META")?;
    sections.finish(b"META", &r)?;
    let mut r = sections.required(b"ASGN")?;
    let err = |e| bin_corrupt("section ASGN", e);
    let assign = match r.get_u8().map_err(err)? {
        1 => {
            let shards = r.get_varu().map_err(err)? as usize;
            assign_users(meta.users, shards)
        }
        0 => {
            let _shards = r.get_varu().map_err(err)? as usize;
            let n = r.get_varu().map_err(err)? as usize;
            if n != meta.users {
                return Err(corrupt(format!(
                    "section ASGN: {n} assignments for {} users",
                    meta.users
                )));
            }
            let mut assign = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                assign.push(r.get_varu().map_err(err)? as u32);
            }
            assign
        }
        m => return Err(corrupt(format!("section ASGN: unknown mode {m}"))),
    };
    sections.finish(b"ASGN", &r)?;
    let mut r = sections.required(b"FILE")?;
    let err = |e| bin_corrupt("section FILE", e);
    let n_files = r.get_varu().map_err(err)? as usize;
    let mut shard_files = Vec::with_capacity(n_files.min(4096));
    for _ in 0..n_files {
        shard_files.push(r.get_str("section FILE").map_err(err)?);
    }
    sections.finish(b"FILE", &r)?;
    let mut r = sections.required(b"GROL")?;
    let group_rolling = decode_opt_rolling(&mut r, "section GROL")?;
    sections.finish(b"GROL", &r)?;
    let mut r = sections.required(b"GRNG")?;
    let group_ring = decode_opt_ring(&mut r, "section GRNG")?;
    sections.finish(b"GRNG", &r)?;
    let mut r = sections.required(b"MODL")?;
    let models = decode_models(&mut r, "section MODL")?;
    sections.finish(b"MODL", &r)?;
    let mut r = sections.required(b"MONI")?;
    let monitor: Option<DriftMonitor> = decode_json(&mut r, "section MONI")?;
    sections.finish(b"MONI", &r)?;
    let mut r = sections.required(b"ALRT")?;
    let alert_state: AlertState = decode_json(&mut r, "section ALRT")?;
    sections.finish(b"ALRT", &r)?;
    let mut r = sections.required(b"GENR")?;
    let generation = r.get_u64().map_err(|e| bin_corrupt("section GENR", e))?;
    sections.finish(b"GENR", &r)?;
    // Optional: only written by mid-day (intraday) saves; absent from
    // day-boundary and pre-intraday manifests.
    let open_day = match sections.find(b"ODAY") {
        Some(payload) => {
            let mut r = ByteReader::new(payload);
            let open_day = decode_json(&mut r, "section ODAY")?;
            sections.finish(b"ODAY", &r)?;
            open_day
        }
        None => None,
    };
    let manifest = ShardManifest {
        version: SHARD_CHECKPOINT_VERSION,
        config: meta.config,
        feature_set: meta.feature_set,
        groups: meta.groups,
        user_group: meta.user_group,
        users: meta.users,
        frames: meta.frames,
        start: meta.start,
        next_date: meta.next_date,
        assign,
        shard_files,
        group_rolling,
        group_ring,
        models,
        monitor,
        alert_state,
        open_day,
    };
    Ok((manifest, generation))
}

// ---------------------------------------------------------------------------
// Shard container (KIND_SHARD)
// ---------------------------------------------------------------------------

/// Serializes one shard's state, stamped with the snapshot `generation`.
pub(crate) fn encode_shard(cp: &ShardCheckpoint, generation: u64) -> Vec<u8> {
    let mut head = ByteWriter::new();
    head.put_varu(cp.shard as u64);
    binio::put_usizes(&mut head, &cp.users);
    head.put_u64(generation);
    let sections: Vec<([u8; 4], Vec<u8>)> = vec![
        (*b"HEAD", head.into_bytes()),
        (*b"ROLL", encode_opt_rolling(cp.rolling.as_ref())),
        (*b"RING", {
            let mut w = ByteWriter::new();
            encode_ring(&mut w, &cp.ring);
            w.into_bytes()
        }),
        (*b"BASE", encode_baselines(&cp.baselines)),
        (*b"SCOR", encode_scores(&cp.score_history)),
    ];
    write_container(KIND_SHARD, &sections)
}

/// Decodes a container written by [`encode_shard`], returning the shard
/// checkpoint and the generation it was stamped with.
pub(crate) fn decode_shard(bytes: &[u8]) -> Result<(ShardCheckpoint, u64), AcobeError> {
    let what = "shard checkpoint";
    let sections = parse_container(bytes, KIND_SHARD, what)?;
    let mut r = sections.required(b"HEAD")?;
    let err = |e| bin_corrupt("section HEAD", e);
    let shard = r.get_varu().map_err(err)? as usize;
    let users = binio::get_usizes(&mut r, "section HEAD").map_err(err)?;
    let generation = r.get_u64().map_err(err)?;
    sections.finish(b"HEAD", &r)?;
    let mut r = sections.required(b"ROLL")?;
    let rolling = decode_opt_rolling(&mut r, "section ROLL")?;
    sections.finish(b"ROLL", &r)?;
    let mut r = sections.required(b"RING")?;
    let ring = decode_ring(&mut r, "section RING")?;
    sections.finish(b"RING", &r)?;
    let mut r = sections.required(b"BASE")?;
    let baselines = decode_baselines(&mut r, "section BASE")?;
    sections.finish(b"BASE", &r)?;
    let mut r = sections.required(b"SCOR")?;
    let score_history = decode_scores(&mut r, "section SCOR")?;
    sections.finish(b"SCOR", &r)?;
    let cp = ShardCheckpoint {
        version: SHARD_CHECKPOINT_VERSION,
        shard,
        users,
        rolling,
        ring,
        baselines,
        score_history,
    };
    Ok((cp, generation))
}

// ---------------------------------------------------------------------------
// Delta containers (KIND_DELTA + KIND_CHAIN)
// ---------------------------------------------------------------------------

/// One ingested day buffered for the next delta save: the date, whether the
/// day produced scores, and each live shard's roster-ordered measurement slab
/// already pushed through the certified f32 codec (`None` for quarantined
/// slots).
#[derive(Debug, Clone)]
pub(crate) struct PendingDay {
    pub(crate) date: Date,
    pub(crate) scored: bool,
    pub(crate) enc_slabs: Vec<Option<Vec<u8>>>,
}

/// One committed delta save in the chain index: which days it covers, which
/// per-shard delta file holds each shard's slabs, and the JSON snapshots of
/// the shared mutable state (drift monitor + alert state) taken *after* the
/// covered days — restore replays the days, then overwrites with these so
/// alert sequence numbers stay exactly-once.
#[derive(Debug, Clone)]
pub(crate) struct ChainEntry {
    pub(crate) seq: u64,
    pub(crate) days: Vec<(Date, bool)>,
    pub(crate) files: Vec<Option<String>>,
    pub(crate) monitor_json: String,
    pub(crate) alert_json: String,
}

/// Book-keeping for delta checkpointing, owned by the sharded engine.
///
/// A fresh tracker (new stream or just-loaded checkpoint) forces the first
/// save to be a full snapshot; after that, saves append deltas until
/// `delta_every` entries accumulate, which triggers compaction back to a
/// full snapshot.
#[derive(Debug, Clone)]
pub(crate) struct DeltaTracker {
    pub(crate) delta_every: usize,
    pub(crate) base_generation: Option<u64>,
    pub(crate) entries: Vec<ChainEntry>,
    pub(crate) pending: Vec<PendingDay>,
}

impl DeltaTracker {
    pub(crate) fn new(delta_every: usize) -> Self {
        DeltaTracker {
            delta_every,
            base_generation: None,
            entries: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// True when the next save must be a full snapshot: deltas disabled, no
    /// base snapshot yet, or the chain reached its compaction bound.
    pub(crate) fn needs_full(&self) -> bool {
        self.delta_every == 0
            || self.base_generation.is_none()
            || self.entries.len() >= self.delta_every
    }

    /// Resets the tracker onto a fresh full snapshot.
    pub(crate) fn note_full(&mut self, generation: u64) {
        self.base_generation = Some(generation);
        self.entries.clear();
        self.pending.clear();
    }
}

/// A decoded per-shard delta file.
pub(crate) struct DeltaShardFile {
    pub(crate) shard: usize,
    pub(crate) base_generation: u64,
    pub(crate) seq: u64,
    /// `(date, roster-ordered slab)` per covered day.
    pub(crate) days: Vec<(Date, Vec<f32>)>,
}

/// Encodes one shard's slab stream for a delta save. `days` pairs each date
/// with the shard's **already-encoded** slab bytes (spliced verbatim — the
/// encoding happened in the ingest worker, off the save path).
pub(crate) fn encode_delta(
    shard: usize,
    base_generation: u64,
    seq: u64,
    days: &[(Date, &[u8])],
) -> Vec<u8> {
    let mut head = ByteWriter::new();
    head.put_varu(shard as u64);
    head.put_u64(base_generation);
    head.put_varu(seq);
    head.put_varu(days.len() as u64);
    let mut body = ByteWriter::with_capacity(days.iter().map(|(_, s)| s.len() + 4).sum());
    for (date, slab) in days {
        body.put_i32(date.days());
        body.put_bytes(slab);
    }
    let sections: Vec<([u8; 4], Vec<u8>)> =
        vec![(*b"HEAD", head.into_bytes()), (*b"DAYS", body.into_bytes())];
    write_container(KIND_DELTA, &sections)
}

/// Decodes a file written by [`encode_delta`], expanding each day's slab
/// back to dense roster order.
pub(crate) fn decode_delta(bytes: &[u8]) -> Result<DeltaShardFile, AcobeError> {
    let what = "shard delta";
    let sections = parse_container(bytes, KIND_DELTA, what)?;
    let mut r = sections.required(b"HEAD")?;
    let err = |e| bin_corrupt("section HEAD", e);
    let shard = r.get_varu().map_err(err)? as usize;
    let base_generation = r.get_u64().map_err(err)?;
    let seq = r.get_varu().map_err(err)?;
    let n_days = r.get_varu().map_err(err)? as usize;
    sections.finish(b"HEAD", &r)?;
    let mut r = sections.required(b"DAYS")?;
    let err = |e| bin_corrupt("section DAYS", e);
    let mut days = Vec::with_capacity(n_days.min(4096));
    for _ in 0..n_days {
        let date = Date::from_days(r.get_i32().map_err(err)?);
        let slab = binio::get_f32_array(&mut r, "section DAYS").map_err(err)?;
        days.push((date, slab));
    }
    sections.finish(b"DAYS", &r)?;
    Ok(DeltaShardFile { shard, base_generation, seq, days })
}

/// Encodes the chain index. Rewriting this file atomically *is* the commit
/// point of a delta save: per-shard delta files written before it are
/// unreachable (and harmless) until the chain references them.
pub(crate) fn encode_chain(base_generation: u64, entries: &[ChainEntry]) -> Vec<u8> {
    let mut head = ByteWriter::new();
    head.put_u64(base_generation);
    head.put_varu(entries.len() as u64);
    let mut body = ByteWriter::new();
    for entry in entries {
        body.put_varu(entry.seq);
        body.put_varu(entry.days.len() as u64);
        for (date, scored) in &entry.days {
            body.put_i32(date.days());
            body.put_u8(u8::from(*scored));
        }
        body.put_varu(entry.files.len() as u64);
        for file in &entry.files {
            match file {
                Some(name) => {
                    body.put_u8(1);
                    body.put_str(name);
                }
                None => body.put_u8(0),
            }
        }
        body.put_str(&entry.monitor_json);
        body.put_str(&entry.alert_json);
    }
    let sections: Vec<([u8; 4], Vec<u8>)> =
        vec![(*b"HEAD", head.into_bytes()), (*b"ENTR", body.into_bytes())];
    write_container(KIND_CHAIN, &sections)
}

/// Decodes an index written by [`encode_chain`].
pub(crate) fn decode_chain(bytes: &[u8]) -> Result<(u64, Vec<ChainEntry>), AcobeError> {
    let what = "delta chain";
    let sections = parse_container(bytes, KIND_CHAIN, what)?;
    let mut r = sections.required(b"HEAD")?;
    let err = |e| bin_corrupt("section HEAD", e);
    let base_generation = r.get_u64().map_err(err)?;
    let n_entries = r.get_varu().map_err(err)? as usize;
    sections.finish(b"HEAD", &r)?;
    let mut r = sections.required(b"ENTR")?;
    let err = |e| bin_corrupt("section ENTR", e);
    let mut entries = Vec::with_capacity(n_entries.min(4096));
    for _ in 0..n_entries {
        let seq = r.get_varu().map_err(err)?;
        let n_days = r.get_varu().map_err(err)? as usize;
        let mut days = Vec::with_capacity(n_days.min(4096));
        for _ in 0..n_days {
            let date = Date::from_days(r.get_i32().map_err(err)?);
            let scored = match r.get_u8().map_err(err)? {
                0 => false,
                1 => true,
                m => {
                    return Err(corrupt(format!("section ENTR: unknown scored flag {m}")));
                }
            };
            days.push((date, scored));
        }
        let n_files = r.get_varu().map_err(err)? as usize;
        let mut files = Vec::with_capacity(n_files.min(4096));
        for _ in 0..n_files {
            files.push(match r.get_u8().map_err(err)? {
                0 => None,
                1 => Some(r.get_str("section ENTR").map_err(err)?),
                m => {
                    return Err(corrupt(format!("section ENTR: unknown presence byte {m}")));
                }
            });
        }
        let monitor_json = r.get_str("section ENTR").map_err(err)?;
        let alert_json = r.get_str("section ENTR").map_err(err)?;
        entries.push(ChainEntry { seq, days, files, monitor_json, alert_json });
    }
    sections.finish(b"ENTR", &r)?;
    Ok((base_generation, entries))
}

/// Encodes one roster-ordered measurement slab through the certified f32
/// codec (called from ingest workers so the save path only splices bytes).
pub(crate) fn encode_slab(slab: &[f32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    binio::put_f32_array(&mut w, slab);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::DeviationConfig;

    fn sample_rolling() -> RollingDeviation {
        let config = DeviationConfig { window: 4, delta: 3.0, epsilon: 1e-3, min_history: 2 };
        let mut rolling = RollingDeviation::new(3, 2, 2, config);
        for d in 0..5 {
            let day: Vec<f32> = (0..12).map(|i| ((i * 7 + d * 3) % 5) as f32 * 0.25).collect();
            rolling.push_day(&day).unwrap();
        }
        rolling
    }

    fn sample_ring() -> DayRing {
        let mut ring = DayRing::new(3);
        for d in 0..5 {
            ring.push((0..6).map(|i| (i + d) as f32 * 0.5).collect());
        }
        ring
    }

    #[test]
    fn container_roundtrip_and_lookup() {
        let sections = vec![(*b"AAAA", vec![1, 2, 3]), (*b"BBBB", vec![]), (*b"CCCC", vec![9; 100])];
        let bytes = write_container(KIND_ENGINE, &sections);
        let parsed = parse_container(&bytes, KIND_ENGINE, "test").unwrap();
        assert_eq!(parsed.find(b"AAAA"), Some(&[1u8, 2, 3][..]));
        assert_eq!(parsed.find(b"BBBB"), Some(&[][..]));
        assert_eq!(parsed.find(b"CCCC").unwrap().len(), 100);
        assert!(parsed.find(b"DDDD").is_none());
        assert!(parsed.required(b"DDDD").is_err());
    }

    #[test]
    fn container_rejects_bad_magic() {
        let mut bytes = write_container(KIND_ENGINE, &[(*b"AAAA", vec![1])]);
        bytes[0] = b'X';
        let err = parse_container(&bytes, KIND_ENGINE, "test").unwrap_err();
        assert!(err.to_string().contains("not a v3 checkpoint"), "{err}");
    }

    #[test]
    fn container_rejects_future_version() {
        let mut bytes = write_container(KIND_ENGINE, &[(*b"AAAA", vec![1])]);
        bytes[4] = 99;
        let err = parse_container(&bytes, KIND_ENGINE, "test").unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint container version"), "{err}");
    }

    #[test]
    fn container_rejects_wrong_kind() {
        let bytes = write_container(KIND_SHARD, &[(*b"AAAA", vec![1])]);
        let err = parse_container(&bytes, KIND_ENGINE, "test").unwrap_err();
        assert!(err.to_string().contains("container kind"), "{err}");
    }

    #[test]
    fn container_names_checksum_damaged_section() {
        let sections = vec![(*b"GOOD", vec![7; 40]), (*b"EVIL", vec![8; 40])];
        let bytes = write_container(KIND_ENGINE, &sections);
        // Flip one bit inside the second payload (header 13 + 16 + 40 + 16).
        let mut bad = bytes.clone();
        let target = 13 + 16 + 40 + 16 + 20;
        bad[target] ^= 0x10;
        let err = parse_container(&bad, KIND_ENGINE, "test").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("EVIL") && msg.contains("checksum mismatch"), "{msg}");
        assert!(!msg.contains("GOOD"), "{msg}");
    }

    #[test]
    fn container_rejects_truncation_typed() {
        let bytes = write_container(KIND_ENGINE, &[(*b"AAAA", vec![5; 64])]);
        for cut in [2, 8, 12, 20, bytes.len() - 1] {
            let err = parse_container(&bytes[..cut], KIND_ENGINE, "test").unwrap_err();
            assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn uniform_usizes_roundtrip() {
        for vs in [vec![4usize; 9], vec![0, 1, 2, 3], vec![7]] {
            let mut w = ByteWriter::new();
            put_uniform_usizes(&mut w, &vs);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = get_uniform_usizes(&mut r, "test", vs.len()).unwrap();
            assert_eq!(back, vs);
            assert!(r.is_done());
        }
        // Length mismatch is typed, not a bad allocation.
        let mut w = ByteWriter::new();
        put_uniform_usizes(&mut w, &[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(get_uniform_usizes(&mut r, "test", 5).is_err());
    }

    #[test]
    fn rolling_roundtrip_bit_identical() {
        let rolling = sample_rolling();
        let mut w = ByteWriter::new();
        encode_rolling(&mut w, &rolling);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_rolling(&mut r, "test").unwrap();
        assert!(r.is_done());
        // Bit-identical state ⇒ identical JSON (serde emits exact values).
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&rolling).unwrap()
        );
    }

    #[test]
    fn ring_roundtrip_bit_identical() {
        let ring = sample_ring();
        let mut w = ByteWriter::new();
        encode_ring(&mut w, &ring);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_ring(&mut r, "test").unwrap();
        assert!(r.is_done());
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&ring).unwrap()
        );
    }

    #[test]
    fn scores_and_baselines_roundtrip() {
        let history = vec![
            DayScores { date: Date::from_days(19000), scores: vec![vec![0.5, f32::NAN], vec![1.0, 2.0]] },
            DayScores { date: Date::from_days(19001), scores: vec![vec![], vec![3.5]] },
        ];
        let bytes = encode_scores(&history);
        let mut r = ByteReader::new(&bytes);
        let back = decode_scores(&mut r, "test").unwrap();
        assert!(r.is_done());
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&history).unwrap()
        );
        let baselines = vec![vec![1.0f32, 2.0], vec![0.0, -0.0, 0.125]];
        let bytes = encode_baselines(&baselines);
        let mut r = ByteReader::new(&bytes);
        let back = decode_baselines(&mut r, "test").unwrap();
        assert!(r.is_done());
        assert_eq!(back.iter().flatten().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   baselines.iter().flatten().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn delta_roundtrip() {
        let slab_a: Vec<f32> = (0..24).map(|i| if i % 5 == 0 { i as f32 } else { 0.0 }).collect();
        let slab_b: Vec<f32> = vec![0.0; 24];
        let enc_a = encode_slab(&slab_a);
        let enc_b = encode_slab(&slab_b);
        let bytes = encode_delta(
            2,
            777,
            3,
            &[(Date::from_days(19500), &enc_a), (Date::from_days(19501), &enc_b)],
        );
        let file = decode_delta(&bytes).unwrap();
        assert_eq!(file.shard, 2);
        assert_eq!(file.base_generation, 777);
        assert_eq!(file.seq, 3);
        assert_eq!(file.days.len(), 2);
        assert_eq!(file.days[0].0, Date::from_days(19500));
        assert_eq!(file.days[0].1, slab_a);
        assert_eq!(file.days[1].1, slab_b);
    }

    #[test]
    fn chain_roundtrip_and_corruption() {
        let entries = vec![
            ChainEntry {
                seq: 0,
                days: vec![(Date::from_days(19500), true), (Date::from_days(19501), false)],
                files: vec![Some("delta_000_shard_000.acb".into()), None],
                monitor_json: "null".into(),
                alert_json: "{}".into(),
            },
            ChainEntry {
                seq: 1,
                days: vec![(Date::from_days(19502), true)],
                files: vec![Some("delta_001_shard_000.acb".into()), Some("x.acb".into())],
                monitor_json: "null".into(),
                alert_json: "{\"next_seq\":4}".into(),
            },
        ];
        let bytes = encode_chain(42, &entries);
        let (base, back) = decode_chain(&bytes).unwrap();
        assert_eq!(base, 42);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].days, entries[0].days);
        assert_eq!(back[0].files, entries[0].files);
        assert_eq!(back[1].alert_json, entries[1].alert_json);
        // A flipped bit anywhere in a payload is caught by the section CRC.
        let mut bad = bytes.clone();
        let target = bytes.len() - 3;
        bad[target] ^= 0x01;
        assert!(matches!(decode_chain(&bad), Err(AcobeError::CorruptCheckpoint(_))));
    }

    #[test]
    fn checkpoint_format_parses() {
        assert_eq!("v3-binary".parse::<CheckpointFormat>().unwrap(), CheckpointFormat::V3Binary);
        assert_eq!("V2".parse::<CheckpointFormat>().unwrap(), CheckpointFormat::V2Json);
        assert_eq!("json".parse::<CheckpointFormat>().unwrap(), CheckpointFormat::V2Json);
        assert!("yaml".parse::<CheckpointFormat>().is_err());
        assert_eq!(CheckpointFormat::default(), CheckpointFormat::V3Binary);
        let opts = CheckpointOptions::default();
        assert_eq!(opts.delta_every, 8);
    }

    #[test]
    fn delta_tracker_schedule() {
        let mut tracker = DeltaTracker::new(2);
        assert!(tracker.needs_full(), "no base yet");
        tracker.note_full(10);
        assert!(!tracker.needs_full());
        tracker.entries.push(ChainEntry {
            seq: 0,
            days: vec![],
            files: vec![],
            monitor_json: "null".into(),
            alert_json: "{}".into(),
        });
        assert!(!tracker.needs_full());
        tracker.entries.push(ChainEntry {
            seq: 1,
            days: vec![],
            files: vec![],
            monitor_json: "null".into(),
            alert_json: "{}".into(),
        });
        assert!(tracker.needs_full(), "compaction bound reached");
        let always_full = DeltaTracker::new(0);
        assert!(always_full.needs_full());
    }
}
