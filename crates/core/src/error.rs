//! Typed errors for the detection engine and pipeline.
//!
//! The incremental engine has a resumable lifecycle — construction,
//! day-by-day ingestion, checkpoint/restore — and each stage can fail for a
//! different, programmatically distinguishable reason. [`AcobeError`] replaces
//! the crate's former `Result<_, String>` plumbing with one source-chaining
//! enum: callers can match on the variant ("is this retryable?") while
//! `Display` keeps the old human-readable messages.

use acobe_logs::time::Date;
use std::fmt;

/// Everything that can go wrong in `acobe-core`.
#[derive(Debug)]
pub enum AcobeError {
    /// Invalid configuration (window sizes, architecture, groups, aspects).
    Config(String),
    /// Invalid date range for training or scoring.
    Range(String),
    /// Scoring was requested before [`crate::pipeline::AcobePipeline::fit`]
    /// (or before a trained checkpoint was restored).
    NotTrained,
    /// A day of measurements had the wrong flattened width.
    WidthMismatch {
        /// Number of values the engine expects (`entities × frames ×
        /// features`).
        expected: usize,
        /// Number of values received.
        found: usize,
    },
    /// Days must be ingested consecutively; a gap or repeat was detected.
    OutOfOrder {
        /// The day the engine expected next.
        expected: Date,
        /// The day that was actually offered.
        got: Date,
    },
    /// A checkpoint file could not be read or written.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A checkpoint could not be encoded or decoded.
    Checkpoint(serde_json::Error),
    /// A checkpoint parsed as JSON but its contents are internally
    /// inconsistent (shape mismatches, missing state, bad version).
    CorruptCheckpoint(String),
    /// One shard of a [`crate::shard::ShardedEngine`] failed; carries the
    /// shard index and the underlying error.
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// What went wrong inside it.
        source: Box<AcobeError>,
    },
    /// Every shard of a sharded checkpoint failed to restore — there is no
    /// state left to keep scoring with.
    NoLiveShards,
    /// A model snapshot inside a checkpoint was inconsistent.
    Model(acobe_nn::serialize::LoadError),
    /// Raw logs could not be parsed.
    Logs(acobe_logs::csv::ParseCsvError),
    /// Per-day feature extraction failed.
    Extract(acobe_features::cert::ExtractError),
}

impl fmt::Display for AcobeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcobeError::Config(msg) | AcobeError::Range(msg) => f.write_str(msg),
            AcobeError::NotTrained => f.write_str("pipeline is not trained"),
            AcobeError::WidthMismatch { expected, found } => write!(
                f,
                "measurement width mismatch: expected {expected} values, found {found}"
            ),
            AcobeError::OutOfOrder { expected, got } => write!(
                f,
                "days must be ingested in order: expected {expected}, got {got}"
            ),
            AcobeError::Io { path, source } => write!(f, "{path}: {source}"),
            AcobeError::Checkpoint(e) => write!(f, "checkpoint encoding: {e}"),
            AcobeError::CorruptCheckpoint(msg) => write!(f, "corrupt checkpoint: {msg}"),
            AcobeError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            AcobeError::NoLiveShards => {
                f.write_str("no live shards: every shard failed to restore")
            }
            AcobeError::Model(e) => write!(f, "model snapshot: {e}"),
            AcobeError::Logs(e) => write!(f, "log parsing: {e}"),
            AcobeError::Extract(e) => write!(f, "feature extraction: {e}"),
        }
    }
}

impl std::error::Error for AcobeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AcobeError::Io { source, .. } => Some(source),
            AcobeError::Checkpoint(e) => Some(e),
            AcobeError::Shard { source, .. } => Some(source.as_ref()),
            AcobeError::Model(e) => Some(e),
            AcobeError::Logs(e) => Some(e),
            AcobeError::Extract(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for AcobeError {
    fn from(e: serde_json::Error) -> Self {
        AcobeError::Checkpoint(e)
    }
}

impl From<acobe_nn::serialize::LoadError> for AcobeError {
    fn from(e: acobe_nn::serialize::LoadError) -> Self {
        AcobeError::Model(e)
    }
}

impl From<acobe_logs::csv::ParseCsvError> for AcobeError {
    fn from(e: acobe_logs::csv::ParseCsvError) -> Self {
        AcobeError::Logs(e)
    }
}

impl From<acobe_features::cert::ExtractError> for AcobeError {
    fn from(e: acobe_features::cert::ExtractError) -> Self {
        AcobeError::Extract(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn messages_keep_legacy_text() {
        assert_eq!(AcobeError::NotTrained.to_string(), "pipeline is not trained");
        assert_eq!(
            AcobeError::Config("critic_n must be at least 1".into()).to_string(),
            "critic_n must be at least 1"
        );
        let e = AcobeError::WidthMismatch { expected: 8, found: 3 };
        assert!(e.to_string().contains("measurement width mismatch"));
        let e = AcobeError::OutOfOrder {
            expected: Date::from_ymd(2010, 1, 2),
            got: Date::from_ymd(2010, 1, 5),
        };
        assert!(e.to_string().contains("2010-01-02"));
        assert!(e.to_string().contains("days must be ingested in order"));
    }

    #[test]
    fn sources_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = AcobeError::Io { path: "ckpt.json".into(), source: io };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("ckpt.json"));
        assert!(AcobeError::NotTrained.source().is_none());
    }

    #[test]
    fn shard_errors_wrap_and_chain() {
        let inner = AcobeError::CorruptCheckpoint("user ring capacity 3".into());
        let e = AcobeError::Shard { shard: 2, source: Box::new(inner) };
        assert_eq!(e.to_string(), "shard 2: corrupt checkpoint: user ring capacity 3");
        assert!(e.source().unwrap().to_string().contains("user ring"));
        assert!(AcobeError::NoLiveShards.to_string().contains("no live shards"));
    }
}
