//! Typed errors for the detection engine and pipeline.
//!
//! The incremental engine has a resumable lifecycle — construction,
//! day-by-day ingestion, checkpoint/restore — and each stage can fail for a
//! different, programmatically distinguishable reason. [`AcobeError`] replaces
//! the crate's former `Result<_, String>` plumbing with one source-chaining
//! enum: callers can match on the variant ("is this retryable?") while
//! `Display` keeps the old human-readable messages.

use acobe_logs::time::Date;
use std::fmt;

/// Everything that can go wrong in `acobe-core`.
#[derive(Debug)]
pub enum AcobeError {
    /// Invalid configuration (window sizes, architecture, groups, aspects).
    Config(String),
    /// Invalid date range for training or scoring.
    Range(String),
    /// Scoring was requested before [`crate::pipeline::AcobePipeline::fit`]
    /// (or before a trained checkpoint was restored).
    NotTrained,
    /// A day of measurements had the wrong flattened width.
    WidthMismatch {
        /// Number of values the engine expects (`entities × frames ×
        /// features`).
        expected: usize,
        /// Number of values received.
        found: usize,
    },
    /// Days must be ingested consecutively; a gap or repeat was detected.
    OutOfOrder {
        /// The day the engine expected next.
        expected: Date,
        /// The day that was actually offered.
        got: Date,
    },
    /// A checkpoint file could not be read or written.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A checkpoint could not be encoded or decoded.
    Checkpoint(serde_json::Error),
    /// A model snapshot inside a checkpoint was inconsistent.
    Model(acobe_nn::serialize::LoadError),
    /// Raw logs could not be parsed.
    Logs(acobe_logs::csv::ParseCsvError),
    /// Per-day feature extraction failed.
    Extract(acobe_features::cert::ExtractError),
}

impl fmt::Display for AcobeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcobeError::Config(msg) | AcobeError::Range(msg) => f.write_str(msg),
            AcobeError::NotTrained => f.write_str("pipeline is not trained"),
            AcobeError::WidthMismatch { expected, found } => write!(
                f,
                "measurement width mismatch: expected {expected} values, found {found}"
            ),
            AcobeError::OutOfOrder { expected, got } => write!(
                f,
                "days must be ingested in order: expected {expected}, got {got}"
            ),
            AcobeError::Io { path, source } => write!(f, "{path}: {source}"),
            AcobeError::Checkpoint(e) => write!(f, "checkpoint encoding: {e}"),
            AcobeError::Model(e) => write!(f, "model snapshot: {e}"),
            AcobeError::Logs(e) => write!(f, "log parsing: {e}"),
            AcobeError::Extract(e) => write!(f, "feature extraction: {e}"),
        }
    }
}

impl std::error::Error for AcobeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AcobeError::Io { source, .. } => Some(source),
            AcobeError::Checkpoint(e) => Some(e),
            AcobeError::Model(e) => Some(e),
            AcobeError::Logs(e) => Some(e),
            AcobeError::Extract(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for AcobeError {
    fn from(e: serde_json::Error) -> Self {
        AcobeError::Checkpoint(e)
    }
}

impl From<acobe_nn::serialize::LoadError> for AcobeError {
    fn from(e: acobe_nn::serialize::LoadError) -> Self {
        AcobeError::Model(e)
    }
}

impl From<acobe_logs::csv::ParseCsvError> for AcobeError {
    fn from(e: acobe_logs::csv::ParseCsvError) -> Self {
        AcobeError::Logs(e)
    }
}

impl From<acobe_features::cert::ExtractError> for AcobeError {
    fn from(e: acobe_features::cert::ExtractError) -> Self {
        AcobeError::Extract(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn messages_keep_legacy_text() {
        assert_eq!(AcobeError::NotTrained.to_string(), "pipeline is not trained");
        assert_eq!(
            AcobeError::Config("critic_n must be at least 1".into()).to_string(),
            "critic_n must be at least 1"
        );
        let e = AcobeError::WidthMismatch { expected: 8, found: 3 };
        assert!(e.to_string().contains("measurement width mismatch"));
        let e = AcobeError::OutOfOrder {
            expected: Date::from_ymd(2010, 1, 2),
            got: Date::from_ymd(2010, 1, 5),
        };
        assert!(e.to_string().contains("2010-01-02"));
        assert!(e.to_string().contains("days must be ingested in order"));
    }

    #[test]
    fn sources_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = AcobeError::Io { path: "ckpt.json".into(), source: io };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("ckpt.json"));
        assert!(AcobeError::NotTrained.source().is_none());
    }
}
