//! Compound behavioral deviation matrix construction (paper Section IV-A,
//! Figure 2).
//!
//! For one user and one day `d`, the matrix stacks
//!
//! * individual deviations for every aspect feature × time frame over the
//!   `D` days `[d−D+1, d]`, and
//! * the corresponding *group* deviations,
//!
//! then flattens it and maps `[-Δ, Δ] → [0, 1]` before it reaches an
//! autoencoder. The stacking order is irrelevant (the paper notes alternative
//! stackings are applicable) as long as it is stable.

use crate::deviation::DeviationCube;
use crate::error::AcobeError;
use serde::{Deserialize, Serialize};

/// Matrix-construction options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Number of days `D` enclosed by each matrix.
    pub matrix_days: usize,
    /// Include the group-behavior block.
    pub include_group: bool,
    /// Multiply deviations by the TF-style feature weights (Equation 1).
    pub use_weights: bool,
    /// Deviation bound Δ used for the `[0, 1]` transform.
    pub delta: f32,
}

impl MatrixConfig {
    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Config`] when `matrix_days == 0` or `delta <= 0`.
    pub fn validate(&self) -> Result<(), AcobeError> {
        if self.matrix_days == 0 {
            return Err(AcobeError::Config("matrix_days must be positive".into()));
        }
        if self.delta <= 0.0 {
            return Err(AcobeError::Config("delta must be positive".into()));
        }
        Ok(())
    }

    /// Flattened input width for `n_features` aspect features and `frames`
    /// time frames.
    pub fn input_dim(&self, n_features: usize, frames: usize) -> usize {
        let blocks = if self.include_group { 2 } else { 1 };
        n_features * frames * self.matrix_days * blocks
    }
}

/// Builds the flattened `[0, 1]` matrix row for `(user, day)`.
///
/// `group_dev` must be the deviation cube of the user's *group* series, and
/// `group_index` the user's group; both are ignored when
/// `config.include_group` is false.
///
/// Days before `d − D + 1` that fall outside the cube contribute the neutral
/// value `0.5` (deviation 0).
///
/// # Panics
///
/// Panics if `day` is outside the cube or feature indices are out of range.
pub fn build_row(
    user_dev: &DeviationCube,
    group_dev: Option<&DeviationCube>,
    user: usize,
    group_index: usize,
    day: usize,
    features: &[usize],
    config: &MatrixConfig,
) -> Vec<f32> {
    let frames = user_dev.sigma.frames();
    let mut row = Vec::with_capacity(config.input_dim(features.len(), frames));
    append_block(user_dev, user, day, features, config, &mut row);
    if config.include_group {
        let gdev = group_dev.expect("group deviations required when include_group");
        append_block(gdev, group_index, day, features, config, &mut row);
    }
    row
}

fn append_block(
    dev: &DeviationCube,
    entity: usize,
    day: usize,
    features: &[usize],
    config: &MatrixConfig,
    row: &mut Vec<f32>,
) {
    assert!(day < dev.sigma.days(), "day outside cube");
    let two_delta = 2.0 * config.delta;
    for &f in features {
        for t in 0..dev.sigma.frames() {
            for offset in (0..config.matrix_days).rev() {
                let value = if day >= offset {
                    let d = day - offset;
                    let sigma = dev.sigma.get_by_index(entity, d, t, f);
                    if config.use_weights {
                        sigma * dev.weights.get_by_index(entity, d, t, f)
                    } else {
                        sigma
                    }
                } else {
                    0.0
                };
                // [-delta, delta] -> [0, 1]
                row.push((value + config.delta) / two_delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::{compute_deviations, DeviationConfig};
    use acobe_features::counts::FeatureCube;
    use acobe_logs::time::Date;

    fn dev_cube(users: usize, days: usize, features: usize) -> DeviationCube {
        let mut c = FeatureCube::new(users, Date::from_ymd(2010, 1, 1), days, 2, features);
        for u in 0..users {
            for d in 0..days {
                for t in 0..2 {
                    for f in 0..features {
                        // Mild trend + a spike for user 0 feature 0 on last day.
                        let mut v = (d % 5) as f32 + u as f32;
                        if u == 0 && f == 0 && d == days - 1 {
                            v += 100.0;
                        }
                        c.set_by_index(u, d, t, f, v);
                    }
                }
            }
        }
        compute_deviations(&c, &DeviationConfig { window: 10, delta: 3.0, epsilon: 1e-3, min_history: 5 })
    }

    fn cfg(matrix_days: usize, include_group: bool) -> MatrixConfig {
        MatrixConfig { matrix_days, include_group, use_weights: false, delta: 3.0 }
    }

    #[test]
    fn row_dimensions() {
        let dev = dev_cube(2, 30, 3);
        let c = cfg(7, false);
        let row = build_row(&dev, None, 0, 0, 29, &[0, 1, 2], &c);
        assert_eq!(row.len(), 3 * 2 * 7);
        assert_eq!(c.input_dim(3, 2), 42);

        let cg = cfg(7, true);
        let row = build_row(&dev, Some(&dev), 0, 1, 29, &[0, 1, 2], &cg);
        assert_eq!(row.len(), 3 * 2 * 7 * 2);
    }

    #[test]
    fn values_bounded_zero_one() {
        let dev = dev_cube(2, 30, 3);
        let row = build_row(&dev, None, 0, 0, 29, &[0, 1, 2], &cfg(10, false));
        assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)), "{row:?}");
    }

    #[test]
    fn spike_maps_to_one_and_neutral_to_half() {
        let dev = dev_cube(1, 30, 2);
        let c = cfg(1, false);
        // Day 29 has the +100 spike on feature 0 -> sigma = +3 -> 1.0.
        let row = build_row(&dev, None, 0, 0, 29, &[0], &c);
        let last = *row.last().unwrap();
        assert!((last - 1.0).abs() < 1e-6, "{last}");
        // Warmup day (no history): sigma = 0 -> 0.5.
        let row = build_row(&dev, None, 0, 0, 2, &[0], &c);
        assert!((row[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn days_before_cube_are_neutral() {
        let dev = dev_cube(1, 30, 1);
        // Day index 3 with a 10-day matrix: 6 leading slots are neutral.
        let row = build_row(&dev, None, 0, 0, 3, &[0], &cfg(10, false));
        // Layout per (feature, frame): oldest day first.
        for i in 0..6 {
            assert!((row[i] - 0.5).abs() < 1e-6, "slot {i}: {}", row[i]);
        }
    }

    #[test]
    fn group_block_appended() {
        let dev = dev_cube(3, 30, 1);
        let c = cfg(5, true);
        let row_with = build_row(&dev, Some(&dev), 0, 2, 29, &[0], &c);
        let row_without = build_row(&dev, None, 0, 0, 29, &[0], &cfg(5, false));
        assert_eq!(row_with.len(), row_without.len() * 2);
        // First half equals the individual block.
        assert_eq!(&row_with[..row_without.len()], &row_without[..]);
    }

    #[test]
    fn weights_scale_deviations_toward_neutral() {
        // A chaotic feature gets weight < 1, so |x - 0.5| shrinks.
        let mut c = FeatureCube::new(1, Date::from_ymd(2010, 1, 1), 40, 2, 1);
        for d in 0..40 {
            let v = if d % 2 == 0 { 0.0 } else { 50.0 };
            c.set_by_index(0, d, 0, 0, v);
            c.set_by_index(0, d, 1, 0, v);
        }
        let dev = compute_deviations(
            &c,
            &DeviationConfig { window: 10, delta: 3.0, epsilon: 1e-3, min_history: 5 },
        );
        let unweighted = build_row(&dev, None, 0, 0, 39, &[0], &cfg(1, false));
        let mut wcfg = cfg(1, false);
        wcfg.use_weights = true;
        let weighted = build_row(&dev, None, 0, 0, 39, &[0], &wcfg);
        for (w, u) in weighted.iter().zip(&unweighted) {
            assert!((w - 0.5).abs() <= (u - 0.5).abs() + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "group deviations required")]
    fn missing_group_cube_panics() {
        let dev = dev_cube(1, 30, 1);
        let _ = build_row(&dev, None, 0, 0, 29, &[0], &cfg(5, true));
    }
}
