//! ACOBE: Anomaly detection based on COmpound BEhavior.
//!
//! A from-scratch Rust reproduction of *"Time-Window Based Group-Behavior
//! Supported Method for Accurate Detection of Anomalous Users"* (DSN 2021).
//! The crate implements the paper's primary contribution:
//!
//! * [`deviation`] — behavioral deviations `σ_{f,t,d}` over an ω-day sliding
//!   history, with TF-style feature weights (Section IV-A),
//! * [`matrix`] — compound behavioral deviation matrices stacking individual
//!   and group behavior over `D` days × time frames (Figure 2),
//! * [`engine`] — the incremental day-at-a-time detection core
//!   ([`engine::DetectionEngine`]) with checkpoint/restore,
//! * [`shard`] — the horizontally partitioned engine
//!   ([`shard::ShardedEngine`]): per-shard user state, a two-phase exact
//!   group reduce, and sharded checkpoints with quarantine,
//! * [`pipeline`] — the autoencoder-ensemble detector
//!   ([`pipeline::AcobePipeline`], Figure 1), a batch driver over the engine,
//! * [`critic`] — the investigation-list critic (Algorithm 1),
//! * [`alert`] — the alert decision plane: [`alert::AlertPolicy`] thresholds
//!   evaluated after every scored day, deviation-matrix evidence bundles,
//!   and the append-only [`alert::AlertLog`] with exactly-once resume,
//! * [`checkpoint`] — the v3 binary checkpoint container shared by both
//!   engines: CRC-checksummed sections, certified-lossless quantized
//!   histories, and per-shard day-replay deltas (DESIGN.md §12),
//! * [`config`] — presets for the paper's configuration and its ablations
//!   (No-Group, 1-Day, All-in-1, Baseline style).
//!
//! # Examples
//!
//! ```no_run
//! use acobe::config::AcobeConfig;
//! use acobe::pipeline::AcobePipeline;
//! use acobe_features::cert::{extract_cert_features, CountSemantics};
//! use acobe_features::spec::cert_feature_set;
//! use acobe_synth::cert::{CertConfig, CertGenerator};
//!
//! # fn main() -> Result<(), acobe::error::AcobeError> {
//! let mut gen = CertGenerator::new(CertConfig::small(7));
//! let store = gen.build_store();
//! let cfg = gen.config().clone();
//! let cube = extract_cert_features(
//!     &store, cfg.org.total_users(), cfg.start, cfg.end, CountSemantics::Plain);
//! let groups: Vec<Vec<usize>> = gen
//!     .directory()
//!     .departments()
//!     .map(|d| gen.directory().members(d).iter().map(|u| u.index()).collect())
//!     .collect();
//! let mut pipe = AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny())?;
//! pipe.fit(cfg.start, cfg.start.add_days(60))?;
//! let table = pipe.score_range(cfg.start.add_days(60), cfg.end)?;
//! let list = table.investigation_list(2);
//! println!("most suspicious user: {}", list[0].user);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod checkpoint;
pub mod config;
pub mod critic;
pub mod deviation;
pub mod engine;
pub mod error;
pub mod matrix;
pub mod pipeline;
pub mod shard;
pub mod streaming;
pub mod waveform;

pub use alert::{AlertLog, AlertLogEntry, AlertPolicy, AlertState};
pub use checkpoint::{CheckpointFormat, CheckpointOptions, SaveKind, SaveReport};
pub use config::{AcobeConfig, OptimizerKind, Representation};
pub use critic::{investigation_list, investigate_from_scores, Investigation};
pub use deviation::{compute_deviations, group_average_cube, DeviationConfig, DeviationCube};
pub use engine::{DayScores, DetectionEngine, EngineCheckpoint};
pub use error::AcobeError;
pub use matrix::{build_row, MatrixConfig};
pub use pipeline::{AcobePipeline, ScoreTable};
pub use shard::{assign_users, EngineShard, ShardedEngine};
pub use streaming::{DayDeviations, RollingDeviation};
pub use waveform::{analyze, WaveformAnalysis, WaveformCritic, WaveformKind};
