//! The alert decision plane: policy, per-stream state, and the append-only
//! audit log.
//!
//! The *data* plane — the [`Alert`] type itself, its severity / status /
//! trigger enums, and the in-process [`acobe_obs::alert::AlertBoard`] served
//! by `/alerts` — lives in `acobe_obs` so every crate can consume alerts
//! without depending on the engine. This module owns the *decisions*: when
//! an ingested day turns into an alert, what evidence is attached, and how
//! the alert stream survives checkpoint/resume without gaps or duplicates.
//!
//! Determinism is the load-bearing property. The alert log must be
//! bit-identical across shard counts and across interrupt/resume, so
//! everything here is derived from scored state only: alert ids come from a
//! checkpointed monotonic sequence (never wall clock), cooldowns count
//! scored days (never dates diffed against "now"), and the timing-based
//! `ShardLagging` health signal is deliberately *not* an alert trigger.

use crate::critic::{investigate_from_scores, scores_to_ranks, Investigation};
use crate::engine::DayRing;
use crate::error::AcobeError;
use acobe_features::spec::FeatureSet;
use acobe_obs::alert::{
    Alert, AlertSeverity, AlertStatus, AlertTrigger, AspectEvidence, EvidenceBundle,
    FeatureContribution,
};
use acobe_obs::HealthEvent;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

fn default_watch_top_n() -> usize {
    10
}
fn default_rank_jump_min() -> usize {
    5
}
fn default_cooldown_days() -> i64 {
    7
}
fn default_rule_z() -> f32 {
    6.0
}
fn default_top_k_features() -> usize {
    5
}

/// Thresholds governing when an ingested day raises an [`Alert`].
///
/// The policy is evaluated after every scored day. It is *not* part of the
/// checkpoint — an operator may retune thresholds across a resume — but the
/// [`AlertState`] it drives is, so a resumed stream with the same policy
/// raises exactly the alerts an uninterrupted one would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertPolicy {
    /// Watchlist size: only the top `N` of the day's investigation list are
    /// considered for user-level alerts.
    #[serde(default = "default_watch_top_n")]
    pub watch_top_n: usize,
    /// Minimum improvement in watchlist position (previous − current) for a
    /// [`AlertTrigger::RankJump`].
    #[serde(default = "default_rank_jump_min")]
    pub rank_jump_min: usize,
    /// Scored days an alert key stays silenced after firing (dedup window).
    #[serde(default = "default_cooldown_days")]
    pub cooldown_days: i64,
    /// Absolute deviation (in weighted σ units) above which a watchlisted
    /// user's top feature cell fires a [`AlertTrigger::RuleHit`].
    #[serde(default = "default_rule_z")]
    pub rule_z: f32,
    /// Contributing feature cells retained in each evidence bundle.
    #[serde(default = "default_top_k_features")]
    pub top_k_features: usize,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        AlertPolicy {
            watch_top_n: default_watch_top_n(),
            rank_jump_min: default_rank_jump_min(),
            cooldown_days: default_cooldown_days(),
            rule_z: default_rule_z(),
            top_k_features: default_top_k_features(),
        }
    }
}

/// Checkpointed alert-evaluation state.
///
/// Carried inside engine checkpoints (with `#[serde(default)]` so pre-alert
/// checkpoints still load) so that `next_seq` is a high-water mark: on
/// resume, [`AlertLog::open`] discards any logged alerts at or above it and
/// the replayed days regenerate them byte-for-byte — neither gaps nor
/// duplicates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertState {
    /// Sequence number the next raised alert will take (gap-free, 0-based).
    #[serde(default)]
    pub next_seq: u64,
    /// True once a scored day has primed the watchlist baseline.
    #[serde(default)]
    pub primed: bool,
    /// `(user, 1-based position)` pairs of the previous day's watchlist.
    #[serde(default)]
    pub last_positions: Vec<(usize, usize)>,
    /// `(key, remaining scored days)` dedup cooldowns.
    #[serde(default)]
    pub cooldowns: Vec<(String, i64)>,
    /// Shards already alerted as degraded (latched for the stream's life).
    #[serde(default)]
    pub degraded_reported: Vec<usize>,
}

impl AlertState {
    fn cooled(&self, key: &str) -> bool {
        self.cooldowns.iter().any(|(k, _)| k == key)
    }

    fn set_cooldown(&mut self, key: String, days: i64) {
        if days > 0 {
            self.cooldowns.push((key, days));
        }
    }
}

/// Everything [`evaluate_day`] needs to know about one scored day.
pub(crate) struct AlertDayInput<'a> {
    /// The scored day, rendered (`YYYY-MM-DD`).
    pub day: &'a str,
    /// `scores[aspect][user]` for the day (NaN = unscored / quarantined).
    pub scores: &'a [Vec<f32>],
    /// Health events the drift monitor raised *for this day*.
    pub drift: &'a [HealthEvent],
    /// Currently quarantined shards as `(index, reason)`.
    pub degraded: &'a [(usize, String)],
    /// The critic's N (votes required across aspects).
    pub critic_n: usize,
}

/// Points-based severity: watchlist position strength plus deviation
/// magnitude of the strongest contributing cell.
fn severity_for(position: usize, users: usize, max_abs_z: f32) -> AlertSeverity {
    let frac = position as f64 / users.max(1) as f64;
    let mut points = 0u32;
    if position == 1 || frac <= 0.02 {
        points += 2;
    } else if position <= 3 || frac <= 0.10 {
        points += 1;
    }
    if max_abs_z >= 8.0 {
        points += 2;
    } else if max_abs_z >= 4.0 {
        points += 1;
    }
    match points {
        0 => AlertSeverity::Low,
        1 => AlertSeverity::Medium,
        2 | 3 => AlertSeverity::High,
        _ => AlertSeverity::Critical,
    }
}

/// Evaluates one scored day against the policy, mutating `state` and
/// returning the alerts raised, in deterministic order: watchlist position
/// order, then drift events in monitor order, then degraded shards by index.
///
/// `evidence(user, position, priority)` builds the attribution bundle from
/// engine state; it is only invoked for watchlisted users with real scores.
pub(crate) fn evaluate_day<F>(
    policy: &AlertPolicy,
    state: &mut AlertState,
    input: &AlertDayInput<'_>,
    mut evidence: F,
) -> Vec<Alert>
where
    F: FnMut(usize, usize, usize) -> EvidenceBundle,
{
    let mut alerts = Vec::new();
    for c in &mut state.cooldowns {
        c.1 -= 1;
    }
    state.cooldowns.retain(|c| c.1 > 0);

    let users = input.scores.first().map(|s| s.len()).unwrap_or(0);
    let list = investigate_from_scores(input.scores, input.critic_n);
    let take = list.len().min(policy.watch_top_n);
    let watch = &list[..take];
    let prev = std::mem::take(&mut state.last_positions);

    let mut raise = |state: &mut AlertState,
                     user: Option<usize>,
                     severity: AlertSeverity,
                     trigger: AlertTrigger,
                     bundle: Option<EvidenceBundle>| {
        let seq = state.next_seq;
        state.next_seq += 1;
        alerts.push(Alert {
            seq,
            id: format!("al-{seq:06}"),
            user,
            day: input.day.to_string(),
            severity,
            status: AlertStatus::New,
            trigger,
            evidence: bundle,
        });
    };

    if state.primed {
        for (i, inv) in watch.iter().enumerate() {
            let position = i + 1;
            // Unscored (NaN) users can pad out a short watchlist; they have
            // no live state to build evidence from and never alert.
            if input.scores.iter().any(|s| s[inv.user].is_nan()) {
                continue;
            }
            let bundle = evidence(inv.user, position, inv.priority);
            let max_abs_z =
                bundle.top_features.iter().map(|f| f.z.abs()).fold(0.0f32, f32::max);
            let old = prev.iter().find(|&&(u, _)| u == inv.user).map(|&(_, p)| p);
            // One candidate trigger per user per day, by precedence; if that
            // trigger's key is cooling down, the user stays quiet today.
            let trigger = match old {
                Some(from) if from > position && from - position >= policy.rank_jump_min => {
                    Some(AlertTrigger::RankJump { from, to: position })
                }
                None => Some(AlertTrigger::NewEntrant { position }),
                _ => bundle
                    .top_features
                    .first()
                    .filter(|f| f.z.abs() >= policy.rule_z)
                    .map(|f| AlertTrigger::RuleHit {
                        feature: f.feature.clone(),
                        frame: f.frame,
                        z: f.z,
                    }),
            };
            let Some(trigger) = trigger else { continue };
            let key = format!("u{}:{}", inv.user, trigger.kind());
            if state.cooled(&key) {
                continue;
            }
            state.set_cooldown(key, policy.cooldown_days);
            let severity = severity_for(position, users, max_abs_z);
            raise(state, Some(inv.user), severity, trigger, Some(bundle));
        }
    }
    state.primed = true;
    state.last_positions =
        watch.iter().enumerate().map(|(i, inv)| (inv.user, i + 1)).collect();

    for event in input.drift {
        let HealthEvent::ScoreDrift { aspect, quantile, ratio, .. } = event else { continue };
        let key = format!("drift:{aspect}");
        if state.cooled(&key) {
            continue;
        }
        state.set_cooldown(key, policy.cooldown_days);
        let severity =
            if *ratio >= 10.0 { AlertSeverity::High } else { AlertSeverity::Medium };
        let trigger = AlertTrigger::ScoreDrift {
            aspect: aspect.clone(),
            quantile: quantile.clone(),
            ratio: *ratio,
        };
        raise(state, None, severity, trigger, None);
    }

    let mut degraded: Vec<&(usize, String)> = input.degraded.iter().collect();
    degraded.sort_by_key(|(shard, _)| *shard);
    for (shard, reason) in degraded {
        if state.degraded_reported.contains(shard) {
            continue;
        }
        state.degraded_reported.push(*shard);
        let trigger = AlertTrigger::ShardDegraded { shard: *shard, reason: reason.clone() };
        raise(state, None, AlertSeverity::High, trigger, None);
    }

    alerts
}

/// Assembles the attribution bundle for one watchlisted user from the
/// engine's live state: per-aspect score and rank for the day, the top-k
/// contributing cells of the compound deviation matrix (today's weighted
/// z-score, the group-mean context when group behavior is on, and the ω-day
/// history excerpt oldest-first), and the matrix window depth.
///
/// `entity` is the user's column in `ring` (the global index for the
/// monolith, the local index inside a shard); `group_entity` is the user's
/// group column in `group_ring`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_evidence(
    feature_set: &FeatureSet,
    frames: usize,
    ring: &DayRing,
    entity: usize,
    group_ring: Option<&DayRing>,
    group_entity: Option<usize>,
    scores: &[Vec<f32>],
    user: usize,
    position: usize,
    priority: usize,
    top_k: usize,
) -> EvidenceBundle {
    let n_features = feature_set.len();
    let aspects: Vec<AspectEvidence> = feature_set
        .aspects
        .iter()
        .enumerate()
        .map(|(a, spec)| AspectEvidence {
            aspect: spec.name.clone(),
            score: scores[a][user],
            rank: scores_to_ranks(&scores[a])[user],
        })
        .collect();

    let days = ring.len();
    let mut contributions: Vec<FeatureContribution> = Vec::new();
    for spec in &feature_set.aspects {
        for &f in &spec.features {
            for t in 0..frames {
                let idx = (entity * frames + t) * n_features + f;
                let z = ring.offset(0).map(|d| d[idx]).unwrap_or(0.0);
                let history: Vec<f32> = (0..days)
                    .rev()
                    .map(|k| ring.offset(k).map(|d| d[idx]).unwrap_or(0.0))
                    .collect();
                let group_z = match (group_ring, group_entity) {
                    (Some(gring), Some(ge)) => {
                        gring.offset(0).map(|d| d[(ge * frames + t) * n_features + f])
                    }
                    _ => None,
                };
                contributions.push(FeatureContribution {
                    aspect: spec.name.clone(),
                    feature: feature_set.names[f].clone(),
                    frame: t,
                    z,
                    group_z,
                    history,
                });
            }
        }
    }
    contributions.sort_by(|x, y| {
        y.z.abs()
            .total_cmp(&x.z.abs())
            .then_with(|| x.aspect.cmp(&y.aspect))
            .then_with(|| x.feature.cmp(&y.feature))
            .then_with(|| x.frame.cmp(&y.frame))
    });
    contributions.truncate(top_k);
    EvidenceBundle {
        position,
        priority,
        aspects,
        top_features: contributions,
        window_days: days,
    }
}

/// One line of the append-only alert audit log.
///
/// Raised alerts carry the engine's gap-free sequence inside the alert
/// itself. Lifecycle transitions deliberately have *no* sequence number:
/// they reference the alert by id and their audit order is the file's line
/// order, so an operator acking alerts between stream runs can never collide
/// with the engine's sequence space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "entry", rename_all = "snake_case")]
pub enum AlertLogEntry {
    /// An alert raised by the engine.
    Raised {
        /// The alert, evidence bundle included.
        alert: Alert,
    },
    /// A lifecycle transition recorded by an operator (`acobe alerts ack`).
    Transition {
        /// Id of the alert being transitioned.
        alert_id: String,
        /// Status before the transition.
        from: AlertStatus,
        /// Status after the transition.
        to: AlertStatus,
        /// Optional operator note.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        note: Option<String>,
    },
}

/// The append-only JSONL alert audit log.
///
/// Every raised alert and every lifecycle transition is one flushed JSON
/// line. [`AlertLog::open`] reconciles the file against a checkpoint-carried
/// high-water mark so a resumed stream neither drops nor duplicates alerts:
/// raised entries at or above the resume sequence (written after the
/// checkpoint, about to be regenerated by replay) are pruned, along with any
/// transitions that reference them.
#[derive(Debug, Clone)]
pub struct AlertLog {
    path: PathBuf,
}

fn io_error(path: &Path, source: std::io::Error) -> AcobeError {
    AcobeError::Io { path: path.display().to_string(), source }
}

impl AlertLog {
    /// Opens the log for a stream run.
    ///
    /// `resume_seq = None` starts a fresh stream: any existing file is
    /// truncated. `resume_seq = Some(high)` resumes from a checkpoint whose
    /// next alert sequence is `high`: entries raised at or above `high` are
    /// pruned (the resumed stream will re-raise them identically), keeping
    /// the log exactly-once.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures and
    /// [`AcobeError::Checkpoint`] when an existing line fails to parse.
    pub fn open<P: AsRef<Path>>(path: P, resume_seq: Option<u64>) -> Result<Self, AcobeError> {
        let path = path.as_ref().to_path_buf();
        match resume_seq {
            None => {
                std::fs::write(&path, "").map_err(|e| io_error(&path, e))?;
            }
            Some(high) => {
                if path.exists() {
                    let entries = Self::read_entries(&path)?;
                    let kept: Vec<&AlertLogEntry> = entries
                        .iter()
                        .filter(|entry| match entry {
                            AlertLogEntry::Raised { alert } => alert.seq < high,
                            AlertLogEntry::Transition { alert_id, .. } => {
                                entries.iter().any(|e| match e {
                                    AlertLogEntry::Raised { alert } => {
                                        alert.seq < high && alert.id == *alert_id
                                    }
                                    _ => false,
                                })
                            }
                        })
                        .collect();
                    let mut text = String::new();
                    for entry in kept {
                        text.push_str(
                            &serde_json::to_string(entry).expect("alert entry serializes"),
                        );
                        text.push('\n');
                    }
                    acobe_obs::write_atomic(&path, text.as_bytes())
                        .map_err(|e| io_error(&path, e))?;
                } else {
                    std::fs::write(&path, "").map_err(|e| io_error(&path, e))?;
                }
            }
        }
        Ok(AlertLog { path })
    }

    /// Attaches to an existing log file without rewriting it — the handle
    /// `acobe alerts ack` uses to append lifecycle transitions after the
    /// raising stream has finished.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] when the file does not exist.
    pub fn attach<P: AsRef<Path>>(path: P) -> Result<Self, AcobeError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Err(io_error(
                &path,
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such alert log"),
            ));
        }
        Ok(AlertLog { path })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry as a flushed JSON line.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures.
    pub fn append(&self, entry: &AlertLogEntry) -> Result<(), AcobeError> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| io_error(&self.path, e))?;
        let line = serde_json::to_string(entry).expect("alert entry serializes");
        writeln!(file, "{line}").map_err(|e| io_error(&self.path, e))?;
        file.flush().map_err(|e| io_error(&self.path, e))?;
        Ok(())
    }

    /// Appends one raised-alert entry per alert, in order.
    ///
    /// # Errors
    ///
    /// Same contract as [`AlertLog::append`].
    pub fn append_raised(&self, alerts: &[Alert]) -> Result<(), AcobeError> {
        for alert in alerts {
            self.append(&AlertLogEntry::Raised { alert: alert.clone() })?;
        }
        Ok(())
    }

    /// Reads and parses every entry of a log file, in file order.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures and
    /// [`AcobeError::Checkpoint`] for an unparsable line.
    pub fn read_entries<P: AsRef<Path>>(path: P) -> Result<Vec<AlertLogEntry>, AcobeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| io_error(path, e))?;
        let mut entries = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(serde_json::from_str(line)?);
        }
        Ok(entries)
    }

    /// Collapses a log into the current alert set: raised alerts in sequence
    /// order with every recorded transition applied (last one wins).
    pub fn current_alerts(entries: &[AlertLogEntry]) -> Vec<Alert> {
        let mut alerts: Vec<Alert> = entries
            .iter()
            .filter_map(|e| match e {
                AlertLogEntry::Raised { alert } => Some(alert.clone()),
                _ => None,
            })
            .collect();
        for entry in entries {
            let AlertLogEntry::Transition { alert_id, to, .. } = entry else { continue };
            if let Some(alert) = alerts.iter_mut().find(|a| a.id == *alert_id) {
                alert.status = *to;
            }
        }
        alerts.sort_by_key(|a| a.seq);
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(z: f32) -> EvidenceBundle {
        EvidenceBundle {
            position: 1,
            priority: 1,
            aspects: Vec::new(),
            top_features: vec![FeatureContribution {
                aspect: "all".into(),
                feature: "f0".into(),
                frame: 0,
                z,
                group_z: None,
                history: vec![z],
            }],
            window_days: 1,
        }
    }

    fn day_input<'a>(
        day: &'a str,
        scores: &'a [Vec<f32>],
        drift: &'a [HealthEvent],
        degraded: &'a [(usize, String)],
    ) -> AlertDayInput<'a> {
        AlertDayInput { day, scores, drift, degraded, critic_n: 1 }
    }

    #[test]
    fn first_day_primes_without_alerting() {
        let policy = AlertPolicy::default();
        let mut state = AlertState::default();
        let scores = vec![vec![0.1, 0.9, 0.2]];
        let alerts =
            evaluate_day(&policy, &mut state, &day_input("2020-01-01", &scores, &[], &[]), |_, _, _| {
                bundle(9.0)
            });
        assert!(alerts.is_empty(), "{alerts:?}");
        assert!(state.primed);
        assert_eq!(state.last_positions[0], (1, 1));
    }

    #[test]
    fn rank_jump_fires_once_then_cools_down() {
        let policy = AlertPolicy {
            watch_top_n: 4,
            rank_jump_min: 2,
            cooldown_days: 2,
            rule_z: 100.0,
            ..AlertPolicy::default()
        };
        let mut state = AlertState::default();
        let quiet = vec![vec![0.9, 0.8, 0.7, 0.6]];
        evaluate_day(&policy, &mut state, &day_input("d0", &quiet, &[], &[]), |_, _, _| bundle(0.0));
        // User 3 leaps from position 4 to position 1.
        let loud = vec![vec![0.3, 0.2, 0.1, 0.9]];
        let alerts =
            evaluate_day(&policy, &mut state, &day_input("d1", &loud, &[], &[]), |_, _, _| bundle(9.0));
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].user, Some(3));
        assert_eq!(alerts[0].seq, 0);
        assert_eq!(alerts[0].id, "al-000000");
        assert!(matches!(alerts[0].trigger, AlertTrigger::RankJump { from: 4, to: 1 }));
        assert_eq!(alerts[0].severity, AlertSeverity::Critical);
        // Same picture next day: the jump already fired and the hold at
        // position 1 is not a jump, so nothing new fires.
        let again =
            evaluate_day(&policy, &mut state, &day_input("d2", &loud, &[], &[]), |_, _, _| bundle(9.0));
        assert!(again.is_empty(), "{again:?}");
        assert_eq!(state.next_seq, 1);
    }

    #[test]
    fn rule_hit_requires_threshold_and_new_entrant_needs_room() {
        // Watchlist of 2 over 4 users: user 2 is off-list on day 0, enters
        // on day 1 -> NewEntrant; user 0 stays on-list with a big z -> RuleHit.
        let policy = AlertPolicy {
            watch_top_n: 2,
            rank_jump_min: 10,
            cooldown_days: 1,
            rule_z: 5.0,
            ..AlertPolicy::default()
        };
        let mut state = AlertState::default();
        let d0 = vec![vec![0.9, 0.8, 0.1, 0.2]];
        evaluate_day(&policy, &mut state, &day_input("d0", &d0, &[], &[]), |_, _, _| bundle(0.0));
        let d1 = vec![vec![0.9, 0.1, 0.8, 0.2]];
        let alerts =
            evaluate_day(&policy, &mut state, &day_input("d1", &d1, &[], &[]), |user, _, _| {
                bundle(if user == 0 { 6.5 } else { 1.0 })
            });
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert!(matches!(alerts[0].trigger, AlertTrigger::RuleHit { z, .. } if z == 6.5));
        assert_eq!(alerts[0].user, Some(0));
        assert!(matches!(alerts[1].trigger, AlertTrigger::NewEntrant { position: 2 }));
        assert_eq!(alerts[1].user, Some(2));
        assert_eq!((alerts[0].seq, alerts[1].seq), (0, 1));
    }

    #[test]
    fn nan_users_never_alert() {
        let policy =
            AlertPolicy { watch_top_n: 4, rule_z: 0.0, ..AlertPolicy::default() };
        let mut state = AlertState::default();
        let d0 = vec![vec![0.9, f32::NAN]];
        evaluate_day(&policy, &mut state, &day_input("d0", &d0, &[], &[]), |_, _, _| bundle(9.0));
        let alerts =
            evaluate_day(&policy, &mut state, &day_input("d1", &d0, &[], &[]), |user, _, _| {
                assert_ne!(user, 1, "evidence requested for an unscored user");
                bundle(9.0)
            });
        assert!(alerts.iter().all(|a| a.user != Some(1)), "{alerts:?}");
    }

    #[test]
    fn drift_and_degraded_raise_system_alerts_with_dedup() {
        let policy = AlertPolicy { cooldown_days: 3, ..AlertPolicy::default() };
        let mut state = AlertState::default();
        let scores = vec![vec![0.5, 0.6]];
        let drift = vec![HealthEvent::ScoreDrift {
            aspect: "http".into(),
            day: "d0".into(),
            quantile: "p99".into(),
            today: 12.0,
            baseline: 1.0,
            ratio: 12.0,
        }];
        let degraded = vec![(1usize, "shard file truncated".to_string())];
        let alerts = evaluate_day(
            &policy,
            &mut state,
            &day_input("d0", &scores, &drift, &degraded),
            |_, _, _| bundle(0.0),
        );
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert!(matches!(&alerts[0].trigger, AlertTrigger::ScoreDrift { aspect, .. } if aspect == "http"));
        assert_eq!(alerts[0].severity, AlertSeverity::High);
        assert_eq!(alerts[0].user, None);
        assert!(matches!(&alerts[1].trigger, AlertTrigger::ShardDegraded { shard: 1, .. }));
        // Same drift + same quarantine next day: both are deduped (cooldown
        // for drift, latch for the shard).
        let again = evaluate_day(
            &policy,
            &mut state,
            &day_input("d1", &scores, &drift, &degraded),
            |_, _, _| bundle(0.0),
        );
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn log_roundtrips_and_resume_prunes_the_tail() {
        let dir = std::env::temp_dir()
            .join(format!("acobe_alert_log_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alerts.jsonl");

        let alert = |seq: u64| Alert {
            seq,
            id: format!("al-{seq:06}"),
            user: Some(seq as usize),
            day: "2020-01-01".into(),
            severity: AlertSeverity::Medium,
            status: AlertStatus::New,
            trigger: AlertTrigger::NewEntrant { position: 1 },
            evidence: None,
        };

        let log = AlertLog::open(&path, None).unwrap();
        log.append_raised(&[alert(0), alert(1), alert(2)]).unwrap();
        log.append(&AlertLogEntry::Transition {
            alert_id: "al-000000".into(),
            from: AlertStatus::New,
            to: AlertStatus::Investigating,
            note: Some("on it".into()),
        })
        .unwrap();
        log.append(&AlertLogEntry::Transition {
            alert_id: "al-000002".into(),
            from: AlertStatus::New,
            to: AlertStatus::Investigating,
            note: None,
        })
        .unwrap();

        let entries = AlertLog::read_entries(&path).unwrap();
        assert_eq!(entries.len(), 5);
        let current = AlertLog::current_alerts(&entries);
        assert_eq!(current.len(), 3);
        assert_eq!(current[0].status, AlertStatus::Investigating);
        assert_eq!(current[1].status, AlertStatus::New);

        // Resume from a checkpoint whose high-water mark is 2: the raised
        // seq-2 entry and its transition are pruned; seq 0 and 1 (and the
        // seq-0 transition) survive.
        let _resumed = AlertLog::open(&path, Some(2)).unwrap();
        let entries = AlertLog::read_entries(&path).unwrap();
        assert_eq!(entries.len(), 3, "{entries:?}");
        let current = AlertLog::current_alerts(&entries);
        assert_eq!(current.len(), 2);
        assert_eq!(current[0].id, "al-000000");
        assert_eq!(current[0].status, AlertStatus::Investigating);
        assert_eq!(current[1].id, "al-000001");

        // Fresh open truncates.
        let _fresh = AlertLog::open(&path, None).unwrap();
        assert!(AlertLog::read_entries(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
