//! The incremental detection engine: one day-at-a-time core shared by the
//! batch pipeline and streaming deployments.
//!
//! A [`DetectionEngine`] ingests one day of flattened measurements at a time
//! and maintains exactly the state a deployment needs to keep:
//!
//! * [`RollingDeviation`] histories (ω-day rings plus running sums) for user
//!   and group series,
//! * a `D`-day ring of pre-weighted deviation days (the columns of the
//!   compound behavioral deviation matrix, paper Section IV-A),
//! * the trained per-aspect autoencoders and per-user calibration baselines,
//! * a short window of recent daily scores for trailing-mean investigation
//!   lists.
//!
//! The batch [`AcobePipeline`](crate::pipeline::AcobePipeline) is a thin
//! driver that replays cube days through this engine, so batch and streaming
//! scores are bit-identical by construction: same floating-point operations
//! in the same order (see DESIGN.md §7).
//!
//! The whole engine serializes to an [`EngineCheckpoint`] (JSON via serde)
//! and restores without changing a single subsequent score — `serde_json`
//! round-trips `f32`/`f64` exactly.

use crate::alert::{AlertPolicy, AlertState};
use crate::config::{AcobeConfig, Representation};
use crate::critic::{investigate_from_scores, Investigation};
use crate::error::AcobeError;
use acobe_obs::alert::{Alert, AlertStatus, AlertTrigger};
use crate::streaming::RollingDeviation;
use acobe_features::exact::ExactF32Sum;
use acobe_features::spec::FeatureSet;
use acobe_logs::time::Date;
use acobe_nn::autoencoder::Autoencoder;
use acobe_nn::serialize::{restore as restore_model, snapshot as snapshot_model, SavedAutoencoder};
use acobe_nn::tensor::Matrix;
use acobe_obs::{DriftConfig, DriftMonitor, HealthEvent};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Days of recent scores kept for trailing-mean daily investigation lists.
pub(crate) const SCORE_HISTORY_DAYS: usize = 64;

/// Checkpoint format version written by [`DetectionEngine::snapshot`].
pub(crate) const CHECKPOINT_VERSION: u32 = 1;

/// Histogram edges (milliseconds) for per-day ingest latency.
pub(crate) const INGEST_EDGES: &[f64] =
    &[0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0];

/// One scored day: per-aspect, per-user anomaly scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayScores {
    /// The day these scores belong to.
    pub date: Date,
    /// `scores[aspect][user]` = (calibrated) reconstruction error.
    pub scores: Vec<Vec<f32>>,
}

/// A provisional mid-day scoring of the open day: what [`DayScores`] *would*
/// be if the day closed with its current measurements. Computed by
/// [`DetectionEngine::ingest_partial`] against the committed baselines
/// without mutating rolling-deviation state, matrix rings, score history, or
/// alert state — the daily path stays bit-identical whether or not the open
/// day was ever peeked at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisionalScores {
    /// The open day being scored.
    pub date: Date,
    /// Events accumulated into the open day when it was scored.
    pub events: u64,
    /// `scores[aspect][user]`, same layout and calibration as [`DayScores`].
    pub scores: Vec<Vec<f32>>,
    /// The compound-critic investigation list the open day would produce if
    /// it closed now (single-day, same input the alert policy ranks on).
    pub investigation: Vec<Investigation>,
    /// Provisional alerts (`pv-` ids, [`acobe_obs::alert::AlertTrigger::Provisional`]
    /// triggers). Published to the board, never written to the audit log.
    pub alerts: Vec<Alert>,
}

/// How one provisional alert fared when its day actually closed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisionalResolution {
    /// The provisional alert as raised mid-day.
    pub alert: Alert,
    /// True when day close raised a committed alert for the same user with
    /// the same trigger kind; false when the provisional signal evaporated.
    pub confirmed: bool,
    /// The committed alert id (`al-…`) that confirmed it, when confirmed.
    pub committed_id: Option<String>,
}

/// A ring buffer of the `D` most recent day vectors.
///
/// `offset(0)` is today, `offset(1)` yesterday, …; offsets not yet covered
/// return `None` and contribute the neutral deviation 0 to matrix rows —
/// the same zero-fill the batch matrix builder applied to days before the
/// cube.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DayRing {
    capacity: usize,
    /// Stored day vectors; grows to `capacity`, then slots are reused.
    days: Vec<Vec<f32>>,
    /// Next write slot. While filling, equals `days.len()`.
    next: usize,
}

impl DayRing {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        DayRing { capacity, days: Vec::new(), next: 0 }
    }

    pub(crate) fn push(&mut self, day: Vec<f32>) {
        if self.days.len() < self.capacity {
            self.days.push(day);
        } else {
            self.days[self.next] = day;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    pub(crate) fn len(&self) -> usize {
        self.days.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// The day vector `k` days before the most recent push.
    pub(crate) fn offset(&self, k: usize) -> Option<&[f32]> {
        if k >= self.days.len() {
            return None;
        }
        let idx = (self.next + self.capacity - 1 - k) % self.capacity;
        Some(&self.days[idx])
    }

    fn clear(&mut self) {
        self.days.clear();
        self.next = 0;
    }

    pub(crate) fn bytes(&self) -> usize {
        self.days.iter().map(|d| d.len() * std::mem::size_of::<f32>()).sum()
    }

    /// True when every stored day vector has exactly `width` values.
    pub(crate) fn days_have_width(&self, width: usize) -> bool {
        self.days.iter().all(|d| d.len() == width)
    }

    /// Stored day vectors in raw slot order (for the checkpoint codec).
    pub(crate) fn raw_days(&self) -> &[Vec<f32>] {
        &self.days
    }

    /// The raw write cursor (for the checkpoint codec).
    pub(crate) fn raw_next(&self) -> usize {
        self.next
    }

    /// Rebuilds a ring from raw checkpoint fields, validating the cursor
    /// against the fill level.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::CorruptCheckpoint`] when the cursor is
    /// inconsistent with the stored days or the capacity is zero.
    pub(crate) fn from_state(
        capacity: usize,
        days: Vec<Vec<f32>>,
        next: usize,
    ) -> Result<Self, AcobeError> {
        if capacity == 0 {
            return Err(AcobeError::CorruptCheckpoint("ring capacity is zero".into()));
        }
        if days.len() > capacity {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "ring holds {} days, capacity {capacity}",
                days.len()
            )));
        }
        let valid = if days.len() < capacity { next == days.len() } else { next < capacity };
        if !valid {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "ring cursor {next} inconsistent with {} stored days (capacity {capacity})",
                days.len()
            )));
        }
        Ok(DayRing { capacity, days, next })
    }

    /// A ring holding only the listed entities' `[frame][feature]` chunks of
    /// every stored day, in `keep` order — the per-shard projection of a
    /// whole-organization ring. Ring positions (fill level, write cursor) are
    /// preserved so `offset(k)` refers to the same day in both rings.
    pub(crate) fn extract_entities(&self, keep: &[usize], chunk: usize) -> DayRing {
        let days = self
            .days
            .iter()
            .map(|day| {
                let mut out = Vec::with_capacity(keep.len() * chunk);
                for &e in keep {
                    out.extend_from_slice(&day[e * chunk..(e + 1) * chunk]);
                }
                out
            })
            .collect();
        DayRing { capacity: self.capacity, days, next: self.next }
    }
}

/// Confirm/retract step for provisional alerts at day close, shared by the
/// monolithic and sharded engines: a provisional alert is confirmed when a
/// committed alert raised at the close carries the same user and the same
/// (inner) trigger kind, retracted otherwise. Board entries flip to
/// `Confirmed`/`FalsePositive`; the audit log and committed alert state are
/// untouched. Stale provisional alerts from another day are dropped
/// silently.
pub(crate) fn resolve_provisional_alerts(
    provisional: &mut Vec<Alert>,
    committed: &[Alert],
    date: Date,
    resolutions: &mut Vec<ProvisionalResolution>,
) {
    if provisional.is_empty() {
        return;
    }
    let taken = std::mem::take(provisional);
    let board = acobe_obs::alert::alerts();
    let day_str = date.to_string();
    for alert in taken {
        if alert.day != day_str {
            continue;
        }
        let matched = committed
            .iter()
            .find(|c| c.user == alert.user && c.trigger.kind() == alert.trigger.inner_kind());
        let confirmed = matched.is_some();
        let status = if confirmed { AlertStatus::Confirmed } else { AlertStatus::FalsePositive };
        board.update_status(&alert.id, status);
        let outcome = if confirmed { "confirmed" } else { "retracted" };
        acobe_obs::counter_with("alerts/provisional_resolved", &[("outcome", outcome)]).add(1);
        resolutions.push(ProvisionalResolution {
            alert,
            confirmed,
            committed_id: matched.map(|c| c.id.clone()),
        });
    }
}

/// Appends one matrix block from a deviation ring to `row`: for each
/// `(feature, frame)`, the `matrix_days` days oldest-first, mapped
/// `[-Δ, Δ] → [0, 1]` — the exact layout and arithmetic of the batch
/// `append_block`. The ring stores days flattened `[entity][frame][feature]`;
/// `entity` is an index into that ring, so shards pass local indices for
/// their own ring and global group indices for the shared group ring.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ring_block_into(
    ring: &DayRing,
    entity: usize,
    features: &[usize],
    frames: usize,
    n_features: usize,
    matrix_days: usize,
    delta: f32,
    row: &mut Vec<f32>,
) {
    let two_delta = 2.0 * delta;
    for &f in features {
        for t in 0..frames {
            for offset in (0..matrix_days).rev() {
                let value = ring
                    .offset(offset)
                    .map(|day| day[(entity * frames + t) * n_features + f])
                    .unwrap_or(0.0);
                row.push((value + delta) / two_delta);
            }
        }
    }
}

/// Appends one single-day block to `row`: today's raw counts squashed
/// `c / (1 + c)`. Same entity-indexing convention as [`ring_block_into`].
pub(crate) fn counts_block_into(
    ring: &DayRing,
    entity: usize,
    features: &[usize],
    frames: usize,
    n_features: usize,
    row: &mut Vec<f32>,
) {
    let today = ring.offset(0);
    for &f in features {
        for t in 0..frames {
            let c = today.map(|day| day[(entity * frames + t) * n_features + f]).unwrap_or(0.0);
            row.push(c / (1.0 + c));
        }
    }
}

/// Serializable snapshot of a [`DetectionEngine`] — rolling histories, matrix
/// rings, calibration baselines, recent scores, and full model snapshots
/// (including BatchNorm running statistics).
///
/// Produced by [`DetectionEngine::snapshot`]/[`DetectionEngine::save`] and
/// consumed by [`DetectionEngine::restore`]/[`DetectionEngine::load`]. The
/// format is versioned JSON; restoring mid-stream changes no subsequent
/// score (see DESIGN.md §7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    pub(crate) version: u32,
    pub(crate) config: AcobeConfig,
    pub(crate) feature_set: FeatureSet,
    pub(crate) groups: Vec<Vec<usize>>,
    pub(crate) user_group: Vec<usize>,
    pub(crate) users: usize,
    pub(crate) frames: usize,
    pub(crate) start: Date,
    pub(crate) next_date: Date,
    pub(crate) user_rolling: Option<RollingDeviation>,
    pub(crate) group_rolling: Option<RollingDeviation>,
    pub(crate) user_ring: DayRing,
    pub(crate) group_ring: Option<DayRing>,
    pub(crate) models: Vec<SavedAutoencoder>,
    pub(crate) baselines: Vec<Vec<f32>>,
    pub(crate) score_history: Vec<DayScores>,
    /// Drift-monitor trailing window (appended in-place with a default so
    /// pre-alerting checkpoints still parse; carrying it means a resumed
    /// stream raises the same drift events an uninterrupted one would).
    #[serde(default)]
    pub(crate) monitor: Option<DriftMonitor>,
    /// Alert-evaluation state, including the `next_seq` high-water mark that
    /// makes the alert log exactly-once across resume.
    #[serde(default)]
    pub(crate) alert_state: AlertState,
}

impl EngineCheckpoint {
    /// Checkpoint format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Cross-checks every internal shape invariant a restored engine relies
    /// on, so state that parsed as JSON but is internally inconsistent
    /// surfaces as [`AcobeError::CorruptCheckpoint`] at restore time instead
    /// of a panic (`expect`/slice indexing) somewhere down the stream.
    pub(crate) fn validate(&self) -> Result<(), AcobeError> {
        fn corrupt(msg: String) -> AcobeError {
            AcobeError::CorruptCheckpoint(msg)
        }
        self.config.validate()?;
        if self.users == 0 || self.frames == 0 {
            return Err(corrupt("users and frames must be positive".into()));
        }
        let features = self.feature_set.len();
        let aspects = self.feature_set.aspects.len();
        for aspect in &self.feature_set.aspects {
            if aspect.features.iter().any(|&f| f >= features) {
                return Err(corrupt(format!("aspect {} has out-of-range features", aspect.name)));
            }
        }
        if self.config.critic_n > aspects {
            return Err(corrupt(format!("critic_n {} exceeds {aspects} aspects", self.config.critic_n)));
        }
        if self.user_group.len() != self.users {
            return Err(corrupt(format!(
                "user_group has {} entries for {} users",
                self.user_group.len(),
                self.users
            )));
        }
        for (g, members) in self.groups.iter().enumerate() {
            if let Some(&u) = members.iter().find(|&&u| u >= self.users) {
                return Err(corrupt(format!("group {g} contains unknown user {u}")));
            }
        }
        let include_group = self.config.matrix.include_group;
        if include_group {
            if self.groups.is_empty() || self.groups.iter().any(|m| m.is_empty()) {
                return Err(corrupt("group behavior requires non-empty groups".into()));
            }
            if self.user_group.iter().any(|&g| g >= self.groups.len()) {
                return Err(corrupt("a user belongs to no known group".into()));
            }
        }
        let needs_dev = self.config.representation == Representation::Deviation;
        let user_series = self.users * self.frames * features;
        let group_series = self.groups.len() * self.frames * features;
        match (&self.user_rolling, needs_dev) {
            (Some(r), true) if r.series_count() != user_series => {
                return Err(corrupt(format!(
                    "user rolling state has {} series, expected {user_series}",
                    r.series_count()
                )));
            }
            (None, true) => return Err(corrupt("missing user rolling deviation state".into())),
            (Some(_), false) => {
                return Err(corrupt("unexpected rolling state for counts representation".into()));
            }
            _ => {}
        }
        match (&self.group_rolling, needs_dev && include_group) {
            (Some(r), true) if r.series_count() != group_series => {
                return Err(corrupt(format!(
                    "group rolling state has {} series, expected {group_series}",
                    r.series_count()
                )));
            }
            (None, true) => return Err(corrupt("missing group rolling deviation state".into())),
            (Some(_), false) => return Err(corrupt("unexpected group rolling state".into())),
            _ => {}
        }
        let matrix_days = self.config.matrix.matrix_days;
        if self.user_ring.capacity() != matrix_days {
            return Err(corrupt(format!(
                "user ring capacity {} does not match matrix_days {matrix_days}",
                self.user_ring.capacity()
            )));
        }
        if !self.user_ring.days_have_width(user_series) {
            return Err(corrupt(format!("user ring days must hold {user_series} values")));
        }
        match (&self.group_ring, include_group) {
            (Some(ring), true) => {
                if ring.capacity() != matrix_days {
                    return Err(corrupt(format!(
                        "group ring capacity {} does not match matrix_days {matrix_days}",
                        ring.capacity()
                    )));
                }
                if !ring.days_have_width(group_series) {
                    return Err(corrupt(format!("group ring days must hold {group_series} values")));
                }
            }
            (None, true) => return Err(corrupt("missing group ring".into())),
            (Some(_), false) => return Err(corrupt("unexpected group ring".into())),
            _ => {}
        }
        if !self.models.is_empty() && self.models.len() != aspects {
            return Err(corrupt(format!(
                "{} model snapshots for {aspects} aspects",
                self.models.len()
            )));
        }
        if !self.baselines.is_empty() {
            if self.baselines.len() != self.models.len() {
                return Err(corrupt(format!(
                    "{} baseline rows for {} models",
                    self.baselines.len(),
                    self.models.len()
                )));
            }
            if self.baselines.iter().any(|b| b.len() != self.users) {
                return Err(corrupt(format!("baseline rows must hold {} users", self.users)));
            }
        }
        for day in &self.score_history {
            if day.scores.len() != self.models.len()
                || day.scores.iter().any(|s| s.len() != self.users)
            {
                return Err(corrupt(format!(
                    "score history for {} has inconsistent shape",
                    day.date
                )));
            }
        }
        if self.next_date.days_since(self.start) < 0 {
            return Err(corrupt(format!(
                "next_date {} precedes stream start {}",
                self.next_date, self.start
            )));
        }
        Ok(())
    }
}

/// The incremental ACOBE detector: ingests one day of measurements at a time
/// and emits that day's anomaly scores once trained.
///
/// # Examples
///
/// ```
/// use acobe::config::AcobeConfig;
/// use acobe::engine::DetectionEngine;
/// use acobe_features::spec::{AspectSpec, FeatureSet};
/// use acobe_logs::time::Date;
///
/// let fs = FeatureSet {
///     names: vec!["a".into(), "b".into()],
///     aspects: vec![AspectSpec { name: "all".into(), features: vec![0, 1] }],
/// };
/// let cfg = AcobeConfig::tiny().without_group().with_critic_n(1);
/// let start = Date::from_ymd(2010, 1, 1);
/// let mut engine = DetectionEngine::new(3, 2, start, fs, &[], cfg).unwrap();
/// // Untrained engines absorb history but emit no scores.
/// let out = engine.ingest_day(start, &vec![0.0; 3 * 2 * 2]).unwrap();
/// assert!(out.is_none());
/// ```
#[derive(Debug)]
pub struct DetectionEngine {
    pub(crate) config: AcobeConfig,
    pub(crate) feature_set: FeatureSet,
    pub(crate) groups: Vec<Vec<usize>>,
    /// Group index per user (`usize::MAX` when ungrouped and groups unused).
    pub(crate) user_group: Vec<usize>,
    pub(crate) users: usize,
    pub(crate) frames: usize,
    pub(crate) start: Date,
    pub(crate) next_date: Date,
    pub(crate) user_rolling: Option<RollingDeviation>,
    pub(crate) group_rolling: Option<RollingDeviation>,
    pub(crate) user_ring: DayRing,
    pub(crate) group_ring: Option<DayRing>,
    pub(crate) models: Vec<Autoencoder>,
    pub(crate) baselines: Vec<Vec<f32>>,
    pub(crate) score_history: Vec<DayScores>,
    /// Drift thresholds for the score-distribution monitor.
    pub(crate) drift: DriftConfig,
    /// Per-aspect score-distribution sketches (built lazily on the first
    /// scored day; checkpointed so resumed streams keep their trailing
    /// window).
    pub(crate) monitor: Option<DriftMonitor>,
    /// Health events raised since the last [`DetectionEngine::take_health_events`].
    pub(crate) pending_health: Vec<HealthEvent>,
    /// Alerting thresholds; `None` (the default) disables alert evaluation.
    pub(crate) alert_policy: Option<AlertPolicy>,
    /// Checkpointed alert-evaluation state (sequence high-water mark,
    /// watchlist baseline, dedup cooldowns).
    pub(crate) alert_state: AlertState,
    /// Alerts raised since the last [`DetectionEngine::take_alerts`].
    pub(crate) pending_alerts: Vec<Alert>,
    /// Provisional alerts from the most recent [`DetectionEngine::ingest_partial`]
    /// of the still-open day; resolved (confirmed/retracted) when that day
    /// closes. Deliberately *not* part of the committed alert state.
    pub(crate) provisional_alerts: Vec<Alert>,
    /// Resolutions produced at day close, drained by
    /// [`DetectionEngine::take_provisional_resolutions`].
    pub(crate) provisional_resolutions: Vec<ProvisionalResolution>,
}

impl DetectionEngine {
    /// Creates an untrained engine for `users` users with `frames` time
    /// frames per day, starting at `start`.
    ///
    /// `groups[g]` lists the user indices of group `g`; every user must
    /// belong to exactly one group when the configuration includes group
    /// behavior.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Config`] for invalid configuration, aspects
    /// referencing features outside the catalog, a `critic_n` exceeding the
    /// aspect count, or group rosters that are inconsistent with `users`.
    pub fn new(
        users: usize,
        frames: usize,
        start: Date,
        feature_set: FeatureSet,
        groups: &[Vec<usize>],
        config: AcobeConfig,
    ) -> Result<Self, AcobeError> {
        config.validate()?;
        if users == 0 || frames == 0 {
            return Err(AcobeError::Config("engine needs users > 0 and frames > 0".into()));
        }
        for aspect in &feature_set.aspects {
            if aspect.features.iter().any(|&f| f >= feature_set.len()) {
                return Err(AcobeError::Config(format!(
                    "aspect {} has out-of-range features",
                    aspect.name
                )));
            }
        }
        if config.critic_n > feature_set.aspects.len() {
            return Err(AcobeError::Config(format!(
                "critic_n {} exceeds {} aspects",
                config.critic_n,
                feature_set.aspects.len()
            )));
        }
        let mut user_group = vec![usize::MAX; users];
        for (g, members) in groups.iter().enumerate() {
            for &u in members {
                if u >= users {
                    return Err(AcobeError::Config(format!("group {g} contains unknown user {u}")));
                }
                user_group[u] = g;
            }
        }
        if config.matrix.include_group {
            if groups.is_empty() {
                return Err(AcobeError::Config("group behavior requires non-empty groups".into()));
            }
            if let Some(u) = user_group.iter().position(|&g| g == usize::MAX) {
                return Err(AcobeError::Config(format!("user {u} belongs to no group")));
            }
            if let Some(g) = groups.iter().position(|m| m.is_empty()) {
                return Err(AcobeError::Config(format!("group {g} is empty")));
            }
        }

        let mut engine = DetectionEngine {
            config,
            feature_set,
            groups: groups.to_vec(),
            user_group,
            users,
            frames,
            start,
            next_date: start,
            user_rolling: None,
            group_rolling: None,
            user_ring: DayRing::new(1),
            group_ring: None,
            models: Vec::new(),
            baselines: Vec::new(),
            score_history: Vec::new(),
            drift: DriftConfig::default(),
            monitor: None,
            pending_health: Vec::new(),
            alert_policy: None,
            alert_state: AlertState::default(),
            pending_alerts: Vec::new(),
            provisional_alerts: Vec::new(),
            provisional_resolutions: Vec::new(),
        };
        engine.reset_stream();
        Ok(engine)
    }

    /// The configuration.
    pub fn config(&self) -> &AcobeConfig {
        &self.config
    }

    /// The feature catalog / aspect partition.
    pub fn feature_set(&self) -> &FeatureSet {
        &self.feature_set
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Time frames per day.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// First day of the stream (ingestion restarts here after
    /// [`DetectionEngine::reset_stream`]).
    pub fn start(&self) -> Date {
        self.start
    }

    /// The day the engine expects next.
    pub fn next_date(&self) -> Date {
        self.next_date
    }

    /// Days ingested since the last stream reset.
    pub fn days_ingested(&self) -> usize {
        self.next_date.days_since(self.start).max(0) as usize
    }

    /// Width of one day of measurements: `users × frames × features`.
    pub fn day_width(&self) -> usize {
        self.users * self.frames * self.feature_set.len()
    }

    /// True once models have been attached by
    /// [`AcobePipeline::fit`](crate::pipeline::AcobePipeline::fit) or a
    /// checkpoint restore.
    pub fn is_trained(&self) -> bool {
        !self.models.is_empty()
    }

    /// Flattened model-input width for an aspect.
    pub fn input_dim(&self, aspect: usize) -> usize {
        self.config
            .matrix
            .input_dim(self.feature_set.aspects[aspect].features.len(), self.frames)
    }

    /// Approximate heap footprint of the temporal state (rolling histories,
    /// matrix rings, baselines, score history), in bytes. Model parameters
    /// are excluded — they are training artifacts, not stream state.
    pub fn state_bytes(&self) -> usize {
        let rolling = self.user_rolling.as_ref().map_or(0, |r| r.state_bytes())
            + self.group_rolling.as_ref().map_or(0, |r| r.state_bytes());
        let rings = self.user_ring.bytes() + self.group_ring.as_ref().map_or(0, |r| r.bytes());
        let baselines: usize =
            self.baselines.iter().map(|b| b.len() * std::mem::size_of::<f32>()).sum();
        let history: usize = self
            .score_history
            .iter()
            .flat_map(|d| d.scores.iter())
            .map(|s| s.len() * std::mem::size_of::<f32>())
            .sum();
        rolling + rings + baselines + history
    }

    /// Itemizes the heap owners behind [`DetectionEngine::state_bytes`] into
    /// a [`MemReport`](acobe_obs::MemReport), and adds the model bank
    /// (parameters + gradients + optimizer buffers), which `state_bytes`
    /// deliberately excludes. The `rolling`, `rings`, `baselines`, and
    /// `scores` entries sum to exactly `state_bytes()`.
    ///
    /// Takes `&mut self` because walking the network's parameter tensors
    /// does ([`acobe_nn::net::Sequential::visit_params`] hands out mutable
    /// views); nothing is modified.
    pub fn mem_report(&mut self) -> acobe_obs::MemReport {
        let rolling = self.user_rolling.as_ref().map_or(0, |r| r.state_bytes())
            + self.group_rolling.as_ref().map_or(0, |r| r.state_bytes());
        let rings = self.user_ring.bytes() + self.group_ring.as_ref().map_or(0, |r| r.bytes());
        let baselines: usize =
            self.baselines.iter().map(|b| b.len() * std::mem::size_of::<f32>()).sum();
        let history: usize = self
            .score_history
            .iter()
            .flat_map(|d| d.scores.iter())
            .map(|s| s.len() * std::mem::size_of::<f32>())
            .sum();
        let mut models = 0usize;
        for model in &mut self.models {
            let net = model.net_mut();
            let params = net.param_count();
            let mut buffers = 0usize;
            net.visit_buffers(&mut |b| buffers += b.len());
            // Every parameter carries a gradient slot of the same width.
            models += (params * 2 + buffers) * std::mem::size_of::<f32>();
        }
        let mut report = acobe_obs::MemReport::new();
        report.push("rolling", rolling);
        report.push("rings", rings);
        report.push("baselines", baselines);
        report.push("scores", history);
        report.push("models", models);
        report
    }

    /// Clears all temporal state (rolling histories, matrix rings, recent
    /// scores) and rewinds the stream to [`DetectionEngine::start`]. Trained
    /// models and calibration baselines are kept: the batch driver replays a
    /// cube through a fresh stream for every scoring pass.
    pub fn reset_stream(&mut self) {
        let needs_dev = self.config.representation == Representation::Deviation;
        let needs_group = self.config.matrix.include_group;
        let features = self.feature_set.len();
        self.user_rolling = needs_dev
            .then(|| RollingDeviation::new(self.users, self.frames, features, self.config.deviation));
        self.group_rolling = (needs_dev && needs_group).then(|| {
            RollingDeviation::new(self.groups.len(), self.frames, features, self.config.deviation)
        });
        self.user_ring = DayRing::new(self.config.matrix.matrix_days);
        self.group_ring = needs_group.then(|| DayRing::new(self.config.matrix.matrix_days));
        self.score_history.clear();
        self.monitor = None;
        self.pending_health.clear();
        self.alert_state = AlertState::default();
        self.pending_alerts.clear();
        self.provisional_alerts.clear();
        self.provisional_resolutions.clear();
        self.next_date = self.start;
    }

    /// Replaces the drift-monitor thresholds and restarts the monitor's
    /// trailing window from scratch.
    pub fn set_drift_config(&mut self, cfg: DriftConfig) {
        self.drift = cfg;
        self.monitor = None;
    }

    /// Retunes only the shard-lag heuristic thresholds, leaving the drift
    /// monitor's trailing window intact (a resumed stream must keep raising
    /// the same drift events).
    pub fn set_lag_config(&mut self, lag_ratio: f64, lag_min_ms: f64) {
        self.drift.lag_ratio = lag_ratio;
        self.drift.lag_min_ms = lag_min_ms;
    }

    /// Sets (or with `None` disables) the alert policy evaluated after every
    /// scored day. The policy itself is not checkpointed — thresholds may be
    /// retuned across a resume — but the [`AlertState`] it drives is.
    pub fn set_alert_policy(&mut self, policy: Option<AlertPolicy>) {
        self.alert_policy = policy;
    }

    /// The active alert policy, if alerting is enabled.
    pub fn alert_policy(&self) -> Option<&AlertPolicy> {
        self.alert_policy.as_ref()
    }

    /// Drains the alerts raised since the previous call. Alerts are also
    /// published to the global [`acobe_obs::alert::alerts`] board as they
    /// happen.
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending_alerts)
    }

    /// The sequence number the next raised alert will take — the high-water
    /// mark [`crate::alert::AlertLog::open`] reconciles against on resume.
    pub fn alert_next_seq(&self) -> u64 {
        self.alert_state.next_seq
    }

    /// Drains the health events raised since the previous call (score drift
    /// detected by the rolling monitor, …). Events are also reported to the
    /// global [`acobe_obs::monitor::board`] as they happen.
    pub fn take_health_events(&mut self) -> Vec<HealthEvent> {
        std::mem::take(&mut self.pending_health)
    }

    /// Folds one scored day into the drift monitor, publishing score
    /// quantiles as labeled gauges and reporting any drift events. Returns
    /// the events raised *for this day* (they are also queued for
    /// [`DetectionEngine::take_health_events`]).
    fn observe_scored_day(&mut self, day: &DayScores) -> Vec<HealthEvent> {
        if self.monitor.is_none() {
            let aspects =
                self.feature_set.aspects.iter().map(|a| a.name.clone()).collect();
            self.monitor = Some(DriftMonitor::new(aspects, self.drift.clone()));
        }
        let day_str = day.date.to_string();
        let slices: Vec<&[f32]> = day.scores.iter().map(|s| s.as_slice()).collect();
        let monitor = self.monitor.as_mut().expect("drift monitor");
        let events = monitor.observe_day(&day_str, &slices);
        let board = acobe_obs::monitor::board();
        board.note_scored(&day_str);
        for event in &events {
            board.report(event.clone());
        }
        self.pending_health.extend(events.iter().cloned());
        events
    }

    /// Evaluates the alert policy against one scored day: watchlist triggers
    /// with evidence bundles built from the live deviation rings, plus
    /// system-level drift alerts. Raised alerts are published to the global
    /// board and queued for [`DetectionEngine::take_alerts`].
    fn evaluate_alerts(&mut self, day: &DayScores, drift: &[HealthEvent]) {
        let Some(policy) = self.alert_policy.clone() else { return };
        let mut state = std::mem::take(&mut self.alert_state);
        let day_str = day.date.to_string();
        let input = crate::alert::AlertDayInput {
            day: &day_str,
            scores: &day.scores,
            drift,
            degraded: &[],
            critic_n: self.config.critic_n,
        };
        let feature_set = &self.feature_set;
        let frames = self.frames;
        let user_ring = &self.user_ring;
        let group_ring = self.group_ring.as_ref();
        let user_group = &self.user_group;
        let top_k = policy.top_k_features;
        let alerts =
            crate::alert::evaluate_day(&policy, &mut state, &input, |user, position, priority| {
                let group_entity = user_group.get(user).copied().filter(|&g| g != usize::MAX);
                crate::alert::build_evidence(
                    feature_set,
                    frames,
                    user_ring,
                    user,
                    group_ring,
                    group_entity,
                    &day.scores,
                    user,
                    position,
                    priority,
                    top_k,
                )
            });
        self.alert_state = state;
        if alerts.is_empty() {
            return;
        }
        let board = acobe_obs::alert::alerts();
        for alert in &alerts {
            board.publish(alert);
        }
        self.pending_alerts.extend(alerts);
    }

    /// Group-mean measurements for one day, flattened
    /// `[group][frame][feature]` — accumulated with [`ExactF32Sum`], matching
    /// [`acobe_features::counts::FeatureCube::group_mean`] bit for bit.
    /// Because the exact sum is order- and partition-independent, the sharded
    /// engine's two-phase reduce reproduces the same values from per-shard
    /// partial sums.
    fn group_day(&self, measurements: &[f32]) -> Vec<f32> {
        let (frames, features) = (self.frames, self.feature_set.len());
        let mut out = vec![0.0f32; self.groups.len() * frames * features];
        for (g, members) in self.groups.iter().enumerate() {
            for t in 0..frames {
                for f in 0..features {
                    let mut sum = ExactF32Sum::new();
                    for &u in members {
                        sum.add(measurements[(u * frames + t) * features + f]);
                    }
                    out[(g * frames + t) * features + f] = sum.round() / members.len() as f32;
                }
            }
        }
        out
    }

    /// Folds one day of measurements into the temporal state (no scoring).
    fn absorb_day(&mut self, date: Date, measurements: &[f32]) -> Result<(), AcobeError> {
        if date != self.next_date {
            return Err(AcobeError::OutOfOrder { expected: self.next_date, got: date });
        }
        let width = self.day_width();
        if measurements.len() != width {
            return Err(AcobeError::WidthMismatch { expected: width, found: measurements.len() });
        }
        let group_day = self.group_ring.is_some().then(|| self.group_day(measurements));

        match self.config.representation {
            Representation::Deviation => {
                let use_weights = self.config.matrix.use_weights;
                let rolling = self.user_rolling.as_mut().expect("deviation state");
                let mut dev = rolling.push_day(measurements)?;
                if use_weights {
                    for (s, w) in dev.sigma.iter_mut().zip(&dev.weights) {
                        *s *= w;
                    }
                }
                self.user_ring.push(dev.sigma);
                if let Some(gday) = group_day {
                    let rolling = self.group_rolling.as_mut().expect("group deviation state");
                    let mut gdev = rolling.push_day(&gday)?;
                    if use_weights {
                        for (s, w) in gdev.sigma.iter_mut().zip(&gdev.weights) {
                            *s *= w;
                        }
                    }
                    self.group_ring.as_mut().expect("group ring").push(gdev.sigma);
                }
            }
            Representation::SingleDayCounts => {
                self.user_ring.push(measurements.to_vec());
                if let Some(gday) = group_day {
                    self.group_ring.as_mut().expect("group ring").push(gday);
                }
            }
        }
        self.next_date = date.add_days(1);
        acobe_obs::counter("engine/days_ingested").inc();
        let day_str = date.to_string();
        acobe_obs::monitor::board().note_ingested(&day_str);
        acobe_obs::event::note("engine/day", &[("day", day_str.as_str())]);
        Ok(())
    }

    /// Ingests one day of measurements without scoring it — history warm-up
    /// and training-period replay.
    ///
    /// `measurements` are flattened `[user][frame][feature]` (the layout of
    /// [`acobe_features::counts::FeatureCube::day_slice_into`] and
    /// [`acobe_features::cert::DayExtractor::ingest_day`]).
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::OutOfOrder`] when `date` is not the expected
    /// next day and [`AcobeError::WidthMismatch`] for a wrong-length slice;
    /// the engine state is unchanged on error.
    pub fn warm_day(&mut self, date: Date, measurements: &[f32]) -> Result<(), AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/warm_day",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        self.absorb_day(date, measurements)?;
        // A warmed day closes without alert evaluation, so any provisional
        // alerts raised for it mid-day are retracted.
        self.resolve_provisional(date, self.pending_alerts.len());
        acobe_obs::histogram("engine/ingest_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(())
    }

    /// Ingests one day of measurements and, once trained, scores it.
    ///
    /// Returns `None` before training; after training, the per-aspect,
    /// per-user (calibrated) anomaly scores for `date`.
    ///
    /// # Errors
    ///
    /// Same contract as [`DetectionEngine::warm_day`].
    pub fn ingest_day(
        &mut self,
        date: Date,
        measurements: &[f32],
    ) -> Result<Option<DayScores>, AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/ingest_day",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        self.absorb_day(date, measurements)?;
        let out = if self.models.is_empty() {
            self.resolve_provisional(date, self.pending_alerts.len());
            None
        } else {
            let mut scores = Vec::with_capacity(self.models.len());
            for aspect in 0..self.models.len() {
                let mut errs = self.raw_day_scores(aspect);
                if self.config.calibrate && !self.baselines.is_empty() {
                    for (e, &b) in errs.iter_mut().zip(&self.baselines[aspect]) {
                        *e /= b;
                    }
                }
                scores.push(errs);
            }
            acobe_obs::counter("engine/rows_scored")
                .add((self.users * self.models.len()) as u64);
            let day = DayScores { date, scores };
            let drift = self.observe_scored_day(&day);
            let committed_from = self.pending_alerts.len();
            self.evaluate_alerts(&day, &drift);
            self.resolve_provisional(date, committed_from);
            self.score_history.push(day.clone());
            if self.score_history.len() > SCORE_HISTORY_DAYS {
                self.score_history.remove(0);
            }
            Some(day)
        };
        acobe_obs::histogram("engine/ingest_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(out)
    }

    /// Scores the open day `date` provisionally against the committed
    /// baselines, without committing anything: rolling-deviation σ state,
    /// matrix rings, novelty history, score history, drift monitor, and
    /// alert state are all left untouched, so the end-of-day daily path
    /// stays bit-identical at any flush cadence. Returns `None` before
    /// training.
    ///
    /// `measurements` are the open day's counts *so far*
    /// (`DayExtractor::measurements_so_far` in `acobe-features`); `events`
    /// is the open day's accumulated event count, carried into provisional
    /// triggers and telemetry.
    ///
    /// Provisional alerts are evaluated against a throwaway copy of the
    /// alert state — ids re-prefixed `pv-`, triggers wrapped in
    /// [`AlertTrigger::Provisional`] — published to the global board, and
    /// held aside for confirm/retract when the day closes. They are never
    /// queued for [`DetectionEngine::take_alerts`], so they never reach the
    /// append-only audit log and the committed `al-` sequence is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::OutOfOrder`] when `date` is not the open
    /// (next-expected) day and [`AcobeError::WidthMismatch`] for a
    /// wrong-length slice; the engine state is unchanged on error (as it is
    /// on success).
    pub fn ingest_partial(
        &mut self,
        date: Date,
        measurements: &[f32],
        events: u64,
    ) -> Result<Option<ProvisionalScores>, AcobeError> {
        let _span = acobe_obs::SpanGuard::enter_tagged(
            "engine/ingest_partial",
            vec![("day".into(), date.to_string())],
        );
        let t0 = Instant::now();
        if date != self.next_date {
            return Err(AcobeError::OutOfOrder { expected: self.next_date, got: date });
        }
        let width = self.day_width();
        if measurements.len() != width {
            return Err(AcobeError::WidthMismatch { expected: width, found: measurements.len() });
        }
        if self.models.is_empty() {
            return Ok(None);
        }
        // The day vectors a close would push at ring offset 0, computed
        // read-only (peek instead of push).
        let group_day = self.group_ring.is_some().then(|| self.group_day(measurements));
        let (user_today, group_today) = match self.config.representation {
            Representation::Deviation => {
                let use_weights = self.config.matrix.use_weights;
                let rolling = self.user_rolling.as_ref().expect("deviation state");
                let mut dev = rolling.peek_day(measurements)?;
                if use_weights {
                    for (s, w) in dev.sigma.iter_mut().zip(&dev.weights) {
                        *s *= w;
                    }
                }
                let gtoday = match &group_day {
                    Some(gday) => {
                        let grolling = self.group_rolling.as_ref().expect("group deviation state");
                        let mut gdev = grolling.peek_day(gday)?;
                        if use_weights {
                            for (s, w) in gdev.sigma.iter_mut().zip(&gdev.weights) {
                                *s *= w;
                            }
                        }
                        Some(gdev.sigma)
                    }
                    None => None,
                };
                (dev.sigma, gtoday)
            }
            Representation::SingleDayCounts => (measurements.to_vec(), group_day),
        };
        // Overlay rings: the committed rings with the provisional day pushed
        // on top — exactly the rings a close would score against. The
        // engine's own rings are not touched.
        let mut user_ring = self.user_ring.clone();
        user_ring.push(user_today);
        let group_ring = match (&self.group_ring, group_today) {
            (Some(ring), Some(gtoday)) => {
                let mut ring = ring.clone();
                ring.push(gtoday);
                Some(ring)
            }
            _ => None,
        };
        let mut scores = Vec::with_capacity(self.models.len());
        for aspect in 0..self.models.len() {
            let dim = self.input_dim(aspect);
            let mut batch = Matrix::zeros(self.users, dim);
            for u in 0..self.users {
                batch
                    .row_mut(u)
                    .copy_from_slice(&self.input_row_from(aspect, u, &user_ring, group_ring.as_ref()));
            }
            let mut errs = self.models[aspect].reconstruction_errors(&batch);
            if self.config.calibrate && !self.baselines.is_empty() {
                for (e, &b) in errs.iter_mut().zip(&self.baselines[aspect]) {
                    *e /= b;
                }
            }
            scores.push(errs);
        }
        let investigation = investigate_from_scores(&scores, self.config.critic_n);
        let alerts =
            self.provisional_alert_pass(date, &scores, &user_ring, group_ring.as_ref(), events);
        self.provisional_alerts = alerts.clone();
        acobe_obs::counter("engine/partial_scores").inc();
        acobe_obs::histogram("engine/provisional_score_ms", INGEST_EDGES)
            .observe(t0.elapsed().as_secs_f64() * 1e3);
        Ok(Some(ProvisionalScores { date, events, scores, investigation, alerts }))
    }

    /// Evaluates the alert policy against provisional scores on a throwaway
    /// copy of the alert state (dropped afterwards, so watchlist baselines,
    /// cooldowns, and the committed sequence never move mid-day).
    fn provisional_alert_pass(
        &self,
        date: Date,
        scores: &[Vec<f32>],
        user_ring: &DayRing,
        group_ring: Option<&DayRing>,
        events: u64,
    ) -> Vec<Alert> {
        let Some(policy) = self.alert_policy.clone() else { return Vec::new() };
        let mut state = self.alert_state.clone();
        let day_str = date.to_string();
        let input = crate::alert::AlertDayInput {
            day: &day_str,
            scores,
            drift: &[],
            degraded: &[],
            critic_n: self.config.critic_n,
        };
        let feature_set = &self.feature_set;
        let frames = self.frames;
        let user_group = &self.user_group;
        let top_k = policy.top_k_features;
        let mut alerts =
            crate::alert::evaluate_day(&policy, &mut state, &input, |user, position, priority| {
                let group_entity = user_group.get(user).copied().filter(|&g| g != usize::MAX);
                crate::alert::build_evidence(
                    feature_set,
                    frames,
                    user_ring,
                    user,
                    group_ring,
                    group_entity,
                    scores,
                    user,
                    position,
                    priority,
                    top_k,
                )
            });
        for alert in &mut alerts {
            alert.id = format!("pv-{:06}", alert.seq);
            alert.trigger =
                AlertTrigger::Provisional { inner: Box::new(alert.trigger.clone()), events };
        }
        let board = acobe_obs::alert::alerts();
        for alert in &alerts {
            board.publish(alert);
        }
        alerts
    }

    /// Resolves the open day's provisional alerts against the committed
    /// alerts raised at its close (see [`resolve_provisional_alerts`]).
    fn resolve_provisional(&mut self, date: Date, committed_from: usize) {
        resolve_provisional_alerts(
            &mut self.provisional_alerts,
            &self.pending_alerts[committed_from..],
            date,
            &mut self.provisional_resolutions,
        );
    }

    /// Drains the provisional-alert resolutions produced at the most recent
    /// day close.
    pub fn take_provisional_resolutions(&mut self) -> Vec<ProvisionalResolution> {
        std::mem::take(&mut self.provisional_resolutions)
    }

    /// The provisional alerts outstanding for the still-open day (the most
    /// recent [`DetectionEngine::ingest_partial`] evaluation wins).
    pub fn provisional_alerts(&self) -> &[Alert] {
        &self.provisional_alerts
    }

    /// Builds the model-input row for `user` in `aspect`, for the most
    /// recently ingested day — the streaming equivalent of the batch matrix
    /// builder ([`crate::matrix::build_row`]), reading the pre-weighted day
    /// ring instead of a whole-span cube.
    ///
    /// # Panics
    ///
    /// Panics if `aspect` or `user` is out of range.
    pub fn input_row(&self, aspect: usize, user: usize) -> Vec<f32> {
        self.input_row_from(aspect, user, &self.user_ring, self.group_ring.as_ref())
    }

    /// [`DetectionEngine::input_row`] against explicit rings — the committed
    /// rings for the daily path, overlay rings (committed days plus the
    /// provisional day) for [`DetectionEngine::ingest_partial`].
    fn input_row_from(
        &self,
        aspect: usize,
        user: usize,
        user_ring: &DayRing,
        group_ring: Option<&DayRing>,
    ) -> Vec<f32> {
        let features = &self.feature_set.aspects[aspect].features;
        let mut row = Vec::with_capacity(self.input_dim(aspect));
        match self.config.representation {
            Representation::Deviation => {
                self.append_ring_block(user_ring, user, features, &mut row);
                if let Some(gring) = group_ring {
                    self.append_ring_block(gring, self.user_group[user], features, &mut row);
                }
            }
            Representation::SingleDayCounts => {
                self.append_counts_block(user_ring, user, features, &mut row);
                if let Some(gring) = group_ring {
                    self.append_counts_block(gring, self.user_group[user], features, &mut row);
                }
            }
        }
        row
    }

    /// One matrix block from a deviation ring: for each `(feature, frame)`,
    /// the `D` days oldest-first, mapped `[-Δ, Δ] → [0, 1]` — the exact
    /// layout and arithmetic of the batch `append_block`.
    fn append_ring_block(
        &self,
        ring: &DayRing,
        entity: usize,
        features: &[usize],
        row: &mut Vec<f32>,
    ) {
        ring_block_into(
            ring,
            entity,
            features,
            self.frames,
            self.feature_set.len(),
            self.config.matrix.matrix_days,
            self.config.matrix.delta,
            row,
        );
    }

    /// One single-day block: today's raw counts squashed `c / (1 + c)`.
    fn append_counts_block(
        &self,
        ring: &DayRing,
        entity: usize,
        features: &[usize],
        row: &mut Vec<f32>,
    ) {
        counts_block_into(ring, entity, features, self.frames, self.feature_set.len(), row);
    }

    /// Raw (uncalibrated) per-user reconstruction errors for the most
    /// recently ingested day — shared by scoring and baseline calibration.
    pub(crate) fn raw_day_scores(&mut self, aspect: usize) -> Vec<f32> {
        let dim = self.input_dim(aspect);
        let mut batch = Matrix::zeros(self.users, dim);
        for u in 0..self.users {
            batch.row_mut(u).copy_from_slice(&self.input_row(aspect, u));
        }
        self.models[aspect].reconstruction_errors(&batch)
    }

    pub(crate) fn set_models(&mut self, models: Vec<Autoencoder>) {
        self.models = models;
    }

    pub(crate) fn clear_models(&mut self) {
        self.models.clear();
        self.baselines.clear();
    }

    pub(crate) fn set_baselines(&mut self, baselines: Vec<Vec<f32>>) {
        self.baselines = baselines;
    }

    /// Per-aspect, per-user calibration baselines (empty until calibrated).
    pub fn baselines(&self) -> &[Vec<f32>] {
        &self.baselines
    }

    /// The retained recent daily scores, oldest first (at most
    /// `SCORE_HISTORY_DAYS` entries survive; a checkpoint carries them so a
    /// resumed stream keeps its trailing-mean context).
    pub fn recent_scores(&self) -> &[DayScores] {
        &self.score_history
    }

    /// The critic's investigation list for the most recent scored day,
    /// ranking users by the trailing `window`-day mean of their scores —
    /// identical to
    /// [`ScoreTable::daily_investigation_smoothed`](crate::pipeline::ScoreTable::daily_investigation_smoothed)
    /// over the same days. Empty before the first scored day.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, or if `n` is invalid once scores exist.
    pub fn daily_investigation(&self, n: usize, window: usize) -> Vec<Investigation> {
        assert!(window > 0, "window must be positive");
        if self.score_history.is_empty() {
            return Vec::new();
        }
        let _span = acobe_obs::span!("critic");
        let len = self.score_history.len().min(window);
        let tail = &self.score_history[self.score_history.len() - len..];
        let aspects = tail[0].scores.len();
        let per_aspect: Vec<Vec<f32>> = (0..aspects)
            .map(|a| {
                (0..self.users)
                    .map(|u| tail.iter().map(|d| d.scores[a][u]).sum::<f32>() / len as f32)
                    .collect()
            })
            .collect();
        investigate_from_scores(&per_aspect, n)
    }

    /// Snapshots the full engine state — temporal state, models (including
    /// BatchNorm running statistics), and baselines — into a serializable
    /// checkpoint.
    pub fn snapshot(&mut self) -> EngineCheckpoint {
        EngineCheckpoint {
            version: CHECKPOINT_VERSION,
            config: self.config.clone(),
            feature_set: self.feature_set.clone(),
            groups: self.groups.clone(),
            user_group: self.user_group.clone(),
            users: self.users,
            frames: self.frames,
            start: self.start,
            next_date: self.next_date,
            user_rolling: self.user_rolling.clone(),
            group_rolling: self.group_rolling.clone(),
            user_ring: self.user_ring.clone(),
            group_ring: self.group_ring.clone(),
            models: self.models.iter_mut().map(snapshot_model).collect(),
            baselines: self.baselines.clone(),
            score_history: self.score_history.clone(),
            monitor: self.monitor.clone(),
            alert_state: self.alert_state.clone(),
        }
    }

    /// Rebuilds an engine from a checkpoint. The restored engine continues
    /// the stream at the checkpointed day and produces bit-identical scores
    /// from there on.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::CorruptCheckpoint`] for an unsupported
    /// checkpoint version or internally inconsistent state (shape mismatches
    /// that would otherwise panic mid-stream), and [`AcobeError::Model`] when
    /// a model snapshot does not fit its declared architecture.
    pub fn restore(checkpoint: EngineCheckpoint) -> Result<Self, AcobeError> {
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(AcobeError::CorruptCheckpoint(format!(
                "unsupported checkpoint version {} (expected {CHECKPOINT_VERSION})",
                checkpoint.version
            )));
        }
        checkpoint.validate()?;
        let models = checkpoint
            .models
            .iter()
            .map(restore_model)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DetectionEngine {
            config: checkpoint.config,
            feature_set: checkpoint.feature_set,
            groups: checkpoint.groups,
            user_group: checkpoint.user_group,
            users: checkpoint.users,
            frames: checkpoint.frames,
            start: checkpoint.start,
            next_date: checkpoint.next_date,
            user_rolling: checkpoint.user_rolling,
            group_rolling: checkpoint.group_rolling,
            user_ring: checkpoint.user_ring,
            group_ring: checkpoint.group_ring,
            models,
            baselines: checkpoint.baselines,
            score_history: checkpoint.score_history,
            drift: checkpoint
                .monitor
                .as_ref()
                .map(|m| m.config().clone())
                .unwrap_or_default(),
            monitor: checkpoint.monitor,
            pending_health: Vec::new(),
            alert_policy: None,
            alert_state: checkpoint.alert_state,
            pending_alerts: Vec::new(),
            provisional_alerts: Vec::new(),
            provisional_resolutions: Vec::new(),
        })
    }

    /// Saves a checkpoint in the v3 binary container format (written
    /// atomically via tmp + rename) and records checkpoint metrics.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures.
    pub fn save<P: AsRef<Path>>(&mut self, path: P) -> Result<(), AcobeError> {
        let started = Instant::now();
        let bytes = crate::checkpoint::encode_engine(&self.snapshot());
        acobe_obs::write_atomic(path.as_ref(), &bytes).map_err(|source| AcobeError::Io {
            path: path.as_ref().display().to_string(),
            source,
        })?;
        let ms = started.elapsed().as_secs_f64() * 1e3;
        acobe_obs::histogram_with(
            "checkpoint/write_ms",
            &[("kind", "full")],
            crate::checkpoint::CHECKPOINT_EDGES,
        )
        .observe(ms);
        acobe_obs::counter_with("checkpoint/bytes", &[("kind", "full")]).add(bytes.len() as u64);
        Ok(())
    }

    /// Saves a checkpoint in the legacy v1 JSON format.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures and
    /// [`AcobeError::Checkpoint`] for serialization failures.
    pub fn save_v1_json<P: AsRef<Path>>(&mut self, path: P) -> Result<(), AcobeError> {
        let json = serde_json::to_string(&self.snapshot())?;
        acobe_obs::write_atomic(path.as_ref(), json.as_bytes()).map_err(|source| {
            AcobeError::Io { path: path.as_ref().display().to_string(), source }
        })
    }

    /// Loads a checkpoint saved by [`DetectionEngine::save`] (v3 binary) or
    /// by a previous release's v1 JSON save — the format is sniffed from the
    /// file's magic bytes, so old checkpoints keep loading unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`AcobeError::Io`] for filesystem failures,
    /// [`AcobeError::CorruptCheckpoint`] for damaged binary containers,
    /// [`AcobeError::Checkpoint`] for malformed JSON, and the
    /// [`DetectionEngine::restore`] errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, AcobeError> {
        let started = Instant::now();
        let bytes = std::fs::read(&path).map_err(|source| AcobeError::Io {
            path: path.as_ref().display().to_string(),
            source,
        })?;
        let checkpoint = if crate::checkpoint::is_v3(&bytes) {
            crate::checkpoint::decode_engine(&bytes)?
        } else {
            let json = std::str::from_utf8(&bytes).map_err(|_| {
                AcobeError::CorruptCheckpoint(
                    "checkpoint is neither a v3 container nor UTF-8 JSON".into(),
                )
            })?;
            serde_json::from_str::<EngineCheckpoint>(json)?
        };
        let engine = Self::restore(checkpoint)?;
        let ms = started.elapsed().as_secs_f64() * 1e3;
        acobe_obs::histogram_with(
            "checkpoint/restore_ms",
            &[("kind", "full")],
            crate::checkpoint::CHECKPOINT_EDGES,
        )
        .observe(ms);
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_features::spec::AspectSpec;

    fn feature_set() -> FeatureSet {
        FeatureSet {
            names: vec!["a".into(), "b".into()],
            aspects: vec![AspectSpec { name: "all".into(), features: vec![0, 1] }],
        }
    }

    fn engine(users: usize) -> DetectionEngine {
        let cfg = AcobeConfig::tiny().without_group().with_critic_n(1);
        DetectionEngine::new(users, 2, Date::from_ymd(2010, 1, 1), feature_set(), &[], cfg)
            .unwrap()
    }

    #[test]
    fn day_ring_offsets() {
        let mut ring = DayRing::new(3);
        assert!(ring.offset(0).is_none());
        ring.push(vec![1.0]);
        ring.push(vec![2.0]);
        assert_eq!(ring.offset(0).unwrap(), &[2.0]);
        assert_eq!(ring.offset(1).unwrap(), &[1.0]);
        assert!(ring.offset(2).is_none());
        ring.push(vec![3.0]);
        ring.push(vec![4.0]); // evicts 1.0
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.offset(0).unwrap(), &[4.0]);
        assert_eq!(ring.offset(2).unwrap(), &[2.0]);
        assert!(ring.offset(3).is_none());
    }

    #[test]
    fn out_of_order_and_width_are_typed_errors() {
        let mut e = engine(2);
        let start = e.start();
        let day = vec![0.0; e.day_width()];
        let err = e.warm_day(start.add_days(1), &day).unwrap_err();
        assert!(matches!(err, AcobeError::OutOfOrder { .. }), "{err:?}");
        assert!(err.to_string().contains("days must be ingested in order"));
        let err = e.warm_day(start, &[0.0; 3]).unwrap_err();
        assert!(matches!(err, AcobeError::WidthMismatch { .. }), "{err:?}");
        // Errors leave the stream position unchanged.
        assert_eq!(e.next_date(), start);
        e.warm_day(start, &day).unwrap();
        assert_eq!(e.days_ingested(), 1);
    }

    #[test]
    fn untrained_engine_scores_nothing() {
        let mut e = engine(2);
        let day = vec![1.0; e.day_width()];
        let out = e.ingest_day(e.start(), &day).unwrap();
        assert!(out.is_none());
        assert!(!e.is_trained());
        assert!(e.daily_investigation(1, 3).is_empty());
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let mut e = engine(2);
        let day = vec![1.0; e.day_width()];
        for i in 0..5 {
            e.warm_day(e.start().add_days(i), &day).unwrap();
        }
        assert_eq!(e.days_ingested(), 5);
        e.reset_stream();
        assert_eq!(e.days_ingested(), 0);
        assert_eq!(e.next_date(), e.start());
        e.warm_day(e.start(), &day).unwrap();
    }

    #[test]
    fn state_bytes_grows_with_history() {
        let mut e = engine(4);
        let empty = e.state_bytes();
        let day = vec![1.0; e.day_width()];
        for i in 0..3 {
            e.warm_day(e.start().add_days(i), &day).unwrap();
        }
        assert!(e.state_bytes() > empty, "{} vs {empty}", e.state_bytes());
    }

    #[test]
    fn untrained_checkpoint_roundtrip_is_bit_exact() {
        // Warm an engine, snapshot to JSON, restore, and verify that both
        // copies emit identical matrix rows for subsequent days.
        let mut a = engine(3);
        let width = a.day_width();
        for i in 0..10 {
            let day: Vec<f32> = (0..width).map(|j| ((i * 31 + j as i32) % 7) as f32).collect();
            a.warm_day(a.start().add_days(i), &day).unwrap();
        }
        let json = serde_json::to_string(&a.snapshot()).unwrap();
        let mut b = DetectionEngine::restore(serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(b.next_date(), a.next_date());
        for i in 10..15 {
            let day: Vec<f32> = (0..width).map(|j| ((i * 13 + j as i32) % 5) as f32).collect();
            a.warm_day(a.start().add_days(i), &day).unwrap();
            b.warm_day(b.start().add_days(i), &day).unwrap();
            for u in 0..3 {
                assert_eq!(a.input_row(0, u), b.input_row(0, u), "day {i} user {u}");
            }
        }
    }

    #[test]
    fn bad_checkpoint_version_rejected() {
        let mut e = engine(1);
        let mut cp = e.snapshot();
        cp.version = 999;
        let err = DetectionEngine::restore(cp).unwrap_err();
        assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "{err:?}");
        assert!(err.to_string().contains("checkpoint version"), "{err}");
    }

    #[test]
    fn corrupt_checkpoint_shapes_rejected() {
        let mut e = engine(2);
        let day = vec![1.0; e.day_width()];
        e.warm_day(e.start(), &day).unwrap();

        // user_group sized for the wrong number of users.
        let mut cp = e.snapshot();
        cp.user_group = vec![usize::MAX; 5];
        let err = DetectionEngine::restore(cp).unwrap_err();
        assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "{err:?}");

        // Missing rolling state while the config demands deviations — would
        // previously have panicked at the next ingested day.
        let mut cp = e.snapshot();
        cp.user_rolling = None;
        let err = DetectionEngine::restore(cp).unwrap_err();
        assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "{err:?}");

        // Ring rebuilt with the wrong capacity.
        let mut cp = e.snapshot();
        cp.user_ring = DayRing::new(cp.config.matrix.matrix_days + 1);
        let err = DetectionEngine::restore(cp).unwrap_err();
        assert!(matches!(err, AcobeError::CorruptCheckpoint(_)), "{err:?}");

        // The untouched snapshot still restores.
        let cp = e.snapshot();
        assert!(DetectionEngine::restore(cp).is_ok());
    }

    #[test]
    fn ingest_partial_validates_and_never_perturbs_the_stream() {
        let mut e = engine(3);
        let width = e.day_width();
        let day = vec![1.0; width];
        // Untrained: validated but scoreless.
        assert!(e.ingest_partial(e.start(), &day, 5).unwrap().is_none());
        let err = e.ingest_partial(e.start().add_days(1), &day, 5).unwrap_err();
        assert!(matches!(err, AcobeError::OutOfOrder { .. }), "{err:?}");
        let err = e.ingest_partial(e.start(), &[0.0; 3], 5).unwrap_err();
        assert!(matches!(err, AcobeError::WidthMismatch { .. }), "{err:?}");
        // A shadow engine that never peeks stays bit-identical: same matrix
        // rows and same checkpoint bytes, at every day.
        let mut shadow = engine(3);
        for i in 0..10 {
            let full: Vec<f32> = (0..width).map(|j| ((i * 7 + j as i32) % 5) as f32).collect();
            let partial: Vec<f32> = full.iter().map(|v| v * 0.5).collect();
            e.ingest_partial(e.start().add_days(i), &partial, 3).unwrap();
            e.ingest_partial(e.start().add_days(i), &full, 7).unwrap();
            e.warm_day(e.start().add_days(i), &full).unwrap();
            shadow.warm_day(shadow.start().add_days(i), &full).unwrap();
            for u in 0..3 {
                assert_eq!(e.input_row(0, u), shadow.input_row(0, u), "day {i} user {u}");
            }
        }
        assert_eq!(
            serde_json::to_string(&e.snapshot()).unwrap(),
            serde_json::to_string(&shadow.snapshot()).unwrap()
        );
    }

    #[test]
    fn ring_extract_entities_projects_days() {
        let mut ring = DayRing::new(3);
        // Two entities, chunk 2 values each.
        ring.push(vec![1.0, 2.0, 3.0, 4.0]);
        ring.push(vec![5.0, 6.0, 7.0, 8.0]);
        let only_second = ring.extract_entities(&[1], 2);
        assert_eq!(only_second.len(), 2);
        assert_eq!(only_second.offset(0).unwrap(), &[7.0, 8.0]);
        assert_eq!(only_second.offset(1).unwrap(), &[3.0, 4.0]);
        // Positions preserved: wrap the original, the projection follows.
        ring.push(vec![9.0, 9.5, 9.9, 9.99]);
        ring.push(vec![0.1, 0.2, 0.3, 0.4]); // evicts day one
        let proj = ring.extract_entities(&[0, 1], 2);
        assert_eq!(proj.offset(0).unwrap(), &[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(proj.offset(2).unwrap(), &[5.0, 6.0, 7.0, 8.0]);
    }
}
