//! Inline per-record rule layer.
//!
//! Cheap predicates evaluated on every parsed event while it is still hot in
//! cache, in the style of per-record detection rules over raw audit logs.
//! Hits are aggregated per `(user, rule, frame)` within each day batch and
//! surface as `AlertTrigger::RuleHit` alerts in the CLI (opt-in) plus
//! `ingest/rule_hits` metrics — they never feed the behavioral scores, so
//! the measurement path stays bit-identical with rules on or off.

use acobe_logs::event::{FileActivity, HttpActivity, Location, LogEvent};

/// A per-record predicate over raw log events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Any device / file / http activity in the off-hours frame.
    OffHoursActivity,
    /// A file write or copy whose destination is removable media.
    RemovableMediaWrite,
    /// An executable uploaded over http.
    ExeUpload,
    /// A failed logon attempt.
    FailedLogon,
}

impl Rule {
    /// Every rule, in stable index order.
    pub const ALL: [Rule; 4] = [
        Rule::OffHoursActivity,
        Rule::RemovableMediaWrite,
        Rule::ExeUpload,
        Rule::FailedLogon,
    ];

    /// Stable identifier used in alerts and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Rule::OffHoursActivity => "off_hours_activity",
            Rule::RemovableMediaWrite => "removable_media_write",
            Rule::ExeUpload => "exe_upload",
            Rule::FailedLogon => "failed_logon",
        }
    }

    /// Index of this rule in [`Rule::ALL`].
    pub fn index(self) -> usize {
        Rule::ALL
            .iter()
            .position(|r| *r == self)
            .expect("rule in ALL")
    }

    /// Whether `event` trips this rule.
    pub fn matches(self, event: &LogEvent) -> bool {
        match self {
            Rule::OffHoursActivity => {
                event.ts().time_frame() == acobe_logs::time::TimeFrame::Off
                    && matches!(
                        event,
                        LogEvent::Device(_) | LogEvent::File(_) | LogEvent::Http(_)
                    )
            }
            Rule::RemovableMediaWrite => matches!(
                event,
                LogEvent::File(f)
                    if f.to == Location::Remote
                        && matches!(f.activity, FileActivity::Write | FileActivity::Copy)
            ),
            Rule::ExeUpload => matches!(
                event,
                LogEvent::Http(h)
                    if h.activity == HttpActivity::Upload
                        && h.filetype == acobe_logs::event::FileType::Exe
            ),
            Rule::FailedLogon => matches!(event, LogEvent::Logon(l) if !l.success),
        }
    }
}

/// The set of rules evaluated inline during parsing. Empty by default — an
/// empty set costs nothing on the hot path.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn none() -> Self {
        RuleSet::default()
    }

    /// All built-in rules.
    pub fn standard() -> Self {
        RuleSet {
            rules: Rule::ALL.to_vec(),
        }
    }

    /// A custom selection.
    pub fn new(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// The active rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// True when no rules are active.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Appends the indices (into [`Rule::ALL`]) of every rule matching
    /// `event` to `out`.
    pub fn matching(&self, event: &LogEvent, out: &mut Vec<u8>) {
        for rule in &self.rules {
            if rule.matches(event) {
                out.push(rule.index() as u8);
            }
        }
    }
}

/// One day's aggregated hits for one `(user, rule, frame)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleHit {
    /// Global user index.
    pub user: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Time-frame index the hits landed in (0 = working, 1 = off).
    pub frame: usize,
    /// Number of matching events that day.
    pub count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::event::*;
    use acobe_logs::ids::{FileId, HostId, UserId};
    use acobe_logs::time::Date;

    #[test]
    fn rule_predicates() {
        let off = Date::from_ymd(2010, 3, 1).at(22, 0, 0);
        let working = Date::from_ymd(2010, 3, 1).at(10, 0, 0);
        let usb_write = LogEvent::File(FileEvent {
            ts: working,
            user: UserId(1),
            host: HostId(0),
            file: FileId(9),
            activity: FileActivity::Write,
            from: Location::Local,
            to: Location::Remote,
        });
        assert!(Rule::RemovableMediaWrite.matches(&usb_write));
        assert!(!Rule::OffHoursActivity.matches(&usb_write));

        let night_connect = LogEvent::Device(DeviceEvent {
            ts: off,
            user: UserId(1),
            host: HostId(0),
            activity: DeviceActivity::Connect,
        });
        assert!(Rule::OffHoursActivity.matches(&night_connect));

        let failed = LogEvent::Logon(LogonEvent {
            ts: working,
            user: UserId(2),
            host: HostId(0),
            activity: LogonActivity::Logon,
            success: false,
        });
        assert!(Rule::FailedLogon.matches(&failed));
        assert!(!Rule::ExeUpload.matches(&failed));

        let mut hits = Vec::new();
        RuleSet::standard().matching(&usb_write, &mut hits);
        assert_eq!(hits, vec![Rule::RemovableMediaWrite.index() as u8]);
        hits.clear();
        RuleSet::none().matching(&night_connect, &mut hits);
        assert!(hits.is_empty());
    }
}
