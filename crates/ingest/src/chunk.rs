//! Record-aligned chunking of a raw byte stream.
//!
//! [`ChunkReader`] pulls large blocks from any [`Read`] source and cuts them
//! on CSV record boundaries (newlines at even quote parity, via
//! `acobe_logs::csv::complete_record_prefix`), so each produced chunk can be
//! parsed independently and in parallel without ever splitting a record —
//! including records with quoted embedded newlines.

use acobe_logs::csv::complete_record_prefix;
use std::io::Read;

/// Reads a byte stream as a sequence of record-aligned chunks.
///
/// Every returned chunk starts and ends on a record boundary; the final
/// chunk may lack a trailing newline (an unterminated last record is still
/// delivered, never dropped). When a single record exceeds the configured
/// chunk size the internal buffer grows until the record fits.
#[derive(Debug)]
pub struct ChunkReader<R> {
    reader: R,
    /// Bytes read but not yet emitted; always starts on a record boundary.
    pending: Vec<u8>,
    chunk_bytes: usize,
    /// Current fill target — `chunk_bytes`, doubled while no boundary fits.
    target: usize,
    eof: bool,
}

impl<R: Read> ChunkReader<R> {
    /// Wraps `reader`, producing chunks of roughly `chunk_bytes` bytes.
    pub fn new(reader: R, chunk_bytes: usize) -> Self {
        let chunk_bytes = chunk_bytes.max(4096);
        ChunkReader {
            reader,
            pending: Vec::with_capacity(chunk_bytes + 4096),
            chunk_bytes,
            target: chunk_bytes,
            eof: false,
        }
    }

    /// Produces the next record-aligned chunk, or `Ok(None)` at end of
    /// input.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader.
    pub fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        loop {
            self.fill()?;
            if self.pending.is_empty() {
                return Ok(None);
            }
            match complete_record_prefix(&self.pending) {
                Some(cut) => {
                    let rest = self.pending.split_off(cut);
                    let chunk = std::mem::replace(&mut self.pending, rest);
                    self.target = self.chunk_bytes;
                    return Ok(Some(chunk));
                }
                None if self.eof => {
                    // Unterminated trailing record: emit it whole.
                    return Ok(Some(std::mem::take(&mut self.pending)));
                }
                None => {
                    // One record spans the whole buffer; read more.
                    self.target = self.target.saturating_mul(2);
                }
            }
        }
    }

    /// Tops `pending` up to the current target (or EOF).
    fn fill(&mut self) -> std::io::Result<()> {
        while self.pending.len() < self.target && !self.eof {
            let old = self.pending.len();
            let want = (self.target - old).max(64 * 1024);
            self.pending.resize(old + want, 0);
            match self.reader.read(&mut self.pending[old..]) {
                Ok(0) => {
                    self.pending.truncate(old);
                    self.eof = true;
                }
                Ok(n) => self.pending.truncate(old + n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.pending.truncate(old);
                }
                Err(e) => {
                    self.pending.truncate(old);
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn chunks(data: &[u8], size: usize) -> Vec<Vec<u8>> {
        let mut r = ChunkReader::new(Cursor::new(data.to_vec()), size);
        let mut out = Vec::new();
        while let Some(c) = r.next_chunk().unwrap() {
            out.push(c);
        }
        out
    }

    #[test]
    fn chunks_concatenate_to_input_and_align_on_records() {
        let data = b"alpha,1\nbeta,2\n\"multi\nline\",3\ngamma,4";
        for size in [4096, 8192] {
            let cs = chunks(data, size);
            let joined: Vec<u8> = cs.concat();
            assert_eq!(joined, data);
            // Every chunk but the final tail ends on a record boundary.
            for c in &cs[..cs.len() - 1] {
                assert_eq!(c.last(), Some(&b'\n'));
            }
        }
    }

    #[test]
    fn oversized_record_grows_buffer() {
        // A single quoted record much larger than the minimum chunk size.
        let mut data = b"\"".to_vec();
        data.extend(std::iter::repeat(b'x').take(20_000));
        data.extend(b"\",tail\nnext,1\n");
        let cs = chunks(&data, 4096);
        assert_eq!(cs.concat(), data);
        // The huge record must arrive unsplit inside one chunk.
        assert!(cs[0].len() >= 20_000);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(chunks(b"", 4096).is_empty());
    }
}
