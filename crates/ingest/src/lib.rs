//! Wire-speed raw-log ingestion frontend.
//!
//! Turns a raw CERT-style CSV byte stream into ordered per-day event
//! batches, ready for `DayExtractor` / `ShardedEngine` ingestion:
//!
//! 1. **Chunk** — [`chunk::ChunkReader`] cuts the stream into large blocks
//!    on record boundaries (newlines at even quote parity), so blocks parse
//!    independently.
//! 2. **Parse** — a pool of worker threads splits each block into records
//!    and decodes them with the zero-copy borrowed-field parser
//!    (`acobe_logs::csv::RecordBuf`): no per-record `Vec<String>`, no field
//!    copies except quoted-escape normalization.
//! 3. **Rules** — an inline per-record predicate layer
//!    ([`rules::RuleSet`]) runs while the event is hot; hits aggregate per
//!    `(user, rule, frame)` into the day batch.
//! 4. **Route & batch** — parsed chunks are re-sequenced in input order and
//!    grouped into per-day [`DayBatch`]es; under a sub-day [`FlushCadence`]
//!    the open day is additionally sliced into ordered [`PartialDay`]
//!    flushes for intra-day provisional scoring.
//! 5. **Back-pressure** — both the chunk and the result queues are bounded
//!    (`queue_depth`), so a slow consumer (the engine) throttles the reader
//!    instead of ballooning memory.
//!
//! Chunking preserves record order and the day batcher is sequential, so
//! the emitted event stream is byte-for-byte independent of `threads`,
//! `chunk_bytes` and `queue_depth` — the property the raw-ingest
//! equivalence tests pin down.
//!
//! Malformed records are never silently dropped: each one either counts
//! into `ingest/parse_errors` (with a capped sample kept in
//! [`IngestStats`]) or, in strict mode, aborts ingestion with a typed
//! [`IngestError::Parse`].

#![warn(missing_docs)]

pub mod chunk;
pub mod rules;

use acobe_logs::csv::{parse_event, record_slices, ParseCsvError, RecordBuf};
use acobe_logs::event::LogEvent;
use acobe_logs::time::Date;
use chunk::ChunkReader;
pub use rules::{Rule, RuleHit, RuleSet};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Bytes currently sitting in the bounded reader→worker chunk queue, and
/// the run's high-water mark. The current figure backs the live
/// `acobe_state_bytes{subsystem="ingest_queue"}` gauge; the peak is what
/// `acobe mem` reports, since the queue is drained at day boundaries.
static QUEUED_BYTES: AtomicUsize = AtomicUsize::new(0);
static QUEUED_BYTES_PEAK: AtomicUsize = AtomicUsize::new(0);

/// Bytes currently buffered in the reader→worker chunk queue (the
/// pipeline's back-pressure buffer). Zero outside a parallel ingest run.
pub fn queued_bytes() -> usize {
    QUEUED_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`queued_bytes`] across all ingest runs so far.
pub fn queued_bytes_peak() -> usize {
    QUEUED_BYTES_PEAK.load(Ordering::Relaxed)
}
use std::time::Instant;

/// Maximum number of malformed-record samples retained in [`IngestStats`].
const ERROR_SAMPLE_CAP: usize = 8;

/// Histogram edges for per-chunk parse latency (milliseconds).
const CHUNK_PARSE_EDGES: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

/// Tuning knobs for the ingestion pipeline.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Parser worker threads. `1` parses inline on the calling thread.
    pub threads: usize,
    /// Target chunk size in bytes (min 4 KiB).
    pub chunk_bytes: usize,
    /// Bounded-queue depth between the reader, workers and the consumer —
    /// the back-pressure window, in chunks.
    pub queue_depth: usize,
    /// Abort on the first malformed record instead of counting it.
    pub strict: bool,
    /// Inline per-record rules (empty = disabled, zero hot-path cost).
    pub rules: RuleSet,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_bytes: 1 << 20,
            queue_depth: 8,
            strict: false,
            rules: RuleSet::none(),
        }
    }
}

/// One completed day of parsed events.
///
/// Under a sub-day [`FlushCadence`] the day's earlier events have already
/// been forwarded as [`PartialDay`] slices, so `events` holds only the tail
/// since the last flush; `rule_hits` always covers the whole day. With the
/// default per-day cadence `events` is the complete day.
#[derive(Debug, Clone)]
pub struct DayBatch {
    /// The day every event in `events` falls on.
    pub date: Date,
    /// Events in input order.
    pub events: Vec<LogEvent>,
    /// Inline-rule hits aggregated per `(user, rule, frame)`, sorted by
    /// `(user, rule index, frame)` for deterministic output.
    pub rule_hits: Vec<RuleHit>,
}

/// How often the open day is flushed to the consumer as [`PartialDay`]
/// slices (intra-day scoring); the classic per-day batch is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushCadence {
    /// Forward completed days only — no partial slices.
    #[default]
    PerDay,
    /// Flush after every `n` buffered events of the open day (`n >= 1`;
    /// `0` is treated as `1`).
    Events(u64),
    /// Flush when an event lands `m` minutes or more after the first event
    /// of the current flush window (the crossing event is included in the
    /// flushed slice; `0` is treated as `1`).
    Minutes(u32),
}

/// A sub-day slice of the open day, emitted between flushes.
///
/// Slices arrive in input order and partition the day exactly: the
/// concatenation of a day's `PartialDay.events` plus the closing
/// [`DayBatch::events`] tail is byte-identical to the per-day batch the
/// same stream produces under [`FlushCadence::PerDay`].
#[derive(Debug, Clone)]
pub struct PartialDay {
    /// The still-open day every event in `events` falls on.
    pub date: Date,
    /// Events since the previous flush, in input order.
    pub events: Vec<LogEvent>,
    /// Cumulative events forwarded for the open day, including this slice.
    pub events_so_far: u64,
    /// 0-based flush index within the day.
    pub flush: u32,
}

/// Volume and error accounting for one ingestion run.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Raw bytes consumed.
    pub bytes: u64,
    /// Record-aligned chunks produced.
    pub chunks: u64,
    /// Non-blank records seen (parsed + malformed).
    pub records: u64,
    /// Blank lines skipped.
    pub blank_lines: u64,
    /// Successfully parsed events.
    pub events: u64,
    /// Malformed records counted (non-strict mode).
    pub parse_errors: u64,
    /// A capped sample of malformed-record descriptions.
    pub error_samples: Vec<String>,
    /// Day batches emitted.
    pub days: u64,
    /// Sub-day partial slices emitted (0 under [`FlushCadence::PerDay`]).
    pub partial_flushes: u64,
    /// Total inline-rule hits.
    pub rule_hits: u64,
}

/// Ingestion failure.
#[derive(Debug)]
pub enum IngestError<E = std::convert::Infallible> {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A malformed record in strict mode.
    Parse {
        /// The offending record (truncated preview).
        record: String,
        /// The decode failure.
        source: ParseCsvError,
    },
    /// The event stream's day sequence went backwards.
    OutOfOrder {
        /// Last day in progress.
        prev: Date,
        /// The regressing day encountered.
        got: Date,
    },
    /// The day-batch consumer failed.
    Sink(E),
}

impl<E: fmt::Display> fmt::Display for IngestError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o error: {e}"),
            IngestError::Parse { record, source } => {
                write!(f, "malformed record {record:?}: {source}")
            }
            IngestError::OutOfOrder { prev, got } => {
                write!(f, "day order violated: {got} after {prev}")
            }
            IngestError::Sink(e) => write!(f, "day-batch consumer failed: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for IngestError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Parse { source, .. } => Some(source),
            IngestError::OutOfOrder { .. } => None,
            IngestError::Sink(e) => Some(e),
        }
    }
}

impl<E> From<std::io::Error> for IngestError<E> {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// One parsed chunk, produced by a worker.
#[derive(Debug, Default)]
struct ParsedChunk {
    events: Vec<LogEvent>,
    /// `(event index, rule index)` pairs for inline-rule hits.
    hits: Vec<(u32, u8)>,
    bytes: usize,
    records: u64,
    blank_lines: u64,
    parse_errors: u64,
    error_samples: Vec<String>,
    /// First malformed record, kept for strict-mode abort.
    first_error: Option<(String, ParseCsvError)>,
}

/// Parses one record-aligned chunk. `buf` is the worker's reusable field
/// buffer; `scratch_hits` its reusable per-event rule-hit scratch.
fn parse_chunk(
    bytes: &[u8],
    rules: &RuleSet,
    buf: &mut RecordBuf,
    scratch_hits: &mut Vec<u8>,
) -> ParsedChunk {
    let t0 = Instant::now();
    let mut out = ParsedChunk {
        bytes: bytes.len(),
        ..ParsedChunk::default()
    };
    for slice in record_slices(bytes) {
        if slice.is_empty() {
            out.blank_lines += 1;
            continue;
        }
        out.records += 1;
        let parsed = match std::str::from_utf8(slice) {
            Ok(line) => parse_event(line, buf),
            Err(_) => Err(ParseCsvError {
                reason: "invalid utf-8".into(),
            }),
        };
        match parsed {
            Ok(event) => {
                if !rules.is_empty() {
                    scratch_hits.clear();
                    rules.matching(&event, scratch_hits);
                    let idx = out.events.len() as u32;
                    out.hits.extend(scratch_hits.iter().map(|&r| (idx, r)));
                }
                out.events.push(event);
            }
            Err(e) => {
                out.parse_errors += 1;
                let preview = preview_record(slice);
                if out.first_error.is_none() {
                    out.first_error = Some((preview.clone(), e.clone()));
                }
                if out.error_samples.len() < ERROR_SAMPLE_CAP {
                    out.error_samples.push(format!("{preview:?}: {e}"));
                }
            }
        }
    }
    acobe_obs::histogram("ingest/chunk_parse_ms", CHUNK_PARSE_EDGES)
        .observe(t0.elapsed().as_secs_f64() * 1e3);
    out
}

/// Truncated lossy preview of a raw record for error reporting.
fn preview_record(slice: &[u8]) -> String {
    let shown = &slice[..slice.len().min(80)];
    let mut s = String::from_utf8_lossy(shown).into_owned();
    if slice.len() > 80 {
        s.push('…');
    }
    s
}

/// Groups the ordered event stream into per-day batches, optionally slicing
/// the open day into [`PartialDay`] flushes on a [`FlushCadence`].
struct DayBatcher {
    date: Option<Date>,
    events: Vec<LogEvent>,
    hits: HashMap<(u32, u8, u8), u32>,
    cadence: FlushCadence,
    /// Events already forwarded for the open day in partial slices.
    forwarded: u64,
    /// Partial flushes emitted for the open day.
    flushes: u32,
    /// Second-of-day of the first event in the current flush window.
    window_start: Option<u32>,
}

impl DayBatcher {
    fn new(cadence: FlushCadence) -> Self {
        DayBatcher {
            date: None,
            events: Vec::new(),
            hits: HashMap::new(),
            cadence,
            forwarded: 0,
            flushes: 0,
            window_start: None,
        }
    }

    /// Adds one event (with the indices of its rule hits). Returns the
    /// previous day's completed batch when the date advances, and/or a
    /// partial slice of the open day when the cadence fires — in stream
    /// order (the day close always precedes the partial).
    fn push<E>(
        &mut self,
        event: LogEvent,
        rule_indices: &[u8],
    ) -> Result<(Option<DayBatch>, Option<PartialDay>), IngestError<E>> {
        let date = event.ts().date();
        let closed = match self.date {
            Some(cur) if date == cur => None,
            Some(cur) if date > cur => Some(self.take_batch(cur)),
            Some(cur) => {
                return Err(IngestError::OutOfOrder {
                    prev: cur,
                    got: date,
                })
            }
            None => None,
        };
        self.date = Some(date);
        let (user, frame) = acobe_features::cert::event_slot(&event);
        let (user, frame) = (user as u32, frame as u8);
        for &r in rule_indices {
            *self.hits.entry((user, r, frame)).or_insert(0) += 1;
        }
        let ts = event.ts();
        if self.events.is_empty() {
            self.window_start = Some(ts.hour() * 3600 + ts.minute() * 60 + ts.second());
        }
        self.events.push(event);
        let fire = match self.cadence {
            FlushCadence::PerDay => false,
            FlushCadence::Events(n) => self.events.len() as u64 >= n.max(1),
            FlushCadence::Minutes(m) => {
                // Saturating: only day order is enforced, so an event may
                // step backwards within the day without firing the window.
                let now = ts.hour() * 3600 + ts.minute() * 60 + ts.second();
                now.saturating_sub(self.window_start.expect("window start set")) >= m.max(1) * 60
            }
        };
        let partial = fire.then(|| self.take_partial(date));
        Ok((closed, partial))
    }

    /// Drains the buffered open-day events into a partial slice.
    fn take_partial(&mut self, date: Date) -> PartialDay {
        self.forwarded += self.events.len() as u64;
        let slice = PartialDay {
            date,
            events: std::mem::take(&mut self.events),
            events_so_far: self.forwarded,
            flush: self.flushes,
        };
        self.flushes += 1;
        self.window_start = None;
        slice
    }

    /// Flushes the in-progress day, if any.
    fn finish(&mut self) -> Option<DayBatch> {
        self.date.take().map(|d| self.take_batch(d))
    }

    fn take_batch(&mut self, date: Date) -> DayBatch {
        self.forwarded = 0;
        self.flushes = 0;
        self.window_start = None;
        let mut rule_hits: Vec<RuleHit> = self
            .hits
            .drain()
            .map(|((user, rule, frame), count)| RuleHit {
                user,
                rule: Rule::ALL[rule as usize],
                frame: frame as usize,
                count,
            })
            .collect();
        rule_hits.sort_by_key(|h| (h.user, h.rule.index(), h.frame));
        DayBatch {
            date,
            events: std::mem::take(&mut self.events),
            rule_hits,
        }
    }
}

/// Streams raw CSV from `reader` through the chunk → parse → batch pipeline,
/// invoking `on_day` with each completed [`DayBatch`] in day order.
///
/// The emitted batches are identical for every `threads` / `chunk_bytes` /
/// `queue_depth` setting; see the module docs for the pipeline stages.
///
/// # Errors
///
/// [`IngestError::Io`] on read failures, [`IngestError::Parse`] on the first
/// malformed record in strict mode, [`IngestError::OutOfOrder`] when the
/// stream's day sequence regresses, and [`IngestError::Sink`] wrapping the
/// first `on_day` failure.
pub fn ingest_events<R, E, F>(
    reader: R,
    config: &IngestConfig,
    on_day: F,
) -> Result<IngestStats, IngestError<E>>
where
    R: Read + Send,
    E: Send,
    F: FnMut(DayBatch) -> Result<(), E>,
{
    ingest_events_flushed(reader, config, FlushCadence::PerDay, |_| Ok(()), on_day)
}

/// A day close or a sub-day partial slice, on its way to the consumer.
enum BatchOut {
    Day(DayBatch),
    Partial(PartialDay),
}

/// [`ingest_events`] with a sub-day [`FlushCadence`]: `on_partial` receives
/// each [`PartialDay`] slice of the open day as the cadence fires, and
/// `on_day` each completed [`DayBatch`] (holding the since-last-flush tail
/// plus the whole day's rule hits). Callbacks run on the calling thread in
/// stream order, so intra-day event order is preserved: concatenating a
/// day's slices and its tail reproduces the per-day batch exactly.
///
/// # Errors
///
/// Same contract as [`ingest_events`], with `on_partial` failures also
/// surfacing as [`IngestError::Sink`].
pub fn ingest_events_flushed<R, E, P, F>(
    reader: R,
    config: &IngestConfig,
    cadence: FlushCadence,
    mut on_partial: P,
    mut on_day: F,
) -> Result<IngestStats, IngestError<E>>
where
    R: Read + Send,
    E: Send,
    P: FnMut(PartialDay) -> Result<(), E>,
    F: FnMut(DayBatch) -> Result<(), E>,
{
    let _span = acobe_obs::span!("ingest");
    let mut stats = IngestStats::default();
    let mut batcher = DayBatcher::new(cadence);
    let mut sink = |out: BatchOut, stats: &mut IngestStats| -> Result<(), IngestError<E>> {
        match out {
            BatchOut::Day(batch) => {
                stats.days += 1;
                stats.rule_hits += batch
                    .rule_hits
                    .iter()
                    .map(|h| u64::from(h.count))
                    .sum::<u64>();
                acobe_obs::counter("ingest/days").inc();
                for h in &batch.rule_hits {
                    acobe_obs::counter_with("ingest/rule_hits", &[("rule", h.rule.name())])
                        .add(u64::from(h.count));
                }
                on_day(batch).map_err(IngestError::Sink)
            }
            BatchOut::Partial(slice) => {
                stats.partial_flushes += 1;
                acobe_obs::counter("ingest/partial_flushes").inc();
                on_partial(slice).map_err(IngestError::Sink)
            }
        }
    };

    if config.threads <= 1 {
        // Inline path: chunk, parse and batch on the calling thread.
        let mut chunks = ChunkReader::new(reader, config.chunk_bytes);
        let mut buf = RecordBuf::new();
        let mut scratch = Vec::new();
        while let Some(chunk) = chunks.next_chunk()? {
            let parsed = parse_chunk(&chunk, &config.rules, &mut buf, &mut scratch);
            consume_chunk(parsed, config, &mut stats, &mut batcher, &mut sink)?;
        }
    } else {
        parallel_ingest(reader, config, &mut stats, &mut batcher, &mut sink)?;
    }

    if let Some(batch) = batcher.finish() {
        sink(BatchOut::Day(batch), &mut stats)?;
    }
    Ok(stats)
}

/// Folds one ordered parsed chunk into the stats, metrics and day batcher.
fn consume_chunk<E>(
    parsed: ParsedChunk,
    config: &IngestConfig,
    stats: &mut IngestStats,
    batcher: &mut DayBatcher,
    sink: &mut impl FnMut(BatchOut, &mut IngestStats) -> Result<(), IngestError<E>>,
) -> Result<(), IngestError<E>> {
    stats.chunks += 1;
    stats.bytes += parsed.bytes as u64;
    stats.records += parsed.records;
    stats.blank_lines += parsed.blank_lines;
    stats.events += parsed.events.len() as u64;
    stats.parse_errors += parsed.parse_errors;
    for s in parsed.error_samples {
        if stats.error_samples.len() < ERROR_SAMPLE_CAP {
            stats.error_samples.push(s);
        }
    }
    acobe_obs::counter("ingest/chunks").inc();
    acobe_obs::counter("ingest/bytes").add(parsed.bytes as u64);
    acobe_obs::counter("ingest/records").add(parsed.records);
    acobe_obs::counter("ingest/events").add(parsed.events.len() as u64);
    if parsed.parse_errors > 0 {
        acobe_obs::counter("ingest/parse_errors").add(parsed.parse_errors);
    }
    if config.strict {
        if let Some((record, source)) = parsed.first_error {
            return Err(IngestError::Parse { record, source });
        }
    }
    // Walk events in order, attaching each one's rule-hit indices.
    let mut hit_iter = parsed.hits.into_iter().peekable();
    let mut scratch: Vec<u8> = Vec::new();
    for (i, event) in parsed.events.into_iter().enumerate() {
        scratch.clear();
        while let Some(&(idx, rule)) = hit_iter.peek() {
            if idx as usize == i {
                scratch.push(rule);
                hit_iter.next();
            } else {
                break;
            }
        }
        let (closed, partial) = batcher.push(event, &scratch)?;
        if let Some(batch) = closed {
            sink(BatchOut::Day(batch), stats)?;
        }
        if let Some(slice) = partial {
            sink(BatchOut::Partial(slice), stats)?;
        }
    }
    Ok(())
}

/// The multi-threaded pipeline: a reader thread feeding a bounded chunk
/// queue, `threads` parser workers, and in-order collection on the calling
/// thread (which runs the day batcher and the consumer callback).
///
/// Shutdown protocol: the reader owns `chunk_tx` and drops it on exit, which
/// disconnects the workers; each worker owns an `out_tx` clone and drops it
/// on exit, which disconnects the collector. On a collector-side error the
/// `abort` flag flips, the reader stops producing, workers skip parsing, and
/// the collector drains both queues so no thread is ever left blocked on a
/// full bounded channel.
fn parallel_ingest<R, E>(
    reader: R,
    config: &IngestConfig,
    stats: &mut IngestStats,
    batcher: &mut DayBatcher,
    sink: &mut impl FnMut(BatchOut, &mut IngestStats) -> Result<(), IngestError<E>>,
) -> Result<(), IngestError<E>>
where
    R: Read + Send,
{
    let depth = config.queue_depth.max(1);
    let (chunk_tx, chunk_rx) = std::sync::mpsc::sync_channel::<(u64, Vec<u8>)>(depth);
    let (out_tx, out_rx) =
        std::sync::mpsc::sync_channel::<(u64, ParsedChunk)>(depth + config.threads);
    let chunk_rx = Mutex::new(chunk_rx);
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let chunk_bytes = config.chunk_bytes;
    // Reader and workers get fresh span stacks; carry the caller's span
    // (the day/ingest root) across so the whole pipeline is one trace tree.
    let trace_ctx = acobe_obs::TraceContext::current();
    let trace_ctx = &trace_ctx;

    let result = std::thread::scope(|scope| {
        // Reader: cut the stream on record boundaries; owns chunk_tx.
        {
            let io_error = &io_error;
            let abort = &abort;
            scope.spawn(move || {
                let _ctx = trace_ctx.attach();
                let _span = acobe_obs::span!("ingest/read");
                let mut chunks = ChunkReader::new(reader, chunk_bytes);
                let mut index = 0u64;
                while !abort.load(Ordering::Relaxed) {
                    match chunks.next_chunk() {
                        Ok(Some(chunk)) => {
                            // Account before send: a worker may pull (and
                            // decrement) the chunk the instant it lands.
                            let bytes = chunk.len();
                            let queued =
                                QUEUED_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
                            QUEUED_BYTES_PEAK.fetch_max(queued, Ordering::Relaxed);
                            if chunk_tx.send((index, chunk)).is_err() {
                                QUEUED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
                                break; // all workers gone
                            }
                            acobe_obs::gauge_with(
                                "acobe_state_bytes",
                                &[("subsystem", "ingest_queue")],
                            )
                            .set(QUEUED_BYTES.load(Ordering::Relaxed) as f64);
                            index += 1;
                        }
                        Ok(None) => break,
                        Err(e) => {
                            *io_error.lock().expect("io-error lock") = Some(e);
                            break;
                        }
                    }
                }
            });
        }
        // Workers: pull chunks, parse with reusable buffers, push results.
        // Holding the queue lock across the blocking recv is fine — the lock
        // is only held while there is nothing to parse.
        for _ in 0..config.threads {
            let tx = out_tx.clone();
            let chunk_rx = &chunk_rx;
            let rules = &config.rules;
            let abort = &abort;
            scope.spawn(move || {
                let _ctx = trace_ctx.attach();
                let mut buf = RecordBuf::new();
                let mut scratch = Vec::new();
                loop {
                    let next = {
                        let queue = chunk_rx.lock().expect("chunk-queue lock");
                        queue.recv()
                    };
                    let (index, chunk) = match next {
                        Ok(pair) => pair,
                        Err(_) => break, // reader done
                    };
                    QUEUED_BYTES.fetch_sub(chunk.len(), Ordering::Relaxed);
                    // Drain mode: keep the pipeline moving without the
                    // parse cost once the collector has failed.
                    let parsed = if abort.load(Ordering::Relaxed) {
                        ParsedChunk::default()
                    } else {
                        let _span = acobe_obs::SpanGuard::enter_tagged(
                            "ingest/parse_chunk",
                            vec![("chunk".into(), index.to_string())],
                        );
                        parse_chunk(&chunk, rules, &mut buf, &mut scratch)
                    };
                    if tx.send((index, parsed)).is_err() {
                        break; // collector gone
                    }
                }
            });
        }
        drop(out_tx);
        // Collector (this thread): re-sequence chunks by index and feed the
        // batcher. `out_rx` closes once every worker exits.
        let mut pending: BTreeMap<u64, ParsedChunk> = BTreeMap::new();
        let mut next = 0u64;
        let mut result: Result<(), IngestError<E>> = Ok(());
        while let Ok((index, parsed)) = out_rx.recv() {
            if result.is_err() {
                continue; // draining after failure
            }
            pending.insert(index, parsed);
            while let Some(parsed) = pending.remove(&next) {
                if let Err(e) = consume_chunk(parsed, config, stats, batcher, sink) {
                    result = Err(e);
                    abort.store(true, Ordering::Relaxed);
                    pending.clear();
                    break;
                }
                next += 1;
            }
        }
        result
    });
    // The queue drained with the scope; leave the gauge at the true figure
    // rather than the last mid-run sample.
    acobe_obs::gauge_with("acobe_state_bytes", &[("subsystem", "ingest_queue")])
        .set(QUEUED_BYTES.load(Ordering::Relaxed) as f64);
    // An I/O failure surfaces after the queues drain so already-parsed
    // chunks are still accounted; pipeline errors take precedence.
    if result.is_ok() {
        if let Some(e) = io_error.lock().expect("io-error lock").take() {
            return Err(IngestError::Io(e));
        }
    }
    result
}

/// [`ingest_events`] over a file path.
///
/// # Errors
///
/// Same contract as [`ingest_events`], with open failures as
/// [`IngestError::Io`].
pub fn ingest_file<E, F>(
    path: &std::path::Path,
    config: &IngestConfig,
    on_day: F,
) -> Result<IngestStats, IngestError<E>>
where
    E: Send,
    F: FnMut(DayBatch) -> Result<(), E>,
{
    let file = std::fs::File::open(path)?;
    ingest_events(file, config, on_day)
}

/// [`ingest_events_flushed`] over a file path.
///
/// # Errors
///
/// Same contract as [`ingest_events_flushed`], with open failures as
/// [`IngestError::Io`].
pub fn ingest_file_flushed<E, P, F>(
    path: &std::path::Path,
    config: &IngestConfig,
    cadence: FlushCadence,
    on_partial: P,
    on_day: F,
) -> Result<IngestStats, IngestError<E>>
where
    E: Send,
    P: FnMut(PartialDay) -> Result<(), E>,
    F: FnMut(DayBatch) -> Result<(), E>,
{
    let file = std::fs::File::open(path)?;
    ingest_events_flushed(file, config, cadence, on_partial, on_day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acobe_logs::csv::ToCsv;
    use acobe_logs::event::*;
    use acobe_logs::ids::{HostId, UserId};
    use acobe_logs::time::Date;
    use std::io::Cursor;

    fn event(day: u32, hour: u32, user: u32) -> LogEvent {
        LogEvent::Device(DeviceEvent {
            ts: Date::from_ymd(2010, 1, day).at(hour, 0, 0),
            user: UserId(user),
            host: HostId(user),
            activity: DeviceActivity::Connect,
        })
    }

    fn to_csv(events: &[LogEvent]) -> String {
        let mut s = String::new();
        for e in events {
            s.push_str(&e.to_csv());
            s.push('\n');
        }
        s
    }

    fn run(text: &str, config: &IngestConfig) -> (Vec<DayBatch>, Result<IngestStats, IngestError>) {
        let mut days = Vec::new();
        let result = ingest_events(Cursor::new(text.as_bytes().to_vec()), config, |b| {
            days.push(b);
            Ok(())
        });
        (days, result)
    }

    #[test]
    fn batches_split_on_day_boundaries() {
        let events = vec![
            event(4, 9, 0),
            event(4, 22, 1),
            event(5, 8, 0),
            event(7, 10, 1),
        ];
        let (days, result) = run(&to_csv(&events), &IngestConfig::default());
        let stats = result.unwrap();
        assert_eq!(stats.events, 4);
        assert_eq!(stats.parse_errors, 0);
        assert_eq!(days.len(), 3); // calendar gap on Jan 6 emits no batch
        assert_eq!(days[0].date, Date::from_ymd(2010, 1, 4));
        assert_eq!(days[0].events.len(), 2);
        assert_eq!(days[2].date, Date::from_ymd(2010, 1, 7));
    }

    #[test]
    fn identical_output_across_threads_and_chunk_sizes() {
        let events: Vec<LogEvent> = (0..500)
            .map(|i| event(4 + (i / 200) as u32, (i % 24) as u32, i % 7))
            .collect();
        let text = to_csv(&events);
        let baseline = run(
            &text,
            &IngestConfig {
                threads: 1,
                ..IngestConfig::default()
            },
        );
        for threads in [2, 4] {
            for chunk_bytes in [4096, 1 << 20] {
                let cfg = IngestConfig {
                    threads,
                    chunk_bytes,
                    ..IngestConfig::default()
                };
                let (days, result) = run(&text, &cfg);
                result.unwrap();
                assert_eq!(days.len(), baseline.0.len());
                for (a, b) in days.iter().zip(&baseline.0) {
                    assert_eq!(a.date, b.date);
                    assert_eq!(a.events, b.events);
                }
            }
        }
    }

    #[test]
    fn malformed_records_count_and_never_drop_silently() {
        let good = to_csv(&[event(4, 9, 0), event(4, 10, 1)]);
        let text = format!("{good}garbage line\nnot,a,record\n");
        let (days, result) = run(
            &text,
            &IngestConfig {
                threads: 2,
                ..IngestConfig::default()
            },
        );
        let stats = result.unwrap();
        assert_eq!(stats.events, 2);
        assert_eq!(stats.parse_errors, 2);
        assert_eq!(stats.records, 4); // parsed + malformed accounted
        assert_eq!(stats.error_samples.len(), 2);
        assert_eq!(days.len(), 1);
    }

    #[test]
    fn strict_mode_aborts_with_typed_error() {
        let good = to_csv(&[event(4, 9, 0)]);
        let text = format!("{good}garbage line\n");
        let cfg = IngestConfig {
            strict: true,
            threads: 1,
            ..IngestConfig::default()
        };
        let (_, result) = run(&text, &cfg);
        match result {
            Err(IngestError::Parse { record, .. }) => assert_eq!(record, "garbage line"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn day_regression_is_rejected() {
        let text = to_csv(&[event(5, 9, 0), event(4, 9, 0)]);
        let (_, result) = run(
            &text,
            &IngestConfig {
                threads: 1,
                ..IngestConfig::default()
            },
        );
        match result {
            Err(IngestError::OutOfOrder { prev, got }) => {
                assert_eq!(prev, Date::from_ymd(2010, 1, 5));
                assert_eq!(got, Date::from_ymd(2010, 1, 4));
            }
            other => panic!("expected out-of-order, got {other:?}"),
        }
    }

    #[test]
    fn inline_rules_aggregate_per_day() {
        let events = vec![
            event(4, 22, 3), // off-hours device connect
            event(4, 23, 3), // off-hours again, same user/frame
            event(4, 9, 1),  // working hours: no hit
        ];
        let cfg = IngestConfig {
            rules: RuleSet::standard(),
            threads: 1,
            ..IngestConfig::default()
        };
        let (days, result) = run(&to_csv(&events), &cfg);
        let stats = result.unwrap();
        assert_eq!(stats.rule_hits, 2);
        assert_eq!(days.len(), 1);
        assert_eq!(days[0].rule_hits.len(), 1);
        let hit = &days[0].rule_hits[0];
        assert_eq!(hit.user, 3);
        assert_eq!(hit.rule, Rule::OffHoursActivity);
        assert_eq!(hit.frame, 1);
        assert_eq!(hit.count, 2);
    }

    #[test]
    fn parallel_pipeline_joins_one_trace_and_drains_the_queue() {
        let events: Vec<LogEvent> = (0..600)
            .map(|i| event(4 + (i / 300) as u32, (i % 24) as u32, i % 7))
            .collect();
        let text = to_csv(&events);
        let cfg = IngestConfig { threads: 2, chunk_bytes: 2048, ..IngestConfig::default() };
        let (root_id, root_trace) = {
            let root = acobe_obs::SpanGuard::enter("ingest_trace_test_root");
            let (days, result) = run(&text, &cfg);
            result.unwrap();
            assert!(!days.is_empty());
            (root.enter_id(), root.trace_id())
        };
        let recent = acobe_obs::event::recent(usize::MAX);
        // Filter to this test's trace: other tests run concurrently with
        // their own trace ids, so ours are unambiguous.
        let ours: Vec<_> =
            recent.iter().filter(|e| e.trace == Some(root_trace)).collect();
        let reads = ours.iter().filter(|e| {
            e.kind == acobe_obs::EventKind::SpanEnter && e.name.ends_with("ingest/read")
        });
        assert_eq!(reads.count(), 1, "reader span joins the caller's trace");
        let parses: Vec<_> = ours
            .iter()
            .filter(|e| {
                e.kind == acobe_obs::EventKind::SpanEnter
                    && e.name.ends_with("ingest/parse_chunk")
            })
            .collect();
        assert!(parses.len() >= 2, "expected several chunks, got {}", parses.len());
        // Every chunk span's ancestor chain must reach the test root — the
        // pipeline hop (caller → worker thread) must not break the tree.
        for enter in &parses {
            assert!(
                enter.fields.iter().any(|(k, _)| k == "chunk"),
                "chunk index tag missing: {:?}",
                enter.fields
            );
            let mut at = enter.parent;
            let mut hops = 0;
            while let Some(id) = at {
                if id == root_id {
                    break;
                }
                at = ours.iter().find(|e| e.id == id).and_then(|e| e.parent);
                hops += 1;
                assert!(hops < 16, "runaway ancestor chain from {}", enter.id);
            }
            assert_eq!(at, Some(root_id), "chunk span disconnected from the root");
        }
        assert_eq!(queued_bytes(), 0, "queue drains with the pipeline");
        assert!(queued_bytes_peak() > 0, "back-pressure buffer saw traffic");
    }

    fn run_flushed(
        text: &str,
        config: &IngestConfig,
        cadence: FlushCadence,
    ) -> (Vec<PartialDay>, Vec<DayBatch>, IngestStats) {
        let mut partials = Vec::new();
        let mut days = Vec::new();
        let stats = ingest_events_flushed::<_, std::convert::Infallible, _, _>(
            Cursor::new(text.as_bytes().to_vec()),
            config,
            cadence,
            |p| {
                partials.push(p);
                Ok(())
            },
            |b| {
                days.push(b);
                Ok(())
            },
        )
        .unwrap();
        (partials, days, stats)
    }

    #[test]
    fn partial_slices_partition_each_day_exactly() {
        let events: Vec<LogEvent> = (0..300)
            .map(|i| event(4 + (i / 120) as u32, (i % 24) as u32, i % 5))
            .collect();
        let text = to_csv(&events);
        let (daily, _) = run(&text, &IngestConfig::default());
        for cadence in [
            FlushCadence::Events(1),
            FlushCadence::Events(7),
            FlushCadence::Events(10_000), // never fires mid-day
            FlushCadence::Minutes(1),
            FlushCadence::Minutes(120),
        ] {
            for threads in [1, 4] {
                let cfg = IngestConfig {
                    threads,
                    ..IngestConfig::default()
                };
                let (partials, days, stats) = run_flushed(&text, &cfg, cadence);
                assert_eq!(days.len(), daily.len(), "{cadence:?}");
                assert_eq!(stats.partial_flushes, partials.len() as u64);
                for (tail, full) in days.iter().zip(&daily) {
                    let slices: Vec<&PartialDay> =
                        partials.iter().filter(|p| p.date == full.date).collect();
                    // Slice indices are dense and the running count matches.
                    let mut so_far = 0u64;
                    for (i, slice) in slices.iter().enumerate() {
                        assert_eq!(slice.flush, i as u32);
                        so_far += slice.events.len() as u64;
                        assert_eq!(slice.events_so_far, so_far);
                        assert!(!slice.events.is_empty(), "empty partial slice");
                    }
                    // Concatenated slices + tail reproduce the daily batch.
                    let mut joined: Vec<LogEvent> = Vec::new();
                    for slice in &slices {
                        joined.extend(slice.events.iter().cloned());
                    }
                    joined.extend(tail.events.iter().cloned());
                    assert_eq!(joined, full.events, "{cadence:?} day {}", full.date);
                    // Rule hits stay whole-day on the closing batch.
                    assert_eq!(tail.rule_hits, full.rule_hits);
                }
            }
        }
    }

    #[test]
    fn per_day_cadence_is_the_daily_path() {
        let text = to_csv(&[event(4, 9, 0), event(4, 22, 1), event(5, 8, 0)]);
        let (partials, days, stats) =
            run_flushed(&text, &IngestConfig::default(), FlushCadence::PerDay);
        assert!(partials.is_empty());
        assert_eq!(stats.partial_flushes, 0);
        let (daily, _) = run(&text, &IngestConfig::default());
        assert_eq!(days.len(), daily.len());
        for (a, b) in days.iter().zip(&daily) {
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn minutes_cadence_flushes_on_window_crossings() {
        // Events at 09:00, 09:10, 09:40, 10:25 with a 30-minute window:
        // the 09:40 event crosses the 09:00 window (flush of 3), then the
        // 10:25 event starts and immediately sits alone in a fresh window.
        let d = Date::from_ymd(2010, 1, 4);
        let mk = |h: u32, m: u32| {
            LogEvent::Device(DeviceEvent {
                ts: d.at(h, m, 0),
                user: UserId(0),
                host: HostId(0),
                activity: DeviceActivity::Connect,
            })
        };
        let text = to_csv(&[mk(9, 0), mk(9, 10), mk(9, 40), mk(10, 25)]);
        let (partials, days, _) = run_flushed(
            &text,
            &IngestConfig {
                threads: 1,
                ..IngestConfig::default()
            },
            FlushCadence::Minutes(30),
        );
        assert_eq!(partials.len(), 1);
        assert_eq!(partials[0].events.len(), 3);
        assert_eq!(partials[0].events_so_far, 3);
        assert_eq!(days.len(), 1);
        assert_eq!(days[0].events.len(), 1); // the 10:25 tail
    }

    #[test]
    fn sink_error_aborts_pipeline() {
        let text = to_csv(&[event(4, 9, 0), event(5, 9, 0), event(6, 9, 0)]);
        let mut seen = 0;
        let result = ingest_events::<_, &'static str, _>(
            Cursor::new(text.into_bytes()),
            &IngestConfig {
                threads: 2,
                ..IngestConfig::default()
            },
            |_| {
                seen += 1;
                if seen == 2 {
                    Err("sink full")
                } else {
                    Ok(())
                }
            },
        );
        match result {
            Err(IngestError::Sink(e)) => assert_eq!(e, "sink full"),
            other => panic!("expected sink error, got {other:?}"),
        }
        assert_eq!(seen, 2);
    }
}
