//! CLI command implementations.

use acobe::alert::{AlertLog, AlertLogEntry, AlertPolicy};
use acobe::checkpoint::{CheckpointFormat, CheckpointOptions, SaveReport};
use acobe::config::AcobeConfig;
use acobe::engine::{DetectionEngine, EngineCheckpoint, ProvisionalResolution, ProvisionalScores};
use acobe::error::AcobeError;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_features::cert::{extract_cert_features, route_day_slabs, CountSemantics, DayExtractor};
use acobe_features::spec::cert_feature_set;
use acobe_ingest::FlushCadence;
use acobe_logs::csv::ParseCsvError;
use acobe_logs::event::LogEvent;
use acobe_logs::store::LogStore;
use acobe_logs::time::{Date, ParseDateError};
use acobe_obs::alert::AlertStatus;
use acobe_obs::DriftConfig;
use acobe_obs::HealthEvent;
use acobe_synth::cert::{CertConfig, CertGenerator};
use acobe_synth::org::OrgConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::fs;

/// Ingested days after which a resumed-from checkpoint is reported stale.
const CHECKPOINT_STALE_DAYS: i64 = 30;

/// Everything a CLI command can fail with. Each variant keeps its typed
/// source so `main` can print one human line while `Error::source` preserves
/// the chain for tooling.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line usage: unknown flags, unparsable values, ranges
    /// outside the dataset span.
    Usage(String),
    /// A filesystem read/write failed, tagged with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// The detection pipeline or engine rejected the request.
    Acobe(AcobeError),
    /// The audit-log CSV was malformed.
    Logs(ParseCsvError),
    /// A date argument or metadata date was malformed.
    Date(ParseDateError),
    /// Metadata or checkpoint JSON could not be parsed or serialized.
    Json(serde_json::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Acobe(e) => write!(f, "{e}"),
            CliError::Logs(e) => write!(f, "{e}"),
            CliError::Date(e) => write!(f, "{e}"),
            CliError::Json(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Io { source, .. } => Some(source),
            CliError::Acobe(e) => Some(e),
            CliError::Logs(e) => Some(e),
            CliError::Date(e) => Some(e),
            CliError::Json(e) => Some(e),
        }
    }
}

impl From<AcobeError> for CliError {
    fn from(e: AcobeError) -> Self {
        CliError::Acobe(e)
    }
}

impl From<ParseCsvError> for CliError {
    fn from(e: ParseCsvError) -> Self {
        CliError::Logs(e)
    }
}

impl From<ParseDateError> for CliError {
    fn from(e: ParseDateError) -> Self {
        CliError::Date(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

/// Dataset metadata written alongside the CSV so `detect` can reconstruct
/// the population and verify results.
#[derive(Debug, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Total users.
    pub users: usize,
    /// First logged day (`YYYY-MM-DD`).
    pub start: String,
    /// First day after the span.
    pub end: String,
    /// Group rosters by user index.
    pub groups: Vec<Vec<usize>>,
    /// Ground-truth victims (user index, scenario, anomaly window) — present
    /// for synthesized data, absent for real logs.
    #[serde(default)]
    pub victims: Vec<VictimMeta>,
}

/// One ground-truth victim record.
#[derive(Debug, Serialize, Deserialize)]
pub struct VictimMeta {
    /// User index.
    pub user: usize,
    /// Scenario name.
    pub scenario: String,
    /// First anomalous day.
    pub anomaly_start: String,
    /// First clean day.
    pub anomaly_end: String,
}

/// Legacy (v1) single-file checkpoint of an `acobe stream` run: the
/// incremental engine plus the novelty-set feature extractor, bound to the
/// train/score split date. Still readable by `--resume`, which migrates the
/// engine into the requested number of shards.
#[derive(Serialize, Deserialize)]
struct StreamCheckpoint {
    train_end: String,
    extractor: DayExtractor,
    engine: EngineCheckpoint,
}

/// The stream-level sidecar (`stream.json`) of a v2 directory checkpoint.
/// The engine itself lives in the sharded manifest + per-shard files written
/// by [`ShardedEngine::save`] in the same directory.
#[derive(Serialize, Deserialize)]
struct StreamMeta {
    train_end: String,
    extractor: DayExtractor,
}

fn arg<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Parses `--key VALUE` as a number, defaulting when absent.
fn num_arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, CliError> {
    match arg(args, key) {
        Some(s) => s.parse().map_err(|_| CliError::Usage(format!("bad {key}"))),
        None => Ok(default),
    }
}

fn read_file(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.to_string(),
        source: e,
    })
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(path, contents).map_err(|e| CliError::Io {
        path: path.to_string(),
        source: e,
    })
}

/// Serializes a JSON artifact: compact by default, indented with `--pretty`.
fn json_out<T: Serialize>(value: &T, pretty: bool) -> Result<String, CliError> {
    Ok(if pretty {
        serde_json::to_string_pretty(value)?
    } else {
        serde_json::to_string(value)?
    })
}

/// Parses the checkpoint knobs shared by `stream` and `ingest`:
/// `--checkpoint-format v2|v3` and `--delta-every N`.
fn checkpoint_options(args: &[String]) -> Result<CheckpointOptions, CliError> {
    let defaults = CheckpointOptions::default();
    let format = match arg(args, "--checkpoint-format") {
        Some(s) => s
            .parse::<CheckpointFormat>()
            .map_err(|e| CliError::Usage(format!("--checkpoint-format: {e}")))?,
        None => defaults.format,
    };
    let delta_every = num_arg(args, "--delta-every", defaults.delta_every)?;
    Ok(CheckpointOptions { format, delta_every })
}

/// Parses a `--flush-every` value: `30m` flushes on 30-minute windows,
/// `500e` (or a bare `500`) after every 500 events of the open day.
fn parse_flush_cadence(s: &str) -> Result<FlushCadence, CliError> {
    let bad = || CliError::Usage(format!("bad --flush-every '{s}' (expected e.g. 30m or 500e)"));
    if let Some(mins) = s.strip_suffix('m') {
        let m: u32 = mins.parse().map_err(|_| bad())?;
        if m == 0 {
            return Err(bad());
        }
        return Ok(FlushCadence::Minutes(m));
    }
    let n: u64 = s.strip_suffix('e').unwrap_or(s).parse().map_err(|_| bad())?;
    if n == 0 {
        return Err(bad());
    }
    Ok(FlushCadence::Events(n))
}

/// Parses the intraday knobs shared by `stream` and `ingest`: `--intraday`
/// enables provisional mid-day scoring, `--flush-every` sets its cadence
/// (default: one-hour windows).
fn intraday_options(args: &[String]) -> Result<Option<FlushCadence>, CliError> {
    let cadence = arg(args, "--flush-every").map(parse_flush_cadence).transpose()?;
    if !flag(args, "--intraday") {
        return match cadence {
            Some(_) => Err(CliError::Usage("--flush-every requires --intraday".into())),
            None => Ok(None),
        };
    }
    Ok(Some(cadence.unwrap_or(FlushCadence::Minutes(60))))
}

/// Splits one day's time-ordered events into sub-day flush slices — the
/// store-backed twin of the raw frontend's cadence batching. A window-
/// crossing event lands in the flush it triggers, and an event-less day
/// still yields one (empty) slice so the day opens.
fn cadence_slices(events: &[LogEvent], cadence: FlushCadence) -> Vec<&[LogEvent]> {
    if events.is_empty() {
        return vec![events];
    }
    match cadence {
        FlushCadence::PerDay => vec![events],
        FlushCadence::Events(n) => events.chunks(n.max(1) as usize).collect(),
        FlushCadence::Minutes(m) => {
            let mut slices = Vec::new();
            let mut begin = 0usize;
            let mut window_start: Option<u32> = None;
            for (i, event) in events.iter().enumerate() {
                let ts = event.ts();
                let now = ts.hour() * 3600 + ts.minute() * 60 + ts.second();
                let start = *window_start.get_or_insert(now);
                if now.saturating_sub(start) >= m.max(1) * 60 {
                    slices.push(&events[begin..=i]);
                    begin = i + 1;
                    window_start = None;
                }
            }
            if begin < events.len() {
                slices.push(&events[begin..]);
            }
            slices
        }
    }
}

/// Prints one provisional (mid-day) evaluation: the would-be investigation
/// line plus any provisional alerts, every line marked `~` so daily output
/// stays grep-ably distinct.
fn print_provisional(p: &ProvisionalScores, victims: &HashSet<usize>, top: usize) {
    let line: Vec<String> = p
        .investigation
        .iter()
        .take(top)
        .map(|inv| {
            let mark = if victims.contains(&inv.user) { "*" } else { "" };
            format!("{}{}(p{})", inv.user, mark, inv.priority)
        })
        .collect();
    println!("{} ~{:<8} {}", p.date, format!("{}ev", p.events), line.join("  "));
    for a in &p.alerts {
        let who = match a.user {
            Some(u) => format!("user {u}"),
            None => "system".to_string(),
        };
        println!("          ~ {} [{}] {who}: {}", a.id, a.severity, a.trigger);
    }
}

/// Publishes the day's memory accounting: the engine's per-shard state
/// breakdown plus the extractor's novelty sets and the in-memory alert
/// board, as `acobe_state_bytes{subsystem=…[,shard=…]}` gauges and the
/// `/healthz` mem block.
fn publish_mem(mut mem: acobe_obs::MemReport, extractor: &DayExtractor) {
    mem.push("novelty", extractor.state_bytes());
    mem.push(
        "alert_board",
        acobe_obs::MemAccount::mem_bytes(acobe_obs::alert::alerts()),
    );
    mem.publish();
    acobe_obs::monitor::board().set_mem(mem);
}

/// Prints how the open day's provisional alerts fared once it closed:
/// confirmed (naming the committed `al-` id) or retracted.
fn print_resolutions(resolutions: &[ProvisionalResolution]) {
    for r in resolutions {
        let outcome = if r.confirmed {
            match &r.committed_id {
                Some(id) => format!("confirmed as {id}"),
                None => "confirmed".to_string(),
            }
        } else {
            "retracted".to_string()
        };
        println!("          ~ {} {outcome}", r.alert.id);
    }
}

/// Writes one stream checkpoint — the engine via [`ShardedEngine::save_checkpoint`]
/// plus the `stream.json` sidecar binding the extractor and split date. A
/// mid-day save stages the extractor's open day into the checkpoint's ODAY
/// section; day-boundary saves clear it.
fn save_stream_checkpoint(
    engine: &mut ShardedEngine,
    extractor: &DayExtractor,
    train_end: Date,
    dir: &str,
    opts: &CheckpointOptions,
) -> Result<SaveReport, CliError> {
    engine.set_open_day(extractor.open_day().cloned());
    let report = engine.save_checkpoint(dir, opts)?;
    let sm = StreamMeta {
        train_end: train_end.to_string(),
        extractor: extractor.clone(),
    };
    write_file(&format!("{dir}/stream.json"), &serde_json::to_string(&sm)?)?;
    acobe_obs::monitor::board().set_checkpoint(&engine.next_date().add_days(-1).to_string(), 0);
    Ok(report)
}

fn load_meta(path: &str) -> Result<(DatasetMeta, Date, Date), CliError> {
    let meta: DatasetMeta = serde_json::from_str(&read_file(path)?)?;
    let start = Date::parse(&meta.start)?;
    let end = Date::parse(&meta.end)?;
    Ok((meta, start, end))
}

/// `acobe synth`.
pub fn synth(args: &[String]) -> Result<(), CliError> {
    let raw_out = arg(args, "--raw-out").map(str::to_string);
    let out = match &raw_out {
        Some(path) => path.clone(),
        None => arg(args, "--out").unwrap_or("acobe_logs.csv").to_string(),
    };
    let seed: u64 = num_arg(args, "--seed", 1)?;
    let users_per_dept: usize = num_arg(args, "--users-per-dept", 20)?;
    let departments: usize = num_arg(args, "--departments", 4)?;

    let org = OrgConfig {
        departments,
        users_per_dept,
        seed: seed ^ 0x0a6,
    };
    let config = CertConfig::paper(org, seed);
    acobe_obs::progress!(
        "synthesizing {} users over {}..{} ...",
        config.org.total_users(),
        config.start,
        config.end
    );
    let mut generator = CertGenerator::new(config.clone());
    let events_written = if raw_out.is_some() {
        // Raw streaming mode: write each day to disk as it is generated,
        // never holding the full dataset in memory. Events within a day are
        // stably sorted by timestamp, so the bytes are identical to the
        // store-backed `--out` path (which sorts globally — days never
        // interleave across midnight).
        use acobe_logs::csv::ToCsv;
        use std::io::Write;
        let file = fs::File::create(&out).map_err(|e| CliError::Io {
            path: out.clone(),
            source: e,
        })?;
        let mut writer = std::io::BufWriter::new(file);
        let mut written = 0usize;
        for date in config.start.range_to(config.end) {
            let mut day = generator.generate_day(date);
            day.sort_by_key(|e| e.ts());
            for event in &day {
                writeln!(writer, "{}", event.to_csv()).map_err(|e| CliError::Io {
                    path: out.clone(),
                    source: e,
                })?;
            }
            written += day.len();
        }
        writer.flush().map_err(|e| CliError::Io {
            path: out.clone(),
            source: e,
        })?;
        written
    } else {
        let store = generator.build_store();
        write_file(&out, &store.to_csv())?;
        store.len()
    };

    let groups: Vec<Vec<usize>> = generator
        .directory()
        .departments()
        .map(|d| {
            generator
                .directory()
                .members(d)
                .iter()
                .map(|u| u.index())
                .collect()
        })
        .collect();
    let meta = DatasetMeta {
        users: config.org.total_users(),
        start: config.start.to_string(),
        end: config.end.to_string(),
        groups,
        victims: generator
            .ground_truth()
            .iter()
            .map(|v| VictimMeta {
                user: v.user.index(),
                scenario: v.scenario.clone(),
                anomaly_start: v.anomaly_start.to_string(),
                anomaly_end: v.anomaly_end.to_string(),
            })
            .collect(),
    };
    let meta_path = format!("{out}.meta.json");
    write_file(&meta_path, &json_out(&meta, flag(args, "--pretty"))?)?;
    println!("wrote {events_written} events to {out} and metadata to {meta_path}");
    Ok(())
}

/// `acobe detect`.
pub fn detect(args: &[String]) -> Result<(), CliError> {
    let logs_path =
        arg(args, "--logs").ok_or_else(|| CliError::Usage("--logs FILE is required".into()))?;
    let meta_path =
        arg(args, "--meta").ok_or_else(|| CliError::Usage("--meta FILE is required".into()))?;
    let top: usize = num_arg(args, "--top", 10)?;
    let critic_n: usize = num_arg(args, "--critic-n", 2)?;
    let smooth: usize = num_arg(args, "--smooth", 3)?;

    let (meta, start, end) = load_meta(meta_path)?;
    let train_end = match arg(args, "--train-end") {
        Some(s) => Date::parse(s)?,
        None => start.add_days(end.days_since(start) * 7 / 10),
    };
    if train_end <= start || train_end >= end {
        return Err(CliError::Usage(format!(
            "--train-end must fall inside the span {start}..{end}"
        )));
    }

    acobe_obs::progress!("loading {logs_path} ...");
    let store = LogStore::from_csv(&read_file(logs_path)?)?;
    acobe_obs::progress!("extracting features from {} events ...", store.len());
    let cube = extract_cert_features(&store, meta.users, start, end, CountSemantics::Plain);

    let config = if flag(args, "--paper-model") {
        AcobeConfig::paper()
    } else {
        AcobeConfig::fast()
    }
    .with_critic_n(critic_n);
    let mut pipeline = AcobePipeline::new(cube, cert_feature_set(), &meta.groups, config)?;
    acobe_obs::progress!("training on {start}..{train_end} ...");
    pipeline.fit(start, train_end)?;
    acobe_obs::progress!("scoring {train_end}..{end} ...");
    let table = pipeline.score_range(train_end, end)?;
    let list = table.investigation_list_smoothed(critic_n, smooth);

    println!("\ninvestigation list (top {top} of {}):", list.len());
    for (i, inv) in list.iter().take(top).enumerate() {
        let truth = meta
            .victims
            .iter()
            .find(|v| v.user == inv.user)
            .map(|v| format!("  <-- ground-truth insider ({})", v.scenario))
            .unwrap_or_default();
        println!(
            "  {:>3}. user {:>5}  priority {:>4}{truth}",
            i + 1,
            inv.user,
            inv.priority
        );
    }
    if !meta.victims.is_empty() {
        println!("\nground-truth positions:");
        for v in &meta.victims {
            let pos = list.iter().position(|inv| inv.user == v.user).unwrap();
            println!(
                "  user {:>5} ({:>9}) at position {} of {}",
                v.user,
                v.scenario,
                pos + 1,
                list.len()
            );
        }
    }
    Ok(())
}

/// `acobe stream`: feed the logs through the incremental engine one day at a
/// time, printing a daily investigation list — the streaming deployment of
/// the exact batch scoring path, with checkpoint/resume.
pub fn stream(args: &[String]) -> Result<(), CliError> {
    let logs_path =
        arg(args, "--logs").ok_or_else(|| CliError::Usage("--logs FILE is required".into()))?;
    let meta_path =
        arg(args, "--meta").ok_or_else(|| CliError::Usage("--meta FILE is required".into()))?;
    let top: usize = num_arg(args, "--top", 10)?;
    let critic_n: usize = num_arg(args, "--critic-n", 2)?;
    let smooth: usize = num_arg(args, "--smooth", 3)?;
    let shards: usize = num_arg(args, "--shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let pretty = flag(args, "--pretty");
    let ckpt_opts = checkpoint_options(args)?;
    let checkpoint_every: usize = num_arg(args, "--checkpoint-every", 0)?;
    let checkpoint_dir = arg(args, "--checkpoint").map(str::to_string);
    let intraday = intraday_options(args)?;
    let lag_defaults = DriftConfig::default();
    let lag_ratio: f64 = num_arg(args, "--lag-ratio", lag_defaults.lag_ratio)?;
    let lag_min_ms: f64 = num_arg(args, "--lag-min-ms", lag_defaults.lag_min_ms)?;
    let policy_defaults = AlertPolicy::default();
    let policy = AlertPolicy {
        watch_top_n: num_arg(args, "--alert-top-n", policy_defaults.watch_top_n)?,
        rank_jump_min: num_arg(args, "--alert-rank-jump", policy_defaults.rank_jump_min)?,
        cooldown_days: num_arg(args, "--alert-cooldown", policy_defaults.cooldown_days)?,
        rule_z: num_arg(args, "--alert-rule-z", policy_defaults.rule_z)?,
        top_k_features: num_arg(args, "--alert-top-k", policy_defaults.top_k_features)?,
    };

    let (meta, start, end) = load_meta(meta_path)?;
    let until = match arg(args, "--until") {
        Some(s) => Date::parse(s)?,
        None => end,
    };

    acobe_obs::progress!("loading {logs_path} ...");
    let store = LogStore::from_csv(&read_file(logs_path)?)?;

    let mut resumed_legacy = false;
    let (mut engine, mut extractor, train_end) = match arg(args, "--resume") {
        Some(path) if std::path::Path::new(path).is_dir() => {
            // Directory checkpoint (v2 JSON or v3 binary): sharded engine +
            // stream sidecar. The manifest's shard count wins over --shards.
            resumed_legacy = !acobe::checkpoint::dir_is_v3(path);
            let sidecar = format!("{path}/stream.json");
            let sm: StreamMeta = serde_json::from_str(&read_file(&sidecar)?)?;
            let train_end = Date::parse(&sm.train_end)?;
            let engine = ShardedEngine::load(path, shards)?;
            for (i, e) in engine.quarantined() {
                eprintln!("warning: shard {i} quarantined, its users score NaN: {e}");
            }
            acobe_obs::progress!(
                "resumed sharded checkpoint {path} ({} shards, {}/{} users live): next day {}",
                engine.shard_count(),
                engine.live_users(),
                engine.users(),
                engine.next_date()
            );
            (engine, sm.extractor, train_end)
        }
        Some(path) => {
            // Legacy v1 single-file checkpoint: migrate into --shards shards.
            resumed_legacy = true;
            let ck: StreamCheckpoint = serde_json::from_str(&read_file(path)?)?;
            let train_end = Date::parse(&ck.train_end)?;
            let engine = ShardedEngine::from_engine(DetectionEngine::restore(ck.engine)?, shards)?;
            acobe_obs::progress!(
                "migrated v1 checkpoint {path} into {} shard(s): next day {}",
                engine.shard_count(),
                engine.next_date()
            );
            (engine, ck.extractor, train_end)
        }
        None => {
            let train_end = match arg(args, "--train-end") {
                Some(s) => Date::parse(s)?,
                None => start.add_days(end.days_since(start) * 7 / 10),
            };
            if train_end <= start || train_end >= end {
                return Err(CliError::Usage(format!(
                    "--train-end must fall inside the span {start}..{end}"
                )));
            }
            let config = if flag(args, "--paper-model") {
                AcobeConfig::paper()
            } else {
                AcobeConfig::fast()
            }
            .with_critic_n(critic_n);
            acobe_obs::progress!(
                "extracting training features from {} events ...",
                store.len()
            );
            let cube =
                extract_cert_features(&store, meta.users, start, train_end, CountSemantics::Plain);
            let mut pipeline = AcobePipeline::new(cube, cert_feature_set(), &meta.groups, config)?;
            acobe_obs::progress!("training on {start}..{train_end} ...");
            pipeline.fit(start, train_end)?;
            let mut engine = pipeline.into_engine();
            engine.reset_stream();
            let engine = ShardedEngine::from_engine(engine, shards)?;
            let extractor = DayExtractor::new(meta.users, start, CountSemantics::Plain);
            (engine, extractor, train_end)
        }
    };
    if extractor.next_date() != engine.next_date() {
        return Err(CliError::Usage(format!(
            "checkpoint is inconsistent: extractor at {}, engine at {}",
            extractor.next_date(),
            engine.next_date()
        )));
    }
    // Mid-day checkpoint: the sidecar extractor normally carries the open
    // day already; re-install it from the engine's ODAY section when it
    // does not (a sidecar written by a pre-intraday build). Boundary delta
    // saves append to the chain without rewriting the manifest, so the ODAY
    // section can be stale from an older mid-day full save — the sidecar is
    // authoritative, and a date mismatch means the section is ignored.
    if let Some(open) = engine.take_open_day() {
        if extractor.open_day().is_none() {
            let date = open.date();
            if extractor.restore_open_day(open).is_err() {
                acobe_obs::progress!(
                    "ignoring stale mid-day state in checkpoint (open day {date}, sidecar is ahead)"
                );
            }
        }
    }
    // The alert policy is deliberately not checkpointed: thresholds can be
    // retuned across a resume. The lag knobs feed the shard-lag heuristic
    // only, so setting them never perturbs scores or the drift monitor.
    engine.set_lag_config(lag_ratio, lag_min_ms);
    engine.set_alert_policy(Some(policy));
    // Upgrade-on-load: a v1/v2 JSON resume with a v3 checkpoint target is
    // rewritten immediately, so the legacy format is read at most once.
    if resumed_legacy && ckpt_opts.format == CheckpointFormat::V3Binary {
        if let Some(dir) = &checkpoint_dir {
            let report = save_stream_checkpoint(&mut engine, &extractor, train_end, dir, &ckpt_opts)?;
            acobe_obs::progress!(
                "upgraded legacy checkpoint to v3 binary at {dir}/ ({} bytes)",
                report.bytes
            );
        }
    }
    let alert_log = match arg(args, "--alerts-log") {
        Some(path) => {
            // On resume the checkpoint carries the alert high-water mark:
            // prune anything the replay will re-raise so the log stays
            // exactly-once. A fresh stream truncates.
            let resume_seq = arg(args, "--resume").map(|_| engine.alert_next_seq());
            Some(AlertLog::open(path, resume_seq)?)
        }
        None => None,
    };

    let victims: HashSet<usize> = meta.victims.iter().map(|v| v.user).collect();
    let assign = engine.assignment().to_vec();
    let shard_count = engine.shard_count();
    let features = cert_feature_set().len();
    let mut last_list = Vec::new();
    let mut streamed = 0usize;
    let mut scored = 0usize;
    let mut alerts_raised = 0usize;
    let mut date = engine.next_date();
    // A mid-day resume already absorbed the first events of the open day;
    // event order is deterministic, so a count says where to pick up.
    let mut resume_skip = extractor.open_day().map(|o| (o.date(), o.events()));
    // When resuming, the checkpoint on disk covers up to the day before the
    // engine's next day; track its age so /healthz can flag it going stale.
    let checkpoint_base = arg(args, "--resume").map(|_| engine.next_date());
    let mut stale_reported = false;
    while date < until {
        let full_day = store.day(date);
        let day_events = match resume_skip {
            Some((d, n)) if d == date => {
                resume_skip = None;
                &full_day[(n as usize).min(full_day.len())..]
            }
            _ => full_day,
        };
        let scores = match (intraday, date >= train_end) {
            (Some(cadence), true) => {
                // Intraday: push the day in cadence slices, scoring the open
                // day provisionally at each flush, then close and commit —
                // the committed results are bit-identical to the daily path.
                for slice in cadence_slices(day_events, cadence) {
                    extractor.push_events(date, slice).map_err(AcobeError::from)?;
                    let open = extractor.open_day().expect("day just opened");
                    let events_so_far = open.events();
                    acobe_obs::monitor::board().set_open_day(
                        &date.to_string(),
                        events_so_far,
                        open.flushes(),
                    );
                    if let Some(p) =
                        engine.ingest_partial(date, open.measurements_so_far(), events_so_far)?
                    {
                        print_provisional(&p, &victims, top);
                    }
                }
                let flat = extractor.close_day().expect("open day closes");
                acobe_obs::monitor::board().clear_open_day();
                let slabs = route_day_slabs(&flat, meta.users, features, &assign, shard_count);
                engine.ingest_day_slabs(date, &slabs)?
            }
            _ => {
                let slabs = extractor
                    .ingest_day_sharded(date, day_events, &assign, shard_count)
                    .map_err(AcobeError::from)?;
                if date < train_end {
                    engine.warm_day_slabs(date, &slabs)?;
                    None
                } else {
                    engine.ingest_day_slabs(date, &slabs)?
                }
            }
        };
        if scores.is_some() {
            scored += 1;
            let list = engine.daily_investigation(critic_n, smooth);
            let line: Vec<String> = list
                .iter()
                .take(top)
                .map(|inv| {
                    let mark = if victims.contains(&inv.user) { "*" } else { "" };
                    format!("{}{}(p{})", inv.user, mark, inv.priority)
                })
                .collect();
            println!("{date}  {}", line.join("  "));
            last_list = list;
            let alerts = engine.take_alerts();
            if !alerts.is_empty() {
                alerts_raised += alerts.len();
                for a in &alerts {
                    let who = match a.user {
                        Some(u) => format!("user {u}"),
                        None => "system".to_string(),
                    };
                    println!("          ! {} [{}] {who}: {}", a.id, a.severity, a.trigger);
                }
                if let Some(log) = &alert_log {
                    log.append_raised(&alerts)?;
                }
            }
            if intraday.is_some() {
                print_resolutions(&engine.take_provisional_resolutions());
            }
        }
        streamed += 1;
        date = date.add_days(1);
        publish_mem(engine.mem_report(), &extractor);
        let board = acobe_obs::monitor::board();
        board.set_days_behind(until.days_since(date).max(0) as i64);
        if let Some(base) = checkpoint_base {
            let age = date.days_since(base) as i64;
            let last_day = base.add_days(-1).to_string();
            board.set_checkpoint(&last_day, age);
            if age > CHECKPOINT_STALE_DAYS && !stale_reported {
                stale_reported = true;
                board.report(HealthEvent::CheckpointStale {
                    age_days: age,
                    last_day,
                });
            }
        }
        // Keep --metrics-out live: rewrite the snapshot (atomically) after
        // every ingested day so a crash mid-stream still leaves fresh data.
        if let Err(e) = acobe_obs::flush_metrics() {
            eprintln!("warning: metrics flush failed: {e}");
        }
        // Periodic checkpoints: a full snapshot first, then per-shard deltas
        // until the --delta-every bound compacts the chain.
        if checkpoint_every > 0 && streamed % checkpoint_every == 0 {
            if let Some(dir) = &checkpoint_dir {
                let report =
                    save_stream_checkpoint(&mut engine, &extractor, train_end, dir, &ckpt_opts)?;
                acobe_obs::progress!(
                    "checkpoint ({}) written to {dir}/ after {date}: {} bytes",
                    report.kind.label(),
                    report.bytes
                );
            }
        }
    }
    acobe_obs::progress!("streamed {streamed} days ({scored} scored) up to {date}");
    if let Some(log) = &alert_log {
        acobe_obs::progress!(
            "{alerts_raised} alerts appended to {}",
            log.path().display()
        );
    }

    if let Some(path) = arg(args, "--final-out") {
        write_file(path, &json_out(&last_list, pretty)?)?;
        acobe_obs::progress!("final investigation list written to {path}");
    }
    if let Some(dir) = &checkpoint_dir {
        let report = save_stream_checkpoint(&mut engine, &extractor, train_end, dir, &ckpt_opts)?;
        acobe_obs::progress!(
            "sharded checkpoint written to {dir}/ ({} shards, {} {} save, {} bytes)",
            engine.shard_count(),
            ckpt_opts.format,
            report.kind.label(),
            report.bytes
        );
    }
    Ok(())
}

/// Training-phase accumulation for a fresh `acobe ingest` run: the feature
/// cube being filled ahead of model fitting, plus the flat warm-day vectors
/// buffered for replay once the engine exists.
struct IngestTraining {
    cube: acobe_features::FeatureCube,
    warm: Vec<(Date, Vec<f32>)>,
    model_config: AcobeConfig,
}

/// Per-run state for `acobe ingest`: one [`DayExtractor`] feeding both the
/// training cube and the (lazily built) engine, plus the scoring/alerting
/// loop state mirrored from [`stream`] so the two paths print, alert and
/// checkpoint identically.
struct IngestRun<'a> {
    users: usize,
    features: usize,
    start: Date,
    train_end: Date,
    until: Date,
    groups: &'a [Vec<usize>],
    victims: &'a HashSet<usize>,
    shards: usize,
    critic_n: usize,
    smooth: usize,
    top: usize,
    lag_ratio: f64,
    lag_min_ms: f64,
    policy: AlertPolicy,
    extractor: DayExtractor,
    /// Extractor state cloned the moment the stream reaches `until`, for the
    /// checkpoint sidecar when training consumes days past `until`.
    snapshot: Option<DayExtractor>,
    /// Next calendar day to feed.
    cursor: Date,
    training: Option<IngestTraining>,
    engine: Option<ShardedEngine>,
    alert_log: Option<AlertLog>,
    checkpoint_base: Option<Date>,
    /// `--checkpoint` target directory, when given.
    checkpoint_dir: Option<String>,
    /// Format + delta cadence for every save this run writes.
    ckpt_opts: CheckpointOptions,
    /// Streamed days between periodic saves (`0` = final save only).
    checkpoint_every: usize,
    stale_reported: bool,
    last_list: Vec<acobe::critic::Investigation>,
    streamed: usize,
    scored: usize,
    alerts_raised: usize,
    /// `--intraday`: score the open day provisionally at each sub-day flush
    /// (the flush cadence itself lives in the raw frontend).
    intraday: bool,
    /// Events of a resumed open day the pre-crash run already absorbed —
    /// event order is deterministic, so a count says where to pick up.
    skip: Option<(Date, u64)>,
    /// `--stop-after-flushes`: remaining sub-day flushes before the run
    /// stops consuming — a deterministic mid-day interrupt, so crash-resume
    /// drills don't need to kill the process.
    stop_after_flushes: Option<u64>,
    /// Set once the flush budget is spent; every later feed is a no-op and
    /// the final checkpoint carries the open day.
    stopped: bool,
}

impl IngestRun<'_> {
    /// Feeds every calendar day in `[cursor, date)` as empty, then `date`
    /// itself. Days before the cursor (already covered by a resumed
    /// checkpoint) are skipped.
    fn feed_through(
        &mut self,
        date: Date,
        events: &[acobe_logs::event::LogEvent],
    ) -> Result<(), CliError> {
        if self.stopped || date < self.cursor {
            return Ok(());
        }
        while self.cursor < date {
            let d = self.cursor;
            self.feed_day(d, &[])?;
        }
        self.feed_day(date, events)
    }

    /// Drops the prefix of a resumed open day's events that the pre-crash
    /// run already absorbed.
    fn trim_resumed<'e>(
        &mut self,
        date: Date,
        events: &'e [acobe_logs::event::LogEvent],
    ) -> &'e [acobe_logs::event::LogEvent] {
        let Some((d, n)) = self.skip.as_mut() else { return events };
        if *d != date || *n == 0 {
            return events;
        }
        let take = (*n).min(events.len() as u64) as usize;
        *n -= take as u64;
        &events[take..]
    }

    /// Feeds one sub-day flush: calendar-completes up to its day, pushes the
    /// slice into the open day and — in the scored window — evaluates
    /// provisional scores against the committed baselines. The ingest-path
    /// twin of one `stream --intraday` flush iteration.
    fn feed_partial(&mut self, partial: &acobe_ingest::PartialDay) -> Result<(), CliError> {
        let date = partial.date;
        if self.stopped || date < self.cursor {
            return Ok(());
        }
        while self.cursor < date {
            let d = self.cursor;
            self.feed_day(d, &[])?;
            if self.stopped {
                return Ok(());
            }
        }
        if date == self.until && self.snapshot.is_none() {
            // The checkpoint sidecar wants the extractor exactly at --until,
            // before this day absorbs any events.
            self.snapshot = Some(self.extractor.clone());
        }
        let events = self.trim_resumed(date, &partial.events);
        self.extractor.push_events(date, events).map_err(AcobeError::from)?;
        let (events_so_far, flushes) = {
            let open = self.extractor.open_day().expect("day just opened");
            (open.events(), open.flushes())
        };
        acobe_obs::monitor::board().set_open_day(&date.to_string(), events_so_far, flushes);
        if let Some(budget) = self.stop_after_flushes.as_mut() {
            *budget = budget.saturating_sub(1);
            if *budget == 0 {
                self.stopped = true;
                acobe_obs::progress!(
                    "stopping mid-day after flush budget: {date} open at {events_so_far} events"
                );
                return Ok(());
            }
        }
        if date < self.train_end || date >= self.until {
            return Ok(());
        }
        self.build_engine_if_needed()?;
        let provisional = {
            let open = self.extractor.open_day().expect("day is open");
            let engine = self.engine.as_mut().expect("engine");
            engine.ingest_partial(date, open.measurements_so_far(), events_so_far)?
        };
        if let Some(p) = provisional {
            print_provisional(&p, self.victims, self.top);
        }
        Ok(())
    }

    /// Feeds one calendar day — the ingest-path equivalent of one `stream`
    /// loop iteration. Training days accumulate the cube (fresh) or warm the
    /// engine (resume); scored days run the engine, print the investigation
    /// line and raise alerts exactly as `stream` does.
    fn feed_day(
        &mut self,
        date: Date,
        events: &[acobe_logs::event::LogEvent],
    ) -> Result<(), CliError> {
        debug_assert_eq!(date, self.cursor, "days must be fed consecutively");
        if self.stopped {
            return Ok(());
        }
        if date == self.until && self.snapshot.is_none() {
            // The checkpoint sidecar wants the extractor exactly here even
            // when training reads further ahead.
            self.snapshot = Some(self.extractor.clone());
        }
        let events = self.trim_resumed(date, events);
        let in_stream = date < self.until;
        if date < self.train_end {
            if let Some(training) = self.training.as_mut() {
                let flat = self
                    .extractor
                    .ingest_day(date, events)
                    .map_err(AcobeError::from)?;
                for u in 0..self.users {
                    for t in 0..2 {
                        for f in 0..self.features {
                            let v = flat[(u * 2 + t) * self.features + f];
                            if v != 0.0 {
                                training.cube.add(u, date, t, f, v);
                            }
                        }
                    }
                }
                if in_stream {
                    training.warm.push((date, flat));
                }
            } else if in_stream {
                let engine = self.engine.as_mut().expect("resumed engine");
                engine.warm_day_events(&mut self.extractor, date, events)?;
            }
        } else if in_stream {
            self.build_engine_if_needed()?;
            let engine = self.engine.as_mut().expect("engine");
            if engine
                .ingest_day_events(&mut self.extractor, date, events)?
                .is_some()
            {
                self.scored += 1;
                let list = engine.daily_investigation(self.critic_n, self.smooth);
                let line: Vec<String> = list
                    .iter()
                    .take(self.top)
                    .map(|inv| {
                        let mark = if self.victims.contains(&inv.user) {
                            "*"
                        } else {
                            ""
                        };
                        format!("{}{}(p{})", inv.user, mark, inv.priority)
                    })
                    .collect();
                println!("{date}  {}", line.join("  "));
                self.last_list = list;
                let alerts = engine.take_alerts();
                if !alerts.is_empty() {
                    self.alerts_raised += alerts.len();
                    for a in &alerts {
                        let who = match a.user {
                            Some(u) => format!("user {u}"),
                            None => "system".to_string(),
                        };
                        println!("          ! {} [{}] {who}: {}", a.id, a.severity, a.trigger);
                    }
                    if let Some(log) = &self.alert_log {
                        log.append_raised(&alerts)?;
                    }
                }
                if self.intraday {
                    print_resolutions(&engine.take_provisional_resolutions());
                }
            }
        }
        if self.intraday {
            acobe_obs::monitor::board().clear_open_day();
        }
        self.cursor = date.add_days(1);
        if in_stream {
            self.streamed += 1;
            self.after_day();
            // Periodic checkpoints, mirroring the `stream` loop tail: a full
            // snapshot first, then per-shard deltas until the --delta-every
            // bound compacts the chain.
            if self.checkpoint_every > 0 && self.streamed % self.checkpoint_every == 0 {
                if let (Some(dir), Some(engine)) = (&self.checkpoint_dir, self.engine.as_mut()) {
                    let report = save_stream_checkpoint(
                        engine,
                        &self.extractor,
                        self.train_end,
                        dir,
                        &self.ckpt_opts,
                    )?;
                    acobe_obs::progress!(
                        "checkpoint ({}) written to {dir}/ after {date}: {} bytes",
                        report.kind.label(),
                        report.bytes
                    );
                }
            }
        }
        Ok(())
    }

    /// Trains the model and builds the sharded engine from the accumulated
    /// cube, then replays the buffered warm days into it. No-op once built.
    fn build_engine_if_needed(&mut self) -> Result<(), CliError> {
        if self.engine.is_some() {
            return Ok(());
        }
        let training = self.training.take().expect("training state");
        acobe_obs::progress!("training on {}..{} ...", self.start, self.train_end);
        let mut pipeline = AcobePipeline::new(
            training.cube,
            cert_feature_set(),
            self.groups,
            training.model_config,
        )?;
        pipeline.fit(self.start, self.train_end)?;
        let mut engine = pipeline.into_engine();
        engine.reset_stream();
        let mut engine = ShardedEngine::from_engine(engine, self.shards)?;
        engine.set_lag_config(self.lag_ratio, self.lag_min_ms);
        engine.set_alert_policy(Some(self.policy.clone()));
        let assign = engine.assignment().to_vec();
        let shard_count = engine.shard_count();
        for (d, flat) in &training.warm {
            let slabs = route_day_slabs(flat, self.users, self.features, &assign, shard_count);
            engine.warm_day_slabs(*d, &slabs)?;
        }
        self.engine = Some(engine);
        Ok(())
    }

    /// Per-day telemetry updates, identical to the `stream` loop tail.
    fn after_day(&mut self) {
        if let Some(engine) = self.engine.as_mut() {
            let mut mem = engine.mem_report();
            // The raw frontend adds its back-pressure buffer: report the
            // run's high-water mark, since the queue drains between days.
            mem.push("ingest_queue", acobe_ingest::queued_bytes_peak());
            publish_mem(mem, &self.extractor);
        }
        let date = self.cursor;
        let board = acobe_obs::monitor::board();
        board.set_days_behind(self.until.days_since(date).max(0) as i64);
        if let Some(base) = self.checkpoint_base {
            let age = date.days_since(base) as i64;
            let last_day = base.add_days(-1).to_string();
            board.set_checkpoint(&last_day, age);
            if age > CHECKPOINT_STALE_DAYS && !self.stale_reported {
                self.stale_reported = true;
                board.report(HealthEvent::CheckpointStale {
                    age_days: age,
                    last_day,
                });
            }
        }
        if let Err(e) = acobe_obs::flush_metrics() {
            eprintln!("warning: metrics flush failed: {e}");
        }
    }
}

/// `acobe ingest`: the wire-speed raw-log frontend end-to-end — record-
/// boundary chunking, zero-copy parallel CSV parsing with bounded-queue
/// back-pressure, optional inline rules, and per-day batches fed straight
/// into the same training/scoring/alerting/checkpointing path as
/// `acobe stream`. The investigation lists and alert log are bit-identical
/// to the stream path at every `--threads` and `--shards` setting.
pub fn ingest(args: &[String]) -> Result<(), CliError> {
    use acobe_ingest::{IngestConfig, IngestError, RuleSet};

    let raw_path =
        arg(args, "--raw").ok_or_else(|| CliError::Usage("--raw FILE is required".into()))?;
    let meta_path =
        arg(args, "--meta").ok_or_else(|| CliError::Usage("--meta FILE is required".into()))?;
    let top: usize = num_arg(args, "--top", 10)?;
    let critic_n: usize = num_arg(args, "--critic-n", 2)?;
    let smooth: usize = num_arg(args, "--smooth", 3)?;
    let shards: usize = num_arg(args, "--shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let pretty = flag(args, "--pretty");
    let ckpt_opts = checkpoint_options(args)?;
    let checkpoint_every: usize = num_arg(args, "--checkpoint-every", 0)?;
    let checkpoint_dir = arg(args, "--checkpoint").map(str::to_string);
    let intraday = intraday_options(args)?;
    let stop_after_flushes: u64 = num_arg(args, "--stop-after-flushes", 0)?;
    if stop_after_flushes > 0 && intraday.is_none() {
        return Err(CliError::Usage("--stop-after-flushes requires --intraday".into()));
    }
    let defaults = IngestConfig::default();
    let threads: usize = num_arg(args, "--threads", defaults.threads)?;
    let chunk_kb: usize = num_arg(args, "--chunk-kb", 1024)?;
    let queue: usize = num_arg(args, "--queue", defaults.queue_depth)?;
    let ingest_cfg = IngestConfig {
        threads: threads.max(1),
        chunk_bytes: chunk_kb.max(1) * 1024,
        queue_depth: queue.max(1),
        strict: flag(args, "--strict"),
        rules: if flag(args, "--inline-rules") {
            RuleSet::standard()
        } else {
            RuleSet::none()
        },
    };
    let lag_defaults = DriftConfig::default();
    let lag_ratio: f64 = num_arg(args, "--lag-ratio", lag_defaults.lag_ratio)?;
    let lag_min_ms: f64 = num_arg(args, "--lag-min-ms", lag_defaults.lag_min_ms)?;
    let policy_defaults = AlertPolicy::default();
    let policy = AlertPolicy {
        watch_top_n: num_arg(args, "--alert-top-n", policy_defaults.watch_top_n)?,
        rank_jump_min: num_arg(args, "--alert-rank-jump", policy_defaults.rank_jump_min)?,
        cooldown_days: num_arg(args, "--alert-cooldown", policy_defaults.cooldown_days)?,
        rule_z: num_arg(args, "--alert-rule-z", policy_defaults.rule_z)?,
        top_k_features: num_arg(args, "--alert-top-k", policy_defaults.top_k_features)?,
    };

    let (meta, start, end) = load_meta(meta_path)?;
    let until = match arg(args, "--until") {
        Some(s) => Date::parse(s)?,
        None => end,
    };
    let features = cert_feature_set().len();

    let mut resumed_legacy = false;
    let (engine, mut extractor, training, train_end) = match arg(args, "--resume") {
        Some(path) if std::path::Path::new(path).is_dir() => {
            resumed_legacy = !acobe::checkpoint::dir_is_v3(path);
            let sidecar = format!("{path}/stream.json");
            let sm: StreamMeta = serde_json::from_str(&read_file(&sidecar)?)?;
            let train_end = Date::parse(&sm.train_end)?;
            let engine = ShardedEngine::load(path, shards)?;
            for (i, e) in engine.quarantined() {
                eprintln!("warning: shard {i} quarantined, its users score NaN: {e}");
            }
            acobe_obs::progress!(
                "resumed sharded checkpoint {path} ({} shards, {}/{} users live): next day {}",
                engine.shard_count(),
                engine.live_users(),
                engine.users(),
                engine.next_date()
            );
            (Some(engine), sm.extractor, None, train_end)
        }
        Some(path) => {
            resumed_legacy = true;
            let ck: StreamCheckpoint = serde_json::from_str(&read_file(path)?)?;
            let train_end = Date::parse(&ck.train_end)?;
            let engine = ShardedEngine::from_engine(DetectionEngine::restore(ck.engine)?, shards)?;
            acobe_obs::progress!(
                "migrated v1 checkpoint {path} into {} shard(s): next day {}",
                engine.shard_count(),
                engine.next_date()
            );
            (Some(engine), ck.extractor, None, train_end)
        }
        None => {
            let train_end = match arg(args, "--train-end") {
                Some(s) => Date::parse(s)?,
                None => start.add_days(end.days_since(start) * 7 / 10),
            };
            if train_end <= start || train_end >= end {
                return Err(CliError::Usage(format!(
                    "--train-end must fall inside the span {start}..{end}"
                )));
            }
            let model_config = if flag(args, "--paper-model") {
                AcobeConfig::paper()
            } else {
                AcobeConfig::fast()
            }
            .with_critic_n(critic_n);
            let days = train_end.days_since(start) as usize;
            let training = IngestTraining {
                cube: acobe_features::FeatureCube::new(meta.users, start, days, 2, features),
                warm: Vec::new(),
                model_config,
            };
            let extractor = DayExtractor::new(meta.users, start, CountSemantics::Plain);
            (None, extractor, Some(training), train_end)
        }
    };
    let mut engine = engine;
    if let Some(engine) = engine.as_mut() {
        if extractor.next_date() != engine.next_date() {
            return Err(CliError::Usage(format!(
                "checkpoint is inconsistent: extractor at {}, engine at {}",
                extractor.next_date(),
                engine.next_date()
            )));
        }
        engine.set_lag_config(lag_ratio, lag_min_ms);
        engine.set_alert_policy(Some(policy.clone()));
        // Mid-day checkpoint: the sidecar extractor normally carries the
        // open day already; re-install it from the engine's ODAY section
        // when it does not (a sidecar written by a pre-intraday build).
        // Boundary delta saves append to the chain without rewriting the
        // manifest, so the ODAY section can be stale from an older mid-day
        // full save — the sidecar is authoritative, and a date mismatch
        // means the section is ignored.
        if let Some(open) = engine.take_open_day() {
            if extractor.open_day().is_none() {
                let date = open.date();
                if extractor.restore_open_day(open).is_err() {
                    acobe_obs::progress!(
                        "ignoring stale mid-day state in checkpoint (open day {date}, sidecar is ahead)"
                    );
                }
            }
        }
        // Upgrade-on-load: a v1/v2 JSON resume with a v3 checkpoint target is
        // rewritten immediately, so the legacy format is read at most once.
        if resumed_legacy && ckpt_opts.format == CheckpointFormat::V3Binary {
            if let Some(dir) = &checkpoint_dir {
                let report =
                    save_stream_checkpoint(engine, &extractor, train_end, dir, &ckpt_opts)?;
                acobe_obs::progress!(
                    "upgraded legacy checkpoint to v3 binary at {dir}/ ({} bytes)",
                    report.bytes
                );
            }
        }
    }
    let alert_log = match arg(args, "--alerts-log") {
        Some(path) => {
            let resume_seq = match (&engine, arg(args, "--resume")) {
                (Some(engine), Some(_)) => Some(engine.alert_next_seq()),
                _ => None,
            };
            Some(AlertLog::open(path, resume_seq)?)
        }
        None => None,
    };

    let victims: HashSet<usize> = meta.victims.iter().map(|v| v.user).collect();
    let cursor = engine.as_ref().map_or(start, ShardedEngine::next_date);
    let checkpoint_base = arg(args, "--resume").map(|_| cursor);
    // A resumed open day means the pre-crash run consumed its first events
    // already; the replayed raw file must skip exactly that prefix.
    let skip = extractor.open_day().map(|o| (o.date(), o.events()));
    let run = IngestRun {
        users: meta.users,
        features,
        start,
        train_end,
        until,
        groups: &meta.groups,
        victims: &victims,
        shards,
        critic_n,
        smooth,
        top,
        lag_ratio,
        lag_min_ms,
        policy,
        extractor,
        snapshot: None,
        cursor,
        training,
        engine,
        alert_log,
        checkpoint_base,
        checkpoint_dir: checkpoint_dir.clone(),
        ckpt_opts,
        checkpoint_every,
        stale_reported: false,
        last_list: Vec::new(),
        streamed: 0,
        scored: 0,
        alerts_raised: 0,
        intraday: intraday.is_some(),
        skip,
        stop_after_flushes: (stop_after_flushes > 0).then_some(stop_after_flushes),
        stopped: false,
    };

    acobe_obs::progress!(
        "ingesting {raw_path} ({} threads, {} KiB chunks, queue depth {}) ...",
        ingest_cfg.threads,
        ingest_cfg.chunk_bytes / 1024,
        ingest_cfg.queue_depth
    );
    let file = fs::File::open(raw_path).map_err(|e| CliError::Io {
        path: raw_path.to_string(),
        source: e,
    })?;
    let mut rule_seq = 0u64;
    // Two sink closures (partial flushes and day closes) both need the run
    // state; the frontend calls them strictly sequentially, so a RefCell is
    // enough to share it without restructuring the ingest API.
    let run_cell = std::cell::RefCell::new(run);
    let stats = acobe_ingest::ingest_events_flushed(
        file,
        &ingest_cfg,
        intraday.unwrap_or(FlushCadence::PerDay),
        |partial| run_cell.borrow_mut().feed_partial(&partial),
        |batch| {
        let mut run = run_cell.borrow_mut();
        let date = batch.date;
        run.feed_through(date, &batch.events)?;
        // Inline-rule hits surface on the telemetry alert board only — they
        // never touch the engine or the alert audit log, keeping the
        // measurement path bit-identical with rules on or off.
        if !run.stopped && date >= cursor && date < until {
            for hit in &batch.rule_hits {
                let alert = acobe_obs::alert::Alert {
                    seq: rule_seq,
                    id: format!("rh-{rule_seq:06}"),
                    user: Some(hit.user as usize),
                    day: date.to_string(),
                    severity: acobe_obs::alert::AlertSeverity::Low,
                    status: AlertStatus::New,
                    trigger: acobe_obs::alert::AlertTrigger::RuleHit {
                        feature: hit.rule.name().to_string(),
                        frame: hit.frame,
                        z: hit.count as f32,
                    },
                    evidence: None,
                };
                acobe_obs::alert::alerts().publish(&alert);
                rule_seq += 1;
            }
        }
        Ok(())
        },
    )
    .map_err(|e| match e {
        IngestError::Io(source) => CliError::Io {
            path: raw_path.to_string(),
            source,
        },
        IngestError::Parse { record, source } => CliError::Usage(format!(
            "malformed record {record:?} in {raw_path}: {source}"
        )),
        IngestError::OutOfOrder { prev, got } => CliError::Usage(format!(
            "{raw_path} is not in day order: {got} after {prev}"
        )),
        IngestError::Sink(e) => e,
    })?;
    let mut run = run_cell.into_inner();
    for sample in &stats.error_samples {
        eprintln!("warning: skipped malformed record {sample}");
    }
    acobe_obs::progress!(
        "parsed {} bytes / {} records -> {} events in {} chunks \
         ({} malformed, {} blank, {} rule hits, {} partial flushes)",
        stats.bytes,
        stats.records,
        stats.events,
        stats.chunks,
        stats.parse_errors,
        stats.blank_lines,
        stats.rule_hits,
        stats.partial_flushes
    );

    // A --stop-after-flushes run deliberately leaves its last day open so the
    // final checkpoint carries the ODAY section; skip calendar completion
    // (feed_day no-ops without advancing the cursor once stopped) and any
    // deferred training.
    if !run.stopped {
        // The raw file may end before --until (or before the training
        // horizon): complete the calendar with empty days, exactly as
        // `stream` iterates every day in range regardless of event presence.
        let goal = if run.training.is_some() {
            run.train_end.max(until)
        } else {
            until
        };
        while run.cursor < goal {
            let d = run.cursor;
            run.feed_day(d, &[])?;
        }
        // --until inside the training window: train now so the checkpoint
        // holds the same fitted engine a `stream` run would have written.
        if run.training.is_some() {
            run.build_engine_if_needed()?;
        }
    }

    let up_to = until.max(cursor);
    acobe_obs::progress!(
        "streamed {} days ({} scored) up to {up_to}",
        run.streamed,
        run.scored
    );
    if let Some(log) = &run.alert_log {
        acobe_obs::progress!(
            "{} alerts appended to {}",
            run.alerts_raised,
            log.path().display()
        );
    }
    if let Some(path) = arg(args, "--final-out") {
        write_file(path, &json_out(&run.last_list, pretty)?)?;
        acobe_obs::progress!("final investigation list written to {path}");
    }
    if let Some(dir) = &checkpoint_dir {
        let sidecar_extractor = run.snapshot.take().unwrap_or_else(|| run.extractor.clone());
        let engine = run.engine.as_mut().ok_or_else(|| {
            CliError::Usage(
                "--stop-after-flushes stopped before training completed; nothing to checkpoint"
                    .into(),
            )
        })?;
        let report =
            save_stream_checkpoint(engine, &sidecar_extractor, run.train_end, dir, &ckpt_opts)?;
        acobe_obs::progress!(
            "sharded checkpoint written to {dir}/ ({} shards, {} {} save, {} bytes)",
            engine.shard_count(),
            ckpt_opts.format,
            report.kind.label(),
            report.bytes
        );
    }
    Ok(())
}

/// Parses a `--status` value, mapping unknown names to a usage error that
/// lists the valid lifecycle states.
fn parse_status(s: &str) -> Result<AlertStatus, CliError> {
    AlertStatus::parse(s).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown status '{s}' (expected one of: new, investigating, confirmed, \
             false_positive, resolved)"
        ))
    })
}

/// `acobe alerts`: inspect and act on an alert audit log written by
/// `acobe stream --alerts-log`.
pub fn alerts(args: &[String]) -> Result<(), CliError> {
    const USAGE: &str = "usage: acobe alerts <list|show|ack> --log FILE (try --help)";
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let rest = &args[1..];
    let log_path =
        arg(rest, "--log").ok_or_else(|| CliError::Usage("--log FILE is required".into()))?;
    let entries = AlertLog::read_entries(log_path)?;
    let current = AlertLog::current_alerts(&entries);
    // `show` and `ack` address one alert by its positional id (`al-000042`).
    let target_id = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str);

    match sub {
        "list" => {
            let status = arg(rest, "--status").map(parse_status).transpose()?;
            let user: Option<usize> = match arg(rest, "--user") {
                Some(s) => Some(
                    s.parse()
                        .map_err(|_| CliError::Usage("bad --user".into()))?,
                ),
                None => None,
            };
            let since: u64 = num_arg(rest, "--since", 0)?;
            let selected: Vec<_> = current
                .iter()
                .filter(|a| {
                    a.seq >= since
                        && !status.is_some_and(|s| a.status != s)
                        && !user.is_some_and(|u| a.user != Some(u))
                })
                .collect();
            if flag(rest, "--json") {
                // Machine-readable: the filtered alerts as one JSON array,
                // transitions applied, nothing else on stdout.
                println!("{}", serde_json::to_string_pretty(&selected)?);
                return Ok(());
            }
            for a in &selected {
                let who = match a.user {
                    Some(u) => format!("user {u}"),
                    None => "system".to_string(),
                };
                println!(
                    "{}  {}  {:<14} {:<8} {who:<12} {}",
                    a.id,
                    a.day,
                    a.status.as_str(),
                    a.severity.as_str(),
                    a.trigger
                );
            }
            println!("{} of {} alerts shown", selected.len(), current.len());
            Ok(())
        }
        "show" => {
            let id = target_id
                .ok_or_else(|| CliError::Usage("usage: acobe alerts show ID --log FILE".into()))?;
            let alert = current
                .iter()
                .find(|a| a.id == id)
                .ok_or_else(|| CliError::Usage(format!("no alert '{id}' in {log_path}")))?;
            println!("{}", serde_json::to_string_pretty(alert)?);
            Ok(())
        }
        "ack" => {
            let id = target_id.ok_or_else(|| {
                CliError::Usage(
                    "usage: acobe alerts ack ID --to STATUS [--note TEXT] --log FILE".into(),
                )
            })?;
            let to = parse_status(
                arg(rest, "--to")
                    .ok_or_else(|| CliError::Usage("--to STATUS is required".into()))?,
            )?;
            let alert = current
                .iter()
                .find(|a| a.id == id)
                .ok_or_else(|| CliError::Usage(format!("no alert '{id}' in {log_path}")))?;
            if !alert.status.can_transition_to(to) {
                return Err(CliError::Usage(format!(
                    "alert {id} is '{}': cannot transition to '{}'",
                    alert.status.as_str(),
                    to.as_str()
                )));
            }
            let log = AlertLog::attach(log_path)?;
            log.append(&AlertLogEntry::Transition {
                alert_id: alert.id.clone(),
                from: alert.status,
                to,
                note: arg(rest, "--note").map(String::from),
            })?;
            println!(
                "{id}: {} -> {} (audit-logged)",
                alert.status.as_str(),
                to.as_str()
            );
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown alerts subcommand '{other}' ({USAGE})"
        ))),
    }
}

/// `acobe enterprise`.
pub fn enterprise(args: &[String]) -> Result<(), CliError> {
    use acobe_features::enterprise::extract_enterprise_features;
    use acobe_features::spec::enterprise_feature_set;
    use acobe_synth::enterprise::{Attack, EnterpriseConfig, EnterpriseGenerator};

    let attack = match arg(args, "--attack") {
        Some("zeus") => Attack::Zeus,
        Some("ransomware") | None => Attack::Ransomware,
        Some(other) => return Err(CliError::Usage(format!("unknown attack '{other}'"))),
    };
    let users: usize = num_arg(args, "--users", 60)?;
    let seed: u64 = num_arg(args, "--seed", 11)?;

    let mut config = EnterpriseConfig::paper(attack, seed);
    config.users = users;
    if config.victim.index() >= users {
        config.victim = acobe_logs::ids::UserId(users as u32 / 2);
    }
    acobe_obs::progress!(
        "synthesizing {} employees, {} attack on {} ...",
        users,
        attack.name(),
        config.attack_day
    );
    let mut generator = EnterpriseGenerator::new(config.clone());
    let store = generator.build_store();
    acobe_obs::progress!("extracting features from {} events ...", store.len());
    let cube = extract_enterprise_features(&store, users, config.start, config.end);

    let mut model_cfg = AcobeConfig::fast();
    model_cfg.deviation.window = 14;
    model_cfg.matrix.matrix_days = 7;
    model_cfg.matrix.use_weights = false;
    model_cfg.critic_n = 2;
    let groups = vec![(0..users).collect::<Vec<_>>()];
    let mut pipeline =
        AcobePipeline::new(cube, enterprise_feature_set(), &groups, model_cfg.clone())?;
    let train_end = config.attack_day.add_days(-14);
    acobe_obs::progress!("training on {}..{train_end} ...", config.start);
    pipeline.fit(config.start, train_end)?;
    let table = pipeline.score_range(config.attack_day.add_days(-7), config.end)?;

    println!(
        "\nvictim is employee {}; daily investigation rank:",
        config.victim.index()
    );
    let mut best = usize::MAX;
    for d in 0..table.days() {
        let date = table.start.add_days(d as i32);
        let list = table.daily_investigation_smoothed(d, model_cfg.critic_n, 3);
        let pos = list
            .iter()
            .position(|inv| inv.user == config.victim.index())
            .unwrap()
            + 1;
        if date >= config.attack_day {
            best = best.min(pos);
        }
        let marker = if date == config.attack_day {
            "  <= attack day"
        } else {
            ""
        };
        println!("  {date}: #{pos}{marker}");
    }
    println!("\nbest post-attack rank: #{best} of {users}");
    Ok(())
}

/// `acobe trace`: work with trace-event streams written by `--trace-out`.
pub fn trace(args: &[String]) -> Result<(), CliError> {
    const USAGE: &str =
        "usage: acobe trace export --in FILE [--out FILE] [--day YYYY-MM-DD] (try --help)";
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let rest = &args[1..];
    match sub {
        "export" => {
            let input = arg(rest, "--in")
                .ok_or_else(|| CliError::Usage("--in FILE is required".into()))?;
            let events = acobe_obs::perfetto::parse_jsonl(&read_file(input)?)
                .map_err(|e| CliError::Usage(format!("{input}: {e}")))?;
            let selected = match arg(rest, "--day") {
                Some(day) => {
                    let subtree = acobe_obs::perfetto::day_subtree(&events, day);
                    if subtree.is_empty() {
                        acobe_obs::progress!("no spans tagged day={day} in {input}");
                    }
                    subtree
                }
                None => events,
            };
            let rendered = acobe_obs::perfetto::render(&selected);
            match arg(rest, "--out") {
                Some(out) => {
                    write_file(out, &rendered)?;
                    acobe_obs::progress!(
                        "{} trace events exported to {out} (load it at ui.perfetto.dev)",
                        selected.len()
                    );
                }
                None => print!("{rendered}"),
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand '{other}' ({USAGE})"
        ))),
    }
}

/// `acobe mem`: the memory-accounting report for a saved stream checkpoint —
/// the same `acobe_state_bytes` breakdown a live run publishes, computed
/// offline by loading the checkpoint.
pub fn mem(args: &[String]) -> Result<(), CliError> {
    const USAGE: &str = "usage: acobe mem --checkpoint DIR [--json]";
    let path = arg(args, "--checkpoint").ok_or_else(|| CliError::Usage(USAGE.into()))?;
    if !std::path::Path::new(path).is_dir() {
        return Err(CliError::Usage(format!(
            "{path} is not a checkpoint directory ({USAGE})"
        )));
    }
    let sidecar = format!("{path}/stream.json");
    let sm: StreamMeta = serde_json::from_str(&read_file(&sidecar)?)?;
    let mut engine = ShardedEngine::load(path, 1)?;
    for (i, e) in engine.quarantined() {
        eprintln!("warning: shard {i} quarantined, not accounted: {e}");
    }
    let mut mem = engine.mem_report();
    mem.push("novelty", sm.extractor.state_bytes());
    if flag(args, "--json") {
        println!("{}", serde_json::to_string_pretty(&mem)?);
    } else {
        println!(
            "memory accounting for checkpoint {path} ({} shards, next day {}):",
            engine.shard_count(),
            engine.next_date()
        );
        print!("{}", mem.table());
        println!(
            "(engine temporal state: {} bytes across {} users)",
            engine.state_bytes(),
            engine.users()
        );
    }
    Ok(())
}
