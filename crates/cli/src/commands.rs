//! CLI command implementations.

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_features::cert::{extract_cert_features, CountSemantics};
use acobe_features::spec::cert_feature_set;
use acobe_logs::store::LogStore;
use acobe_logs::time::Date;
use acobe_synth::cert::{CertConfig, CertGenerator};
use acobe_synth::org::OrgConfig;
use serde::{Deserialize, Serialize};
use std::fs;

/// Dataset metadata written alongside the CSV so `detect` can reconstruct
/// the population and verify results.
#[derive(Debug, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Total users.
    pub users: usize,
    /// First logged day (`YYYY-MM-DD`).
    pub start: String,
    /// First day after the span.
    pub end: String,
    /// Group rosters by user index.
    pub groups: Vec<Vec<usize>>,
    /// Ground-truth victims (user index, scenario, anomaly window) — present
    /// for synthesized data, absent for real logs.
    #[serde(default)]
    pub victims: Vec<VictimMeta>,
}

/// One ground-truth victim record.
#[derive(Debug, Serialize, Deserialize)]
pub struct VictimMeta {
    /// User index.
    pub user: usize,
    /// Scenario name.
    pub scenario: String,
    /// First anomalous day.
    pub anomaly_start: String,
    /// First clean day.
    pub anomaly_end: String,
}

fn arg<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// `acobe synth`.
pub fn synth(args: &[String]) -> Result<(), String> {
    let out = arg(args, "--out").unwrap_or("acobe_logs.csv").to_string();
    let seed: u64 = arg(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let users_per_dept: usize = arg(args, "--users-per-dept")
        .map(|s| s.parse().map_err(|_| "bad --users-per-dept"))
        .transpose()?
        .unwrap_or(20);
    let departments: usize = arg(args, "--departments")
        .map(|s| s.parse().map_err(|_| "bad --departments"))
        .transpose()?
        .unwrap_or(4);

    let org = OrgConfig { departments, users_per_dept, seed: seed ^ 0x0a6 };
    let config = CertConfig::paper(org, seed);
    acobe_obs::progress!(
        "synthesizing {} users over {}..{} ...",
        config.org.total_users(),
        config.start,
        config.end
    );
    let mut generator = CertGenerator::new(config.clone());
    let store = generator.build_store();
    fs::write(&out, store.to_csv()).map_err(|e| format!("write {out}: {e}"))?;

    let groups: Vec<Vec<usize>> = generator
        .directory()
        .departments()
        .map(|d| {
            generator
                .directory()
                .members(d)
                .iter()
                .map(|u| u.index())
                .collect()
        })
        .collect();
    let meta = DatasetMeta {
        users: config.org.total_users(),
        start: config.start.to_string(),
        end: config.end.to_string(),
        groups,
        victims: generator
            .ground_truth()
            .iter()
            .map(|v| VictimMeta {
                user: v.user.index(),
                scenario: v.scenario.clone(),
                anomaly_start: v.anomaly_start.to_string(),
                anomaly_end: v.anomaly_end.to_string(),
            })
            .collect(),
    };
    let meta_path = format!("{out}.meta.json");
    let json = serde_json::to_string_pretty(&meta).map_err(|e| e.to_string())?;
    fs::write(&meta_path, json).map_err(|e| format!("write {meta_path}: {e}"))?;
    println!(
        "wrote {} events to {out} and metadata to {meta_path}",
        store.len()
    );
    Ok(())
}

/// `acobe detect`.
pub fn detect(args: &[String]) -> Result<(), String> {
    let logs_path = arg(args, "--logs").ok_or("--logs FILE is required")?;
    let meta_path = arg(args, "--meta").ok_or("--meta FILE is required")?;
    let top: usize = arg(args, "--top")
        .map(|s| s.parse().map_err(|_| "bad --top"))
        .transpose()?
        .unwrap_or(10);
    let critic_n: usize = arg(args, "--critic-n")
        .map(|s| s.parse().map_err(|_| "bad --critic-n"))
        .transpose()?
        .unwrap_or(2);
    let smooth: usize = arg(args, "--smooth")
        .map(|s| s.parse().map_err(|_| "bad --smooth"))
        .transpose()?
        .unwrap_or(3);

    let meta: DatasetMeta = serde_json::from_str(
        &fs::read_to_string(meta_path).map_err(|e| format!("read {meta_path}: {e}"))?,
    )
    .map_err(|e| format!("parse {meta_path}: {e}"))?;
    let start = Date::parse(&meta.start).map_err(|e| e.to_string())?;
    let end = Date::parse(&meta.end).map_err(|e| e.to_string())?;

    let train_end = match arg(args, "--train-end") {
        Some(s) => Date::parse(s).map_err(|e| e.to_string())?,
        None => start.add_days(end.days_since(start) * 7 / 10),
    };
    if train_end <= start || train_end >= end {
        return Err(format!(
            "--train-end must fall inside the span {start}..{end}"
        ));
    }

    acobe_obs::progress!("loading {logs_path} ...");
    let text = fs::read_to_string(logs_path).map_err(|e| format!("read {logs_path}: {e}"))?;
    let store = LogStore::from_csv(&text).map_err(|e| e.to_string())?;
    acobe_obs::progress!("extracting features from {} events ...", store.len());
    let cube = extract_cert_features(&store, meta.users, start, end, CountSemantics::Plain);

    let config = if flag(args, "--paper-model") {
        AcobeConfig::paper()
    } else {
        AcobeConfig::fast()
    }
    .with_critic_n(critic_n);
    let mut pipeline = AcobePipeline::new(cube, cert_feature_set(), &meta.groups, config)?;
    acobe_obs::progress!("training on {start}..{train_end} ...");
    pipeline.fit(start, train_end)?;
    acobe_obs::progress!("scoring {train_end}..{end} ...");
    let table = pipeline.score_range(train_end, end)?;
    let list = table.investigation_list_smoothed(critic_n, smooth);

    println!("\ninvestigation list (top {top} of {}):", list.len());
    for (i, inv) in list.iter().take(top).enumerate() {
        let truth = meta
            .victims
            .iter()
            .find(|v| v.user == inv.user)
            .map(|v| format!("  <-- ground-truth insider ({})", v.scenario))
            .unwrap_or_default();
        println!(
            "  {:>3}. user {:>5}  priority {:>4}{truth}",
            i + 1,
            inv.user,
            inv.priority
        );
    }
    if !meta.victims.is_empty() {
        println!("\nground-truth positions:");
        for v in &meta.victims {
            let pos = list.iter().position(|inv| inv.user == v.user).unwrap();
            println!(
                "  user {:>5} ({:>9}) at position {} of {}",
                v.user,
                v.scenario,
                pos + 1,
                list.len()
            );
        }
    }
    Ok(())
}

/// `acobe enterprise`.
pub fn enterprise(args: &[String]) -> Result<(), String> {
    use acobe_features::enterprise::extract_enterprise_features;
    use acobe_features::spec::enterprise_feature_set;
    use acobe_synth::enterprise::{Attack, EnterpriseConfig, EnterpriseGenerator};

    let attack = match arg(args, "--attack") {
        Some("zeus") => Attack::Zeus,
        Some("ransomware") | None => Attack::Ransomware,
        Some(other) => return Err(format!("unknown attack '{other}'")),
    };
    let users: usize = arg(args, "--users")
        .map(|s| s.parse().map_err(|_| "bad --users"))
        .transpose()?
        .unwrap_or(60);
    let seed: u64 = arg(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(11);

    let mut config = EnterpriseConfig::paper(attack, seed);
    config.users = users;
    if config.victim.index() >= users {
        config.victim = acobe_logs::ids::UserId(users as u32 / 2);
    }
    acobe_obs::progress!(
        "synthesizing {} employees, {} attack on {} ...",
        users,
        attack.name(),
        config.attack_day
    );
    let mut generator = EnterpriseGenerator::new(config.clone());
    let store = generator.build_store();
    acobe_obs::progress!("extracting features from {} events ...", store.len());
    let cube = extract_enterprise_features(&store, users, config.start, config.end);

    let mut model_cfg = AcobeConfig::fast();
    model_cfg.deviation.window = 14;
    model_cfg.matrix.matrix_days = 7;
    model_cfg.matrix.use_weights = false;
    model_cfg.critic_n = 2;
    let groups = vec![(0..users).collect::<Vec<_>>()];
    let mut pipeline =
        AcobePipeline::new(cube, enterprise_feature_set(), &groups, model_cfg.clone())?;
    let train_end = config.attack_day.add_days(-14);
    acobe_obs::progress!("training on {}..{train_end} ...", config.start);
    pipeline.fit(config.start, train_end)?;
    let table = pipeline.score_range(config.attack_day.add_days(-7), config.end)?;

    println!(
        "\nvictim is employee {}; daily investigation rank:",
        config.victim.index()
    );
    let mut best = usize::MAX;
    for d in 0..table.days() {
        let date = table.start.add_days(d as i32);
        let list = table.daily_investigation_smoothed(d, model_cfg.critic_n, 3);
        let pos = list
            .iter()
            .position(|inv| inv.user == config.victim.index())
            .unwrap()
            + 1;
        if date >= config.attack_day {
            best = best.min(pos);
        }
        let marker = if date == config.attack_day { "  <= attack day" } else { "" };
        println!("  {date}: #{pos}{marker}");
    }
    println!("\nbest post-attack rank: #{best} of {users}");
    Ok(())
}
