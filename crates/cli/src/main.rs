//! `acobe` — command-line anomalous-user detection.
//!
//! ```console
//! $ acobe synth --out logs.csv --seed 7          # synthesize a dataset
//! $ acobe detect --logs logs.csv --meta logs.meta.json \
//!         --train-end 2010-03-01 --top 10        # rank suspicious users
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Global observability flags, accepted anywhere on the command line.
    let verbose = take_flag(&mut args, "-v") || take_flag(&mut args, "--verbose");
    let quiet = take_flag(&mut args, "-q") || take_flag(&mut args, "--quiet");
    let (metrics_out, trace_out, serve_addr, trace_format) = match (
        take_arg(&mut args, "--metrics-out"),
        take_arg(&mut args, "--trace-out"),
        take_arg(&mut args, "--serve-metrics"),
        take_arg(&mut args, "--trace-format"),
    ) {
        (Ok(m), Ok(t), Ok(s), Ok(f)) => (m, t, s, f),
        (Err(msg), _, _, _)
        | (_, Err(msg), _, _)
        | (_, _, Err(msg), _)
        | (_, _, _, Err(msg)) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let trace_chrome = match trace_format.as_deref() {
        None | Some("jsonl") => false,
        Some("chrome") => {
            if trace_out.is_none() {
                eprintln!("error: --trace-format chrome requires --trace-out FILE");
                return ExitCode::from(2);
            }
            true
        }
        Some(other) => {
            eprintln!("error: --trace-format must be jsonl or chrome, got '{other}'");
            return ExitCode::from(2);
        }
    };
    if quiet {
        acobe_obs::set_verbosity(0);
    } else if verbose {
        acobe_obs::set_verbosity(acobe_obs::progress::LEVEL_DETAIL);
    }
    if let Some(path) = &metrics_out {
        acobe_obs::set_metrics_path(Some(std::path::Path::new(path)));
    }
    if let Some(path) = &trace_out {
        if let Err(e) = acobe_obs::event::set_trace_file(std::path::Path::new(path)) {
            eprintln!("error: open trace file {path}: {e}");
            return ExitCode::from(2);
        }
    }
    // Keep the telemetry server alive for the whole command; dropping the
    // handle at the end of main stops the accept loop.
    let _server = match serve_addr.as_deref() {
        Some(addr) => match acobe_obs::serve::serve(addr) {
            Ok(server) => {
                acobe_obs::progress!("telemetry server listening on http://{}", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("error: bind {addr}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let command = args.first().cloned();
    let result = match command.as_deref() {
        Some("synth") => commands::synth(&args[1..]),
        Some("detect") => commands::detect(&args[1..]),
        Some("stream") => commands::stream(&args[1..]),
        Some("ingest") => commands::ingest(&args[1..]),
        Some("alerts") => commands::alerts(&args[1..]),
        Some("trace") => commands::trace(&args[1..]),
        Some("mem") => commands::mem(&args[1..]),
        Some("enterprise") => commands::enterprise(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(commands::CliError::Usage(format!(
            "unknown command '{other}' (try --help)"
        ))),
    };

    // The pipeline commands report their stage timings on completion; the
    // JSON-lines export covers every command.
    if result.is_ok()
        && matches!(
            command.as_deref(),
            Some("detect") | Some("stream") | Some("ingest") | Some("enterprise")
        )
        && acobe_obs::verbosity() >= acobe_obs::progress::LEVEL_PROGRESS
    {
        let summary = acobe_obs::summary_table();
        if !summary.is_empty() {
            eprintln!("\n{summary}");
        }
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = acobe_obs::flush_metrics() {
            eprintln!("error: write {path}: {e}");
            return ExitCode::from(2);
        }
        acobe_obs::progress!("metrics written to {path}");
    }
    if let Some(path) = &trace_out {
        acobe_obs::event::clear_trace_file();
        if trace_chrome && result.is_ok() {
            // Rewrite the JSONL stream as Chrome trace-event JSON in place —
            // the file a browser (ui.perfetto.dev, chrome://tracing) loads
            // directly. `acobe trace export` does the same offline.
            match convert_trace(path) {
                Ok(n) => acobe_obs::progress!(
                    "trace {path} converted to Chrome JSON ({n} events; load it at ui.perfetto.dev)"
                ),
                Err(e) => {
                    eprintln!("error: convert trace {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Rewrites the JSONL trace stream at `path` as Chrome trace-event JSON,
/// returning the number of events converted.
fn convert_trace(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let events = acobe_obs::perfetto::parse_jsonl(&text)?;
    std::fs::write(path, acobe_obs::perfetto::render(&events)).map_err(|e| e.to_string())?;
    Ok(events.len())
}

/// Removes every occurrence of `key` from `args`, reporting whether any
/// were present.
fn take_flag(args: &mut Vec<String>, key: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != key);
    args.len() != before
}

/// Removes `key VALUE` from `args`, returning the value.
fn take_arg(args: &mut Vec<String>, key: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == key) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{key} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

fn print_help() {
    println!(
        "acobe — anomalous-user detection from audit logs (DSN 2021 reproduction)

USAGE:
    acobe synth [--out FILE] [--raw-out FILE] [--seed N]
                [--users-per-dept N] [--departments N] [--pretty]
        Synthesize a CERT-like audit-log dataset. Writes events to FILE
        (CSV; default acobe_logs.csv) and metadata (users, groups, span,
        ground truth) to FILE with a .meta.json suffix. --raw-out streams
        each day to disk as it is generated instead of building the dataset
        in memory first — the bytes are identical to --out; use it to
        produce large raw fixtures for `acobe ingest`.

    acobe detect --logs FILE --meta FILE [--train-end YYYY-MM-DD]
                 [--top N] [--critic-n N] [--smooth N] [--paper-model]
        Train the ACOBE ensemble on logs up to --train-end (default: 70% of
        the span) and print the ordered investigation list for the rest.
        Prints a stage-timing summary (extraction, deviation, matrix,
        per-aspect training, scoring, critic) on completion.

    acobe stream --logs FILE --meta FILE [--train-end YYYY-MM-DD]
                 [--until YYYY-MM-DD] [--top N] [--critic-n N] [--smooth N]
                 [--shards N] [--paper-model] [--checkpoint DIR]
                 [--checkpoint-format v2|v3] [--checkpoint-every N]
                 [--delta-every N] [--pretty]
                 [--resume DIR|FILE] [--final-out FILE]
                 [--alerts-log FILE] [--alert-top-n N] [--alert-rank-jump N]
                 [--alert-cooldown N] [--alert-rule-z Z] [--alert-top-k N]
                 [--lag-ratio R] [--lag-min-ms MS]
                 [--intraday] [--flush-every 30m|500e]
        Replay the logs one day at a time through the incremental detection
        engine — the streaming deployment of the exact batch scoring path.
        Trains up to --train-end, then prints one investigation line per
        scored day (ground-truth victims marked with '*'), stopping before
        --until (default: end of span). --shards partitions per-user state
        across N parallel shards; results are bit-identical for every shard
        count. --checkpoint writes a directory checkpoint on completion
        (manifest + one file per shard + stream sidecar); --resume continues
        a prior checkpoint without retraining, scoring bit-identically to an
        uninterrupted run — it accepts a v2 checkpoint directory (its shard
        count wins; shards whose files are damaged are quarantined with a
        warning while the rest keep scoring) or a legacy v1 single-file
        checkpoint (migrated into --shards shards). --final-out writes the
        last day's investigation list as JSON (compact; --pretty indents
        every JSON artifact this run writes).

        Checkpoint encoding: --checkpoint-format picks v3 (default; compact
        checksummed binary with quantized histories) or v2 (the legacy JSON
        directory layout); --resume autodetects v1/v2/v3, and a legacy
        resume with a v3 target is upgraded on load. --checkpoint-every N
        also saves after every N streamed days (default: final save only);
        with v3, periodic saves after the first full snapshot write only
        per-shard deltas covering the days since, and --delta-every K
        (default 8) bounds the chain before a full snapshot compacts it
        (0 = every save is full).

        Alerting: every scored day is evaluated against an alert policy;
        raised alerts (rank jumps, watchlist entrants, extreme deviation
        cells, score drift, degraded shards) are printed inline, published to
        the telemetry /alerts endpoint, and — with --alerts-log — appended to
        an append-only JSONL audit log that stays exactly-once across
        --checkpoint / --resume. --alert-top-n sets the watchlist size
        (default 10); --alert-rank-jump the minimum position improvement
        that fires (default 5); --alert-cooldown the per-key dedup window in
        scored days (default 7); --alert-rule-z the |z| threshold on a
        single deviation cell (default 6); --alert-top-k how many
        contributing cells each evidence bundle keeps (default 5).
        --lag-ratio and --lag-min-ms tune the shard-lag health heuristic: a
        shard is reported lagging when its scoring time exceeds
        lag-ratio x median AND median + lag-min-ms (defaults 4 and 25).

        Intra-day scoring: --intraday accumulates each scored day in sub-day
        flushes and prints provisional investigation lines (marked '~') plus
        provisional alerts (ids pv-NNNNNN) as events arrive, instead of
        waiting for the day to close. --flush-every sets the cadence: '30m'
        flushes every 30 minutes of log time, '500e' (or bare '500') every
        500 events per user-day batch (default 60m). Provisional output is
        advisory only — at day close the committed scores, investigation
        list, alert log and checkpoints are byte-identical to a daily run,
        and each provisional alert is printed as confirmed (with its
        committed al-NNNNNN id) or retracted. Mid-day checkpoint saves carry
        the open day's accumulator (v3 ODAY section), so --resume continues
        from the middle of a day without rescoring its consumed events.

    acobe ingest --raw FILE --meta FILE [--threads N] [--chunk-kb N]
                 [--queue N] [--strict] [--inline-rules]
                 [--stop-after-flushes N]
                 [... every acobe stream flag except --logs ...]
        Wire-speed raw-log frontend: read the raw CSV in record-aligned
        chunks, parse them on --threads workers with the zero-copy
        borrowed-field parser, and feed per-day batches straight into the
        same training / scoring / alerting / checkpointing path as
        `acobe stream`. Investigation lists, alert logs and checkpoints are
        bit-identical to the stream path at every --threads, --chunk-kb and
        --shards setting. --queue bounds the in-flight chunk queues (back-
        pressure: a slow engine throttles the reader instead of growing
        memory). Malformed records are counted (ingest/parse_errors) and
        reported, never silently dropped; --strict aborts on the first one.
        --inline-rules evaluates cheap per-record predicates (off-hours
        activity, removable-media writes, exe uploads, failed logons) while
        parsing and publishes rule-hit alerts (ids rh-NNNNNN) to the
        telemetry alert board — they never perturb scores or the alert
        audit log. --intraday / --flush-every work as in `acobe stream`;
        --stop-after-flushes N (requires --intraday) halts the run after N
        partial flushes with the last day still open — a deterministic
        mid-day interrupt whose final checkpoint carries the open-day
        accumulator for --resume to continue from.

    acobe alerts list --log FILE [--status S] [--user N] [--since SEQ] [--json]
    acobe alerts show ID --log FILE
    acobe alerts ack ID --to STATUS [--note TEXT] --log FILE
        Inspect an alert audit log written by `acobe stream --alerts-log`.
        `list` prints current alerts (transitions applied) with optional
        status/user/sequence filters — `--json` emits the filtered alerts as
        one machine-readable JSON array instead of the table; `show` dumps
        one alert with its full evidence bundle as JSON; `ack` appends a
        lifecycle transition (new -> investigating -> confirmed |
        false_positive -> resolved) to the audit log, rejecting transitions
        the lifecycle does not allow.

    acobe trace export --in FILE [--out FILE] [--day YYYY-MM-DD]
        Convert a JSONL trace stream written by --trace-out into Chrome
        trace-event JSON (stdout, or --out FILE) that ui.perfetto.dev and
        chrome://tracing load directly. --day exports only the span tree of
        one ingested day (spans tagged day=YYYY-MM-DD and everything under
        them).

    acobe mem --checkpoint DIR [--json]
        Report where a saved stream checkpoint's bytes live — rolling
        deviation histories, matrix rings, baselines, score history and
        model replicas per shard, plus the shared group state and the
        extractor's novelty sets. The same breakdown a live run publishes as
        acobe_state_bytes{subsystem=,shard=} gauges and in /healthz's mem
        block; --json emits the raw entries.

    acobe enterprise [--attack zeus|ransomware] [--users N] [--seed N]
        Run the Section-VI case study end-to-end: synthesize the enterprise
        environment, train on six months, and report the victim's daily
        investigation rank after the attack.

    acobe help
        Show this message.

GLOBAL OPTIONS (any command):
    -v, --verbose        Detail output: per-epoch training trace.
    -q, --quiet          Silence progress lines and the timing summary.
    --metrics-out FILE   Write every recorded span/counter/gauge/histogram
                         as JSON lines (one metric per line) to FILE. In
                         stream mode the file is rewritten atomically after
                         every ingested day.
    --serve-metrics ADDR Serve live telemetry over HTTP on ADDR (for example
                         127.0.0.1:9184; port 0 picks an ephemeral port):
                         /metrics (Prometheus text exposition, including
                         process self-metrics and acobe_state_bytes memory
                         gauges), /healthz (shard + stream status JSON with
                         the mem block), /events?n= (recent trace events as
                         JSON lines behind a meta line), /trace?day= (one
                         day's span tree as Chrome trace-event JSON),
                         /alerts?since=&status=&user= (alerts raised this
                         run, filtered, as JSON).
    --trace-out FILE     Stream structured trace events (span enter/exit,
                         progress lines, health events) to FILE as JSON
                         lines, one event per line, flushed as they happen.
    --trace-format F     jsonl (default) keeps --trace-out as the raw JSONL
                         stream; chrome rewrites it on successful exit as
                         Chrome trace-event JSON for ui.perfetto.dev /
                         chrome://tracing (requires --trace-out).

ENVIRONMENT:
    ACOBE_SERVE_ADDR_FILE
                         When --serve-metrics is given, write the bound
                         address (host:port) to this file — lets scripts find
                         an ephemeral port.
    ACOBE_NN_THREADS     Size of the persistent compute thread pool used by
                         matmul, ensemble training, and deviation measurement.
                         Defaults to the number of CPU cores. Results are
                         identical for every thread count.
    ACOBE_NN_NO_SIMD=1   Disable the AVX2+FMA matmul kernel and use the
                         portable fallback."
    );
}
