//! `acobe` — command-line anomalous-user detection.
//!
//! ```console
//! $ acobe synth --out logs.csv --seed 7          # synthesize a dataset
//! $ acobe detect --logs logs.csv --meta logs.meta.json \
//!         --train-end 2010-03-01 --top 10        # rank suspicious users
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => commands::synth(&args[1..]),
        Some("detect") => commands::detect(&args[1..]),
        Some("enterprise") => commands::enterprise(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "acobe — anomalous-user detection from audit logs (DSN 2021 reproduction)

USAGE:
    acobe synth [--out FILE] [--seed N] [--users-per-dept N] [--departments N]
        Synthesize a CERT-like audit-log dataset. Writes events to FILE
        (CSV; default acobe_logs.csv) and metadata (users, groups, span,
        ground truth) to FILE with a .meta.json suffix.

    acobe detect --logs FILE --meta FILE [--train-end YYYY-MM-DD]
                 [--top N] [--critic-n N] [--smooth N] [--paper-model]
        Train the ACOBE ensemble on logs up to --train-end (default: 70% of
        the span) and print the ordered investigation list for the rest.

    acobe enterprise [--attack zeus|ransomware] [--users N] [--seed N]
        Run the Section-VI case study end-to-end: synthesize the enterprise
        environment, train on six months, and report the victim's daily
        investigation rank after the attack.

    acobe help
        Show this message."
    );
}
