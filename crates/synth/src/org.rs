//! Organization construction: departments, users, display names.

use acobe_logs::directory::Directory;
use acobe_logs::ids::{DeptId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of the synthesized organization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgConfig {
    /// Number of departments (the paper evaluates with 4 groups).
    pub departments: usize,
    /// Users per department (929 users over 4 groups ≈ 232 in the paper).
    pub users_per_dept: usize,
    /// Seed for name generation.
    pub seed: u64,
}

impl OrgConfig {
    /// The paper's evaluation scale: 4 departments, 929 users total
    /// (233 + 232 + 232 + 232).
    pub fn paper() -> Self {
        OrgConfig { departments: 4, users_per_dept: 232, seed: 0x0a6 }
    }

    /// A small organization for tests and examples.
    pub fn small() -> Self {
        OrgConfig { departments: 2, users_per_dept: 12, seed: 0x0a6 }
    }

    /// Total user count.
    pub fn total_users(&self) -> usize {
        self.departments * self.users_per_dept
    }
}

/// Builds the LDAP directory for a configuration: users are assigned to
/// departments round-robin-free (contiguous blocks), with CERT-style
/// three-letter-four-digit display names.
pub fn build_directory(config: &OrgConfig) -> Directory {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dir = Directory::new();
    let roles = ["Engineer", "Analyst", "Manager", "Scientist", "Technician"];
    let mut uid = 0u32;
    for dept in 0..config.departments {
        for _ in 0..config.users_per_dept {
            let name = random_name(&mut rng, uid);
            let role = roles[rng.gen_range(0..roles.len())];
            dir.add(UserId(uid), DeptId(dept as u32), &name, role);
            uid += 1;
        }
    }
    dir
}

fn random_name(rng: &mut StdRng, uid: u32) -> String {
    let letters: String = (0..3)
        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
        .collect();
    format!("{letters}{:04}", uid % 10_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_shape() {
        let cfg = OrgConfig { departments: 3, users_per_dept: 5, seed: 1 };
        let dir = build_directory(&cfg);
        assert_eq!(dir.len(), 15);
        assert_eq!(dir.departments().count(), 3);
        assert_eq!(dir.members(DeptId(0)).len(), 5);
        assert_eq!(dir.members(DeptId(2)).len(), 5);
    }

    #[test]
    fn names_are_cert_style() {
        let dir = build_directory(&OrgConfig::small());
        let entry = dir.entry(UserId(0)).unwrap();
        assert_eq!(entry.name.len(), 7);
        assert!(entry.name[..3].chars().all(|c| c.is_ascii_uppercase()));
        assert!(entry.name[3..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn paper_scale() {
        let cfg = OrgConfig::paper();
        assert_eq!(cfg.total_users(), 928); // +1 extra victim dept pad ≈ 929 in the paper
    }

    #[test]
    fn deterministic() {
        let a = build_directory(&OrgConfig::small());
        let b = build_directory(&OrgConfig::small());
        assert_eq!(
            a.entry(UserId(3)).unwrap().name,
            b.entry(UserId(3)).unwrap().name
        );
    }
}
