//! Dataset synthesizer for the ACOBE reproduction.
//!
//! The paper evaluates on the CERT Insider Threat Test Dataset and on a
//! private enterprise log set; neither is redistributable, so this crate
//! re-synthesizes both (see DESIGN.md §2 for the substitution argument):
//!
//! * [`cert`] — a CERT-like organization emitting device / file / HTTP /
//!   email / logon logs with calendar seasonality, busy return days, group
//!   environmental events, and injected insider scenarios 1 and 2,
//! * [`enterprise`] — the case-study environment (Windows event + proxy
//!   logs, 246 employees) with scripted Zeus-bot and ransomware attacks,
//! * [`org`], [`profile`], [`vocab`], [`environment`], [`scenario`],
//!   [`stats`] — the building blocks.
//!
//! Everything is seeded and deterministic.
//!
//! # Examples
//!
//! ```
//! use acobe_synth::cert::{CertConfig, CertGenerator};
//! let mut gen = CertGenerator::new(CertConfig::small(42));
//! let store = gen.build_store();
//! assert!(store.len() > 0);
//! assert_eq!(gen.ground_truth().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod cert;
pub mod enterprise;
pub mod environment;
pub mod org;
pub mod profile;
pub mod scenario;
pub mod stats;
pub mod vocab;

pub use cert::{CertConfig, CertGenerator};
pub use enterprise::{Attack, EnterpriseConfig, EnterpriseGenerator};
pub use scenario::{InsiderScenario, ScenarioPlacement, VictimRecord};
