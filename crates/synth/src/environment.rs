//! Group-level environmental events.
//!
//! The paper motivates group-correlation signals with "environmental changes"
//! — a new service makes many users contact an unseen domain at once; an
//! outage makes many users produce retry failures (Section III). These events
//! are exactly what a single-user model misreports as anomalies and what
//! ACOBE's group rows explain away.

use acobe_logs::ids::DeptId;
use acobe_logs::time::Date;
use serde::{Deserialize, Serialize};

/// Who an environmental event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Every user in the organization.
    Org,
    /// Only one department.
    Dept(DeptId),
}

impl Scope {
    /// True when the scope covers a user in `dept`.
    pub fn covers(&self, dept: DeptId) -> bool {
        match self {
            Scope::Org => true,
            Scope::Dept(d) => *d == dept,
        }
    }
}

/// What the event does to each covered user's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EnvEffect {
    /// A new internal service: every covered user makes roughly
    /// `daily_hits` successful requests per day to one shared, previously
    /// unseen domain.
    NewService {
        /// Domain id of the new service (allocate outside user vocab ranges).
        domain: u32,
        /// Expected successful requests per user per day.
        daily_hits: f64,
    },
    /// A service outage: covered users produce roughly `daily_failures`
    /// failed requests per day to their usual domains.
    Outage {
        /// Expected failed requests per user per day.
        daily_failures: f64,
    },
}

/// One environmental event over a date range (end exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvEvent {
    /// First affected day.
    pub start: Date,
    /// First unaffected day.
    pub end: Date,
    /// Who is affected.
    pub scope: Scope,
    /// What happens.
    pub effect: EnvEffect,
}

impl EnvEvent {
    /// True when `date` falls inside the event.
    pub fn active_on(&self, date: Date) -> bool {
        self.start <= date && date < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_coverage() {
        assert!(Scope::Org.covers(DeptId(3)));
        assert!(Scope::Dept(DeptId(1)).covers(DeptId(1)));
        assert!(!Scope::Dept(DeptId(1)).covers(DeptId(2)));
    }

    #[test]
    fn active_window_is_half_open() {
        let ev = EnvEvent {
            start: Date::from_ymd(2010, 6, 1),
            end: Date::from_ymd(2010, 6, 4),
            scope: Scope::Org,
            effect: EnvEffect::Outage { daily_failures: 5.0 },
        };
        assert!(!ev.active_on(Date::from_ymd(2010, 5, 31)));
        assert!(ev.active_on(Date::from_ymd(2010, 6, 1)));
        assert!(ev.active_on(Date::from_ymd(2010, 6, 3)));
        assert!(!ev.active_on(Date::from_ymd(2010, 6, 4)));
    }
}
