//! Per-user object vocabularies with a controlled novelty process.
//!
//! The paper's "new-op" features count operations on `(feature, object)` pairs
//! the user never touched before. To make those features meaningful, the
//! synthesizer draws objects from a per-user vocabulary that mostly repeats
//! known objects and occasionally mints new ones, with the novelty rate
//! decaying as the vocabulary grows (users discover fewer brand-new domains
//! the longer they've been around).

use crate::stats::{weighted_index, zipf_weights};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A growing object vocabulary for one user and one object kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    known: Vec<u32>,
    zipf: Vec<f64>,
    base_novelty: f64,
    decay_scale: f64,
}

impl Vocab {
    /// Creates a vocabulary seeded with `initial` known object ids.
    ///
    /// `base_novelty` is the novelty probability when the vocabulary has its
    /// initial size; it decays as `base / (1 + grown/decay_scale)`.
    pub fn new(initial: Vec<u32>, base_novelty: f64, decay_scale: f64) -> Self {
        let n = initial.len().max(1);
        Vocab {
            known: initial,
            zipf: zipf_weights(n, 0.8),
            base_novelty,
            decay_scale: decay_scale.max(1.0),
        }
    }

    /// Number of known objects.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// True when no objects are known yet.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// True when `id` is already known.
    pub fn contains(&self, id: u32) -> bool {
        self.known.contains(&id)
    }

    /// Current probability of minting a new object.
    pub fn novelty_prob(&self) -> f64 {
        let grown = (self.known.len() as f64 - self.zipf.len() as f64).max(0.0);
        self.base_novelty / (1.0 + grown / self.decay_scale)
    }

    /// Draws one object: usually a known one (Zipf-weighted toward the
    /// earliest/habitual objects), occasionally a new id from `mint`.
    ///
    /// Returns `(id, was_new)`.
    pub fn draw(&mut self, rng: &mut StdRng, mint: &mut impl FnMut() -> u32) -> (u32, bool) {
        let novel = self.known.is_empty() || rng.gen::<f64>() < self.novelty_prob();
        if novel {
            let id = mint();
            self.known.push(id);
            (id, true)
        } else {
            let idx = if self.known.len() <= self.zipf.len() {
                weighted_index(rng, &self.zipf[..self.known.len()])
            } else {
                // Habitual core Zipf-weighted; overflow objects uniform.
                if rng.gen::<f64>() < 0.8 {
                    weighted_index(rng, &self.zipf)
                } else {
                    rng.gen_range(0..self.known.len())
                }
            };
            (self.known[idx], false)
        }
    }

    /// Forces `id` into the vocabulary (used by scenario injection so that
    /// repeated malicious contacts stop being "new" after the first day).
    pub fn insert(&mut self, id: u32) {
        if !self.contains(id) {
            self.known.push(id);
        }
    }
}

/// A monotonically increasing id allocator shared by all users of one object
/// kind, so new objects are globally unique.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// Creates an allocator whose first id is `start`.
    pub fn starting_at(start: u32) -> Self {
        IdAllocator { next: start }
    }

    /// Returns a fresh id.
    pub fn alloc(&mut self) -> u32 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Next id that would be allocated.
    pub fn peek(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn draws_mostly_known_objects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut alloc = IdAllocator::starting_at(1000);
        let mut vocab = Vocab::new(vec![1, 2, 3, 4, 5], 0.05, 10.0);
        let mut new_count = 0;
        for _ in 0..1000 {
            let (_, was_new) = vocab.draw(&mut rng, &mut || alloc.alloc());
            if was_new {
                new_count += 1;
            }
        }
        assert!(new_count > 5 && new_count < 100, "new_count {new_count}");
    }

    #[test]
    fn novelty_decays_as_vocab_grows() {
        let mut vocab = Vocab::new(vec![1], 0.5, 5.0);
        let p0 = vocab.novelty_prob();
        for i in 0..50 {
            vocab.insert(100 + i);
        }
        assert!(vocab.novelty_prob() < p0 / 5.0);
    }

    #[test]
    fn empty_vocab_always_mints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut alloc = IdAllocator::default();
        let mut vocab = Vocab::new(vec![], 0.0, 1.0);
        let (id, was_new) = vocab.draw(&mut rng, &mut || alloc.alloc());
        assert!(was_new);
        assert!(vocab.contains(id));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::starting_at(7);
        assert_eq!(alloc.alloc(), 7);
        assert_eq!(alloc.alloc(), 8);
        assert_eq!(alloc.peek(), 9);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut vocab = Vocab::new(vec![1], 0.1, 1.0);
        vocab.insert(2);
        vocab.insert(2);
        assert_eq!(vocab.len(), 2);
    }
}
