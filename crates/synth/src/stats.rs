//! Sampling primitives used by the synthesizer.

use rand::rngs::StdRng;
use rand::Rng;

/// Draws from a Poisson distribution with mean `lambda`.
///
/// Uses Knuth's method for small `lambda` and a normal approximation above 30,
/// which is plenty for per-day activity counts.
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be >= 0");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let sample = normal(rng, lambda, lambda.sqrt());
        return sample.round().max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerically impossible fallback
        }
    }
}

/// Draws from a normal distribution via Box-Muller.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Draws from a log-normal distribution with the given parameters of the
/// underlying normal.
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws an index in `0..weights.len()` proportionally to `weights`.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive sum");
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Zipf-like popularity weights for `n` items with exponent `s`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for &lambda in &[0.5, 3.0, 12.0, 50.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda) as u64).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut rng, &weights), 1);
        }
        let weights = [1.0, 1.0];
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert!(counts[0] > 800 && counts[1] > 800);
    }

    #[test]
    fn zipf_is_decreasing() {
        let w = zipf_weights(5, 1.0);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = poisson(&mut rng, -1.0);
    }
}
