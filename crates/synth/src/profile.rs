//! Per-user habitual behavior profiles.
//!
//! Each user gets stable per-channel activity rates so the organization has
//! learnable "past habitual patterns". Rates are expressed as expected event
//! counts per working-hours frame; the off-hours frame is a per-user fraction
//! plus a computer-initiated floor (backups/updates/retries happen to
//! everyone — Section III of the paper).

use crate::stats::log_normal;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Habitual activity rates for one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorProfile {
    /// Global per-user activity multiplier (log-normal across users).
    pub activity_scale: f64,
    /// Whether this user habitually uses removable drives.
    pub device_user: bool,
    /// Thumb-drive connects per working frame (if `device_user`).
    pub device_rate: f64,
    /// File operations per working frame.
    pub file_rate: f64,
    /// HTTP visits per working frame.
    pub http_visit_rate: f64,
    /// HTTP downloads per working frame.
    pub http_download_rate: f64,
    /// HTTP uploads per working frame (feature-bearing).
    pub http_upload_rate: f64,
    /// Emails per working frame.
    pub email_rate: f64,
    /// Interactive logons per working frame.
    pub logon_rate: f64,
    /// Fraction of human activity happening in the off-hours frame.
    pub off_hours_fraction: f64,
    /// Whether the user habitually works off-hours at all.
    pub works_off_hours: bool,
    /// Weekend human-activity multiplier.
    pub weekend_factor: f64,
    /// Upload file-type propensities (doc, exe, jpg, pdf, txt, zip).
    pub upload_type_weights: [f64; 6],
}

impl BehaviorProfile {
    /// Samples a realistic profile.
    pub fn sample(rng: &mut StdRng) -> Self {
        // Rate spreads are deliberately tight: the CERT dataset itself is
        // synthesized from near-homogeneous user models (Glasser & Lindauer
        // 2013), and heterogeneity here shows up as irreducible per-user
        // reconstruction-error offsets.
        let activity_scale = log_normal(rng, 0.0, 0.18).clamp(0.5, 2.0);
        let device_user = rng.gen::<f64>() < 0.3;
        let works_off_hours = rng.gen::<f64>() < 0.15;
        BehaviorProfile {
            activity_scale,
            device_user,
            device_rate: if device_user { rng.gen_range(0.3..0.8) } else { 0.0 },
            file_rate: rng.gen_range(8.0..14.0),
            http_visit_rate: rng.gen_range(10.0..18.0),
            http_download_rate: rng.gen_range(0.8..2.0),
            http_upload_rate: rng.gen_range(0.3..0.8),
            email_rate: rng.gen_range(3.0..6.0),
            logon_rate: rng.gen_range(2.0..3.5),
            off_hours_fraction: if works_off_hours {
                rng.gen_range(0.15..0.4)
            } else {
                rng.gen_range(0.0..0.05)
            },
            works_off_hours,
            weekend_factor: rng.gen_range(0.02..0.12),
            upload_type_weights: {
                let mut w = [0.0f64; 6];
                for x in &mut w {
                    *x = rng.gen_range(0.1..1.0);
                }
                w
            },
        }
    }

    /// Expected count for a channel in a frame on a day with multiplier
    /// `day_mult`, where `frame` 0 = working, 1 = off.
    ///
    /// The off frame gets the human `off_hours_fraction` plus a fixed
    /// computer-initiated floor scaled by `machine_floor`.
    pub fn frame_rate(&self, base: f64, frame: usize, day_mult: f64, machine_floor: f64) -> f64 {
        let human = base * self.activity_scale * day_mult;
        match frame {
            0 => human * (1.0 - self.off_hours_fraction),
            _ => human * self.off_hours_fraction + machine_floor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn profiles_vary_but_stay_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let profiles: Vec<BehaviorProfile> =
            (0..200).map(|_| BehaviorProfile::sample(&mut rng)).collect();
        let device_users = profiles.iter().filter(|p| p.device_user).count();
        assert!(device_users > 20 && device_users < 120, "{device_users}");
        for p in &profiles {
            assert!(p.activity_scale >= 0.3 && p.activity_scale <= 3.0);
            assert!(p.file_rate >= 6.0 && p.file_rate < 18.0);
            assert!(p.off_hours_fraction < 0.5);
        }
        // Not all identical.
        assert!(profiles.iter().any(|p| p.file_rate != profiles[0].file_rate));
    }

    #[test]
    fn frame_rate_split() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = BehaviorProfile::sample(&mut rng);
        p.activity_scale = 1.0;
        p.off_hours_fraction = 0.25;
        let working = p.frame_rate(10.0, 0, 1.0, 0.0);
        let off = p.frame_rate(10.0, 1, 1.0, 0.5);
        assert!((working - 7.5).abs() < 1e-9);
        assert!((off - 3.0).abs() < 1e-9);
    }

    #[test]
    fn day_multiplier_scales_human_part() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = BehaviorProfile::sample(&mut rng);
        p.activity_scale = 1.0;
        p.off_hours_fraction = 0.0;
        assert_eq!(p.frame_rate(4.0, 0, 2.0, 0.0), 8.0);
        // Machine floor is unaffected by busy days.
        assert_eq!(p.frame_rate(4.0, 1, 2.0, 0.7), 0.7);
    }
}
