//! Enterprise case-study environment (paper Section VI).
//!
//! Simulates the paper's real-world dataset: 246 employees observed through
//! Windows-event auditing (Sysmon / PowerShell / Security channels) and web
//! proxies over seven months, with
//!
//! * a scripted **Zeus botnet** infection (registry modification on the attack
//!   day, then C&C traffic and `newGOZ` DGA failures days later), or
//! * a scripted **WannaCry-style ransomware** detonation (registry
//!   modification plus mass file encryption),
//!
//! against one victim, plus the organization-wide environmental change the
//! paper observes on Jan 26 (Command rises, HTTP drops).

use crate::profile::BehaviorProfile;
use crate::stats::poisson;
use crate::vocab::{IdAllocator, Vocab};
use acobe_logs::calendar::Calendar;
use acobe_logs::event::*;
use acobe_logs::ids::{DomainId, HostId, UserId};
use acobe_logs::store::LogStore;
use acobe_logs::time::{Date, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Windows event ids per predictable behavioral aspect (Section VI-B1).
pub mod event_ids {
    /// File accesses: file-handle operations, file shares, Sysmon file events.
    pub const FILE: &[u16] = &[
        2, 11, 4656, 4658, 4659, 4660, 4661, 4662, 4663, 4670, 5140, 5141, 5142, 5143, 5144, 5145,
    ];
    /// Command executions: process creation and PowerShell execution.
    pub const COMMAND: &[u16] = &[1, 4100, 4101, 4102, 4103, 4104, 4688];
    /// Configuration: registry events plus account/password modification.
    pub const CONFIG: &[u16] = &[12, 13, 14, 4657, 4724, 4728];
    /// Resource usage: privileged service / scheduled-task events.
    pub const RESOURCE: &[u16] = &[4673, 4674, 4698, 5379];
}

/// Which attack is detonated against the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attack {
    /// Zeus bot: registry mod on day 0, delayed C&C + DGA failures.
    Zeus,
    /// WannaCry-style ransomware: registry mod + mass file encryption.
    Ransomware,
}

impl Attack {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::Zeus => "zeus",
            Attack::Ransomware => "ransomware",
        }
    }
}

/// Configuration of the enterprise case-study dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnterpriseConfig {
    /// Number of employees (the paper has 246).
    pub users: usize,
    /// First generated day.
    pub start: Date,
    /// First non-generated day.
    pub end: Date,
    /// The attack scenario.
    pub attack: Attack,
    /// The victim employee.
    pub victim: UserId,
    /// The attack day (paper: Feb 2).
    pub attack_day: Date,
    /// Start of the org-wide environmental change (paper: Jan 26).
    pub env_change: Date,
    /// Master seed.
    pub seed: u64,
}

impl EnterpriseConfig {
    /// The paper's case-study shape: 246 employees, seven months
    /// (2010-08-01 .. 2011-03-01), attack on 2011-02-02, environmental
    /// change on 2011-01-26.
    pub fn paper(attack: Attack, seed: u64) -> Self {
        EnterpriseConfig {
            users: 246,
            start: Date::from_ymd(2010, 8, 1),
            end: Date::from_ymd(2011, 3, 1),
            attack,
            victim: UserId(17),
            attack_day: Date::from_ymd(2011, 2, 2),
            env_change: Date::from_ymd(2011, 1, 26),
            seed,
        }
    }

    /// A fast, small variant for tests: 20 users over ~12 weeks.
    pub fn small(attack: Attack, seed: u64) -> Self {
        EnterpriseConfig {
            users: 20,
            start: Date::from_ymd(2010, 12, 1),
            end: Date::from_ymd(2011, 2, 20),
            attack,
            victim: UserId(3),
            attack_day: Date::from_ymd(2011, 2, 2),
            env_change: Date::from_ymd(2011, 1, 26),
            seed,
        }
    }
}

#[derive(Debug)]
struct EmployeeState {
    profile: BehaviorProfile,
    file_objects: Vocab,
    command_objects: Vocab,
    config_objects: Vocab,
    resource_objects: Vocab,
    domains: Vocab,
    hosts: Vocab,
    file_rate: f64,
    command_rate: f64,
    config_rate: f64,
    resource_rate: f64,
    proxy_rate: f64,
}

/// Streaming generator for the enterprise case study.
///
/// # Examples
///
/// ```
/// use acobe_synth::enterprise::{Attack, EnterpriseConfig, EnterpriseGenerator};
/// let mut gen = EnterpriseGenerator::new(EnterpriseConfig::small(Attack::Zeus, 1));
/// let first = gen.config().start;
/// assert!(!gen.generate_day(first).is_empty());
/// ```
#[derive(Debug)]
pub struct EnterpriseGenerator {
    config: EnterpriseConfig,
    calendar: Calendar,
    employees: Vec<EmployeeState>,
    rng: StdRng,
    object_alloc: IdAllocator,
    domain_alloc: IdAllocator,
    host_alloc: IdAllocator,
    cnc_domain: u32,
    shared_tool_object: u32,
    next_date: Date,
}

impl EnterpriseGenerator {
    /// Builds per-employee state for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the victim id is outside `0..users`.
    pub fn new(config: EnterpriseConfig) -> Self {
        assert!(config.victim.index() < config.users, "victim out of range");
        let calendar = Calendar::us_style(config.start.year()..=config.end.year());
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x_e17e);
        let mut object_alloc = IdAllocator::starting_at(1);
        let mut domain_alloc = IdAllocator::starting_at(10_000);
        let host_alloc = IdAllocator::starting_at(50_000);

        let mut employees = Vec::with_capacity(config.users);
        for uid in 0..config.users as u32 {
            let profile = BehaviorProfile::sample(&mut rng);
            let mut mk_vocab = |n: usize, novelty: f64, decay: f64| {
                let initial: Vec<u32> = (0..n).map(|_| object_alloc.alloc()).collect();
                Vocab::new(initial, novelty, decay)
            };
            let file_objects = mk_vocab(40, 0.10, 50.0);
            let command_objects = mk_vocab(12, 0.03, 10.0);
            let config_objects = mk_vocab(8, 0.02, 6.0);
            let resource_objects = mk_vocab(6, 0.02, 6.0);
            let domains: Vec<u32> = (0..20).map(|_| domain_alloc.alloc()).collect();
            employees.push(EmployeeState {
                // The victim barely uses Command (paper: "the victim barely
                // has any activities in the Command aspect").
                command_rate: if uid == config.victim.0 {
                    0.05
                } else {
                    rng.gen_range(0.5..3.0)
                },
                file_rate: rng.gen_range(8.0..25.0),
                config_rate: rng.gen_range(0.05..0.5),
                resource_rate: rng.gen_range(0.1..1.0),
                proxy_rate: rng.gen_range(10.0..30.0),
                profile,
                file_objects,
                command_objects,
                config_objects,
                resource_objects,
                domains: Vocab::new(domains, 0.06, 30.0),
                hosts: Vocab::new(vec![uid], 0.01, 4.0),
            });
        }

        let cnc_domain = domain_alloc.alloc();
        let shared_tool_object = object_alloc.alloc();
        let next_date = config.start;
        EnterpriseGenerator {
            config,
            calendar,
            employees,
            rng,
            object_alloc,
            domain_alloc,
            host_alloc,
            cnc_domain,
            shared_tool_object,
            next_date,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EnterpriseConfig {
        &self.config
    }

    /// The work calendar.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// The C&C domain contacted by the Zeus bot (for assertions/analysis).
    pub fn cnc_domain(&self) -> DomainId {
        DomainId(self.cnc_domain)
    }

    /// Generates all events for one day (must be called in date order).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order days or days outside the configured span.
    pub fn generate_day(&mut self, date: Date) -> Vec<LogEvent> {
        assert_eq!(date, self.next_date, "days must be generated in order");
        assert!(date < self.config.end, "date beyond configured span");
        self.next_date = date.add_days(1);

        let workday = self.calendar.is_workday(date);
        let env_active =
            date >= self.config.env_change && date < self.config.env_change.add_days(3);

        let mut events = Vec::new();
        for uid in 0..self.employees.len() {
            let user = UserId(uid as u32);
            self.generate_employee_day(date, user, workday, env_active, &mut events);
        }
        self.inject_attack(date, &mut events);
        events.sort_by_key(|e| e.ts());
        events
    }

    /// Convenience: generates the whole configured span.
    pub fn build_store(&mut self) -> LogStore {
        let _span = acobe_obs::span!("synth", dataset = "enterprise");
        let mut store = LogStore::new();
        let (start, end) = (self.config.start, self.config.end);
        for date in start.range_to(end) {
            store.extend(self.generate_day(date));
        }
        store.finalize();
        acobe_obs::counter("synth/events_generated").add(store.len() as u64);
        store
    }

    fn time_in_frame(&mut self, date: Date, frame: usize) -> Timestamp {
        let secs: i64 = if frame == 0 {
            self.rng.gen_range(6 * 3600..18 * 3600)
        } else {
            let x: i64 = self.rng.gen_range(0..12 * 3600);
            if x < 6 * 3600 {
                18 * 3600 + x
            } else {
                x - 6 * 3600
            }
        };
        date.midnight().add_secs(secs)
    }

    fn emit_windows(
        &mut self,
        date: Date,
        frame: usize,
        user: UserId,
        aspect: Aspect,
        count: u32,
        out: &mut Vec<LogEvent>,
    ) {
        for _ in 0..count {
            let ts = self.time_in_frame(date, frame);
            let ids = aspect.event_ids();
            let event_id = ids[self.rng.gen_range(0..ids.len())];
            let object = self.draw_object(user.index(), aspect) as u64;
            let channel = channel_for(aspect, event_id);
            out.push(LogEvent::Windows(WindowsEvent { ts, user, channel, event_id, object }));
        }
    }

    fn draw_object(&mut self, uid: usize, aspect: Aspect) -> u32 {
        let Self { employees, rng, object_alloc, .. } = self;
        let vocab = match aspect {
            Aspect::File => &mut employees[uid].file_objects,
            Aspect::Command => &mut employees[uid].command_objects,
            Aspect::Config => &mut employees[uid].config_objects,
            Aspect::Resource => &mut employees[uid].resource_objects,
        };
        vocab.draw(rng, &mut || object_alloc.alloc()).0
    }

    fn draw_domain(&mut self, uid: usize) -> u32 {
        let Self { employees, rng, domain_alloc, .. } = self;
        employees[uid].domains.draw(rng, &mut || domain_alloc.alloc()).0
    }

    fn generate_employee_day(
        &mut self,
        date: Date,
        user: UserId,
        workday: bool,
        env_active: bool,
        out: &mut Vec<LogEvent>,
    ) {
        let uid = user.index();
        let day_mult = if workday {
            1.0
        } else {
            self.employees[uid].profile.weekend_factor
        };

        for frame in 0..2usize {
            let e = &self.employees[uid];
            let p = &e.profile;
            let file_rate = p.frame_rate(e.file_rate, frame, day_mult, 0.8);
            let mut command_rate = p.frame_rate(e.command_rate, frame, day_mult, 0.05);
            let config_rate = p.frame_rate(e.config_rate, frame, day_mult, 0.02);
            let resource_rate = p.frame_rate(e.resource_rate, frame, day_mult, 0.05);
            let mut proxy_rate = p.frame_rate(e.proxy_rate, frame, day_mult, 1.5);
            let logon_rate = p.frame_rate(p.logon_rate, frame, day_mult, 0.2);

            // Org-wide environmental change (paper: Jan 26 -- Command rises,
            // HTTP drops).
            let env_frame = env_active && frame == 0 && workday;
            if env_frame {
                command_rate += 4.0;
                proxy_rate *= 0.45;
            }

            let n = poisson(&mut self.rng, file_rate);
            self.emit_windows(date, frame, user, Aspect::File, n, out);

            let n = poisson(&mut self.rng, command_rate.max(0.0));
            if env_frame && n > 0 {
                // Part of the burst is the shared new tool everyone runs.
                let shared = (n / 2).max(1).min(n);
                let tool = self.shared_tool_object;
                self.employees[uid].command_objects.insert(tool);
                for _ in 0..shared {
                    let ts = self.time_in_frame(date, frame);
                    out.push(LogEvent::Windows(WindowsEvent {
                        ts,
                        user,
                        channel: WinChannel::Security,
                        event_id: 4688,
                        object: tool as u64,
                    }));
                }
                self.emit_windows(date, frame, user, Aspect::Command, n - shared, out);
            } else {
                self.emit_windows(date, frame, user, Aspect::Command, n, out);
            }

            let n = poisson(&mut self.rng, config_rate);
            self.emit_windows(date, frame, user, Aspect::Config, n, out);
            let n = poisson(&mut self.rng, resource_rate);
            self.emit_windows(date, frame, user, Aspect::Resource, n, out);

            // Proxy traffic.
            let n = poisson(&mut self.rng, proxy_rate);
            for _ in 0..n {
                let ts = self.time_in_frame(date, frame);
                let domain = DomainId(self.draw_domain(uid));
                let success = self.rng.gen::<f64>() < 0.96;
                out.push(LogEvent::Proxy(ProxyEvent { ts, user, domain, success }));
            }

            // Logons.
            let n = poisson(&mut self.rng, logon_rate);
            for _ in 0..n {
                let ts = self.time_in_frame(date, frame);
                let Self { employees, rng, host_alloc, .. } = self;
                let host = HostId(employees[uid].hosts.draw(rng, &mut || host_alloc.alloc()).0);
                let success = self.rng.gen::<f64>() < 0.97;
                out.push(LogEvent::Logon(LogonEvent {
                    ts,
                    user,
                    host,
                    activity: LogonActivity::Logon,
                    success,
                }));
            }
        }
    }

    fn inject_attack(&mut self, date: Date, out: &mut Vec<LogEvent>) {
        let victim = self.config.victim;
        let attack_day = self.config.attack_day;
        if date < attack_day {
            return;
        }
        let days_in = date.days_since(attack_day);

        match self.config.attack {
            Attack::Zeus => {
                if days_in == 0 {
                    // Download Zeus via a downloader app, run it, delete the
                    // downloader, modify registry values.
                    self.emit_new_object_events(date, victim, 4, 4688, out);
                    self.emit_new_object_events(date, victim, 8, 13, out);
                    self.emit_new_object_events(date, victim, 3, 11, out);
                }
                if days_in >= 2 {
                    // C&C heartbeat (successful, same domain daily) ...
                    let n = self.rng.gen_range(3..8);
                    let cnc = self.cnc_domain;
                    for _ in 0..n {
                        let frame = self.rng.gen_range(0..2);
                        let ts = self.time_in_frame(date, frame);
                        out.push(LogEvent::Proxy(ProxyEvent {
                            ts,
                            user: victim,
                            domain: DomainId(cnc),
                            success: true,
                        }));
                    }
                    // ... plus newGOZ DGA queries to non-existent domains:
                    // every one fails and every one is new.
                    let n = self.rng.gen_range(15..40);
                    for _ in 0..n {
                        let frame = self.rng.gen_range(0..2);
                        let ts = self.time_in_frame(date, frame);
                        let domain = DomainId(self.domain_alloc.alloc());
                        out.push(LogEvent::Proxy(ProxyEvent {
                            ts,
                            user: victim,
                            domain,
                            success: false,
                        }));
                    }
                }
            }
            Attack::Ransomware => {
                if days_in == 0 {
                    self.emit_new_object_events(date, victim, 3, 4688, out);
                    self.emit_new_object_events(date, victim, 10, 13, out);
                }
                if days_in <= 6 {
                    // Mass encryption with brand-new file objects (encrypted
                    // copies), tapering off as the worm re-scans shares and
                    // the victim restores files over the following week.
                    let base = match days_in {
                        0 => 260u32,
                        1 => 200,
                        2 => 140,
                        3 => 90,
                        4 => 60,
                        _ => 35,
                    };
                    let extra = self.rng.gen_range(0..60);
                    self.emit_new_object_events(date, victim, base + extra, 11, out);
                }
            }
        }
    }

    fn emit_new_object_events(
        &mut self,
        date: Date,
        user: UserId,
        count: u32,
        event_id: u16,
        out: &mut Vec<LogEvent>,
    ) {
        for _ in 0..count {
            let ts = self.time_in_frame(date, 0);
            let object = self.object_alloc.alloc() as u64;
            let channel = if event_id < 100 {
                WinChannel::Sysmon
            } else {
                WinChannel::Security
            };
            out.push(LogEvent::Windows(WindowsEvent { ts, user, channel, event_id, object }));
        }
    }
}

fn channel_for(aspect: Aspect, event_id: u16) -> WinChannel {
    match aspect {
        Aspect::File | Aspect::Config => {
            if event_id < 100 {
                WinChannel::Sysmon
            } else {
                WinChannel::Security
            }
        }
        Aspect::Command => {
            if (4100..=4104).contains(&event_id) {
                WinChannel::PowerShell
            } else if event_id == 1 {
                WinChannel::Sysmon
            } else {
                WinChannel::Security
            }
        }
        Aspect::Resource => WinChannel::Security,
    }
}

/// The four predictable behavioral aspects of the case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aspect {
    /// File accesses.
    File,
    /// Command executions.
    Command,
    /// Configuration (registry, accounts).
    Config,
    /// Resource usage.
    Resource,
}

impl Aspect {
    /// The Windows event ids belonging to this aspect.
    pub fn event_ids(&self) -> &'static [u16] {
        match self {
            Aspect::File => event_ids::FILE,
            Aspect::Command => event_ids::COMMAND,
            Aspect::Config => event_ids::CONFIG,
            Aspect::Resource => event_ids::RESOURCE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeus_produces_delayed_dga_failures() {
        let cfg = EnterpriseConfig::small(Attack::Zeus, 3);
        let victim = cfg.victim;
        let attack_day = cfg.attack_day;
        let mut g = EnterpriseGenerator::new(cfg);
        let mut failures_before = 0usize;
        let mut failures_after = 0usize;
        let end = g.config().end;
        for date in g.config().start.range_to(end) {
            for e in g.generate_day(date) {
                if let LogEvent::Proxy(p) = e {
                    if p.user == victim && !p.success {
                        if date < attack_day.add_days(2) {
                            failures_before += 1;
                        } else {
                            failures_after += 1;
                        }
                    }
                }
            }
        }
        // Before infection only the ~4% organic failure rate over ~9 weeks;
        // after, dozens of DGA failures per day over ~2.5 weeks.
        assert!(
            failures_after > failures_before,
            "{failures_before} vs {failures_after}"
        );
    }

    #[test]
    fn zeus_attack_day_has_registry_mods() {
        let cfg = EnterpriseConfig::small(Attack::Zeus, 3);
        let victim = cfg.victim;
        let attack_day = cfg.attack_day;
        let mut g = EnterpriseGenerator::new(cfg);
        let mut registry_events = 0usize;
        for date in g.config().start.range_to(attack_day.add_days(1)) {
            for e in g.generate_day(date) {
                if let LogEvent::Windows(w) = e {
                    if w.user == victim && date == attack_day && w.event_id == 13 {
                        registry_events += 1;
                    }
                }
            }
        }
        assert!(registry_events >= 8, "{registry_events}");
    }

    #[test]
    fn ransomware_floods_file_aspect() {
        let cfg = EnterpriseConfig::small(Attack::Ransomware, 4);
        let victim = cfg.victim;
        let attack_day = cfg.attack_day;
        let mut g = EnterpriseGenerator::new(cfg);
        let mut per_day = std::collections::BTreeMap::new();
        let end = g.config().end;
        for date in g.config().start.range_to(end) {
            for e in g.generate_day(date) {
                if let LogEvent::Windows(w) = e {
                    if w.user == victim && event_ids::FILE.contains(&w.event_id) {
                        *per_day.entry(date).or_insert(0usize) += 1;
                    }
                }
            }
        }
        let normal_max = per_day
            .iter()
            .filter(|(d, _)| **d < attack_day)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        let attack_count = per_day.get(&attack_day).copied().unwrap_or(0);
        assert!(
            attack_count > normal_max * 3,
            "attack {attack_count} vs max {normal_max}"
        );
    }

    #[test]
    fn env_change_raises_command_lowers_proxy() {
        let cfg = EnterpriseConfig::small(Attack::Zeus, 5);
        let env_day = cfg.env_change; // 2011-01-26, a Wednesday
        let mut g = EnterpriseGenerator::new(cfg);
        let mut command_by_day = std::collections::BTreeMap::new();
        let mut proxy_by_day = std::collections::BTreeMap::new();
        for date in g.config().start.range_to(env_day.add_days(1)) {
            for e in g.generate_day(date) {
                match e {
                    LogEvent::Windows(w) if event_ids::COMMAND.contains(&w.event_id) => {
                        *command_by_day.entry(date).or_insert(0usize) += 1;
                    }
                    LogEvent::Proxy(_) => {
                        *proxy_by_day.entry(date).or_insert(0usize) += 1;
                    }
                    _ => {}
                }
            }
        }
        // Compare the env day against the previous Wednesday.
        let baseline = env_day.add_days(-7);
        assert!(command_by_day[&env_day] > command_by_day[&baseline] * 2);
        assert!(proxy_by_day[&env_day] * 3 < proxy_by_day[&baseline] * 2);
    }

    #[test]
    fn deterministic() {
        let mut a = EnterpriseGenerator::new(EnterpriseConfig::small(Attack::Zeus, 9));
        let mut b = EnterpriseGenerator::new(EnterpriseConfig::small(Attack::Zeus, 9));
        let d = a.config().start;
        assert_eq!(a.generate_day(d), b.generate_day(d));
    }

    #[test]
    #[should_panic(expected = "victim out of range")]
    fn victim_must_exist() {
        let mut cfg = EnterpriseConfig::small(Attack::Zeus, 1);
        cfg.victim = UserId(999);
        let _ = EnterpriseGenerator::new(cfg);
    }
}
