//! Insider-threat scenario scripts (CERT r6.1/r6.2 scenarios 1 and 2).
//!
//! The paper evaluates the two user-centric CERT scenarios (Section V-A1):
//!
//! 1. A user who never used removable drives or worked off-hours begins
//!    logging in off-hours, using a thumb drive, and uploading data to
//!    wikileaks.org, then leaves the organization.
//! 2. A user surfs job websites and solicits employment from a competitor
//!    (uploading their resume), then uses a thumb drive at markedly higher
//!    rates than before to steal data just before leaving.

use acobe_logs::ids::UserId;
use acobe_logs::time::Date;
use serde::{Deserialize, Serialize};

/// Which threat script a victim follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsiderScenario {
    /// CERT scenario 1: abrupt off-hours exfiltration over ~2 weeks.
    Scenario1 {
        /// First anomalous day.
        start: Date,
    },
    /// CERT scenario 2: two months of job hunting with a final exfiltration
    /// week.
    Scenario2 {
        /// First anomalous day (resume uploads begin).
        start: Date,
    },
}

impl InsiderScenario {
    /// The labeled anomaly window `(first_day, first_clean_day)`.
    pub fn anomaly_span(&self) -> (Date, Date) {
        match self {
            InsiderScenario::Scenario1 { start } => (*start, start.add_days(12)),
            InsiderScenario::Scenario2 { start } => (*start, start.add_days(60)),
        }
    }

    /// The day the victim leaves the organization (activity stops).
    pub fn departure(&self) -> Date {
        let (_, end) = self.anomaly_span();
        end.add_days(14)
    }

    /// Days of the final heavy-exfiltration phase for scenario 2.
    pub fn exfil_span(&self) -> Option<(Date, Date)> {
        match self {
            InsiderScenario::Scenario1 { .. } => None,
            InsiderScenario::Scenario2 { start } => {
                let end = start.add_days(60);
                Some((end.add_days(-7), end))
            }
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            InsiderScenario::Scenario1 { .. } => "scenario1",
            InsiderScenario::Scenario2 { .. } => "scenario2",
        }
    }
}

/// A scenario bound to a victim user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioPlacement {
    /// The abnormal user.
    pub victim: UserId,
    /// The script they follow.
    pub scenario: InsiderScenario,
}

/// Ground-truth record for one victim, used by the evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimRecord {
    /// The abnormal user.
    pub user: UserId,
    /// Scenario name.
    pub scenario: String,
    /// First labeled anomalous day.
    pub anomaly_start: Date,
    /// First day after the labeled anomaly window.
    pub anomaly_end: Date,
}

impl From<&ScenarioPlacement> for VictimRecord {
    fn from(p: &ScenarioPlacement) -> Self {
        let (start, end) = p.scenario.anomaly_span();
        VictimRecord {
            user: p.victim,
            scenario: p.scenario.name().to_string(),
            anomaly_start: start,
            anomaly_end: end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_span() {
        let s = InsiderScenario::Scenario1 { start: Date::from_ymd(2010, 8, 9) };
        let (a, b) = s.anomaly_span();
        assert_eq!(b.days_since(a), 12);
        assert!(s.exfil_span().is_none());
        assert_eq!(s.departure(), b.add_days(14));
    }

    #[test]
    fn scenario2_span_and_exfil() {
        let s = InsiderScenario::Scenario2 { start: Date::from_ymd(2011, 1, 7) };
        let (a, b) = s.anomaly_span();
        assert_eq!(b.days_since(a), 60);
        let (xa, xb) = s.exfil_span().unwrap();
        assert_eq!(xb, b);
        assert_eq!(xb.days_since(xa), 7);
    }

    #[test]
    fn victim_record_from_placement() {
        let p = ScenarioPlacement {
            victim: UserId(42),
            scenario: InsiderScenario::Scenario2 { start: Date::from_ymd(2011, 1, 7) },
        };
        let r = VictimRecord::from(&p);
        assert_eq!(r.user, UserId(42));
        assert_eq!(r.scenario, "scenario2");
        assert_eq!(r.anomaly_start, Date::from_ymd(2011, 1, 7));
    }
}
