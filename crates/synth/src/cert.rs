//! CERT-like insider-threat dataset generator.
//!
//! Re-synthesizes the structure of the CERT Insider Threat Test Dataset
//! r6.1/r6.2 that the paper evaluates on: a multi-department organization
//! producing device / file / HTTP / email / logon logs over ~17 months, with
//! calendar seasonality, busy return days, group-wide environmental events,
//! per-user object vocabularies (for "new-op" features) and injected insider
//! scenarios 1 and 2 (see DESIGN.md for the substitution rationale).

use crate::environment::{EnvEffect, EnvEvent, Scope};
use crate::org::{build_directory, OrgConfig};
use crate::profile::BehaviorProfile;
use crate::scenario::{InsiderScenario, ScenarioPlacement, VictimRecord};
use crate::stats::{poisson, weighted_index};
use crate::vocab::{IdAllocator, Vocab};
use acobe_logs::calendar::Calendar;
use acobe_logs::directory::Directory;
use acobe_logs::event::*;
use acobe_logs::ids::{DomainId, FileId, HostId, UserId};
use acobe_logs::store::LogStore;
use acobe_logs::time::{Date, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Full configuration of a synthesized CERT-like dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertConfig {
    /// Organization shape.
    pub org: OrgConfig,
    /// First generated day.
    pub start: Date,
    /// First non-generated day.
    pub end: Date,
    /// Master seed.
    pub seed: u64,
    /// Injected insider scenarios.
    pub scenarios: Vec<ScenarioPlacement>,
    /// Group-level environmental events.
    pub env_events: Vec<EnvEvent>,
}

impl CertConfig {
    /// The paper-like evaluation dataset: four departments, one insider per
    /// department (two instances of each scenario, mirroring r6.1 + r6.2),
    /// spanning 2010-01-02 .. 2011-05-31, with several environmental events.
    pub fn paper(org: OrgConfig, seed: u64) -> Self {
        let per = org.users_per_dept as u32;
        let victim = |dept: u32| UserId(dept * per + 7 % per.max(1));
        let scenarios = vec![
            ScenarioPlacement {
                victim: victim(0),
                scenario: InsiderScenario::Scenario1 { start: Date::from_ymd(2010, 8, 9) },
            },
            ScenarioPlacement {
                victim: victim(1),
                scenario: InsiderScenario::Scenario2 { start: Date::from_ymd(2011, 1, 7) },
            },
            ScenarioPlacement {
                victim: victim(2),
                scenario: InsiderScenario::Scenario1 { start: Date::from_ymd(2011, 2, 7) },
            },
            ScenarioPlacement {
                victim: victim(3),
                scenario: InsiderScenario::Scenario2 { start: Date::from_ymd(2010, 9, 10) },
            },
        ]
        .into_iter()
        .take(org.departments)
        .collect();

        let env_events = vec![
            EnvEvent {
                start: Date::from_ymd(2010, 6, 14),
                end: Date::from_ymd(2010, 6, 18),
                scope: Scope::Org,
                effect: EnvEffect::NewService { domain: ENV_DOMAIN_BASE, daily_hits: 6.0 },
            },
            EnvEvent {
                start: Date::from_ymd(2010, 10, 5),
                end: Date::from_ymd(2010, 10, 7),
                scope: Scope::Org,
                effect: EnvEffect::Outage { daily_failures: 8.0 },
            },
            EnvEvent {
                start: Date::from_ymd(2011, 1, 24),
                end: Date::from_ymd(2011, 1, 28),
                scope: Scope::Org,
                effect: EnvEffect::NewService { domain: ENV_DOMAIN_BASE + 1, daily_hits: 5.0 },
            },
        ];

        CertConfig {
            org,
            start: Date::from_ymd(2010, 1, 2),
            end: Date::from_ymd(2011, 6, 1),
            seed,
            scenarios,
            env_events,
        }
    }

    /// A fast small dataset for tests: two departments, ~3 months, one
    /// scenario of each kind.
    pub fn small(seed: u64) -> Self {
        let org = OrgConfig::small();
        let per = org.users_per_dept as u32;
        CertConfig {
            scenarios: vec![
                ScenarioPlacement {
                    victim: UserId(3),
                    scenario: InsiderScenario::Scenario1 { start: Date::from_ymd(2010, 3, 8) },
                },
                ScenarioPlacement {
                    victim: UserId(per + 4),
                    scenario: InsiderScenario::Scenario2 { start: Date::from_ymd(2010, 2, 15) },
                },
            ],
            env_events: vec![EnvEvent {
                start: Date::from_ymd(2010, 3, 1),
                end: Date::from_ymd(2010, 3, 4),
                scope: Scope::Org,
                effect: EnvEffect::NewService { domain: ENV_DOMAIN_BASE, daily_hits: 4.0 },
            }],
            org,
            start: Date::from_ymd(2010, 1, 4),
            end: Date::from_ymd(2010, 5, 1),
            seed,
        }
    }
}

/// Number of globally popular web domains (ids `0..POPULAR_DOMAINS`).
pub const POPULAR_DOMAINS: u32 = 60;
/// Domain ids reserved for environmental "new services".
pub const ENV_DOMAIN_BASE: u32 = 9_000;
/// First dynamically allocated domain id.
const DOMAIN_ALLOC_BASE: u32 = 10_000;
/// First dynamically allocated file id.
const FILE_ALLOC_BASE: u32 = 1_000_000;
/// First dynamically allocated host id.
const HOST_ALLOC_BASE: u32 = 200_000;
/// Shared department server host ids.
const DEPT_SERVER_BASE: u32 = 100_000;

#[derive(Debug)]
struct UserState {
    profile: BehaviorProfile,
    domains: Vocab,
    upload_domains: Vocab,
    files: Vocab,
    hosts: Vocab,
    /// An ongoing personal event (deadline crunch / new project), if any.
    personal: Option<PersonalEvent>,
}

/// Benign per-user anomalies: the "unusual yet common" activity the paper's
/// Section III and VII argue single-day models misreport. A deadline crunch
/// multiplies habitual activity for a few days; a new project brings a burst
/// of never-seen files and domains with a long smooth tail.
#[derive(Debug, Clone, Copy)]
enum PersonalEvent {
    Crunch { until: Date, mult: f64 },
    NewProject { until: Date },
}

#[derive(Debug)]
struct VictimState {
    scenario: InsiderScenario,
    /// Scenario-specific exfiltration target domains. Scenario 1 has a
    /// single wikileaks-style destination; scenario 2 holds a *growing*
    /// pool of job portals (applying to new companies keeps the
    /// `http.new-op` feature firing for the whole job hunt, as in the
    /// paper's Figure 4).
    special_domains: Vec<u32>,
}

/// Streaming generator: call [`CertGenerator::generate_day`] for consecutive
/// days (starting at `config.start`) or use [`CertGenerator::build_store`].
///
/// # Examples
///
/// ```
/// use acobe_synth::cert::{CertConfig, CertGenerator};
/// let mut gen = CertGenerator::new(CertConfig::small(1));
/// let first_day = gen.config().start;
/// let events = gen.generate_day(first_day);
/// assert!(!events.is_empty());
/// ```
#[derive(Debug)]
pub struct CertGenerator {
    config: CertConfig,
    directory: Directory,
    calendar: Calendar,
    users: Vec<UserState>,
    victims: Vec<Option<VictimState>>,
    rng: StdRng,
    domain_alloc: IdAllocator,
    file_alloc: IdAllocator,
    host_alloc: IdAllocator,
    next_date: Date,
}

impl CertGenerator {
    /// Builds the organization and per-user state for `config`.
    pub fn new(config: CertConfig) -> Self {
        let directory = build_directory(&config.org);
        let calendar = Calendar::us_style(config.start.year()..=config.end.year());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut domain_alloc = IdAllocator::starting_at(DOMAIN_ALLOC_BASE);
        let mut file_alloc = IdAllocator::starting_at(FILE_ALLOC_BASE);
        let host_alloc = IdAllocator::starting_at(HOST_ALLOC_BASE);

        let n = directory.len();
        let mut users = Vec::with_capacity(n);
        for uid in 0..n as u32 {
            let mut profile = BehaviorProfile::sample(&mut rng);
            // Scenario preconditions (Section V-A1): the scenario-1 victim
            // "did not previously use removable drives or work during
            // off-hours"; the scenario-2 victim used drives at low rates.
            if let Some(p) = config.scenarios.iter().find(|p| p.victim == UserId(uid)) {
                match p.scenario {
                    InsiderScenario::Scenario1 { .. } => {
                        profile.device_user = false;
                        profile.device_rate = 0.0;
                        profile.works_off_hours = false;
                        profile.off_hours_fraction = 0.01;
                    }
                    InsiderScenario::Scenario2 { .. } => {
                        // Used a thumb drive before, but rarely; rarely
                        // uploaded documents (the resume uploads must break
                        // the habit, as for JPH1910 in the paper's Figure 4).
                        profile.device_user = true;
                        profile.device_rate = 0.15;
                        profile.http_upload_rate = 0.08;
                    }
                }
            }
            let dept = directory.dept_of(UserId(uid)).expect("user registered");
            let mut initial_domains: Vec<u32> = Vec::new();
            let popular_weights = crate::stats::zipf_weights(POPULAR_DOMAINS as usize, 1.0);
            for _ in 0..15 {
                let d = weighted_index(&mut rng, &popular_weights) as u32;
                if !initial_domains.contains(&d) {
                    initial_domains.push(d);
                }
            }
            for _ in 0..8 {
                initial_domains.push(domain_alloc.alloc());
            }
            let upload_initial: Vec<u32> =
                (0..rng.gen_range(2..5)).map(|_| domain_alloc.alloc()).collect();
            let file_initial: Vec<u32> =
                (0..30).map(|_| file_alloc.alloc()).collect();
            let host_initial = vec![uid, DEPT_SERVER_BASE + dept.0];

            users.push(UserState {
                profile,
                domains: Vocab::new(initial_domains, 0.08, 40.0),
                upload_domains: Vocab::new(upload_initial, 0.04, 10.0),
                files: Vocab::new(file_initial, 0.12, 60.0),
                hosts: Vocab::new(host_initial, 0.012, 5.0),
                personal: None,
            });
        }

        let mut victims: Vec<Option<VictimState>> = (0..n).map(|_| None).collect();
        for p in &config.scenarios {
            let special = match p.scenario {
                // One wikileaks-style destination.
                InsiderScenario::Scenario1 { .. } => vec![domain_alloc.alloc()],
                // The first couple of job sites; the pool grows as the
                // victim applies to more companies.
                InsiderScenario::Scenario2 { .. } => {
                    (0..2).map(|_| domain_alloc.alloc()).collect()
                }
            };
            victims[p.victim.index()] = Some(VictimState {
                scenario: p.scenario,
                special_domains: special,
            });
        }

        let next_date = config.start;
        CertGenerator {
            config,
            directory,
            calendar,
            users,
            victims,
            rng,
            domain_alloc,
            file_alloc,
            host_alloc,
            next_date,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CertConfig {
        &self.config
    }

    /// The LDAP directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The work calendar.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// Ground-truth victim records.
    pub fn ground_truth(&self) -> Vec<VictimRecord> {
        self.config.scenarios.iter().map(VictimRecord::from).collect()
    }

    /// Generates all events for one day.
    ///
    /// # Panics
    ///
    /// Panics if days are requested out of order (state such as vocabularies
    /// evolves day by day) or outside the configured span.
    pub fn generate_day(&mut self, date: Date) -> Vec<LogEvent> {
        assert_eq!(date, self.next_date, "days must be generated in order");
        assert!(date < self.config.end, "date beyond configured span");
        self.next_date = date.add_days(1);

        let workday = self.calendar.is_workday(date);
        let break_len = self.calendar.preceding_break_len(date);
        // Busy return days: the whole organization catches up.
        let busy_boost = if workday && break_len > 1 {
            1.0 + 0.45 * (break_len.min(4) as f64)
        } else {
            1.0
        };

        let mut events = Vec::new();
        for uid in 0..self.users.len() {
            let user = UserId(uid as u32);
            if let Some(v) = &self.victims[uid] {
                if date >= v.scenario.departure() {
                    continue; // the insider has left the organization
                }
            }
            let personal_mult = self.step_personal_event(date, uid, workday);
            self.generate_user_day(date, user, workday, busy_boost, personal_mult, &mut events);
            if let Some(PersonalEvent::NewProject { .. }) = self.users[uid].personal {
                if workday {
                    self.inject_new_project_day(date, user, &mut events);
                }
            }
            self.apply_env_events(date, user, &mut events);
            if self.victims[uid].is_some() {
                self.inject_scenario(date, user, &mut events);
            }
        }
        events.sort_by_key(|e| e.ts());
        events
    }

    /// Convenience: generates the full configured span into a [`LogStore`].
    pub fn build_store(&mut self) -> LogStore {
        let _span = acobe_obs::span!("synth", dataset = "cert");
        let mut store = LogStore::new();
        let (start, end) = (self.config.start, self.config.end);
        for date in start.range_to(end) {
            store.extend(self.generate_day(date));
        }
        store.finalize();
        acobe_obs::counter("synth/events_generated").add(store.len() as u64);
        store
    }

    fn time_in_frame(&mut self, date: Date, frame: usize) -> Timestamp {
        let secs: i64 = if frame == 0 {
            self.rng.gen_range(6 * 3600..18 * 3600)
        } else {
            // Off hours: 18:00-24:00 and 00:00-06:00 of the same civil day.
            let x: i64 = self.rng.gen_range(0..12 * 3600);
            if x < 6 * 3600 {
                18 * 3600 + x
            } else {
                x - 6 * 3600
            }
        };
        date.midnight().add_secs(secs)
    }

    fn generate_user_day(
        &mut self,
        date: Date,
        user: UserId,
        workday: bool,
        busy_boost: f64,
        personal_mult: f64,
        out: &mut Vec<LogEvent>,
    ) {
        let uid = user.index();
        let day_mult = if workday {
            busy_boost
        } else {
            self.users[uid].profile.weekend_factor
        };
        // Deadline crunches inflate interactive work (files, mail, logons,
        // browsing) but not document uploads or thumb-drive habits.
        let crunch_mult = day_mult * personal_mult;

        for frame in 0..2usize {
            // -------- logons --------
            let p = &self.users[uid].profile;
            let rate = p.frame_rate(p.logon_rate, frame, crunch_mult, 0.25);
            let logons = poisson(&mut self.rng, rate);
            for _ in 0..logons {
                let ts = self.time_in_frame(date, frame);
                let host = self.draw_host(uid);
                let success = self.rng.gen::<f64>() < 0.97;
                out.push(LogEvent::Logon(LogonEvent {
                    ts,
                    user,
                    host,
                    activity: LogonActivity::Logon,
                    success,
                }));
                if success {
                    let off = self.rng.gen_range(600..4 * 3600);
                    out.push(LogEvent::Logon(LogonEvent {
                        ts: clamp_to_day(ts.add_secs(off), date),
                        user,
                        host,
                        activity: LogonActivity::Logoff,
                        success: true,
                    }));
                }
            }

            // -------- removable devices --------
            let p = &self.users[uid].profile;
            if p.device_user {
                let rate = p.frame_rate(p.device_rate, frame, day_mult, 0.0);
                let n = poisson(&mut self.rng, rate);
                for _ in 0..n {
                    self.emit_device_pair(date, frame, user, out);
                }
                // Rare benign USB-backup days: a burst of connects that
                // lights up the device aspect alone. Single-model detectors
                // flag these; the N-of-aspects ensemble does not (the
                // paper's Section V-B3 argument).
                if frame == 0 && workday && self.rng.gen::<f64>() < 0.012 {
                    let burst = self.rng.gen_range(4..10);
                    for _ in 0..burst {
                        self.emit_device_pair(date, 0, user, out);
                    }
                }
            }

            // -------- file accesses --------
            let p = &self.users[uid].profile;
            let rate = p.frame_rate(p.file_rate, frame, crunch_mult, 0.4);
            let n = poisson(&mut self.rng, rate);
            for _ in 0..n {
                let ts = self.time_in_frame(date, frame);
                let (activity, from, to) = self.draw_file_op();
                let file = self.draw_file(uid);
                let host = HostId(uid as u32);
                out.push(LogEvent::File(FileEvent {
                    ts,
                    user,
                    host,
                    file,
                    activity,
                    from,
                    to,
                }));
            }

            // -------- http --------
            let p = &self.users[uid].profile;
            let visit_rate = p.frame_rate(p.http_visit_rate, frame, crunch_mult, 1.2);
            let dl_rate = p.frame_rate(p.http_download_rate, frame, crunch_mult, 0.1);
            let ul_rate = p.frame_rate(p.http_upload_rate, frame, day_mult, 0.0);
            let visits = poisson(&mut self.rng, visit_rate);
            for _ in 0..visits {
                let ts = self.time_in_frame(date, frame);
                let domain = self.draw_domain(uid);
                let success = self.rng.gen::<f64>() < 0.97;
                out.push(LogEvent::Http(HttpEvent {
                    ts,
                    user,
                    domain,
                    activity: HttpActivity::Visit,
                    filetype: FileType::Other,
                    success,
                }));
            }
            let downloads = poisson(&mut self.rng, dl_rate);
            for _ in 0..downloads {
                let ts = self.time_in_frame(date, frame);
                let domain = self.draw_domain(uid);
                let ft = FileType::upload_feature_order()[self.rng.gen_range(0..6)];
                out.push(LogEvent::Http(HttpEvent {
                    ts,
                    user,
                    domain,
                    activity: HttpActivity::Download,
                    filetype: ft,
                    success: true,
                }));
            }
            let uploads = poisson(&mut self.rng, ul_rate);
            for _ in 0..uploads {
                let ts = self.time_in_frame(date, frame);
                let weights = self.users[uid].profile.upload_type_weights;
                let ft = FileType::upload_feature_order()[weighted_index(&mut self.rng, &weights)];
                let domain = self.draw_upload_domain(uid);
                out.push(LogEvent::Http(HttpEvent {
                    ts,
                    user,
                    domain,
                    activity: HttpActivity::Upload,
                    filetype: ft,
                    success: true,
                }));
            }

            // -------- email --------
            let p = &self.users[uid].profile;
            let rate = p.frame_rate(p.email_rate, frame, crunch_mult, 0.0);
            let n = poisson(&mut self.rng, rate);
            for _ in 0..n {
                let ts = self.time_in_frame(date, frame);
                let recipients = self.rng.gen_range(1..8);
                let size = (crate::stats::log_normal(&mut self.rng, 8.0, 1.0) as u32).max(200);
                let attachment = self.rng.gen::<f64>() < 0.2;
                out.push(LogEvent::Email(EmailEvent {
                    ts,
                    user,
                    recipients,
                    size,
                    attachment,
                }));
            }
        }
    }

    fn emit_device_pair(&mut self, date: Date, frame: usize, user: UserId, out: &mut Vec<LogEvent>) {
        let ts = self.time_in_frame(date, frame);
        let host = self.draw_host(user.index());
        out.push(LogEvent::Device(DeviceEvent {
            ts,
            user,
            host,
            activity: DeviceActivity::Connect,
        }));
        let off = self.rng.gen_range(60..7200);
        out.push(LogEvent::Device(DeviceEvent {
            ts: clamp_to_day(ts.add_secs(off), date),
            user,
            host,
            activity: DeviceActivity::Disconnect,
        }));
    }

    fn draw_file_op(&mut self) -> (FileActivity, Location, Location) {
        let r = self.rng.gen::<f64>();
        if r < 0.55 {
            let from = if self.rng.gen::<f64>() < 0.85 { Location::Local } else { Location::Remote };
            (FileActivity::Open, from, Location::Local)
        } else if r < 0.82 {
            let to = if self.rng.gen::<f64>() < 0.85 { Location::Local } else { Location::Remote };
            (FileActivity::Write, Location::Local, to)
        } else if r < 0.94 {
            if self.rng.gen::<f64>() < 0.5 {
                (FileActivity::Copy, Location::Local, Location::Remote)
            } else {
                (FileActivity::Copy, Location::Remote, Location::Local)
            }
        } else {
            (FileActivity::Delete, Location::Local, Location::Local)
        }
    }

    fn draw_domain(&mut self, uid: usize) -> DomainId {
        let Self { users, rng, domain_alloc, .. } = self;
        let (id, _) = users[uid].domains.draw(rng, &mut || domain_alloc.alloc());
        DomainId(id)
    }

    fn draw_upload_domain(&mut self, uid: usize) -> DomainId {
        let Self { users, rng, domain_alloc, .. } = self;
        let (id, _) = users[uid].upload_domains.draw(rng, &mut || domain_alloc.alloc());
        DomainId(id)
    }

    fn draw_file(&mut self, uid: usize) -> FileId {
        let Self { users, rng, file_alloc, .. } = self;
        let (id, _) = users[uid].files.draw(rng, &mut || file_alloc.alloc());
        FileId(id)
    }

    /// Exfiltration sweeps touch mostly files that never appeared in the
    /// user's audit history (fresh ids), unlike habitual file activity.
    fn draw_exfil_file(&mut self, uid: usize) -> FileId {
        if self.rng.gen::<f64>() < 0.7 {
            FileId(self.file_alloc.alloc())
        } else {
            self.draw_file(uid)
        }
    }

    fn draw_host(&mut self, uid: usize) -> HostId {
        let Self { users, rng, host_alloc, .. } = self;
        let (id, _) = users[uid].hosts.draw(rng, &mut || host_alloc.alloc());
        HostId(id)
    }

    fn apply_env_events(&mut self, date: Date, user: UserId, out: &mut Vec<LogEvent>) {
        let dept = self.directory.dept_of(user).expect("user registered");
        let active: Vec<EnvEvent> = self
            .config
            .env_events
            .iter()
            .filter(|e| e.active_on(date) && e.scope.covers(dept))
            .copied()
            .collect();
        for ev in active {
            match ev.effect {
                EnvEffect::NewService { domain, daily_hits } => {
                    let n = poisson(&mut self.rng, daily_hits);
                    for _ in 0..n {
                        let ts = self.time_in_frame(date, 0);
                        out.push(LogEvent::Http(HttpEvent {
                            ts,
                            user,
                            domain: DomainId(domain),
                            activity: HttpActivity::Visit,
                            filetype: FileType::Other,
                            success: true,
                        }));
                    }
                    self.users[user.index()].domains.insert(domain);
                }
                EnvEffect::Outage { daily_failures } => {
                    let n = poisson(&mut self.rng, daily_failures);
                    for _ in 0..n {
                        let ts = self.time_in_frame(date, 0);
                        let domain = self.draw_domain(user.index());
                        out.push(LogEvent::Http(HttpEvent {
                            ts,
                            user,
                            domain,
                            activity: HttpActivity::Visit,
                            filetype: FileType::Other,
                            success: false,
                        }));
                    }
                }
            }
        }
    }

    /// Starts/expires benign personal events and returns today's activity
    /// multiplier from an ongoing crunch.
    fn step_personal_event(&mut self, date: Date, uid: usize, workday: bool) -> f64 {
        if let Some(event) = self.users[uid].personal {
            let until = match event {
                PersonalEvent::Crunch { until, .. } | PersonalEvent::NewProject { until } => until,
            };
            if date >= until {
                self.users[uid].personal = None;
            }
        }
        match self.users[uid].personal {
            Some(PersonalEvent::Crunch { mult, .. }) => mult,
            Some(PersonalEvent::NewProject { .. }) => 1.3,
            None => {
                if workday {
                    let r = self.rng.gen::<f64>();
                    if r < 0.025 {
                        let days = self.rng.gen_range(1..4);
                        let mult = self.rng.gen_range(2.2..3.4);
                        self.users[uid].personal =
                            Some(PersonalEvent::Crunch { until: date.add_days(days), mult });
                        return mult;
                    } else if r < 0.036 {
                        let days = self.rng.gen_range(3..8);
                        self.users[uid].personal =
                            Some(PersonalEvent::NewProject { until: date.add_days(days) });
                        return 1.3;
                    }
                }
                1.0
            }
        }
    }

    /// A new-project day: bursts of never-seen files, a few new domains, and
    /// occasional document uploads — benign but novel.
    fn inject_new_project_day(&mut self, date: Date, user: UserId, out: &mut Vec<LogEvent>) {
        let uid = user.index();
        let host = HostId(uid as u32);
        let file_ops = self.rng.gen_range(8..24);
        for _ in 0..file_ops {
            let ts = self.time_in_frame(date, 0);
            let file = if self.rng.gen::<f64>() < 0.5 {
                let id = self.file_alloc.alloc();
                self.users[uid].files.insert(id);
                FileId(id)
            } else {
                self.draw_file(uid)
            };
            let (activity, from, to) = self.draw_file_op();
            out.push(LogEvent::File(FileEvent { ts, user, host, file, activity, from, to }));
        }
        let visits = self.rng.gen_range(3..9);
        let fresh_domain = self.domain_alloc.alloc();
        self.users[uid].domains.insert(fresh_domain);
        for _ in 0..visits {
            let ts = self.time_in_frame(date, 0);
            let domain = if self.rng.gen::<f64>() < 0.5 {
                DomainId(fresh_domain)
            } else {
                self.draw_domain(uid)
            };
            out.push(LogEvent::Http(HttpEvent {
                ts,
                user,
                domain,
                activity: HttpActivity::Visit,
                filetype: FileType::Other,
                success: true,
            }));
        }
        if self.rng.gen::<f64>() < 0.4 {
            let ts = self.time_in_frame(date, 0);
            let domain = self.draw_upload_domain(uid);
            out.push(LogEvent::Http(HttpEvent {
                ts,
                user,
                domain,
                activity: HttpActivity::Upload,
                filetype: FileType::Doc,
                success: true,
            }));
        }
    }

    fn inject_scenario(&mut self, date: Date, user: UserId, out: &mut Vec<LogEvent>) {
        let uid = user.index();
        let Some(victim) = &self.victims[uid] else { return };
        let scenario = victim.scenario;
        let specials = victim.special_domains.clone(); // re-read daily: scenario 2's pool grows
        let (start, end) = scenario.anomaly_span();
        if date < start || date >= end {
            return;
        }

        match scenario {
            InsiderScenario::Scenario1 { .. } => {
                // Off-hours logons on a host they own.
                let logons = self.rng.gen_range(2..5);
                for _ in 0..logons {
                    let ts = self.time_in_frame(date, 1);
                    out.push(LogEvent::Logon(LogonEvent {
                        ts,
                        user,
                        host: HostId(uid as u32),
                        activity: LogonActivity::Logon,
                        success: true,
                    }));
                }
                // Off-hours thumb-drive sessions (never used before).
                let sessions = self.rng.gen_range(3..7);
                for _ in 0..sessions {
                    self.emit_device_pair(date, 1, user, out);
                }
                // Uploads to the wikileaks-style domain.
                let wikileaks = specials[0];
                let uploads = self.rng.gen_range(4..11);
                for _ in 0..uploads {
                    let ts = self.time_in_frame(date, 1);
                    let ft = if self.rng.gen::<f64>() < 0.6 { FileType::Doc } else { FileType::Zip };
                    out.push(LogEvent::Http(HttpEvent {
                        ts,
                        user,
                        domain: DomainId(wikileaks),
                        activity: HttpActivity::Upload,
                        filetype: ft,
                        success: true,
                    }));
                }
                // Staging copies to the removable drive: an exfiltrating
                // insider sweeps many documents that never appeared in the
                // audit logs before, so most copies touch fresh file ids.
                let copies = self.rng.gen_range(5..16);
                for _ in 0..copies {
                    let ts = self.time_in_frame(date, 1);
                    let file = self.draw_exfil_file(uid);
                    out.push(LogEvent::File(FileEvent {
                        ts,
                        user,
                        host: HostId(uid as u32),
                        file,
                        activity: FileActivity::Copy,
                        from: Location::Local,
                        to: Location::Remote,
                    }));
                }
            }
            InsiderScenario::Scenario2 { .. } => {
                let (exfil_start, _) = scenario.exfil_span().expect("scenario 2 has exfil");
                if date < exfil_start {
                    // Job-hunt phase: resume uploads to a few job sites,
                    // working hours, workdays only. Applications come in
                    // bursts (several sites in one sitting), which keeps the
                    // upload-doc deviation alive instead of becoming the new
                    // normal.
                    if self.calendar.is_workday(date) && self.rng.gen::<f64>() < 0.45 {
                        let uploads = self.rng.gen_range(3..8);
                        for _ in 0..uploads {
                            let ts = self.time_in_frame(date, 0);
                            // Mostly brand-new career portals: applying to
                            // new companies is what keeps new-op deviating.
                            let d = if self.rng.gen::<f64>() < 0.6 {
                                let fresh = self.domain_alloc.alloc();
                                if let Some(v) = self.victims[uid].as_mut() {
                                    v.special_domains.push(fresh);
                                }
                                fresh
                            } else {
                                specials[self.rng.gen_range(0..specials.len())]
                            };
                            out.push(LogEvent::Http(HttpEvent {
                                ts,
                                user,
                                domain: DomainId(d),
                                activity: HttpActivity::Upload,
                                filetype: FileType::Doc,
                                success: true,
                            }));
                        }
                    }
                } else {
                    // Exfiltration week: thumb drive at markedly higher rates.
                    let sessions = self.rng.gen_range(8..16);
                    for _ in 0..sessions {
                        let frame = if self.rng.gen::<f64>() < 0.5 { 0 } else { 1 };
                        self.emit_device_pair(date, frame, user, out);
                    }
                    let copies = self.rng.gen_range(25..41);
                    for _ in 0..copies {
                        let frame = if self.rng.gen::<f64>() < 0.5 { 0 } else { 1 };
                        let ts = self.time_in_frame(date, frame);
                        let file = self.draw_exfil_file(uid);
                        out.push(LogEvent::File(FileEvent {
                            ts,
                            user,
                            host: HostId(uid as u32),
                            file,
                            activity: FileActivity::Copy,
                            from: Location::Local,
                            to: Location::Remote,
                        }));
                    }
                }
            }
        }
    }
}

/// Keeps paired follow-up events (logoffs, disconnects) on the same civil day
/// so that `generate_day(d)` returns only day-`d` events.
fn clamp_to_day(ts: Timestamp, date: Date) -> Timestamp {
    let last = date.add_days(1).midnight().add_secs(-1);
    if ts > last {
        last
    } else {
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_in_order_and_deterministically() {
        let mut a = CertGenerator::new(CertConfig::small(7));
        let mut b = CertGenerator::new(CertConfig::small(7));
        let d0 = a.config().start;
        let ea = a.generate_day(d0);
        let eb = b.generate_day(d0);
        assert_eq!(ea.len(), eb.len());
        assert_eq!(ea[0], eb[0]);
        // Events sorted by ts.
        assert!(ea.windows(2).all(|w| w[0].ts() <= w[1].ts()));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_rejected() {
        let mut g = CertGenerator::new(CertConfig::small(7));
        let d0 = g.config().start;
        let _ = g.generate_day(d0.add_days(3));
    }

    #[test]
    fn weekends_are_quieter() {
        let mut g = CertGenerator::new(CertConfig::small(3));
        // 2010-01-04 is a Monday; 2010-01-09 is a Saturday.
        let mut monday = 0usize;
        let mut saturday = 0usize;
        for date in g.config().start.range_to(Date::from_ymd(2010, 1, 11)) {
            let n = g.generate_day(date).len();
            if date == Date::from_ymd(2010, 1, 4) {
                monday = n;
            }
            if date == Date::from_ymd(2010, 1, 9) {
                saturday = n;
            }
        }
        assert!(saturday * 3 < monday, "sat {saturday} vs mon {monday}");
    }

    #[test]
    fn scenario1_victim_gets_offhour_device_activity() {
        let cfg = CertConfig::small(5);
        let victim = cfg.scenarios[0].victim;
        let (s1_start, s1_end) = cfg.scenarios[0].scenario.anomaly_span();
        let mut g = CertGenerator::new(cfg);
        let mut before_devices = 0usize;
        let mut during_devices = 0usize;
        for date in g.config().start.range_to(s1_end) {
            let events = g.generate_day(date);
            for e in events {
                if e.user() == victim {
                    if let LogEvent::Device(_) = e {
                        if date < s1_start {
                            before_devices += 1;
                        } else {
                            during_devices += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(before_devices, 0, "scenario-1 victim must not use drives before");
        assert!(during_devices >= 20, "during: {during_devices}");
    }

    #[test]
    fn victim_departs() {
        let cfg = CertConfig::small(5);
        let victim = cfg.scenarios[0].victim;
        let departure = cfg.scenarios[0].scenario.departure();
        let mut g = CertGenerator::new(cfg);
        let end = g.config().end;
        let mut after = 0usize;
        for date in g.config().start.range_to(end) {
            let events = g.generate_day(date);
            if date >= departure {
                after += events.iter().filter(|e| e.user() == victim).count();
            }
        }
        assert_eq!(after, 0);
    }

    #[test]
    fn env_event_reaches_most_users() {
        let cfg = CertConfig::small(5);
        let env_day = cfg.env_events[0].start;
        let EnvEffect::NewService { domain, .. } = cfg.env_events[0].effect else {
            panic!("expected new service");
        };
        let total_users = cfg.org.total_users();
        let mut g = CertGenerator::new(cfg);
        let mut touched = std::collections::HashSet::new();
        for date in g.config().start.range_to(env_day.add_days(1)) {
            for e in g.generate_day(date) {
                if let LogEvent::Http(h) = e {
                    if h.domain == DomainId(domain) {
                        touched.insert(h.user);
                    }
                }
            }
        }
        assert!(
            touched.len() * 10 >= total_users * 9,
            "only {} of {total_users} users touched the new service",
            touched.len()
        );
    }

    #[test]
    fn build_store_covers_span() {
        let mut g = CertGenerator::new(CertConfig::small(2));
        let store = g.build_store();
        let (first, last) = store.date_span().unwrap();
        assert_eq!(first, g.config().start);
        assert_eq!(last, g.config().end.add_days(-1));
        assert!(store.len() > 10_000);
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;

    #[test]
    fn return_days_are_busier_than_ordinary_days() {
        // 2010-01-19 is the Tuesday after MLK Monday (3-day break);
        // 2010-01-13 is an ordinary Wednesday.
        let mut g = CertGenerator::new(CertConfig::small(21));
        let mut ordinary = 0usize;
        let mut return_day = 0usize;
        for date in g.config().start.range_to(Date::from_ymd(2010, 1, 20)) {
            let n = g.generate_day(date).len();
            if date == Date::from_ymd(2010, 1, 13) {
                ordinary = n;
            }
            if date == Date::from_ymd(2010, 1, 19) {
                return_day = n;
            }
        }
        assert!(
            return_day as f64 > ordinary as f64 * 1.3,
            "return day {return_day} vs ordinary {ordinary}"
        );
    }

    #[test]
    fn personal_events_create_individual_bursts() {
        // Over a long span, at least one normal user must have a day with
        // at least twice their median event volume (a crunch or project).
        let mut g = CertGenerator::new(CertConfig::small(31));
        let users = g.config().org.total_users();
        let victims: Vec<usize> = g.config().scenarios.iter().map(|s| s.victim.index()).collect();
        let end = g.config().end;
        let mut daily: Vec<Vec<usize>> = vec![Vec::new(); users];
        for date in g.config().start.range_to(end) {
            if !g.calendar().is_workday(date) {
                let _ = g.generate_day(date);
                continue;
            }
            let mut counts = vec![0usize; users];
            for e in g.generate_day(date) {
                counts[e.user().index()] += 1;
            }
            for (u, c) in counts.into_iter().enumerate() {
                daily[u].push(c);
            }
        }
        let mut bursty_users = 0usize;
        for (u, series) in daily.iter().enumerate() {
            if victims.contains(&u) || series.is_empty() {
                continue;
            }
            let mut sorted = series.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2].max(1);
            let max = *sorted.last().unwrap();
            if max >= median * 2 {
                bursty_users += 1;
            }
        }
        assert!(
            bursty_users * 3 >= (users - victims.len()),
            "only {bursty_users} bursty users"
        );
    }
}
