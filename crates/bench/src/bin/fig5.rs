//! Regenerates Figure 5: anomaly-score trends of every user in the
//! scenario-2 insider's department under the different model configurations
//! ((a/b) ACOBE, (c) 1-Day, (d) No-Group, (e) All-in-1, (f) Baseline).
//!
//! Usage: `cargo run --release -p acobe-bench --bin fig5
//!         [--variant acobe|no-group|1-day|all-in-1|baseline] [--scale ...] [--speed ...]`
//!
//! Without `--variant`, all five sub-figures are produced.

use acobe_bench::{
    arg_value, build_cert_dataset, parse_args, run_scenario, DatasetOptions, ModelVariant,
    SpeedPreset, EXPERIMENTS_DIR,
};
use acobe_eval::report::write_csv;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    // Default department size 114 to mirror the paper's "114 users in the
    // department" of Figure 5.
    let mut options = match arg_value(&parsed, "scale") {
        Some(s) => DatasetOptions::from_scale(s).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => DatasetOptions { users_per_dept: 114, ..Default::default() },
    };
    if let Some(seed) = arg_value(&parsed, "seed").and_then(|s| s.parse().ok()) {
        options.seed = seed;
    }
    let speed = match arg_value(&parsed, "speed") {
        Some("paper") => SpeedPreset::Paper,
        Some("tiny") => SpeedPreset::Tiny,
        _ => SpeedPreset::Fast,
    };
    let variants: Vec<ModelVariant> = match arg_value(&parsed, "variant") {
        Some(v) => vec![ModelVariant::parse(v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })],
        None => vec![
            ModelVariant::Acobe,
            ModelVariant::OneDay,
            ModelVariant::NoGroup,
            ModelVariant::AllInOne,
            ModelVariant::Baseline,
        ],
    };

    options.with_baseline = variants.iter().any(|v| *v == ModelVariant::Baseline);
    acobe_obs::progress!("generating dataset ({} users/dept)...", options.users_per_dept);
    let ds = build_cert_dataset(&options);
    let victim = ds
        .victims
        .iter()
        .find(|v| v.scenario == "scenario2")
        .expect("scenario 2 victim present");
    let vidx = victim.user.index();
    let dept = ds
        .groups
        .iter()
        .find(|g| g.contains(&vidx))
        .expect("victim's department")
        .clone();
    let dir = Path::new(EXPERIMENTS_DIR);

    println!(
        "Figure 5: {} users in the department of victim {} (anomalies {}..{})",
        dept.len(),
        victim.user,
        victim.anomaly_start,
        victim.anomaly_end
    );

    for variant in variants {
        acobe_obs::progress!("running {} ...", variant.name());
        let run = run_scenario(&ds, victim, variant, speed);
        let table = &run.table;

        // Per-aspect CSV: date, victim score, department mean/max of normals.
        for (a, aspect) in table.aspect_names.iter().enumerate() {
            let mut rows = Vec::new();
            for d in 0..table.days() {
                let date = table.start.add_days(d as i32);
                let daily = table.daily(a, d);
                let victim_score = daily[vidx];
                let normals: Vec<f32> = dept
                    .iter()
                    .filter(|&&u| u != vidx)
                    .map(|&u| daily[u])
                    .collect();
                let mean = normals.iter().sum::<f32>() / normals.len().max(1) as f32;
                let max = normals.iter().fold(f32::MIN, |m, &x| m.max(x));
                let in_anomaly = date >= victim.anomaly_start && date < victim.anomaly_end;
                rows.push(vec![
                    date.to_string(),
                    format!("{victim_score:.6}"),
                    format!("{mean:.6}"),
                    format!("{max:.6}"),
                    (in_anomaly as u8).to_string(),
                ]);
            }
            let path = dir.join(format!("fig5_{}_{}.csv", variant.name(), aspect));
            write_csv(
                &path,
                &["date", "victim", "dept_normal_mean", "dept_normal_max", "labeled_anomaly"],
                &rows,
            )
            .expect("write fig5 csv");

            let (mean, std) = table.mean_std(a);
            // How often does the victim top the department in this aspect?
            let mut days_on_top = 0usize;
            for d in 0..table.days() {
                let daily = table.daily(a, d);
                if dept.iter().all(|&u| daily[u] <= daily[vidx]) {
                    days_on_top += 1;
                }
            }
            println!(
                "  {variant} / {aspect}: mean={mean:.4} std={std:.4} victim-on-top {days_on_top}/{} days",
                table.days()
            );
        }
        println!(
            "  {variant}: victim position {} of {} in the investigation list",
            run.victim_position + 1,
            ds.users
        );
    }
    println!("CSV written to {EXPERIMENTS_DIR}/fig5_<variant>_<aspect>.csv");
}
