//! Regenerates Figure 7: the enterprise case studies (ransomware and Zeus
//! bot) — per-aspect anomaly-score trends of the victim against the group
//! mainstream, and the victim's daily investigation rank after the attack.
//!
//! Usage: `cargo run --release -p acobe-bench --bin fig7
//!         [--attack zeus|ransomware|both] [--users N] [--speed fast|paper]`

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_bench::dataset::build_enterprise_dataset;
use acobe_bench::{arg_value, parse_args, EXPERIMENTS_DIR};
use acobe_eval::report::write_csv;
use acobe_features::spec::enterprise_feature_set;
use acobe_synth::enterprise::Attack;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let attacks = match arg_value(&parsed, "attack") {
        Some("zeus") => vec![Attack::Zeus],
        Some("ransomware") => vec![Attack::Ransomware],
        _ => vec![Attack::Ransomware, Attack::Zeus],
    };
    let users: usize = arg_value(&parsed, "users")
        .and_then(|s| s.parse().ok())
        .unwrap_or(246);
    let seed: u64 = arg_value(&parsed, "seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let paper_speed = matches!(arg_value(&parsed, "speed"), Some("paper"));

    for attack in attacks {
        run_case_study(attack, users, seed, paper_speed);
    }
}

fn run_case_study(attack: Attack, users: usize, seed: u64, paper_speed: bool) {
    acobe_obs::progress!("generating enterprise dataset ({users} employees, {})...", attack.name());
    let ds = build_enterprise_dataset(attack, users, seed);

    // The case study uses a two-week window (Section VI-B) and six months of
    // training with the last month for testing.
    let mut config = if paper_speed { AcobeConfig::paper() } else { AcobeConfig::fast() };
    config.deviation.window = 14;
    // A one-week matrix: the case-study attacks last days, not months, so a
    // shorter window lets attack days dominate the matrix sooner.
    config.matrix.matrix_days = 7;
    // TF-style weights divide the already-z-scored deviations by log2(std)
    // a second time; for the high-rate enterprise count features that
    // flattens attack evidence, so the case study runs unweighted (the
    // paper presents the weights as an option, Section IV-A).
    config.matrix.use_weights = false;
    // Six aspects, of which an attack touches 2-4: require two votes.
    config.critic_n = 2;

    let mut pipeline = AcobePipeline::new(
        ds.cube.clone(),
        enterprise_feature_set(),
        &ds.groups,
        config.clone(),
    )
    .expect("pipeline");

    let train_end = ds.attack_day.add_days(-14); // through mid-January
    pipeline.fit(ds.start, train_end).expect("training");

    // Plot window: ~3 weeks before the env change through the end.
    let plot_start = ds.env_change.add_days(-21);
    let table = pipeline.score_range(plot_start, ds.end).expect("scoring");

    let dir = Path::new(EXPERIMENTS_DIR);
    println!(
        "\n=== Figure 7 ({}) — attack day {}, env change {} ===",
        attack.name(),
        ds.attack_day,
        ds.env_change
    );

    for (a, aspect) in table.aspect_names.iter().enumerate() {
        let mut rows = Vec::new();
        for d in 0..table.days() {
            let date = table.start.add_days(d as i32);
            let daily = table.daily(a, d);
            let victim_score = daily[ds.victim];
            let normals: Vec<f32> = (0..ds.cube.users())
                .filter(|&u| u != ds.victim)
                .map(|u| daily[u])
                .collect();
            let mean = normals.iter().sum::<f32>() / normals.len().max(1) as f32;
            let max = normals.iter().fold(f32::MIN, |m, &x| m.max(x));
            rows.push(vec![
                date.to_string(),
                format!("{victim_score:.6}"),
                format!("{mean:.6}"),
                format!("{max:.6}"),
                ((date == ds.attack_day) as u8).to_string(),
                ((date >= ds.env_change && date < ds.env_change.add_days(3)) as u8).to_string(),
            ]);
        }
        let path = dir.join(format!("fig7_{}_{}.csv", attack.name(), aspect));
        write_csv(
            &path,
            &["date", "victim", "others_mean", "others_max", "attack_day", "env_change"],
            &rows,
        )
        .expect("write fig7 csv");

        // Did the victim's waveform rise after the attack?
        let attack_idx = ds.attack_day.days_since(table.start) as usize;
        let before: f32 = (0..attack_idx)
            .map(|d| table.daily(a, d)[ds.victim])
            .sum::<f32>()
            / attack_idx.max(1) as f32;
        let after_days = table.days() - attack_idx;
        let after: f32 = (attack_idx..table.days())
            .map(|d| table.daily(a, d)[ds.victim])
            .sum::<f32>()
            / after_days.max(1) as f32;
        println!("  {aspect}: victim mean score before attack {before:.4} -> after {after:.4}");
    }

    // Daily investigation rank of the victim.
    println!("  daily investigation rank of the victim (N = {}):", config.critic_n);
    let mut first_rank_one: Option<acobe_logs::time::Date> = None;
    let mut rank_one_streak = 0usize;
    for d in 0..table.days() {
        let date = table.start.add_days(d as i32);
        if date < ds.attack_day.add_days(-5) {
            continue;
        }
        let list = table.daily_investigation_smoothed(d, config.critic_n, 3);
        let pos = list.iter().position(|inv| inv.user == ds.victim).unwrap() + 1;
        if pos == 1 {
            if first_rank_one.is_none() {
                first_rank_one = Some(date);
            }
            rank_one_streak += 1;
        }
        println!("    {date}: #{pos}");
    }
    match first_rank_one {
        Some(date) => println!(
            "  victim first ranked #1 on {date}; #1 on {rank_one_streak} days total \
             (paper: #1 from Feb 3rd to Feb 15th)"
        ),
        None => println!("  victim never ranked #1 — investigate configuration"),
    }
    println!("  CSV written to {EXPERIMENTS_DIR}/fig7_{}_<aspect>.csv", attack.name());
}
