//! Incremental-engine benchmark: per-day ingest latency and steady-state
//! engine memory at 1k/10k users, scored-ingest latency and checkpoint
//! size on a small trained dataset, shard-scaling of the partitioned
//! engine at 1k/10k/100k users, and the persistence layer itself — full
//! vs delta save latency, restore latency, and bytes/user for the v2 JSON
//! directory layout against the v3 binary container on a sparse
//! (~10%-active) roster — plus intra-day scoring cost: provisional-score
//! latency per flush and the per-day overhead of flushing K times instead
//! of committing once. Merges an `"engine"` section into
//! `BENCH_nn.json` (run after `nn_bench`, which rewrites the file).
//!
//! Usage: `cargo run --release -p acobe-bench --bin engine_bench
//!         [--quick] [--huge] [--out PATH]`
//! (`--huge` adds the 1M-user checkpoint row.)

use acobe::checkpoint::{CheckpointFormat, CheckpointOptions};
use acobe::config::AcobeConfig;
use acobe::engine::DetectionEngine;
use acobe::pipeline::AcobePipeline;
use acobe::shard::ShardedEngine;
use acobe_bench::{arg_value, build_cert_dataset, parse_args, DatasetOptions};
use acobe_features::spec::cert_feature_set;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct IngestResult {
    users: usize,
    days: usize,
    mean_ms: f64,
    p50_ms: f64,
    max_ms: f64,
    days_per_s: f64,
    state_bytes: usize,
}

#[derive(Debug, Serialize)]
struct ScoredResult {
    users: usize,
    warm_days: usize,
    scored_days: usize,
    mean_scored_ms: f64,
    state_bytes: usize,
    checkpoint_bytes: usize,
}

#[derive(Debug, Serialize)]
struct ShardScalingResult {
    users: usize,
    shards: usize,
    days: usize,
    mean_ms: f64,
    days_per_s: f64,
    /// Largest single shard's state — the per-node memory a deployment
    /// actually provisions for (the total is the same at every shard count).
    peak_shard_bytes: usize,
}

/// Engine memory normalized per user, reported once per population size
/// rather than repeated on every shard-count row.
#[derive(Debug, Serialize)]
struct PerUserState {
    users: usize,
    bytes_per_user: usize,
}

/// Intra-day scoring cost: provisional-score latency per flush, and the
/// extra engine time a deployment pays per day for flushing `flushes_per_day`
/// times instead of committing once at close (`overhead_pct`). The
/// provisional pass is read-only, so the committed day costs the same either
/// way — the overhead is purely the added provisional passes.
#[derive(Debug, Serialize)]
struct IntradayResult {
    users: usize,
    shards: usize,
    flushes_per_day: usize,
    days: usize,
    mean_provisional_ms: f64,
    p50_provisional_ms: f64,
    max_provisional_ms: f64,
    /// Provisional scores the engine can serve per second at this size.
    provisional_per_s: f64,
    /// Commit-only (daily path) mean latency per scored day.
    mean_commit_ms: f64,
    /// Full intra-day day: `flushes_per_day` provisional passes + commit.
    mean_intraday_day_ms: f64,
    overhead_pct: f64,
}

/// One persistence-layer measurement: a format at a population size.
#[derive(Debug, Serialize)]
struct CheckpointResult {
    users: usize,
    format: String,
    full_save_ms: f64,
    restore_ms: f64,
    total_bytes: u64,
    bytes_per_user: f64,
    /// v3 only: latency of a one-day per-shard delta save.
    #[serde(skip_serializing_if = "Option::is_none")]
    delta_save_ms: Option<f64>,
    /// v3 only: bytes of that delta (scales with touched users, not roster).
    #[serde(skip_serializing_if = "Option::is_none")]
    delta_bytes: Option<u64>,
}

/// Cross-check of the memory-accounting plane ([`ShardedEngine::mem_report`])
/// against the engine's own footprint measurement: the `acobe_state_bytes`
/// gauges must sum to within a few percent of `state_bytes()` (they cover
/// the same temporal state plus model weights, which warm-only engines
/// don't carry).
#[derive(Debug, Serialize)]
struct MemAccountResult {
    users: usize,
    shards: usize,
    state_bytes: usize,
    accounted_bytes: usize,
    /// |accounted - state| / state, in percent. Gate target: ≤ 10%.
    delta_pct: f64,
}

/// Cost of trace-event capture on the hot ingest path: the same warm-day
/// loop timed with the event sinks on (default) and off
/// (`acobe_obs::event::set_capture(false)`). Gate target: ≤ 3% overhead.
#[derive(Debug, Serialize)]
struct TracingOverheadResult {
    users: usize,
    days: usize,
    traced_mean_ms: f64,
    untraced_mean_ms: f64,
    overhead_pct: f64,
}

#[derive(Debug, Serialize)]
struct EngineReport {
    quick: bool,
    warm_ingest: Vec<IngestResult>,
    scored: ScoredResult,
    shard_scaling: Vec<ShardScalingResult>,
    shard_user_state: Vec<PerUserState>,
    checkpoint: Vec<CheckpointResult>,
    intraday: Vec<IntradayResult>,
    mem_account: MemAccountResult,
    tracing_overhead: TracingOverheadResult,
}

fn stats(latencies_ms: &[f64]) -> (f64, f64, f64) {
    let mut sorted = latencies_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    (mean, sorted[sorted.len() / 2], *sorted.last().unwrap())
}

/// Warm (unscored) ingest throughput on synthetic measurements: the load an
/// untrained engine — or the warm-up phase of a stream — puts on a deployment.
fn bench_warm_ingest(users: usize, days: usize) -> IngestResult {
    let feature_set = cert_feature_set();
    let features = feature_set.len();
    let frames = 2;
    let group_size = (users / 4).max(1);
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(|c| c.to_vec())
        .collect();
    let start = acobe_logs::time::Date::from_ymd(2010, 1, 1);
    let mut engine = DetectionEngine::new(
        users,
        frames,
        start,
        feature_set,
        &groups,
        AcobeConfig::fast(),
    )
    .expect("engine");

    let width = users * frames * features;
    let mut day = vec![0.0f32; width];
    let mut latencies = Vec::with_capacity(days);
    for d in 0..days {
        // Cheap deterministic variation so σ/weights see non-constant series.
        for (i, v) in day.iter_mut().enumerate() {
            *v = ((i * 31 + d * 7) % 13) as f32 * 0.5;
        }
        let t = Instant::now();
        engine
            .warm_day(start.add_days(d as i32), &day)
            .expect("ingest");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let (mean_ms, p50_ms, max_ms) = stats(&latencies);
    IngestResult {
        users,
        days,
        mean_ms,
        p50_ms,
        max_ms,
        days_per_s: 1e3 / mean_ms,
        state_bytes: engine.state_bytes(),
    }
}

/// Warm ingest through the partitioned engine: the same workload as
/// [`bench_warm_ingest`] routed through a [`ShardedEngine`], measuring how
/// per-day latency scales with the shard count (identical output for every
/// count — only the wall clock moves).
fn bench_shard_ingest(users: usize, shards: usize, days: usize) -> ShardScalingResult {
    let feature_set = cert_feature_set();
    let features = feature_set.len();
    let frames = 2;
    let group_size = (users / 4).max(1);
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(|c| c.to_vec())
        .collect();
    let start = acobe_logs::time::Date::from_ymd(2010, 1, 1);
    let engine = DetectionEngine::new(
        users,
        frames,
        start,
        feature_set,
        &groups,
        AcobeConfig::fast(),
    )
    .expect("engine");
    let mut engine = ShardedEngine::from_engine(engine, shards).expect("shard");

    let width = users * frames * features;
    let mut day = vec![0.0f32; width];
    let mut latencies = Vec::with_capacity(days);
    for d in 0..days {
        for (i, v) in day.iter_mut().enumerate() {
            *v = ((i * 31 + d * 7) % 13) as f32 * 0.5;
        }
        let t = Instant::now();
        engine
            .warm_day(start.add_days(d as i32), &day)
            .expect("ingest");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let (mean_ms, _, _) = stats(&latencies);
    ShardScalingResult {
        users,
        shards,
        days,
        mean_ms,
        days_per_s: 1e3 / mean_ms,
        peak_shard_bytes: engine.shard_state_bytes().into_iter().max().unwrap_or(0),
    }
}

/// Scored ingest on a small trained CERT dataset, plus the serialized
/// checkpoint size a stream deployment would write.
fn bench_scored() -> ScoredResult {
    let ds = build_cert_dataset(&DatasetOptions {
        users_per_dept: 6,
        departments: 2,
        seed: 5,
        with_baseline: false,
    });
    let split = ds.scenario_split(&ds.victims[0]);
    let mut pipeline = AcobePipeline::new(
        ds.cert_cube.clone(),
        cert_feature_set(),
        &ds.groups,
        AcobeConfig::tiny(),
    )
    .expect("pipeline");
    pipeline
        .fit(split.train_start, split.train_end)
        .expect("fit");
    let mut engine = pipeline.into_engine();
    engine.reset_stream();

    let cube = &ds.cert_cube;
    let warm_days = split.test_start.days_since(cube.start()) as usize;
    let mut day = vec![0.0f32; cube.day_slice_len()];
    let mut latencies = Vec::new();
    for d in 0..cube.days() {
        cube.day_slice_into(d, &mut day);
        let date = cube.start().add_days(d as i32);
        if d < warm_days {
            engine.warm_day(date, &day).expect("warm");
        } else {
            let t = Instant::now();
            engine.ingest_day(date, &day).expect("score");
            latencies.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let (mean_scored_ms, _, _) = stats(&latencies);
    // Size of the single-file v3 checkpoint a stream deployment would write.
    let ck_path =
        std::env::temp_dir().join(format!("acobe_bench_scored_{}.acb", std::process::id()));
    engine.save(&ck_path).expect("checkpoint");
    let checkpoint_bytes = std::fs::metadata(&ck_path).expect("stat").len() as usize;
    std::fs::remove_file(&ck_path).ok();
    ScoredResult {
        users: ds.users,
        warm_days,
        scored_days: latencies.len(),
        mean_scored_ms,
        state_bytes: engine.state_bytes(),
        checkpoint_bytes,
    }
}

/// Persistence-layer benchmark on a production-shaped roster: ~10% of users
/// active per day (the rest contribute zero slabs), warmed long enough to
/// fill the rolling window, then measured as v2 JSON vs v3 binary — full
/// save, restore, and (v3) a one-day delta save.
fn bench_checkpoint(users: usize, warm_days: usize) -> Vec<CheckpointResult> {
    let feature_set = cert_feature_set();
    let features = feature_set.len();
    let frames = 2;
    let group_size = (users / 8).max(1);
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(|c| c.to_vec())
        .collect();
    let start = acobe_logs::time::Date::from_ymd(2010, 1, 1);
    let engine = DetectionEngine::new(
        users,
        frames,
        start,
        feature_set,
        &groups,
        AcobeConfig::fast(),
    )
    .expect("engine");
    let mut engine = ShardedEngine::from_engine(engine, 4).expect("shard");

    let width = users * frames * features;
    let mut day = vec![0.0f32; width];
    for d in 0..warm_days {
        // Sparse day: roughly every 10th user active, integer-ish counts so
        // the quantizer's certified-lossless encodings engage at scale.
        day.iter_mut().for_each(|v| *v = 0.0);
        for u in (d % 10..users).step_by(10) {
            for x in &mut day[u * frames * features..(u + 1) * frames * features] {
                *x = ((u * 31 + d * 7) % 13) as f32;
            }
        }
        engine
            .warm_day(start.add_days(d as i32), &day)
            .expect("ingest");
    }

    let base = std::env::temp_dir().join(format!("acobe_bench_ck_{}_{users}", std::process::id()));
    let mut results = Vec::new();
    for format in [CheckpointFormat::V2Json, CheckpointFormat::V3Binary] {
        let dir = base.join(format.to_string());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let opts = CheckpointOptions { format, delta_every: 8 };
        let t = Instant::now();
        let report = engine.save_checkpoint(&dir, &opts).expect("save");
        let full_save_ms = t.elapsed().as_secs_f64() * 1e3;
        let total_bytes = report.bytes;
        let t = Instant::now();
        let restored = ShardedEngine::load(&dir, 1).expect("restore");
        let restore_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(restored.next_date(), engine.next_date());

        let (delta_save_ms, delta_bytes) = if format == CheckpointFormat::V3Binary {
            let d = warm_days;
            day.iter_mut().for_each(|v| *v = 0.0);
            for u in (d % 10..users).step_by(10) {
                for x in &mut day[u * frames * features..(u + 1) * frames * features] {
                    *x = ((u * 31 + d * 7) % 13) as f32;
                }
            }
            engine
                .warm_day(start.add_days(d as i32), &day)
                .expect("ingest");
            let t = Instant::now();
            let delta = engine.save_checkpoint(&dir, &opts).expect("delta save");
            (
                Some(t.elapsed().as_secs_f64() * 1e3),
                Some(delta.bytes),
            )
        } else {
            (None, None)
        };
        results.push(CheckpointResult {
            users,
            format: format.to_string(),
            full_save_ms,
            restore_ms,
            total_bytes,
            bytes_per_user: total_bytes as f64 / users as f64,
            delta_save_ms,
            delta_bytes,
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base).ok();
    results
}

/// Fills `day` with the sparse (~10%-active) integer-ish pattern the
/// checkpoint bench uses, so the intraday rows are comparable to it.
fn sparse_day(day: &mut [f32], users: usize, chunk: usize, d: usize) {
    day.iter_mut().for_each(|v| *v = 0.0);
    for u in (d % 10..users).step_by(10) {
        for (i, x) in day[u * chunk..(u + 1) * chunk].iter_mut().enumerate() {
            *x = ((u * 31 + d * 7 + i) % 13) as f32;
        }
    }
}

/// Intra-day scoring on a trained sharded engine: per-flush provisional
/// latency and the day-cost overhead of flushing K times vs committing once.
/// Training uses a synthetic sparse cube — sample count is capped by the
/// config, so fit cost stays flat while scoring scales with the roster.
fn bench_intraday(users: usize, flushes_per_day: usize, score_days: usize) -> IntradayResult {
    let feature_set = cert_feature_set();
    let features = feature_set.len();
    let frames = 2;
    let train_days = 12;
    let warm_days = 10;
    let shards = 4;
    let group_size = (users / 4).max(1);
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(|c| c.to_vec())
        .collect();
    let start = acobe_logs::time::Date::from_ymd(2010, 1, 1);
    let chunk = frames * features;
    let width = users * chunk;

    let mut cube = acobe_features::counts::FeatureCube::new(
        users, start, train_days, frames, features,
    );
    let mut day = vec![0.0f32; width];
    for d in 0..train_days {
        sparse_day(&mut day, users, chunk, d);
        for u in 0..users {
            for t in 0..frames {
                for f in 0..features {
                    let v = day[u * chunk + t * features + f];
                    if v != 0.0 {
                        cube.set_by_index(u, d, t, f, v);
                    }
                }
            }
        }
    }
    let train_end = start.add_days(train_days as i32);
    let mut pipeline =
        AcobePipeline::new(cube, cert_feature_set(), &groups, AcobeConfig::tiny())
            .expect("pipeline");
    pipeline.fit(start, train_end).expect("fit");
    let mut engine = pipeline.into_engine();
    engine.reset_stream();
    let mut engine = ShardedEngine::from_engine(engine, shards).expect("shard");
    for d in 0..warm_days {
        sparse_day(&mut day, users, chunk, d);
        engine
            .warm_day(start.add_days(d as i32), &day)
            .expect("warm");
    }

    let mut provisional_ms = Vec::with_capacity(score_days * flushes_per_day);
    let mut commit_ms = Vec::with_capacity(score_days);
    let mut partial = vec![0.0f32; width];
    for i in 0..score_days {
        let d = warm_days + i;
        let date = start.add_days(d as i32);
        sparse_day(&mut day, users, chunk, d);
        for flush in 1..=flushes_per_day {
            // A flush part-way through the day sees a fraction of the final
            // counts; the exact shape doesn't matter for latency, only the
            // width and sparsity do.
            let frac = flush as f32 / flushes_per_day as f32;
            for (p, v) in partial.iter_mut().zip(&day) {
                *p = v * frac;
            }
            let events = (flush * 1_000) as u64;
            let t = Instant::now();
            engine
                .ingest_partial(date, &partial, events)
                .expect("partial")
                .expect("trained engine yields provisional scores");
            provisional_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let t = Instant::now();
        engine.ingest_day(date, &day).expect("commit");
        commit_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let (mean_provisional_ms, p50_provisional_ms, max_provisional_ms) = stats(&provisional_ms);
    let (mean_commit_ms, _, _) = stats(&commit_ms);
    let mean_intraday_day_ms = mean_commit_ms + flushes_per_day as f64 * mean_provisional_ms;
    IntradayResult {
        users,
        shards,
        flushes_per_day,
        days: score_days,
        mean_provisional_ms,
        p50_provisional_ms,
        max_provisional_ms,
        provisional_per_s: 1e3 / mean_provisional_ms,
        mean_commit_ms,
        mean_intraday_day_ms,
        overhead_pct: 100.0 * (mean_intraday_day_ms - mean_commit_ms) / mean_commit_ms,
    }
}

/// Builds a fast-config engine over a synthetic roster — the shared setup
/// of the warm-ingest, mem-account, and tracing-overhead benches.
fn build_warm_engine(users: usize) -> (DetectionEngine, usize) {
    let feature_set = cert_feature_set();
    let features = feature_set.len();
    let frames = 2;
    let group_size = (users / 4).max(1);
    let groups: Vec<Vec<usize>> = (0..users)
        .collect::<Vec<_>>()
        .chunks(group_size)
        .map(|c| c.to_vec())
        .collect();
    let start = acobe_logs::time::Date::from_ymd(2010, 1, 1);
    let engine = DetectionEngine::new(
        users,
        frames,
        start,
        feature_set,
        &groups,
        AcobeConfig::fast(),
    )
    .expect("engine");
    (engine, users * frames * features)
}

/// Validates the memory-accounting plane: after a warm-up, the
/// `acobe_state_bytes` subsystem gauges (from [`ShardedEngine::mem_report`])
/// must sum to within a few percent of the engine's own `state_bytes()`.
fn bench_mem_account(users: usize, shards: usize, warm_days: usize) -> MemAccountResult {
    let (engine, width) = build_warm_engine(users);
    let start = engine.next_date();
    let mut engine = ShardedEngine::from_engine(engine, shards).expect("shard");
    let mut day = vec![0.0f32; width];
    for d in 0..warm_days {
        for (i, v) in day.iter_mut().enumerate() {
            *v = ((i * 31 + d * 7) % 13) as f32 * 0.5;
        }
        engine
            .warm_day(start.add_days(d as i32), &day)
            .expect("ingest");
    }
    let state_bytes = engine.state_bytes();
    let accounted_bytes = engine.mem_report().total();
    MemAccountResult {
        users,
        shards,
        state_bytes,
        accounted_bytes,
        delta_pct: (accounted_bytes as f64 - state_bytes as f64).abs()
            / state_bytes as f64
            * 100.0,
    }
}

/// Measures what trace-event capture costs on the hot path: two identical
/// engines ingest the same days, one with the event sinks on and one with
/// them off, interleaved per day so cache/thermal drift hits both equally.
fn bench_tracing_overhead(users: usize, days: usize) -> TracingOverheadResult {
    let (mut traced, width) = build_warm_engine(users);
    let (mut untraced, _) = build_warm_engine(users);
    let start = traced.next_date();
    let mut day = vec![0.0f32; width];
    let mut traced_ms = Vec::with_capacity(days);
    let mut untraced_ms = Vec::with_capacity(days);
    for d in 0..days {
        for (i, v) in day.iter_mut().enumerate() {
            *v = ((i * 31 + d * 7) % 13) as f32 * 0.5;
        }
        let date = start.add_days(d as i32);
        acobe_obs::event::set_capture(true);
        let t = Instant::now();
        traced.warm_day(date, &day).expect("ingest");
        traced_ms.push(t.elapsed().as_secs_f64() * 1e3);
        acobe_obs::event::set_capture(false);
        let t = Instant::now();
        untraced.warm_day(date, &day).expect("ingest");
        untraced_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    acobe_obs::event::set_capture(true);
    let (traced_mean_ms, _, _) = stats(&traced_ms);
    let (untraced_mean_ms, _, _) = stats(&untraced_ms);
    TracingOverheadResult {
        users,
        days,
        traced_mean_ms,
        untraced_mean_ms,
        overhead_pct: 100.0 * (traced_mean_ms - untraced_mean_ms) / untraced_mean_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let quick = arg_value(&parsed, "quick").is_some();
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    let out_path = arg_value(&parsed, "out").unwrap_or(default_out).to_string();

    let days = if quick { 8 } else { 40 };
    let sizes: &[usize] = if quick { &[1_000] } else { &[1_000, 10_000] };
    let mut warm_ingest = Vec::new();
    for &users in sizes {
        let r = bench_warm_ingest(users, days);
        println!(
            "warm ingest {users} users x {days} days: mean {:.3} ms/day (p50 {:.3}, max {:.3}), \
             {:.0} days/s, {} MB state",
            r.mean_ms,
            r.p50_ms,
            r.max_ms,
            r.days_per_s,
            r.state_bytes / (1 << 20)
        );
        warm_ingest.push(r);
    }

    let scored = bench_scored();
    println!(
        "scored ingest {} users: mean {:.3} ms/day over {} days ({} warm), \
         {} KB state, {} KB checkpoint",
        scored.users,
        scored.mean_scored_ms,
        scored.scored_days,
        scored.warm_days,
        scored.state_bytes / 1024,
        scored.checkpoint_bytes / 1024
    );

    let scaling_days = if quick { 6 } else { 20 };
    let scaling_sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
    let mut shard_scaling = Vec::new();
    let mut shard_user_state = Vec::new();
    for &users in scaling_sizes {
        for &shards in shard_counts {
            let r = bench_shard_ingest(users, shards, scaling_days);
            println!(
                "sharded ingest {users} users / {shards} shards x {scaling_days} days: \
                 mean {:.3} ms/day, {:.0} days/s, {} MB peak shard",
                r.mean_ms,
                r.days_per_s,
                r.peak_shard_bytes / (1 << 20)
            );
            if shards == 1 {
                // One shard holds every user, so its state IS the total:
                // report the per-user footprint once per population size.
                let bytes_per_user = r.peak_shard_bytes / users;
                println!("  state: {bytes_per_user} bytes/user");
                shard_user_state.push(PerUserState {
                    users,
                    bytes_per_user,
                });
            }
            shard_scaling.push(r);
        }
    }

    let ckpt_sizes: Vec<usize> = if quick {
        vec![1_000]
    } else if arg_value(&parsed, "huge").is_some() {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![10_000, 100_000]
    };
    let ckpt_warm_days = if quick { 8 } else { 24 };
    let mut checkpoint = Vec::new();
    for &users in &ckpt_sizes {
        for r in bench_checkpoint(users, ckpt_warm_days) {
            println!(
                "checkpoint {} users [{}]: full save {:.1} ms, restore {:.1} ms, \
                 {} bytes ({:.1} bytes/user){}",
                r.users,
                r.format,
                r.full_save_ms,
                r.restore_ms,
                r.total_bytes,
                r.bytes_per_user,
                match (r.delta_save_ms, r.delta_bytes) {
                    (Some(ms), Some(b)) => format!(", delta save {ms:.1} ms / {b} bytes"),
                    _ => String::new(),
                }
            );
            checkpoint.push(r);
        }
    }

    let intraday_sizes: &[usize] = if quick { &[1_000] } else { &[10_000, 100_000] };
    let intraday_days = if quick { 3 } else { 4 };
    let mut intraday = Vec::new();
    for &users in intraday_sizes {
        let r = bench_intraday(users, 4, intraday_days);
        println!(
            "intraday {users} users / {} shards, {} flushes/day: provisional mean {:.3} ms \
             (p50 {:.3}, max {:.3}, {:.0}/s), commit {:.3} ms/day, \
             intraday day {:.3} ms (+{:.1}%)",
            r.shards,
            r.flushes_per_day,
            r.mean_provisional_ms,
            r.p50_provisional_ms,
            r.max_provisional_ms,
            r.provisional_per_s,
            r.mean_commit_ms,
            r.mean_intraday_day_ms,
            r.overhead_pct
        );
        intraday.push(r);
    }

    let mem_users = if quick { 1_000 } else { 10_000 };
    let mem_account = bench_mem_account(mem_users, 4, if quick { 6 } else { 20 });
    println!(
        "mem account {} users / {} shards: state_bytes {} vs accounted {} ({:.2}% apart)",
        mem_account.users,
        mem_account.shards,
        mem_account.state_bytes,
        mem_account.accounted_bytes,
        mem_account.delta_pct
    );
    assert!(
        mem_account.delta_pct <= 10.0,
        "mem accounting drifted {:.2}% from state_bytes — a MemReport subsystem is missing \
         or double-counted",
        mem_account.delta_pct
    );

    let tracing_overhead = bench_tracing_overhead(mem_users, if quick { 8 } else { 30 });
    println!(
        "tracing overhead {} users x {} days: traced {:.3} ms/day vs untraced {:.3} ms/day \
         ({:+.2}%)",
        tracing_overhead.users,
        tracing_overhead.days,
        tracing_overhead.traced_mean_ms,
        tracing_overhead.untraced_mean_ms,
        tracing_overhead.overhead_pct
    );

    let report = EngineReport {
        quick,
        warm_ingest,
        scored,
        shard_scaling,
        shard_user_state,
        checkpoint,
        intraday,
        mem_account,
        tracing_overhead,
    };
    let mut root: serde_json::Value = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    root["engine"] = serde_json::to_value(&report).expect("serialize engine report");
    let json = serde_json::to_string_pretty(&root).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_nn.json");
    println!("merged engine section into {out_path}");
}
