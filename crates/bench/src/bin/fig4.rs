//! Regenerates Figure 4: the compound behavioral deviation matrices of the
//! scenario-2 insider (device-access and HTTP-access aspects, working and
//! off hours) around the anomaly window, plus an ASCII rendering.
//!
//! Usage: `cargo run --release -p acobe-bench --bin fig4 [--scale ...] [--seed N]`

use acobe::deviation::{compute_deviations, DeviationConfig};
use acobe_bench::{arg_value, build_cert_dataset, parse_args, DatasetOptions, EXPERIMENTS_DIR};
use acobe_eval::report::write_csv;
use acobe_features::spec::cert_feature_set;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let mut options = match arg_value(&parsed, "scale") {
        Some(s) => DatasetOptions::from_scale(s).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => DatasetOptions { users_per_dept: 29, with_baseline: false, ..Default::default() },
    };
    options.with_baseline = false;
    if let Some(seed) = arg_value(&parsed, "seed").and_then(|s| s.parse().ok()) {
        options.seed = seed;
    }

    acobe_obs::progress!("generating dataset...");
    let ds = build_cert_dataset(&options);
    let victim = ds
        .victims
        .iter()
        .find(|v| v.scenario == "scenario2")
        .expect("scenario 2 victim present");
    let dev = compute_deviations(
        &ds.cert_cube,
        &DeviationConfig { window: 30, delta: 3.0, epsilon: 1e-3, min_history: 7 },
    );

    // Plot window: one month before the anomaly to one month after (clipped).
    let plot_start = victim.anomaly_start.add_days(-30);
    let plot_end_raw = victim.anomaly_end.add_days(30);
    let plot_end = if plot_end_raw < ds.end { plot_end_raw } else { ds.end };
    let d0 = ds.cert_cube.day_index(plot_start).expect("plot start in cube");
    let d1 = ds.cert_cube.day_index(plot_end.add_days(-1)).expect("plot end in cube") + 1;

    let fs = cert_feature_set();
    let uidx = victim.user.index();
    let dir = Path::new(EXPERIMENTS_DIR);

    for (aspect_name, file_tag) in [("device-access", "device"), ("http-access", "http")] {
        let aspect = fs.aspect(aspect_name).expect("aspect exists");
        for (frame, frame_tag) in [(0usize, "working"), (1usize, "off")] {
            let mut rows = Vec::new();
            for &f in &aspect.features {
                let mut row = vec![fs.names[f].clone()];
                for d in d0..d1 {
                    row.push(format!("{:.3}", dev.sigma.get_by_index(uidx, d, frame, f)));
                }
                rows.push(row);
            }
            let mut header: Vec<String> = vec!["feature".to_string()];
            for d in d0..d1 {
                header.push(ds.cert_cube.start().add_days(d as i32).to_string());
            }
            let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let path = dir.join(format!("fig4_{file_tag}_{frame_tag}.csv"));
            write_csv(&path, &header_refs, &rows).expect("write fig4 csv");

            // ASCII rendering: one row per feature, one char per day.
            println!("\n== {aspect_name} / {frame_tag} hours (victim {}) ==", victim.user);
            for &f in &aspect.features {
                let mut line = String::new();
                for d in d0..d1 {
                    let s = dev.sigma.get_by_index(uidx, d, frame, f);
                    line.push(shade(s));
                }
                println!("{:>28} {}", fs.names[f], line);
            }
            // Anomaly markers.
            let mut marks = String::new();
            for d in d0..d1 {
                let date = ds.cert_cube.start().add_days(d as i32);
                marks.push(if date >= victim.anomaly_start && date < victim.anomaly_end {
                    '*'
                } else {
                    ' '
                });
            }
            println!("{:>28} {}", "labeled anomaly", marks);
        }
    }
    println!(
        "\nCSV written to {EXPERIMENTS_DIR}/fig4_device_*.csv and fig4_http_*.csv \
         (rows: features; columns: {} .. {})",
        plot_start,
        plot_end.add_days(-1)
    );
}

/// Maps σ in [-3, 3] to an ASCII shade (dark = strong positive deviation).
fn shade(sigma: f32) -> char {
    match sigma {
        s if s >= 2.5 => '#',
        s if s >= 1.5 => '+',
        s if s >= 0.5 => '.',
        s if s <= -1.5 => '~',
        _ => ' ',
    }
}
