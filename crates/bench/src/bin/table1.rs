//! Prints the paper's inline Section V-C numbers ("Table 1": AUC and
//! FPs-before-each-TP for every model) from a saved fig6 run, or runs a
//! quick comparison if no saved results exist.
//!
//! Usage: `cargo run --release -p acobe-bench --bin table1 [--scale ...] [--speed ...]`

use acobe_bench::fig6::{run_comparison, table_rows, VariantSummary, TABLE_HEADER};
use acobe_bench::{arg_value, parse_args, DatasetOptions, ModelVariant, SpeedPreset, EXPERIMENTS_DIR};
use acobe_eval::report::text_table;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let saved = Path::new(EXPERIMENTS_DIR).join("fig6_results.json");

    let summaries: Vec<VariantSummary> = if saved.exists() && arg_value(&parsed, "rerun").is_none() {
        let json = std::fs::read_to_string(&saved).expect("read saved results");
        println!("(from {}; pass --rerun to recompute)", saved.display());
        serde_json::from_str(&json).expect("parse saved results")
    } else {
        let mut options = match arg_value(&parsed, "scale") {
            Some(s) => DatasetOptions::from_scale(s).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
            None => DatasetOptions { users_per_dept: 29, ..Default::default() },
        };
        if let Some(seed) = arg_value(&parsed, "seed").and_then(|s| s.parse().ok()) {
            options.seed = seed;
        }
        let speed = match arg_value(&parsed, "speed") {
            Some("paper") => SpeedPreset::Paper,
            Some("tiny") => SpeedPreset::Tiny,
            _ => SpeedPreset::Fast,
        };
        run_comparison(&options, &ModelVariant::all(), speed)
    };

    println!("\n=== Table 1: model comparison ===");
    println!("{}", text_table(&TABLE_HEADER, &table_rows(&summaries)));
    println!("Paper reference: ACOBE AUC 99.99% with FPs [0,0,0,1]; Base-FF 99.54% [1,1,10,10]; Baseline 99.23% [1,1,17,18].");
}
