//! Perf-regression gate over `BENCH_nn.json`.
//!
//! Diffs a freshly produced benchmark report against the committed
//! baseline (`BENCH_baseline.json`), walking every numeric leaf and
//! classifying it by name: `*_ms`/`secs`/`*_pct` are lower-is-better,
//! `*_per_s`/`gflops`/`speedup*` are higher-is-better, byte footprints
//! (`*_bytes`, `bytes_per_user`) are lower-is-better with a tighter
//! tolerance, and workload descriptors (`users`, `days`, `threads`, …)
//! are informational — a mismatch there means the two reports measured
//! different workloads and the affected comparison is flagged, not gated.
//!
//! Exits nonzero when any gated metric is worse than its tolerance band,
//! and appends one JSON line per run to `BENCH_history.jsonl` so the
//! trajectory of every metric is queryable across commits.
//!
//! Usage: `cargo run --release -p acobe-bench --bin bench_gate --
//!         [--baseline PATH] [--current PATH] [--tolerance PCT]
//!         [--bytes-tolerance PCT] [--history PATH] [--no-history]
//!         [--label TEXT] [--write-baseline]`

use acobe_bench::{arg_value, parse_args};
use serde_json::Value;

/// What "worse" means for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Latency, wall time, overhead, footprint: growing is a regression.
    LowerIsBetter,
    /// Throughput, speedup, flops: shrinking is a regression.
    HigherIsBetter,
    /// Workload descriptor (`users`, `days`, `threads`): never gated, but a
    /// mismatch invalidates the surrounding comparison.
    Informational,
}

/// One metric compared across the two reports.
#[derive(Debug)]
struct MetricDiff {
    path: String,
    baseline: f64,
    current: f64,
    direction: Direction,
    /// Percent worse in the metric's own direction (negative = improved).
    worse_pct: f64,
    tolerance_pct: f64,
    regression: bool,
}

/// Full comparison of two benchmark reports.
#[derive(Debug, Default)]
struct Comparison {
    diffs: Vec<MetricDiff>,
    /// Informational leaves whose values differ: the workloads are not the
    /// same shape and gated metrics around them are suspect.
    shape_mismatches: Vec<String>,
    /// Paths present only in the baseline (metric removed or shrunk run).
    missing: Vec<String>,
    /// Paths present only in the current report (new metric — not gated).
    added: Vec<String>,
}

impl Comparison {
    fn regressions(&self) -> Vec<&MetricDiff> {
        self.diffs.iter().filter(|d| d.regression).collect()
    }
}

/// Collects every numeric leaf of a JSON value as `(dotted.path[i], f64)`.
/// Booleans and strings (e.g. the `quick` flags, checkpoint format names)
/// are skipped — they describe the run, they are not measurements.
fn flatten(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                out.push((prefix.to_string(), f));
            }
        }
        Value::Object(map) => {
            for (key, child) in map {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(child, &path, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, &format!("{prefix}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Classifies a metric by the last segment of its dotted path.
fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    if leaf.ends_with("_per_s")
        || leaf.contains("gflops")
        || leaf.contains("speedup")
    {
        Direction::HigherIsBetter
    } else if leaf.ends_with("_ms")
        || leaf == "secs"
        || leaf.ends_with("_secs")
        || leaf.ends_with("_pct")
        || leaf.ends_with("_bytes")
        || leaf == "bytes_per_user"
        || leaf.ends_with("_loss")
    {
        Direction::LowerIsBetter
    } else {
        // users, days, threads, shards, epochs, m/k/n, bare `bytes`/`events`
        // (ingest workload size), counts of scored days, …
        Direction::Informational
    }
}

/// The dotted path of the object containing a leaf (`a.b[0].mean_ms` →
/// `a.b[0]`; a root-level leaf → `""`).
fn parent_of(path: &str) -> &str {
    path.rsplit_once('.').map_or("", |(parent, _)| parent)
}

/// Whether a lower-is-better metric is a byte footprint (deterministic, so
/// it gets the tighter tolerance band).
fn is_bytes_metric(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    leaf.ends_with("_bytes") || leaf == "bytes_per_user"
}

/// Diffs two reports. `tolerance_pct` bands timing/throughput metrics
/// (noisy under CI load); `bytes_tolerance_pct` bands byte footprints.
fn compare(
    baseline: &Value,
    current: &Value,
    tolerance_pct: f64,
    bytes_tolerance_pct: f64,
) -> Comparison {
    let mut base_leaves = Vec::new();
    let mut cur_leaves = Vec::new();
    flatten(baseline, "", &mut base_leaves);
    flatten(current, "", &mut cur_leaves);
    let cur_map: std::collections::BTreeMap<&str, f64> =
        cur_leaves.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let base_paths: std::collections::BTreeSet<&str> =
        base_leaves.iter().map(|(p, _)| p.as_str()).collect();

    let mut out = Comparison::default();
    // First pass: find informational leaves (workload descriptors) whose
    // values differ. Metrics sharing a parent object with one measured a
    // different workload — a quick run gated against a full baseline, a
    // runner with a different core count — and must not be gated.
    let mut mismatched_parents: std::collections::BTreeSet<String> =
        std::collections::BTreeSet::new();
    for (path, base) in &base_leaves {
        let Some(&cur) = cur_map.get(path.as_str()) else { continue };
        if direction(path) == Direction::Informational
            && (base - cur).abs() > f64::EPSILON * base.abs().max(1.0)
        {
            out.shape_mismatches.push(format!("{path}: {base} vs {cur}"));
            mismatched_parents.insert(parent_of(path).to_string());
        }
    }
    for (path, base) in &base_leaves {
        let Some(&cur) = cur_map.get(path.as_str()) else {
            out.missing.push(path.clone());
            continue;
        };
        let dir = direction(path);
        if dir == Direction::Informational || mismatched_parents.contains(parent_of(path)) {
            continue;
        }
        if *base == 0.0 {
            // No meaningful percentage off a zero baseline; skip rather
            // than divide. (Timing/throughput baselines are never zero in
            // practice — this guards hand-edited fixtures.)
            continue;
        }
        let delta_pct = (cur - base) / base * 100.0;
        let worse_pct = match dir {
            Direction::LowerIsBetter => delta_pct,
            Direction::HigherIsBetter => -delta_pct,
            Direction::Informational => unreachable!(),
        };
        let tolerance = if is_bytes_metric(path) {
            bytes_tolerance_pct
        } else {
            tolerance_pct
        };
        out.diffs.push(MetricDiff {
            path: path.clone(),
            baseline: *base,
            current: cur,
            direction: dir,
            worse_pct,
            tolerance_pct: tolerance,
            regression: worse_pct > tolerance,
        });
    }
    for (path, _) in &cur_leaves {
        if !base_paths.contains(path.as_str()) {
            out.added.push(path.clone());
        }
    }
    out
}

/// One JSON line for `BENCH_history.jsonl`: the run's label, wall-clock
/// stamp, regression count, and every numeric leaf of the current report.
fn history_line(label: &str, unix_secs: u64, current: &Value, regressions: usize) -> String {
    let mut leaves = Vec::new();
    flatten(current, "", &mut leaves);
    let metrics: serde_json::Map<String, Value> = leaves
        .into_iter()
        .map(|(p, v)| (p, serde_json::json!(v)))
        .collect();
    serde_json::json!({
        "label": label,
        "unix_secs": unix_secs,
        "regressions": regressions,
        "metrics": metrics,
    })
    .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let default_baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let default_current = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nn.json");
    let default_history = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");
    let baseline_path = arg_value(&parsed, "baseline").unwrap_or(default_baseline);
    let current_path = arg_value(&parsed, "current").unwrap_or(default_current);
    let history_path = arg_value(&parsed, "history").unwrap_or(default_history);
    let tolerance: f64 = arg_value(&parsed, "tolerance")
        .map(|v| v.parse().expect("--tolerance takes a percentage"))
        .unwrap_or(25.0);
    let bytes_tolerance: f64 = arg_value(&parsed, "bytes-tolerance")
        .map(|v| v.parse().expect("--bytes-tolerance takes a percentage"))
        .unwrap_or(10.0);
    let label = arg_value(&parsed, "label").unwrap_or("local").to_string();

    let current: Value = serde_json::from_str(
        &std::fs::read_to_string(current_path)
            .unwrap_or_else(|e| panic!("read {current_path}: {e}")),
    )
    .expect("current report parses as JSON");

    if arg_value(&parsed, "write-baseline").is_some() {
        let pretty = serde_json::to_string_pretty(&current).expect("serialize");
        std::fs::write(baseline_path, pretty + "\n")
            .unwrap_or_else(|e| panic!("write {baseline_path}: {e}"));
        println!("wrote {current_path} as the new baseline at {baseline_path}");
        return;
    }

    let baseline: Value = serde_json::from_str(
        &std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e} (bootstrap with --write-baseline)")),
    )
    .expect("baseline report parses as JSON");

    let cmp = compare(&baseline, &current, tolerance, bytes_tolerance);
    for note in &cmp.shape_mismatches {
        println!("shape mismatch (comparison suspect): {note}");
    }
    if !cmp.missing.is_empty() {
        println!("{} baseline metric(s) absent from the current report:", cmp.missing.len());
        for path in cmp.missing.iter().take(8) {
            println!("  - {path}");
        }
    }
    if !cmp.added.is_empty() {
        println!("{} new metric(s) not yet in the baseline (not gated)", cmp.added.len());
    }

    let mut ranked: Vec<&MetricDiff> = cmp.diffs.iter().collect();
    ranked.sort_by(|a, b| b.worse_pct.partial_cmp(&a.worse_pct).unwrap());
    println!(
        "{} gated metrics (timing/throughput band ±{tolerance}%, bytes band ±{bytes_tolerance}%); \
         largest moves:",
        cmp.diffs.len()
    );
    for d in ranked.iter().take(12) {
        let arrow = match d.direction {
            Direction::LowerIsBetter => "lower=better",
            Direction::HigherIsBetter => "higher=better",
            Direction::Informational => "",
        };
        println!(
            "  {:>+7.1}%  {} ({:.4} -> {:.4}, {arrow}){}",
            d.worse_pct,
            d.path,
            d.baseline,
            d.current,
            if d.regression { "  REGRESSION" } else { "" }
        );
    }

    let regressions = cmp.regressions();
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if arg_value(&parsed, "no-history").is_none() {
        let line = history_line(&label, unix_secs, &current, regressions.len());
        let mut text = std::fs::read_to_string(history_path).unwrap_or_default();
        text.push_str(&line);
        text.push('\n');
        std::fs::write(history_path, text)
            .unwrap_or_else(|e| panic!("append {history_path}: {e}"));
        println!("appended run '{label}' to {history_path}");
    }

    if regressions.is_empty() {
        println!("bench gate: PASS ({} metrics within tolerance)", cmp.diffs.len());
    } else {
        println!("bench gate: FAIL — {} regression(s):", regressions.len());
        for d in &regressions {
            println!(
                "  {}: {:.4} -> {:.4} ({:+.1}% worse, tolerance {}%)",
                d.path, d.baseline, d.current, d.worse_pct, d.tolerance_pct
            );
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample() -> Value {
        json!({
            "engine": {
                "quick": true,
                "warm_ingest": [
                    {"users": 1000, "days": 8, "mean_ms": 10.0,
                     "days_per_s": 100.0, "state_bytes": 4_000_000}
                ],
                "checkpoint": [
                    {"users": 1000, "format": "v3", "full_save_ms": 50.0,
                     "bytes_per_user": 120.5}
                ]
            },
            "ingest": {"bytes": 1_000_000, "pipeline": [
                {"threads": 4, "secs": 2.0, "events_per_s": 5e6, "speedup_vs_naive": 3.1}
            ]}
        })
    }

    #[test]
    fn direction_heuristic_classifies_known_leaves() {
        assert_eq!(direction("engine.warm_ingest[0].mean_ms"), Direction::LowerIsBetter);
        assert_eq!(direction("engine.warm_ingest[0].days_per_s"), Direction::HigherIsBetter);
        assert_eq!(direction("ingest.pipeline[0].secs"), Direction::LowerIsBetter);
        assert_eq!(direction("ingest.pipeline[0].gb_per_s"), Direction::HigherIsBetter);
        assert_eq!(direction("ingest.pipeline[0].speedup_vs_naive"), Direction::HigherIsBetter);
        assert_eq!(direction("matmul[2].gflops"), Direction::HigherIsBetter);
        assert_eq!(direction("engine.intraday[0].overhead_pct"), Direction::LowerIsBetter);
        assert_eq!(direction("engine.checkpoint[0].bytes_per_user"), Direction::LowerIsBetter);
        assert_eq!(direction("engine.warm_ingest[0].state_bytes"), Direction::LowerIsBetter);
        // Workload descriptors are informational, including the ingest
        // corpus size whose leaf is a bare `bytes`.
        assert_eq!(direction("engine.warm_ingest[0].users"), Direction::Informational);
        assert_eq!(direction("ingest.bytes"), Direction::Informational);
        assert_eq!(direction("threads"), Direction::Informational);
    }

    #[test]
    fn synthetic_20pct_slowdown_fails_the_gate() {
        let baseline = sample();
        let mut current = sample();
        // The acceptance scenario: one timing metric quietly 20% slower.
        current["engine"]["warm_ingest"][0]["mean_ms"] = json!(12.0);
        let cmp = compare(&baseline, &current, 10.0, 10.0);
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].path, "engine.warm_ingest[0].mean_ms");
        assert!((regressions[0].worse_pct - 20.0).abs() < 1e-9);
        // The same slowdown inside a generous band passes.
        let lenient = compare(&baseline, &current, 25.0, 10.0);
        assert!(lenient.regressions().is_empty());
    }

    #[test]
    fn throughput_drop_is_a_regression_and_gain_is_not() {
        let baseline = sample();
        let mut current = sample();
        current["ingest"]["pipeline"][0]["events_per_s"] = json!(3.5e6); // -30%
        let cmp = compare(&baseline, &current, 25.0, 10.0);
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].path, "ingest.pipeline[0].events_per_s");

        let mut faster = sample();
        faster["ingest"]["pipeline"][0]["events_per_s"] = json!(9e6);
        faster["engine"]["warm_ingest"][0]["mean_ms"] = json!(5.0);
        assert!(compare(&baseline, &faster, 25.0, 10.0).regressions().is_empty());
    }

    #[test]
    fn byte_footprints_use_the_tighter_band() {
        let baseline = sample();
        let mut current = sample();
        // +15% state: inside the 25% timing band, outside the 10% bytes band.
        current["engine"]["warm_ingest"][0]["state_bytes"] = json!(4_600_000);
        let cmp = compare(&baseline, &current, 25.0, 10.0);
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].path, "engine.warm_ingest[0].state_bytes");
    }

    #[test]
    fn workload_mismatch_ungates_its_sibling_metrics() {
        let baseline = sample();
        let mut current = sample();
        // A different roster AND a huge slowdown in the same row: the row
        // measured a different workload, so the slowdown must not gate …
        current["engine"]["warm_ingest"][0]["users"] = json!(2000);
        current["engine"]["warm_ingest"][0]["mean_ms"] = json!(30.0);
        let cmp = compare(&baseline, &current, 25.0, 10.0);
        assert!(cmp.regressions().is_empty(), "{:?}", cmp.regressions());
        assert_eq!(cmp.shape_mismatches.len(), 1);
        assert!(cmp.shape_mismatches[0].contains("users"), "{:?}", cmp.shape_mismatches);
        // … while the same slowdown on a matching workload still does.
        let mut slow = sample();
        slow["engine"]["warm_ingest"][0]["mean_ms"] = json!(30.0);
        assert_eq!(compare(&baseline, &slow, 25.0, 10.0).regressions().len(), 1);
    }

    #[test]
    fn missing_and_added_paths_are_reported_not_gated() {
        let baseline = sample();
        let mut current = sample();
        current["engine"]["tracing_overhead"] = json!({"overhead_pct": 1.5});
        current["engine"]
            .as_object_mut()
            .unwrap()
            .remove("checkpoint");
        let cmp = compare(&baseline, &current, 25.0, 10.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.added.iter().any(|p| p.contains("tracing_overhead")));
        assert!(cmp.missing.iter().any(|p| p.contains("checkpoint")));
    }

    #[test]
    fn history_line_is_one_valid_json_object() {
        let line = history_line("ci", 1_700_000_000, &sample(), 2);
        assert!(!line.contains('\n'));
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back["label"], "ci");
        assert_eq!(back["regressions"], 2);
        assert_eq!(back["metrics"]["engine.warm_ingest[0].mean_ms"], 10.0);
    }
}
