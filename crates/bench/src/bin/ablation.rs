//! Ablation sweeps over ACOBE's design choices (DESIGN.md §5): history
//! window ω, matrix window D, TF feature weights, per-user calibration, and
//! ranking smoothness — measuring each configuration's ability to surface
//! the scenario-2 insider.
//!
//! Usage: `cargo run --release -p acobe-bench --bin ablation
//!         [--scale small|medium] [--sweep window|weights|calibration|smooth|all]`

use acobe::config::AcobeConfig;
use acobe::pipeline::AcobePipeline;
use acobe_bench::dataset::{build_cert_dataset, CertDataset, DatasetOptions};
use acobe_bench::{arg_value, parse_args, EXPERIMENTS_DIR};
use acobe_eval::report::{text_table, write_csv};
use acobe_features::spec::cert_feature_set;
use acobe_synth::scenario::VictimRecord;
use std::path::Path;

struct AblationResult {
    label: String,
    victim_position: usize,
    users: usize,
    victim_aspect_ranks: Vec<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let options = match arg_value(&parsed, "scale") {
        Some(s) => DatasetOptions::from_scale(s).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => DatasetOptions { users_per_dept: 29, with_baseline: false, ..Default::default() },
    };
    let sweep = arg_value(&parsed, "sweep").unwrap_or("all").to_string();

    acobe_obs::progress!("building dataset...");
    let mut opts = options;
    opts.with_baseline = false;
    let ds = build_cert_dataset(&opts);
    let victim = ds
        .victims
        .iter()
        .find(|v| v.scenario == "scenario2")
        .expect("scenario 2 victim")
        .clone();

    let mut results: Vec<AblationResult> = Vec::new();

    if sweep == "all" || sweep == "window" {
        for window in [7usize, 14, 30, 45] {
            let mut cfg = AcobeConfig::fast();
            cfg.deviation.window = window;
            results.push(run(&ds, &victim, cfg, 3, &format!("omega={window}")));
        }
        for matrix_days in [7usize, 14, 21] {
            let mut cfg = AcobeConfig::fast();
            cfg.matrix.matrix_days = matrix_days;
            results.push(run(&ds, &victim, cfg, 3, &format!("D={matrix_days}")));
        }
    }
    if sweep == "all" || sweep == "weights" {
        for use_weights in [true, false] {
            let mut cfg = AcobeConfig::fast();
            cfg.matrix.use_weights = use_weights;
            results.push(run(&ds, &victim, cfg, 3, &format!("weights={use_weights}")));
        }
    }
    if sweep == "all" || sweep == "calibration" {
        for calibrate in [true, false] {
            let mut cfg = AcobeConfig::fast();
            cfg.calibrate = calibrate;
            results.push(run(&ds, &victim, cfg, 3, &format!("calibrate={calibrate}")));
        }
    }
    if sweep == "all" || sweep == "smooth" {
        for smooth in [1usize, 3, 7] {
            let cfg = AcobeConfig::fast();
            results.push(run(&ds, &victim, cfg, smooth, &format!("smooth={smooth}")));
        }
    }

    let header = ["config", "victim-position", "users", "victim-aspect-ranks"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                (r.victim_position + 1).to_string(),
                r.users.to_string(),
                format!("{:?}", r.victim_aspect_ranks),
            ]
        })
        .collect();
    println!("\n=== Ablations (scenario-2 insider) ===");
    println!("{}", text_table(&header, &rows));
    write_csv(Path::new(EXPERIMENTS_DIR).join("ablations.csv"), &header, &rows)
        .expect("write ablations csv");
    println!("CSV written to {EXPERIMENTS_DIR}/ablations.csv");
}

fn run(
    ds: &CertDataset,
    victim: &VictimRecord,
    config: AcobeConfig,
    smooth: usize,
    label: &str,
) -> AblationResult {
    acobe_obs::progress!("running {label} ...");
    let critic_n = config.critic_n;
    let mut pipeline =
        AcobePipeline::new(ds.cert_cube.clone(), cert_feature_set(), &ds.groups, config)
            .expect("pipeline");
    let split = ds.scenario_split(victim);
    pipeline.fit(split.train_start, split.train_end).expect("fit");
    let table = pipeline
        .score_range(split.test_start, split.test_end)
        .expect("score");
    let list = table.investigation_list_smoothed(critic_n, smooth);
    let vidx = victim.user.index();
    let victim_position = list.iter().position(|inv| inv.user == vidx).unwrap();
    let victim_aspect_ranks = (0..table.aspect_names.len())
        .map(|a| {
            let maxes = table.smoothed_max_per_user(a, smooth);
            let better = maxes.iter().filter(|&&m| m > maxes[vidx]).count();
            better + 1
        })
        .collect();
    AblationResult {
        label: label.to_string(),
        victim_position,
        users: ds.users,
        victim_aspect_ranks,
    }
}
