//! Regenerates Figure 6 (ROC, PR, critic-N PR curves) and the inline
//! "Table 1" numbers of Section V-C.
//!
//! Usage: `cargo run --release -p acobe-bench --bin fig6 [--scale small|medium|dept114|paper] [--speed fast|paper|tiny] [--seed N]`

use acobe_bench::fig6::{run_comparison, table_rows, TABLE_HEADER};
use acobe_bench::{arg_value, parse_args, DatasetOptions, ModelVariant, SpeedPreset, EXPERIMENTS_DIR};
use acobe_eval::report::{text_table, write_csv};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args);
    let mut options = match arg_value(&parsed, "scale") {
        Some(s) => DatasetOptions::from_scale(s).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => DatasetOptions::default(),
    };
    if let Some(seed) = arg_value(&parsed, "seed").and_then(|s| s.parse().ok()) {
        options.seed = seed;
    }
    let speed = match arg_value(&parsed, "speed") {
        Some("paper") => SpeedPreset::Paper,
        Some("tiny") => SpeedPreset::Tiny,
        _ => SpeedPreset::Fast,
    };

    let variants = ModelVariant::all();
    let summaries = run_comparison(&options, &variants, speed);

    let dir = Path::new(EXPERIMENTS_DIR);

    // Figure 6(a): ROC curves.
    let mut roc_rows = Vec::new();
    for s in &summaries {
        for (i, &(fpr, tpr)) in s.roc_points.iter().enumerate() {
            roc_rows.push(vec![
                s.variant.clone(),
                i.to_string(),
                format!("{fpr:.6}"),
                format!("{tpr:.6}"),
            ]);
        }
    }
    write_csv(dir.join("fig6a_roc.csv"), &["model", "tp_index", "fpr", "tpr"], &roc_rows)
        .expect("write fig6a");

    // Figure 6(b): PR curves for the headline models.
    let mut pr_rows = Vec::new();
    for s in &summaries {
        if s.variant.starts_with("acobe-n") {
            continue; // those belong to 6(c)
        }
        for &(recall, precision) in &s.pr_points {
            pr_rows.push(vec![
                s.variant.clone(),
                format!("{recall:.6}"),
                format!("{precision:.6}"),
            ]);
        }
    }
    write_csv(dir.join("fig6b_pr.csv"), &["model", "recall", "precision"], &pr_rows)
        .expect("write fig6b");

    // Figure 6(c): ACOBE with N = 1, 2, 3.
    let mut prn_rows = Vec::new();
    for s in &summaries {
        let n = match s.variant.as_str() {
            "acobe" => "3",
            "acobe-n2" => "2",
            "acobe-n1" => "1",
            _ => continue,
        };
        for &(recall, precision) in &s.pr_points {
            prn_rows.push(vec![
                n.to_string(),
                format!("{recall:.6}"),
                format!("{precision:.6}"),
            ]);
        }
    }
    write_csv(dir.join("fig6c_pr_n.csv"), &["critic_n", "recall", "precision"], &prn_rows)
        .expect("write fig6c");

    // "Table 1": the inline headline numbers.
    let rows = table_rows(&summaries);
    write_csv(dir.join("table1.csv"), &TABLE_HEADER, &rows).expect("write table1");
    let json = serde_json::to_string_pretty(&summaries).expect("serialize summaries");
    std::fs::write(dir.join("fig6_results.json"), json).expect("write fig6 json");

    println!("\n=== Figure 6 / Table 1 (merged over {} scenarios) ===", summaries[0].victim_positions.len());
    println!("{}", text_table(&TABLE_HEADER, &rows));
    println!("CSV written to {}/fig6a_roc.csv, fig6b_pr.csv, fig6c_pr_n.csv, table1.csv", EXPERIMENTS_DIR);
}
